"""Run the complete reproduction sweep: every figure and theorem.

Executes all experiment generators (Figures 1-4, Lemma B.1, Theorems
4.1/4.2 with the convergence bound, Lemma 4.3, Algorithm 1, the Euclid
protocol, Theorem C.1, and the k-leader extension) and prints each table
with its verdict.  Exits non-zero if any experiment diverges from the
paper.

Run:  python examples/reproduce_paper.py
"""

import sys
import time

from repro.analysis import run_all_experiments


def main() -> int:
    start = time.time()
    results = run_all_experiments()
    for result in results:
        print(result.render())
        print()
    failed = [r.experiment_id for r in results if not r.passed]
    elapsed = time.time() - start
    print(
        f"{len(results) - len(failed)}/{len(results)} experiments "
        f"reproduce the paper ({elapsed:.1f}s)"
    )
    if failed:
        print("FAILED:", ", ".join(failed))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
