"""Scenario: a device fleet with duplicated PRNG seeds (the paper's intro).

The paper motivates correlated randomness with real incidents: >250,000
devices sharing SSH keys, and 1 in 172 RSA certificates sharing a factor
with another -- "independent" machines whose randomness is identical.

This example audits fleets: given how many devices share each seed, can
the fleet ever elect a coordinator?  We compare the blackboard reality
(e.g. devices gossiping through a bus, origin-free) and the point-to-point
reality (devices with private links, possibly cabled adversarially), and
show how a single well-seeded device (or a co-prime split) rescues an
otherwise stuck fleet.

Run:  python examples/correlated_keys_fleet.py
"""

from repro import RandomnessConfiguration, adversarial_assignment, leader_election
from repro.core import (
    ConsistencyChain,
    blackboard_solvable,
    message_passing_worst_case_solvable,
)
from repro.viz import format_table


FLEETS = {
    "all devices cloned from one image": (6,),
    "two firmware batches of 3": (3, 3),
    "two batches of 2 and 4": (2, 4),
    "batches of 2 and 3 (co-prime!)": (2, 3),
    "one healthy device among clones": (1, 5),
    "healthy pair + healthy single": (1, 2, 3),
    "fully independent seeds": (1, 1, 1, 1, 1, 1),
}


def main() -> None:
    rows = []
    for description, sizes in FLEETS.items():
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        task = leader_election(alpha.n)

        bb_prediction = blackboard_solvable(alpha)
        bb_exact = ConsistencyChain(alpha).eventually_solvable(task)

        mp_prediction = message_passing_worst_case_solvable(alpha)
        mp_exact = ConsistencyChain(
            alpha, adversarial_assignment(sizes)
        ).eventually_solvable(task)

        assert bb_prediction == bb_exact and mp_prediction == mp_exact
        rows.append(
            (
                description,
                sizes,
                "yes" if bb_exact else "NO",
                "yes" if mp_exact else "NO",
            )
        )

    print("Can the fleet elect a coordinator, eventually (probability 1)?\n")
    print(
        format_table(
            ("fleet", "seed sharing", "broadcast bus", "p2p links (worst cabling)"),
            rows,
        )
    )
    print(
        "\nTakeaways: a broadcast bus needs one uniquely-seeded device "
        "(Theorem 4.1); point-to-point links only need the batch sizes to "
        "be co-prime (Theorem 4.2) -- (2,3) elects even though every "
        "device shares its seed with another."
    )


if __name__ == "__main__":
    main()
