"""How long until a leader exists?  Exact expected times.

The paper proves *whether* leader election eventually succeeds; the
consistency-partition Markov chain also tells *how fast*.  This example
prints the exact expected number of rounds until the global state first
solves leader election (Definition 3.4), for every group-size shape of
n = 2..6, in both models -- and cross-checks one value against a direct
protocol simulation.

Run:  python examples/expected_election_time.py
"""

from repro import RandomnessConfiguration, adversarial_assignment, enumerate_size_shapes
from repro.algorithms import BlackboardLeaderNode, BlackboardNetwork
from repro.core import ConsistencyChain, expected_solving_time, leader_election
from repro.viz import format_table


def main() -> None:
    rows = []
    for n in range(2, 7):
        task = leader_election(n)
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            bb = expected_solving_time(ConsistencyChain(alpha), task)
            mp = expected_solving_time(
                ConsistencyChain(alpha, adversarial_assignment(shape)), task
            )
            rows.append(
                (
                    n,
                    shape,
                    str(bb) if bb is not None else "∞",
                    f"{float(bb):.3f}" if bb is not None else "-",
                    str(mp) if mp is not None else "∞",
                    f"{float(mp):.3f}" if mp is not None else "-",
                )
            )
    print("Exact expected rounds until some node's knowledge is unique\n")
    print(
        format_table(
            ("n", "sizes", "blackboard", "≈", "clique (adversarial)", "≈"),
            rows,
        )
    )

    # Cross-check (1,2) on the blackboard against real protocol runs.
    # The protocol decides one round after the state solves (the partition
    # becomes common knowledge with a one-round lag), so expect E[T] + 1.
    shape = (1, 2)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    exact = float(
        expected_solving_time(ConsistencyChain(alpha), leader_election(3))
    )
    total = 0
    runs = 1500
    for seed in range(runs):
        result = BlackboardNetwork(
            alpha, BlackboardLeaderNode, seed=seed
        ).run(max_rounds=200)
        assert result.all_decided
        total += result.rounds
    print(
        f"\ncross-check on sizes {shape}: chain E[T] = {exact:.3f}; "
        f"protocol mean decision round over {runs} runs = "
        f"{total / runs:.3f} (expected ≈ E[T] + 1 announcement round)"
    )


if __name__ == "__main__":
    main()
