"""Exploring the compiled consistency-partition Markov chain.

The chain is the reproduction's analysis engine: this example compiles
one configuration's chain (interned states, sparse integer transitions)
and walks everything it can answer -- the reachable refinement lattice
(as a mermaid diagram you can paste into a renderer), exact
probabilities under both backends, the full distribution of the first
solving time, its quantiles and expectation -- and reports the
state-space size plus compile/query timings, which is where the
compiled engine earns its keep: compile once, query as often as you
like.

Run:  python examples/chain_explorer.py
"""

import time
from fractions import Fraction

from repro import RandomnessConfiguration, leader_election
from repro.chain import clear_memo, compile_chain
from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    solving_time_distribution,
    solving_time_quantile,
)
from repro.viz import chain_to_mermaid, format_table, render_partition


def main() -> None:
    alpha = RandomnessConfiguration.from_group_sizes([1, 2])
    task = leader_election(alpha.n)

    clear_memo()  # time a genuinely cold compile
    started = time.perf_counter()
    compiled = compile_chain(alpha)
    compile_seconds = time.perf_counter() - started
    chain = ConsistencyChain(alpha)  # facade over the same compiled chain

    print(f"configuration: sizes {alpha.group_sizes} on the blackboard")
    print(
        f"compiled chain: {compiled.num_states} states, "
        f"{compiled.num_transitions} transitions, "
        f"compiled in {compile_seconds * 1e3:.2f} ms\n"
    )

    print("reachable consistency partitions:")
    for sid in range(compiled.num_states):
        blocks = [frozenset(b) for b in compiled.partition_of(sid)]
        solves = task.solvable_from_partition(blocks)
        print(
            f"  {render_partition(blocks):15s}"
            + ("  <- solves leader election" if solves else "")
        )

    print("\nmermaid diagram of the refinement lattice:\n")
    print(chain_to_mermaid(chain, task))

    print("\nexact first-solve time distribution:")
    started = time.perf_counter()
    dist = solving_time_distribution(compiled, task, 8)
    query_seconds = time.perf_counter() - started
    rows = [
        (t, str(p), f"{float(p):.5f}")
        for t, p in enumerate(dist, start=1)
    ]
    print(format_table(("t", "Pr[T = t]", "~"), rows))
    print(f"(exact 8-round series query: {query_seconds * 1e3:.2f} ms)")

    started = time.perf_counter()
    float_series = compiled.solving_probability_series(
        task, 8, backend="float"
    )
    float_seconds = time.perf_counter() - started
    print(
        f"float backend agrees at t=8 within "
        f"{abs(float_series[-1] - float(sum(dist))):.2e} "
        f"({float_seconds * 1e3:.2f} ms)"
    )

    expected = expected_solving_time(compiled, task)
    print(f"\nE[T] = {expected} (~{float(expected):.4f})")
    for q in (Fraction(1, 2), Fraction(9, 10), Fraction(99, 100)):
        t = solving_time_quantile(compiled, task, q)
        print(f"Pr[S(t)] reaches {q} at t = {t}")


if __name__ == "__main__":
    main()
