"""Exploring the consistency-partition Markov chain.

The chain is the reproduction's analysis engine: this example walks one
configuration through everything it can answer -- the reachable refinement
lattice (as a mermaid diagram you can paste into a renderer), exact
probabilities, the full distribution of the first solving time, its
quantiles and expectation.

Run:  python examples/chain_explorer.py
"""

from fractions import Fraction

from repro import RandomnessConfiguration, leader_election
from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    solving_time_distribution,
    solving_time_quantile,
)
from repro.viz import chain_to_mermaid, format_table, render_partition


def main() -> None:
    alpha = RandomnessConfiguration.from_group_sizes([1, 2])
    task = leader_election(alpha.n)
    chain = ConsistencyChain(alpha)

    print(f"configuration: sizes {alpha.group_sizes} on the blackboard\n")

    print("reachable consistency partitions:")
    for state in sorted(chain.reachable_states(), key=len):
        blocks = [frozenset(b) for b in state]
        solves = task.solvable_from_partition(blocks)
        print(
            f"  {render_partition(blocks):15s}"
            + ("  <- solves leader election" if solves else "")
        )

    print("\nmermaid diagram of the refinement lattice:\n")
    print(chain_to_mermaid(chain, task))

    print("\nexact first-solve time distribution:")
    dist = solving_time_distribution(chain, task, 8)
    rows = [
        (t, str(p), f"{float(p):.5f}")
        for t, p in enumerate(dist, start=1)
    ]
    print(format_table(("t", "Pr[T = t]", "~"), rows))

    expected = expected_solving_time(chain, task)
    print(f"\nE[T] = {expected} (~{float(expected):.4f})")
    for q in (Fraction(1, 2), Fraction(9, 10), Fraction(99, 100)):
        t = solving_time_quantile(chain, task, q)
        print(f"Pr[S(t)] reaches {q} at t = {t}")


if __name__ == "__main__":
    main()
