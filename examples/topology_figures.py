"""Regenerate the combinatorial content of the paper's Figures 1-3.

Prints the complexes the paper draws -- the protocol complexes ``P(t)``
for two parties, the realization complexes ``R(0)``/``R(1)`` for three
parties, and ``O_LE`` with its consistency projection -- and writes DOT
files for graphical rendering.

Run:  python examples/topology_figures.py [output-dir]
"""

import pathlib
import sys

from repro.core import (
    build_protocol_complex,
    leader_election_complex,
    project_complex,
    realization_complex,
)
from repro.models import BlackboardModel
from repro.viz import complex_to_dot, render_complex


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else None

    print("Figure 1 -- P(t) for two parties on the blackboard")
    for t in range(3):
        build = build_protocol_complex(BlackboardModel(2), t)
        print(
            f"\nP({t}): {build.vertex_count()} vertices, "
            f"{build.facet_count()} facets"
        )
        if t <= 1:
            print(render_complex(build.complex))

    print("\n\nFigure 2 -- R(t) for three parties")
    for t in range(2):
        complex_ = realization_complex(3, t)
        print(f"\nR({t}):")
        print(render_complex(complex_))
        if out_dir:
            path = out_dir / f"figure2_R{t}.dot"
            path.write_text(complex_to_dot(complex_, name=f"R{t}"))
            print(f"  wrote {path}")

    print("\n\nFigure 3 -- O_LE and pi(O_LE) for three parties")
    o_le = leader_election_complex(3)
    projected = project_complex(o_le)
    print("\nO_LE:")
    print(render_complex(o_le))
    print("\npi(O_LE)  (isolated vertices are the potential leaders):")
    print(render_complex(projected))
    if out_dir:
        for name, complex_ in (("OLE", o_le), ("piOLE", projected)):
            path = out_dir / f"figure3_{name}.dot"
            path.write_text(complex_to_dot(complex_, name=name))
            print(f"  wrote {path}")


if __name__ == "__main__":
    main()
