"""Beyond the clique: anonymous rings, paths, stars, and K_{m,n}.

The paper's conclusion proposes extending the framework to networks of
arbitrary structure; this example does so for the deterministic slice
(one shared randomness source = no usable randomness), where one round of
knowledge refinement is exactly port-aware color refinement.

It reproduces, per port labeling or in the worst case over labelings:

* Angluin's classical impossibility on rings -- and the less-known flip
  side that *most* individual labelings do elect a leader;
* the Codenotti et al. gcd(m, n) = 1 condition for K_{m,n};
* paths electing iff their length is odd (unique centre), stars iff they
  have a hub.

Run:  python examples/anonymous_networks.py
"""

from repro.core import (
    color_refinement_fixpoint,
    iter_labeling_verdicts,
    leader_election,
    randomized_worst_case_solvable,
)
from repro.models import GraphTopology
from repro.randomness import RandomnessConfiguration
from repro.viz import format_table, render_partition


def main() -> None:
    # --- a single topology, examined closely --------------------------
    path = GraphTopology.path(5)
    fixpoint = color_refinement_fixpoint(path)
    print("P_5 color-refinement fixpoint (knowledge classes):")
    print(" ", render_partition([frozenset(b) for b in fixpoint]))
    print("  the centre is alone in its class -> it becomes the leader\n")

    # --- the ring census ----------------------------------------------
    rows = []
    for n in (3, 4, 5):
        ring = GraphTopology.ring(n)
        verdicts = [
            verdict
            for _, verdict in iter_labeling_verdicts(ring, leader_election(n))
        ]
        randomized = randomized_worst_case_solvable(
            ring,
            RandomnessConfiguration.independent(n),
            leader_election(n),
        )
        rows.append(
            (
                f"C_{n}",
                len(verdicts),
                sum(verdicts),
                "no (Angluin)" if not all(verdicts) else "yes",
                "yes" if randomized else "no",
            )
        )
    print("Deterministic leader election on anonymous rings:\n")
    print(
        format_table(
            (
                "ring",
                "labelings",
                "labelings that elect",
                "worst case",
                "private randomness (worst case)",
            ),
            rows,
        )
    )
    print(
        "\nThe symmetric 'all clockwise' labeling defeats every "
        "deterministic algorithm, but asymmetric port numbers often break "
        "the rotation; randomness repairs the worst case entirely.\n"
    )

    # --- K_{m,n} -------------------------------------------------------
    import math

    from repro.core import worst_case_deterministic_solvable

    rows = []
    for m, n in [(1, 2), (2, 2), (2, 3), (2, 4), (3, 3)]:
        base = GraphTopology.complete_bipartite(m, n)
        got = worst_case_deterministic_solvable(
            base, leader_election(m + n), include_back_ports=True
        )
        rows.append(
            (
                f"K_{{{m},{n}}}",
                math.gcd(m, n),
                "yes" if got else "no",
            )
        )
    print("Deterministic leader election on K_{m,n} (worst-case ports):\n")
    print(format_table(("graph", "gcd(m,n)", "solvable"), rows))
    print(
        "\ngcd(m,n) = 1 is exactly the Codenotti et al. condition the "
        "paper cites -- recovered here from the framework's k = 1 slice."
    )


if __name__ == "__main__":
    main()
