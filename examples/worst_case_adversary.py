"""How adversarial is the worst case?  A census of port assignments.

Theorem 4.2 says leader election on the clique with sizes (2,2) is
impossible *in the worst case* over port numberings, and Lemma 4.3
constructs a bad numbering.  This example brute-forces all 1296 port
assignments of the 4-clique to show:

* the exact fraction of assignments that defeat leader election;
* that the Lemma 4.3 construction is among them (the paper's adversary is
  optimal, achieving the true minimum);
* what the bad assignments have in common: an equivariant symmetry that
  knowledge refinement can never break.

Run:  python examples/worst_case_adversary.py
"""

from repro import RandomnessConfiguration, leader_election
from repro.analysis import iter_all_port_assignments
from repro.core import ConsistencyChain
from repro.models import adversarial_assignment, is_equivariant, shift_symmetry
from repro.viz import format_table


def main() -> None:
    shape = (2, 2)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    task = leader_election(alpha.n)
    f = shift_symmetry(4, 2)

    solvable = 0
    unsolvable = 0
    unsolvable_equivariant = 0
    lemma_found = False
    lemma_ports = adversarial_assignment(shape)
    for ports in iter_all_port_assignments(4):
        limit = ConsistencyChain(alpha, ports).limit_solving_probability(task)
        if limit == 1:
            solvable += 1
        else:
            unsolvable += 1
            if is_equivariant(ports, f):
                unsolvable_equivariant += 1
            if ports == lemma_ports:
                lemma_found = True

    total = solvable + unsolvable
    print(f"clique n=4, source sizes {shape} (gcd 2):\n")
    print(
        format_table(
            ("quantity", "count"),
            [
                ("port assignments", total),
                ("solve leader election (limit 1)", solvable),
                ("defeat leader election (limit 0)", unsolvable),
                ("defeating AND f-equivariant", unsolvable_equivariant),
                ("Lemma 4.3 assignment defeats", lemma_found),
            ],
        )
    )
    print(
        "\nOnly "
        f"{unsolvable}/{total} ≈ {unsolvable / total:.1%} of assignments "
        "realize the worst case the theorem speaks about -- and the "
        "explicit Lemma 4.3 construction is one of them.  Equivariance "
        "under the block shift f is the paper's *sufficient* condition "
        "for badness; the census shows how many bad assignments carry "
        "that exact symmetry."
    )


if __name__ == "__main__":
    main()
