"""The Section 1.2 exercise: characterize 2-leader election.

The paper challenges the reader to characterize electing *exactly two*
leaders and check the answer against the topological framework.  This
example does exactly that:

* blackboard: solvable iff a sub-multiset of the group sizes sums to 2
  (a pair-source, or two singleton sources);
* clique, worst-case ports: solvable iff gcd(n_1..n_k) divides 2;

and validates both claims against the exact chain limits, then runs the
generalized protocols to actually elect two leaders.

Run:  python examples/two_leader_election.py
"""

from repro import RandomnessConfiguration, adversarial_assignment, enumerate_size_shapes
from repro.algorithms import (
    BlackboardLeaderNode,
    BlackboardNetwork,
    CliqueNetwork,
    EuclidLeaderNode,
)
from repro.core import (
    ConsistencyChain,
    k_leader_election,
    two_leader_blackboard_solvable,
    two_leader_message_passing_solvable,
)
from repro.viz import format_table


def main() -> None:
    rows = []
    for n in range(2, 6):
        task = k_leader_election(n, 2)
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            bb_pred = two_leader_blackboard_solvable(alpha)
            mp_pred = two_leader_message_passing_solvable(alpha)
            bb_exact = ConsistencyChain(alpha).eventually_solvable(task)
            mp_exact = ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).eventually_solvable(task)
            assert bb_pred == bb_exact, shape
            assert mp_pred == mp_exact, shape
            rows.append(
                (
                    n,
                    shape,
                    alpha.gcd,
                    "yes" if bb_exact else "no",
                    "yes" if mp_exact else "no",
                )
            )
    print("2-leader election: exact eventual solvability\n")
    print(
        format_table(
            ("n", "sizes", "gcd", "blackboard (subset-sum 2)", "clique worst case (gcd | 2)"),
            rows,
        )
    )

    # Run the generalized protocols on a shape solvable in both models.
    shape = (2, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    bb = BlackboardNetwork(alpha, lambda: BlackboardLeaderNode(k=2), seed=4)
    bb_run = bb.run(60)
    mp = CliqueNetwork(
        alpha,
        adversarial_assignment(shape),
        lambda: EuclidLeaderNode(k=2),
        seed=4,
    )
    mp_run = mp.run(90)
    print(f"\nprotocol runs on sizes {shape}:")
    print(
        f"  blackboard elected {bb_run.leaders()} in {bb_run.rounds} rounds"
    )
    print(
        f"  clique (adversarial ports) elected {mp_run.leaders()} "
        f"in {mp_run.rounds} rounds"
    )
    assert len(bb_run.leaders()) == 2 and len(mp_run.leaders()) == 2


if __name__ == "__main__":
    main()
