"""Quickstart: the topology of randomized symmetry breaking in 60 lines.

Walks the main API surface:

1. build a randomness configuration (who shares a source with whom);
2. ask the exact framework whether leader election is eventually solvable
   (Theorems 4.1 / 4.2), including the exact Pr[S(t)] series;
3. actually run the election protocols on the simulated networks;
4. peek at the underlying topology: pi~(rho) for a concrete realization.

Run:  python examples/quickstart.py
"""

from repro import (
    RandomnessConfiguration,
    adversarial_assignment,
    leader_election,
)
from repro.algorithms import (
    BlackboardLeaderNode,
    BlackboardNetwork,
    CliqueNetwork,
    EuclidLeaderNode,
)
from repro.core import ConsistencyChain, knowledge_projection
from repro.models import BlackboardModel
from repro.viz import render_complex, render_partition


def main() -> None:
    # Five anonymous nodes; nodes 0-1 share a randomness source, nodes
    # 2-4 share another (think: duplicated PRNG seeds across a fleet).
    alpha = RandomnessConfiguration.from_group_sizes([2, 3])
    task = leader_election(alpha.n)
    print(f"configuration: group sizes {alpha.group_sizes}, gcd {alpha.gcd}")

    # --- exact analysis (no sampling involved) -----------------------
    blackboard = ConsistencyChain(alpha)
    series = blackboard.solving_probability_series(task, t_max=6)
    print("blackboard Pr[S(t)], t=1..6:", [f"{float(p):.3f}" for p in series])
    print(
        "blackboard eventually solvable:",
        blackboard.eventually_solvable(task),
        "(Theorem 4.1: needs some n_i = 1 -> False)",
    )

    clique = ConsistencyChain(alpha, adversarial_assignment(alpha.group_sizes))
    print(
        "clique (adversarial ports) eventually solvable:",
        clique.eventually_solvable(task),
        "(Theorem 4.2: gcd(2,3) = 1 -> True)",
    )

    # --- run the actual protocols ------------------------------------
    result = BlackboardNetwork(alpha, BlackboardLeaderNode, seed=1).run(40)
    print(
        "blackboard protocol:",
        "no leader (as predicted)" if not result.all_decided
        else f"leader {result.leaders()}",
    )
    result = CliqueNetwork(
        alpha,
        adversarial_assignment(alpha.group_sizes),
        EuclidLeaderNode,
        seed=1,
    ).run(80)
    print(
        f"clique protocol: leaders {result.leaders()} "
        f"in {result.rounds} rounds (exactly one, as predicted)"
    )

    # --- the topology under the hood ---------------------------------
    model = BlackboardModel(alpha.n)
    realization = ((0, 1), (0, 1), (1, 0), (1, 0), (1, 0))
    print("\na realization at t=2 and its consistency projection pi~(rho):")
    print("  partition:", render_partition(model.partition(realization)))
    print(render_complex(knowledge_projection(model, realization)))
    print(
        "no isolated vertex -> this global state does not solve leader "
        "election (Definition 3.4)"
    )


if __name__ == "__main__":
    main()
