"""Phase diagram of message-passing leader election (Theorem 4.2).

Sweeps every group-size shape of n = 2..6 and prints, per shape:

* gcd of the sizes (the paper's control parameter);
* the exact eventual-solvability limit under the Lemma 4.3 adversarial
  port assignment (worst case -- this is what the theorem characterizes);
* the same limit under benign round-robin and random port assignments,
  showing footnote 5 in action: friendly wiring can rescue shapes whose
  worst case is impossible (e.g. sizes (2,2)).

Run:  python examples/gcd_phase_diagram.py
"""

from repro import (
    RandomnessConfiguration,
    adversarial_assignment,
    enumerate_size_shapes,
    leader_election,
    random_assignment,
    round_robin_assignment,
)
from repro.core import ConsistencyChain
from repro.viz import format_table


def main() -> None:
    rows = []
    for n in range(2, 7):
        task = leader_election(n)
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            limits = {}
            for label, ports in (
                ("adversarial", adversarial_assignment(shape)),
                ("round-robin", round_robin_assignment(n)),
                ("random", random_assignment(n, 42)),
            ):
                chain = ConsistencyChain(alpha, ports)
                limits[label] = int(chain.limit_solving_probability(task))
            rows.append(
                (
                    n,
                    shape,
                    alpha.gcd,
                    "solvable" if alpha.gcd == 1 else "impossible",
                    limits["adversarial"],
                    limits["round-robin"],
                    limits["random"],
                )
            )
    print("Eventual solvability of leader election on the clique\n")
    print(
        format_table(
            (
                "n",
                "sizes",
                "gcd",
                "Thm 4.2 (worst case)",
                "adversarial",
                "round-robin",
                "random",
            ),
            rows,
        )
    )
    print(
        "\nEvery adversarial-ports limit matches gcd==1 exactly; benign "
        "ports sometimes solve gcd>1 shapes -- the theorem is a worst-case "
        "statement, and the adversarial assignment achieves the worst case."
    )


if __name__ == "__main__":
    main()
