"""Quotient compilation: orbit chains byte-identical to full chains."""

import math
import pickle

import numpy as np
import pytest

from repro.chain import (
    ChainGroup,
    Query,
    SharedChainStore,
    automorphism_count,
    automorphism_generators,
    chain_key,
    compile_chain,
    configure_quotient,
    configure_shared_groups,
    effective_chain_key,
    is_chain_automorphism,
    is_quotient_key,
    quotient_key,
    quotient_mode,
    resolve_quotient,
    run_group_queries,
    run_queries,
    shared_group,
)
from repro.chain.cache import key_digest
from repro.chain.quotient import QuotientChain, base_key
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes
from repro.runner import spec as runner_spec


@pytest.fixture(autouse=True)
def _library_defaults():
    yield
    configure_quotient("off")
    configure_shared_groups(None)


def _registry(n_max=5):
    """Every chain configuration of the registry: blackboard plus both
    deterministic port kinds, with and without back ports."""
    for n in range(1, n_max + 1):
        for shape in enumerate_size_shapes(n):
            yield shape, None, False
            if n < 2:
                continue
            for kind in ("adversarial", "round-robin"):
                ports = runner_spec.make_ports(kind, shape, 0)
                yield shape, ports, False
                yield shape, ports, True


def _tasks(n):
    tasks = [runner_spec.make_task("leader", n)]
    if n >= 2:
        tasks.append(runner_spec.make_task("k-leader:2", n))
    return tasks


class TestExactEquivalence:
    def test_registry_start_state_queries_byte_identical(self):
        """Acceptance sweep: every registry chain at n <= 5, both
        compilations, every record-path query, exact ``==``."""
        for shape, ports, back in _registry():
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            full = compile_chain(
                alpha, ports, include_back_ports=back, use_memo=False,
                quotient=False,
            )
            quot = compile_chain(
                alpha, ports, include_back_ports=back, use_memo=False,
                quotient=True,
            )
            assert isinstance(quot, QuotientChain)
            assert quot.key == quotient_key(full.key)
            assert quot.num_states <= full.num_states
            assert sum(quot.orbit_sizes) == full.num_states
            for task in _tasks(alpha.n):
                queries = [
                    Query.limit(task),
                    Query.series(task, 6),
                    Query.expected_time(task),
                ]
                want = run_queries(full, queries)
                got = run_queries(quot, queries)
                assert got == want
                # Byte-identical means exact Fractions, not mere ==.
                assert type(got[0]) is type(want[0])
                assert all(
                    type(a) is type(b) and a == b
                    for a, b in zip(got[1], want[1])
                )
                f_want = run_queries(full, queries, backend="float")
                f_got = run_queries(quot, queries, backend="float")
                assert f_got[0] == pytest.approx(f_want[0], abs=1e-12)
                assert f_got[1] == pytest.approx(f_want[1], abs=1e-12)

    def test_known_reduction_fully_symmetric_shape(self):
        """n i.i.d. singleton groups: orbits are integer partitions, so
        Bell(4) = 15 full states fold to the 5 partitions of 4."""
        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 1, 1))
        full = compile_chain(alpha, use_memo=False, quotient=False)
        quot = compile_chain(alpha, use_memo=False, quotient=True)
        assert full.num_states == 15
        assert quot.num_states == 5
        assert quot.group_order == math.factorial(4)
        assert quot.full_states == 15
        assert quot.reduction == 3.0

    def test_quotient_can_be_trivial_despite_symmetry(self):
        """A nontrivial group need not shrink anything: both reachable
        states of shape (2,) are fixed by the node swap."""
        alpha = RandomnessConfiguration.from_group_sizes((2,))
        full = compile_chain(alpha, use_memo=False, quotient=False)
        quot = compile_chain(alpha, use_memo=False, quotient=True)
        assert automorphism_count(chain_key(alpha)) == 2
        assert quot.num_states == full.num_states


def _closure(n, generators):
    """Brute-force group closure of a generator set (identity included)."""
    identity = tuple(range(n))
    seen = {identity}
    frontier = [identity]
    while frontier:
        current = frontier.pop()
        for g in generators:
            image = tuple(g[current[i]] for i in range(n))
            if image not in seen:
                seen.add(image)
                frontier.append(image)
    return seen


class TestGroupStructure:
    def test_generator_closure_matches_closed_form_order(self):
        for shape, ports, back in _registry(n_max=4):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            key = chain_key(alpha, ports, include_back_ports=back)
            gens = automorphism_generators(key)
            assert len(_closure(alpha.n, gens)) == automorphism_count(key)

    def test_every_generator_is_an_automorphism(self):
        for shape, ports, back in _registry(n_max=4):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            key = chain_key(alpha, ports, include_back_ports=back)
            for g in automorphism_generators(key):
                assert is_chain_automorphism(key, g)

    def test_symmetry_census_perms_are_chain_automorphisms(self):
        """The quotient group contains the (source-preserving) census
        group: every permutation the analysis module certifies passes
        the chain predicate too."""
        from repro.analysis.symmetry import source_preserving_automorphisms

        for shape in enumerate_size_shapes(4):
            for kind in ("adversarial", "round-robin"):
                ports = runner_spec.make_ports(kind, shape, 0)
                alpha = RandomnessConfiguration.from_group_sizes(shape)
                key = chain_key(alpha, ports)
                for g in source_preserving_automorphisms(ports, alpha):
                    assert is_chain_automorphism(key, g)

    def test_non_automorphism_is_rejected(self):
        # Swapping the singleton with a pair member breaks the source
        # relabeling (sources have different multiplicities).
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        key = chain_key(alpha)
        assert not is_chain_automorphism(key, (1, 0, 2))
        assert is_chain_automorphism(key, (0, 2, 1))
        assert not is_chain_automorphism(key, (0, 0, 1))  # not a perm


class TestModesAndKeys:
    def test_configure_round_trips_and_validates(self):
        assert quotient_mode() == "off"
        assert configure_quotient("auto") == "off"
        assert configure_quotient(True) == "auto"
        assert quotient_mode() == "on"
        assert configure_quotient(None) == "on"
        assert quotient_mode() == "off"
        with pytest.raises(ValueError):
            configure_quotient("sometimes")

    def test_resolve_quotient_auto_needs_symmetry(self):
        symmetric = chain_key(
            RandomnessConfiguration.from_group_sizes((1, 1, 2))
        )
        trivial = chain_key(RandomnessConfiguration.from_group_sizes((1,)))
        assert not resolve_quotient(symmetric)  # mode off
        assert resolve_quotient(symmetric, True)
        assert resolve_quotient(symmetric, "auto")
        assert not resolve_quotient(trivial, "auto")
        assert resolve_quotient(trivial, "on")
        configure_quotient("auto")
        assert resolve_quotient(symmetric)
        assert not resolve_quotient(trivial)
        with pytest.raises(ValueError):
            resolve_quotient(symmetric, "maybe")

    def test_quotient_keys_get_their_own_digest(self):
        key = chain_key(RandomnessConfiguration.from_group_sizes((2, 3)))
        tagged = quotient_key(key)
        assert is_quotient_key(tagged) and not is_quotient_key(key)
        assert quotient_key(tagged) == tagged
        assert base_key(tagged) == key
        assert key_digest(tagged) != key_digest(key)

    def test_effective_chain_key_matches_compile_chain(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 2))
        configure_quotient("auto")
        key = effective_chain_key(alpha)
        assert is_quotient_key(key)
        assert compile_chain(alpha, use_memo=False).key == key
        configure_quotient("off")
        assert effective_chain_key(alpha) == base_key(key)

    def test_memo_separates_the_two_compilations(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 1))
        full = compile_chain(alpha, quotient=False)
        quot = compile_chain(alpha, quotient=True)
        assert full is not quot
        assert compile_chain(alpha, quotient=False) is full
        assert compile_chain(alpha, quotient=True) is quot

    def test_quotient_chain_pickle_keeps_metadata(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 1, 1))
        quot = compile_chain(alpha, use_memo=False, quotient=True)
        clone = pickle.loads(pickle.dumps(quot))
        assert isinstance(clone, QuotientChain)
        assert clone.key == quot.key
        assert clone.orbit_sizes == quot.orbit_sizes
        assert clone.group_order == quot.group_order
        task = runner_spec.make_task("leader", 4)
        assert clone.limit_solving_probability(
            task
        ) == quot.limit_solving_probability(task)


class TestSharedGroupArrays:
    def _chains(self):
        chains = []
        for shape in enumerate_size_shapes(4):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            chains.append(compile_chain(alpha, use_memo=False))
        return chains

    def test_attach_rebuilds_the_identical_group(self):
        chains = self._chains()
        group = ChainGroup(chains)
        with SharedChainStore() as store:
            name = store.publish_group_arrays(group)
            assert name is not None
            assert store.publish_group_arrays(group) is None  # idempotent
            configure_shared_groups(store.group_manifest)
            digests = tuple(key_digest(chain.key) for chain in chains)
            payload = shared_group(digests)
            assert payload is not None
            rebuilt = ChainGroup.from_arrays(chains, payload)
            assert rebuilt.num_states == group.num_states
            assert rebuilt.num_transitions == group.num_transitions
            assert tuple(rebuilt.offsets) == tuple(group.offsets)
            assert tuple(rebuilt.starts) == tuple(group.starts)
            assert np.array_equal(rebuilt._src, group._src)
            assert np.array_equal(rebuilt._dst, group._dst)
            assert np.array_equal(rebuilt._weight, group._weight)
            assert np.array_equal(rebuilt._self_w, group._self_w)
            assert len(rebuilt._steps) == len(group._steps)
            for got, want in zip(rebuilt._steps, group._steps):
                for column in range(4):
                    assert np.array_equal(got[column], want[column])

    def test_group_queries_match_through_the_attach_path(self):
        chains = self._chains()
        items = [
            (chain, [
                Query.limit(runner_spec.make_task("leader", chain.n)),
                Query.series(runner_spec.make_task("leader", chain.n), 5),
            ])
            for chain in chains
        ]
        want = run_group_queries(items, backend="float")
        with SharedChainStore() as store:
            store.publish_group_arrays(ChainGroup(chains))
            configure_shared_groups(store.group_manifest)
            got = run_group_queries(items, backend="float")
        # Same arrays, same stacked passes: bitwise-identical floats.
        assert got == want

    def test_wrong_membership_is_a_miss(self):
        chains = self._chains()
        with SharedChainStore() as store:
            store.publish_group_arrays(ChainGroup(chains))
            configure_shared_groups(store.group_manifest)
            digests = tuple(key_digest(chain.key) for chain in chains)
            assert shared_group(digests[::-1]) is None
            assert shared_group(digests[:-1]) is None

    def test_mismatched_chains_fail_structural_validation(self):
        chains = self._chains()
        with SharedChainStore() as store:
            store.publish_group_arrays(ChainGroup(chains))
            configure_shared_groups(store.group_manifest)
            digests = tuple(key_digest(chain.key) for chain in chains)
            payload = shared_group(digests)
            assert payload is not None
            with pytest.raises(ValueError):
                ChainGroup.from_arrays(chains[::-1], payload)

    def test_stale_manifest_degrades_to_a_miss(self):
        chains = self._chains()
        digests = tuple(key_digest(chain.key) for chain in chains)
        from repro.chain.shm import group_token

        configure_shared_groups({group_token(digests): "psm_gone_stale"})
        assert shared_group(digests) is None
