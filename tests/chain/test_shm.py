"""Shared-memory chain store: publish/attach round trips and lookup."""

import numpy as np
import pytest

from repro.chain import (
    SharedChainStore,
    attach_chain,
    chain_key,
    clear_memo,
    compile_chain,
    configure_disk_cache,
    configure_shared_chains,
    shared_chain,
)
from repro.chain.cache import ChainDiskCache, key_digest
from repro.core import leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    configure_shared_chains(None)
    configure_disk_cache(None)


def _chain(shape=(1, 2, 2), ports=None):
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    return compile_chain(alpha, ports)


class TestRoundTrip:
    def test_attach_reproduces_the_chain(self):
        chain = _chain()
        with SharedChainStore() as store:
            attached = attach_chain(store.publish(chain))
            assert attached.key == chain.key
            assert attached.labels == chain.labels
            assert attached.n == chain.n and attached.k == chain.k
            assert attached.num_states == chain.num_states
            assert attached.num_transitions == chain.num_transitions
            assert attached.out_table() == chain.out_table()

    def test_attached_queries_match_exactly(self):
        chain = _chain()
        task = leader_election(5)
        with SharedChainStore() as store:
            attached = attach_chain(store.publish(chain))
            assert attached.solving_probability_series(
                task, 6
            ) == chain.solving_probability_series(task, 6)
            assert attached.limit_solving_probability(
                task
            ) == chain.limit_solving_probability(task)
            assert np.array_equal(
                attached.coo()[2], chain.coo()[2]
            )

    def test_ports_chain_round_trips(self):
        shape = (2, 3)
        chain = _chain(shape, adversarial_assignment(shape))
        task = leader_election(5)
        with SharedChainStore() as store:
            attached = attach_chain(store.publish(chain))
            assert attached.key == chain.key
            assert attached.limit_solving_probability(
                task
            ) == chain.limit_solving_probability(task)

    def test_csr_views_are_zero_copy(self):
        chain = _chain()
        with SharedChainStore() as store:
            attached = attach_chain(store.publish(chain))
            indptr, dst, cnt = attached.csr()
            # Views into the shared segment, not per-process copies.
            for array in (indptr, dst, cnt):
                assert array.base is not None

    def test_publish_is_idempotent(self):
        chain = _chain()
        with SharedChainStore() as store:
            first = store.publish(chain)
            assert store.publish(chain) == first
            assert len(store) == 1


class TestGroupSegments:
    def _chains(self):
        from repro.randomness import enumerate_size_shapes

        chains = []
        for shape in enumerate_size_shapes(4):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            chains.append(compile_chain(alpha))
            chains.append(compile_chain(alpha, adversarial_assignment(shape)))
        return chains

    def test_group_round_trips_every_chain_at_its_offset(self):
        chains = self._chains()
        with SharedChainStore() as store:
            name = store.publish_group(chains)
            assert name is not None
            assert len(store) == len(chains)
            manifest = store.manifest
            assert all("@" in locator for locator in manifest.values())
            configure_shared_chains(manifest)
            task = leader_election(4)
            for chain in chains:
                got = shared_chain(chain.key)
                assert got is not None and got.key == chain.key
                assert got.labels == chain.labels
                assert got.out_table() == chain.out_table()
                assert got.limit_solving_probability(
                    task
                ) == chain.limit_solving_probability(task)

    def test_one_segment_mapping_serves_the_whole_group(self):
        chains = self._chains()
        with SharedChainStore() as store:
            store.publish_group(chains)
            configure_shared_chains(store.manifest)
            segments = {
                id(shared_chain(chain.key)._shm) for chain in chains
            }
            assert len(segments) == 1

    def test_publish_group_skips_already_published_chains(self):
        chains = self._chains()
        with SharedChainStore() as store:
            store.publish(chains[0])
            store.publish_group(chains)
            assert len(store) == len(chains)
            assert store.publish_group(chains) is None  # nothing fresh

    def test_close_unlinks_the_group_segment(self):
        chains = self._chains()
        store = SharedChainStore()
        name = store.publish_group(chains)
        store.close()
        with pytest.raises(OSError):
            attach_chain(name)


class TestLifecycle:
    def test_close_unlinks_segments(self):
        chain = _chain()
        store = SharedChainStore()
        name = store.publish(chain)
        store.close()
        with pytest.raises(OSError):
            attach_chain(name)
        store.close()  # idempotent

    def test_pickling_an_attached_chain_materializes_arrays(self):
        import pickle

        chain = _chain()
        with SharedChainStore() as store:
            attached = attach_chain(store.publish(chain))
            clone = pickle.loads(pickle.dumps(attached))
        assert clone.key == chain.key
        assert clone.out_table() == chain.out_table()


class TestWorkerLookup:
    def test_compile_chain_attaches_before_touching_disk(
        self, tmp_path, monkeypatch
    ):
        chain = _chain()
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        with SharedChainStore() as store:
            store.publish(chain)
            configure_shared_chains(store.manifest)
            configure_disk_cache(tmp_path)
            monkeypatch.setattr(
                ChainDiskCache,
                "load",
                lambda self, key: pytest.fail(
                    "worker consulted the disk cache despite a "
                    "shared-memory hit"
                ),
            )
            clear_memo()
            got = compile_chain(alpha)
            assert got.key == chain.key
            assert hasattr(got, "_shm")
            # Second compile hits the per-process memo, not a re-attach.
            assert compile_chain(alpha) is got

    def test_missing_segment_degrades_to_a_miss(self):
        chain = _chain()
        configure_shared_chains({key_digest(chain.key): "psm_gone_stale"})
        assert shared_chain(chain.key) is None

    def test_unlisted_key_is_a_miss(self):
        configure_shared_chains({})
        assert shared_chain(chain_key(
            RandomnessConfiguration.from_group_sizes((1, 2))
        )) is None

    def test_digest_collision_is_rejected_by_full_key(self):
        chain = _chain()
        other = _chain((2, 3))
        with SharedChainStore() as store:
            name = store.publish(other)
            # Lie: map chain's digest at the *other* chain's segment.
            configure_shared_chains({key_digest(chain.key): name})
            assert shared_chain(chain.key) is None
