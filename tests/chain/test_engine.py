"""Compiled-engine tests: structure, memoization, facade equivalence.

The cross-backend numerical properties live in
``test_backend_agreement.py``; here we pin down the compiled object
itself: topological state order, integer transition weights, the
process-wide memo, and exact agreement with the ``ConsistencyChain``
facade (which the integration suite in turn validates against literal
realization enumeration).
"""

from fractions import Fraction

import pytest

from repro.chain import (
    chain_key,
    clear_memo,
    compile_chain,
    memo_size,
)
from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    leader_election,
    single_block_state,
)
from repro.models import (
    adversarial_assignment,
    round_robin_assignment,
)
from repro.models.graph import GraphTopology
from repro.randomness import RandomnessConfiguration


class TestStructure:
    def test_states_topologically_sorted_by_block_count(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        counts = chain.block_counts
        assert counts[0] == 1  # the single-block start state
        assert chain.start == 0
        assert all(a <= b for a, b in zip(counts, counts[1:]))
        for sid in range(chain.num_states):
            for dst, cnt in chain.out_edges(sid):
                assert cnt >= 1
                # refinement strictly grows the block count, or self-loops
                assert dst == sid or counts[dst] > counts[sid]

    def test_transition_counts_sum_to_denominator(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = compile_chain(alpha)
        assert chain.denom == 2 ** (alpha.k - 1)
        for sid in range(chain.num_states):
            assert sum(cnt for _, cnt in chain.out_edges(sid)) == chain.denom
            assert sum(
                chain.transitions_exact(sid).values()
            ) == Fraction(1)

    def test_validation_mirrors_the_facade(self):
        big = RandomnessConfiguration.independent(11)
        with pytest.raises(ValueError):
            compile_chain(big)
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        with pytest.raises(ValueError):
            compile_chain(alpha, round_robin_assignment(5))
        with pytest.raises(ValueError):
            compile_chain(alpha, None, include_back_ports=True)


class TestMemo:
    def test_same_structural_chain_compiles_once(self):
        clear_memo()
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        ports = adversarial_assignment((2, 3))
        first = compile_chain(alpha, ports)
        # Equal-valued (but distinct) alpha and ports objects hit the memo.
        again = compile_chain(
            RandomnessConfiguration.from_group_sizes((2, 3)),
            adversarial_assignment((2, 3)),
        )
        assert again is first
        assert memo_size() == 1

    def test_memo_key_is_structural(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        ports = adversarial_assignment((2, 2))
        assert chain_key(alpha, ports) == chain_key(alpha, ports)
        assert chain_key(alpha) != chain_key(alpha, ports)
        assert chain_key(alpha, ports) != chain_key(
            alpha, ports, include_back_ports=True
        )

    def test_use_memo_false_bypasses(self):
        clear_memo()
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        one = compile_chain(alpha, use_memo=False)
        two = compile_chain(alpha, use_memo=False)
        assert one is not two
        assert memo_size() == 0


class TestMaskCache:
    def test_equal_count_tasks_share_one_mask(self):
        # leader_election() builds a fresh CountTask per call; the mask
        # cache keys them by content, so a memoized (process-immortal)
        # chain does not grow with every query.
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        first = chain.solvable_mask(leader_election(3))
        second = chain.solvable_mask(leader_election(3))
        assert first is second

    def test_identity_keyed_tasks_are_weakly_held(self):
        import gc
        import weakref

        from repro.core import leader_election_complex
        from repro.core.tasks import OutputComplexTask

        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        task = OutputComplexTask(leader_election_complex(3))
        chain.solvable_mask(task)
        ref = weakref.ref(task)
        del task
        gc.collect()
        assert ref() is None  # the chain's cache did not pin the task


class TestFacadeEquivalence:
    """The facade and the raw engine must agree value-for-value."""

    @pytest.mark.parametrize(
        "shape, make_ports",
        [
            ((1, 2), lambda n, shape: None),
            ((2, 3), lambda n, shape: adversarial_assignment(shape)),
            ((1, 1, 2), lambda n, shape: round_robin_assignment(n)),
        ],
    )
    def test_probabilities_and_limits(self, shape, make_ports):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = make_ports(alpha.n, shape)
        task = leader_election(alpha.n)
        facade = ConsistencyChain(alpha, ports)
        compiled = compile_chain(alpha, ports)
        series = facade.solving_probability_series(task, 5)
        assert series == compiled.solving_probability_series(task, 5)
        for t in (0, 1, 3):
            assert facade.solving_probability(task, t) == (
                compiled.solving_probability(task, t)
            )
        assert facade.limit_solving_probability(task) == (
            compiled.limit_solving_probability(task)
        )
        assert facade.eventually_solvable(task) == (
            compiled.eventually_solvable(task)
        )
        assert expected_solving_time(facade, task) == (
            compiled.expected_solving_time(task)
        )

    def test_reachable_states_match_state_table(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        ports = adversarial_assignment((2, 2))
        facade = ConsistencyChain(alpha, ports)
        compiled = compile_chain(alpha, ports)
        assert facade.reachable_states() == {
            compiled.partition_of(sid)
            for sid in range(compiled.num_states)
        }

    def test_state_distribution_masses(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        facade = ConsistencyChain(alpha)
        compiled = compile_chain(alpha)
        for t in range(4):
            by_partition = facade.state_distribution(t)
            by_id = compiled.state_distribution(t)
            assert sum(by_partition.values()) == Fraction(1)
            assert by_partition == {
                compiled.partition_of(sid): prob
                for sid, prob in by_id.items()
            }

    def test_graph_topology_chains_compile(self):
        ring = GraphTopology.ring(4)
        alpha = RandomnessConfiguration.independent(4)
        compiled = compile_chain(alpha, ring)
        task = leader_election(4)
        assert compiled.limit_solving_probability(task) == 1
        facade = ConsistencyChain(alpha, ring)
        assert facade.compiled is compiled  # memo shared across layers


class TestQuantilesAndExpectations:
    def test_quantile_matches_series(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        compiled = compile_chain(alpha)
        series = compiled.solving_probability_series(task, 10)
        for q in (Fraction(1, 2), Fraction(3, 4), Fraction(15, 16)):
            t = compiled.solving_time_quantile(task, q, t_cap=32)
            assert series[t - 1] >= q
            assert t == 1 or series[t - 2] < q

    def test_unsolvable_expectation_is_none(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        compiled = compile_chain(alpha, adversarial_assignment((2, 2)))
        assert compiled.expected_solving_time(leader_election(4)) is None

    def test_single_node_chain(self):
        alpha = RandomnessConfiguration.shared(1)
        compiled = compile_chain(alpha)
        task = leader_election(1)
        assert compiled.num_states == 1
        assert compiled.solving_probability(task, 0) == 1
        assert compiled.limit_solving_probability(task) == 1
        assert compiled.expected_solving_time(task) == 0


class TestFacadeInternals:
    def test_transitions_on_unreachable_state_still_answer(self):
        # (2, 2) from a fully-split partition: not reachable from bottom
        # under adversarial ports, but transitions() must still work.
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        chain = ConsistencyChain(alpha, adversarial_assignment((2, 2)))
        split = ((0,), (1,), (2,), (3,))
        assert split not in chain.reachable_states()
        moves = chain.transitions(split)
        assert sum(moves.values()) == Fraction(1)
        assert moves == {split: Fraction(1)}  # fully split: absorbing

    def test_transition_cache_returns_same_object(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        state = single_block_state(3)
        assert chain.transitions(state) is chain.transitions(state)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
