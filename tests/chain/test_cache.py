"""Disk cache: cross-process chain persistence and corruption safety."""

import pickle

import pytest

from repro.chain import (
    ChainDiskCache,
    chain_key,
    clear_memo,
    compile_chain,
    configure_disk_cache,
    disk_cache,
)
from repro.core import leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.runner import SerialEngine, SweepSpec, run_sweep


@pytest.fixture
def cache_dir(tmp_path):
    """A configured cache that is always detached again afterwards."""
    root = tmp_path / "chains"
    configure_disk_cache(root)
    clear_memo()
    yield root
    configure_disk_cache(None)
    clear_memo()


class TestDiskCache:
    def test_compile_stores_and_reloads(self, cache_dir):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        ports = adversarial_assignment((2, 3))
        original = compile_chain(alpha, ports)
        assert len(disk_cache()) == 1
        clear_memo()  # force the next compile to go through the disk
        reloaded = compile_chain(alpha, ports)
        assert reloaded is not original
        assert reloaded.key == original.key
        assert reloaded.labels == original.labels
        task = leader_election(alpha.n)
        assert reloaded.limit_solving_probability(task) == (
            original.limit_solving_probability(task)
        )

    def test_pickle_round_trip_drops_caches(self, cache_dir):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        task = leader_election(3)
        chain.solvable_mask(task)  # populate a per-process cache
        clone = pickle.loads(pickle.dumps(chain))
        assert clone.labels == chain.labels
        assert clone.solving_probability_series(task, 4) == (
            chain.solving_probability_series(task, 4)
        )

    def test_corrupt_file_is_a_miss(self, cache_dir):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        compile_chain(alpha)
        store = disk_cache()
        path = store.path_for(chain_key(alpha))
        path.write_bytes(b"not a pickle")
        clear_memo()
        chain = compile_chain(alpha)  # recompiles instead of raising
        assert chain.num_states >= 1

    def test_one_shot_compiles_bypass_the_disk_cache(self, cache_dir):
        # Exhaustive enumerations (use_memo=False) must not flood the
        # cache directory with single-use chains.
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        compile_chain(alpha, adversarial_assignment((2, 2)), use_memo=False)
        assert len(disk_cache()) == 0

    def test_wrong_key_content_is_a_miss(self, cache_dir):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        other = RandomnessConfiguration.from_group_sizes((2, 2))
        chain = compile_chain(alpha)
        store = ChainDiskCache(cache_dir)
        # Plant the (1,2) chain under the (2,2) key file.
        store.path_for(chain_key(other)).write_bytes(pickle.dumps(chain))
        assert store.load(chain_key(other)) is None


class TestLRUEviction:
    def _fill(self, root, shapes):
        """Compile one chain per shape through a capless cache."""
        import time

        configure_disk_cache(root)
        for shape in shapes:
            clear_memo()
            compile_chain(RandomnessConfiguration.from_group_sizes(shape))
            # mtimes are the LRU clock; space the stores out so eviction
            # order is deterministic even on coarse filesystems.
            time.sleep(0.01)
        configure_disk_cache(None)
        clear_memo()

    def test_entries_are_listed_lru_first(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2), (1, 1, 2)])
        entries = ChainDiskCache(root).entries()
        assert len(entries) == 3
        assert entries == sorted(
            entries, key=lambda e: (e.mtime, e.digest)
        )

    def test_max_entries_evicts_least_recently_used(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2), (1, 1, 2)])
        cache = ChainDiskCache(root, max_entries=2)
        oldest = cache.entries()[0]
        removed = cache.evict()
        assert [entry.digest for entry in removed] == [oldest.digest]
        assert len(cache.entries()) == 2
        assert not oldest.path.exists()

    def test_max_bytes_cap_applies_on_store(self, tmp_path):
        root = tmp_path / "chains"
        configure_disk_cache(root, max_bytes=1)  # nothing fits
        clear_memo()
        compile_chain(RandomnessConfiguration.from_group_sizes((1, 2)))
        compile_chain(RandomnessConfiguration.from_group_sizes((2, 2)))
        assert ChainDiskCache(root).entries() == []
        configure_disk_cache(None)
        clear_memo()

    def test_load_refreshes_recency(self, tmp_path):
        import time

        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2)])
        cache = ChainDiskCache(root)
        oldest = cache.entries()[0]
        time.sleep(0.01)
        # Touch the cold entry by loading it; the other one now ages out.
        alpha_keys = [
            chain_key(RandomnessConfiguration.from_group_sizes(shape))
            for shape in [(1, 2), (2, 2)]
        ]
        cold_key = next(
            key for key in alpha_keys
            if cache.path_for(key).name.startswith(oldest.digest)
        )
        assert cache.load(cold_key) is not None
        removed = cache.evict(max_entries=1)
        assert len(removed) == 1
        assert [entry.digest for entry in cache.entries()] == [oldest.digest]

    def test_clear_removes_everything(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2)])
        cache = ChainDiskCache(root)
        assert cache.clear() == 2
        assert cache.entries() == []
        assert cache.total_bytes() == 0

    def test_unbounded_cache_never_evicts(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2)])
        cache = ChainDiskCache(root)
        assert cache.evict() == []
        assert len(cache.entries()) == 2

    def test_negative_caps_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ChainDiskCache(tmp_path / "chains", max_bytes=-1)
        with pytest.raises(ValueError):
            ChainDiskCache(tmp_path / "chains", max_entries=-1)

    def test_negative_explicit_evict_caps_rejected(self, tmp_path):
        # `repro chains prune --max-entries -1` must not silently wipe
        # the cache: explicit caps get the same validation the
        # constructor enforces.
        root = tmp_path / "chains"
        self._fill(root, [(1, 2)])
        cache = ChainDiskCache(root)
        with pytest.raises(ValueError):
            cache.evict(max_entries=-1)
        with pytest.raises(ValueError):
            cache.evict(max_bytes=-1)
        assert len(cache.entries()) == 1


class TestLoadStats:
    def _key(self, shape):
        return chain_key(RandomnessConfiguration.from_group_sizes(shape))

    def _fill(self, root, shapes):
        configure_disk_cache(root)
        for shape in shapes:
            clear_memo()
            compile_chain(RandomnessConfiguration.from_group_sizes(shape))
        configure_disk_cache(None)
        clear_memo()

    def test_loads_are_counted_in_the_sidecar(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2)])
        cache = ChainDiskCache(root)
        assert all(entry.loads == 0 for entry in cache.entries())
        key = self._key((1, 2))
        assert cache.load(key) is not None
        assert cache.load(key) is not None
        by_digest = {entry.digest: entry.loads for entry in cache.entries()}
        digest = cache.path_for(key).name.removesuffix(".chain.pkl")
        assert by_digest[digest] == 2
        assert sum(by_digest.values()) == 2  # the other entry stays at 0
        # Loads land in the append-only event log; compaction folds them
        # into the snapshot without changing the observable counts.
        assert (root / "_stats.log").exists()
        assert cache.compact_stats() == {digest: 2}
        assert (root / "_stats.json").exists()
        assert {e.digest: e.loads for e in cache.entries()} == by_digest

    def test_hit_count_breaks_lru_mtime_ties(self, tmp_path):
        import os

        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2), (1, 1, 2)])
        cache = ChainDiskCache(root)
        hot_key = self._key((2, 2))
        assert cache.load(hot_key) is not None
        # Force an mtime tie so only the load count can order eviction.
        for entry in cache.entries():
            os.utime(entry.path, (1000000000, 1000000000))
        ordered = cache.entries()
        assert [entry.loads for entry in ordered] == [0, 0, 1]
        removed = cache.evict(max_entries=1)
        hot_digest = cache.path_for(hot_key).name.removesuffix(".chain.pkl")
        assert hot_digest not in {entry.digest for entry in removed}
        assert [entry.digest for entry in cache.entries()] == [hot_digest]

    def test_eviction_drops_stats_of_removed_entries(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2), (2, 2)])
        cache = ChainDiskCache(root)
        for shape in [(1, 2), (2, 2)]:
            assert cache.load(self._key(shape)) is not None
        assert sum(cache.load_stats().values()) == 2
        cache.clear()
        assert cache.load_stats() == {}

    def test_corrupt_sidecar_degrades_to_empty_stats(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2)])
        (root / "_stats.json").write_text("not json {")
        cache = ChainDiskCache(root)
        assert cache.load_stats() == {}
        # ...and loading repairs it.
        assert cache.load(self._key((1, 2))) is not None
        assert sum(cache.load_stats().values()) == 1

    def test_stats_file_is_not_listed_as_a_chain(self, tmp_path):
        root = tmp_path / "chains"
        self._fill(root, [(1, 2)])
        cache = ChainDiskCache(root)
        assert cache.load(self._key((1, 2))) is not None
        assert len(cache.entries()) == 1
        assert len(cache) == 1


class TestRunnerPlumbing:
    def test_sweep_with_run_dir_persists_chains(self, tmp_path):
        configure_disk_cache(None)
        clear_memo()
        sweep = SweepSpec.for_total_size(3, models=("blackboard", "clique"))
        run_dir = tmp_path / "run"
        outcome = run_sweep(sweep, engine=SerialEngine(), run_dir=run_dir)
        assert outcome.executed == outcome.total
        chains = list((run_dir / "chains").glob("*.chain.pkl"))
        assert chains  # every exact job's chain got persisted
        # A resumed sweep re-runs nothing and leaves the cache intact.
        resumed = run_sweep(sweep, engine=SerialEngine(), run_dir=run_dir)
        assert resumed.executed == 0
        assert resumed.resumed == resumed.total
        configure_disk_cache(None)
        clear_memo()

    def test_sweep_without_run_dir_leaves_cache_unconfigured(self):
        configure_disk_cache(None)
        sweep = SweepSpec.for_total_size(2, models=("blackboard",))
        run_sweep(sweep, engine=SerialEngine())
        assert disk_cache() is None

    def test_run_dir_sweep_detaches_its_cache_afterwards(self, tmp_path):
        # A run-dir sweep on the serial engine installs its cache in
        # THIS process; run_sweep must detach it on the way out so later
        # work never writes into a finished run directory.
        clear_memo()
        sweep = SweepSpec.for_total_size(2, models=("blackboard",))
        run_sweep(sweep, engine=SerialEngine(), run_dir=tmp_path / "run")
        assert disk_cache() is None
        clear_memo()

    def test_cacheless_payload_detaches_a_previous_jobs_cache(self, tmp_path):
        # Reused pool workers see payloads back to back; one without a
        # chain_cache must detach whatever the previous job installed.
        from repro.runner.worker import execute_run

        clear_memo()
        spec = {
            "sizes": [1, 2], "model": "blackboard", "ports": "none",
            "task": "leader", "kind": "exact", "t": 4,
            "samples": 100, "replicate": 0,
        }
        execute_run({
            "spec": spec, "master_seed": 0, "index": 0,
            "chain_cache": str(tmp_path / "chains"),
        })
        assert disk_cache() is not None
        execute_run({"spec": spec, "master_seed": 0, "index": 0})
        assert disk_cache() is None
        clear_memo()

    def test_store_survives_a_vanished_cache_directory(self, tmp_path):
        # Best-effort persistence: deleting the run directory must not
        # crash later compilations that still hold the cache handle.
        import shutil

        clear_memo()
        store = configure_disk_cache(tmp_path / "gone")
        shutil.rmtree(tmp_path / "gone")
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)  # recreates the directory, no crash
        assert chain.num_states >= 1
        assert store.load(chain.key) is not None
        configure_disk_cache(None)
        clear_memo()


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
