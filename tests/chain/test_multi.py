"""Multi-chain groups: stacked results vs per-chain, toggles, structure."""

import numpy as np
import pytest

from repro.chain import (
    ChainGroup,
    MultiQueryPlan,
    Query,
    compile_chain,
    configure_batching,
    configure_grouping,
    evolution_strategy,
    grouping_enabled,
    run_group_queries,
    run_queries,
)
from repro.chain import multi as multi_module
from repro.core import (
    k_leader_election,
    leader_election,
    weak_symmetry_breaking,
)
from repro.models import adversarial_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes


@pytest.fixture(autouse=True)
def _toggles():
    yield
    configure_grouping(True)
    configure_batching(True)


def _mixed_shape_items():
    """A mixed-shape sweep axis: several totals, both models, all
    quantities -- the access pattern the group engine exists for."""
    items = []
    for n in (3, 4, 5):
        tasks = (leader_election(n), k_leader_election(n, 2))
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            for ports in (None, adversarial_assignment(shape)):
                queries = []
                for task in tasks:
                    queries.append(Query.probability(task, 3))
                    queries.append(Query.series(task, 6))
                    queries.append(Query.limit(task))
                    queries.append(Query.expected_time(task))
                    queries.append(Query.solvable(task))
                queries.append(
                    Query.expected_time(weak_symmetry_breaking(n))
                )
                items.append((compile_chain(alpha, ports), queries))
    return items


def _per_chain(items, backend):
    return [
        run_queries(chain, queries, backend=backend)
        for chain, queries in items
    ]


class TestGroupedResults:
    def test_exact_byte_identical_to_per_chain(self):
        items = _mixed_shape_items()
        grouped = run_group_queries(items, backend="exact")
        per_chain = _per_chain(items, "exact")
        assert grouped == per_chain
        # Same types too (Fractions stay Fractions, bools stay bools).
        for got_row, want_row in zip(grouped, per_chain):
            for got, want in zip(got_row, want_row):
                inner_got = got if isinstance(got, list) else [got]
                inner_want = want if isinstance(want, list) else [want]
                assert (
                    [type(x) for x in inner_got]
                    == [type(x) for x in inner_want]
                )

    def test_float_within_1e12_of_per_chain(self):
        items = _mixed_shape_items()
        grouped = run_group_queries(items, backend="float")
        per_chain = _per_chain(items, "float")
        for got_row, want_row in zip(grouped, per_chain):
            for got, want in zip(got_row, want_row):
                inner_got = got if isinstance(got, list) else [got]
                inner_want = want if isinstance(want, list) else [want]
                for g, w in zip(inner_got, inner_want):
                    if g is None or w is None or isinstance(g, bool):
                        assert g == w
                    else:
                        assert abs(g - w) < 1e-12

    def test_singleton_group_degenerates_to_the_per_chain_plan(self):
        items = _mixed_shape_items()[:1]
        for backend in ("exact", "float"):
            single = run_group_queries(items, backend=backend)
            per_chain = _per_chain(items, backend)
            if backend == "exact":
                assert single == per_chain
            else:
                for g, w in zip(single[0], per_chain[0]):
                    ig = g if isinstance(g, list) else [g]
                    iw = w if isinstance(w, list) else [w]
                    for a, b in zip(ig, iw):
                        if a is None or isinstance(a, bool):
                            assert a == b
                        else:
                            assert abs(a - b) < 1e-12

    def test_repeated_chain_across_items_is_stacked_once(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = compile_chain(alpha)
        task = leader_election(5)
        items = [
            (chain, [Query.limit(task)]),
            (chain, [Query.series(task, 4)]),
        ]
        grouped = run_group_queries(items)
        assert grouped == _per_chain(items, "exact")

    def test_empty_items_and_empty_queries(self):
        assert run_group_queries([]) == []
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        assert run_group_queries([(compile_chain(alpha), [])]) == [[]]


class TestToggles:
    def test_grouping_toggle_falls_back_per_chain(self):
        items = _mixed_shape_items()[:4]
        previous = configure_grouping(False)
        assert previous is True
        assert not grouping_enabled()
        assert run_group_queries(items) == _per_chain(items, "exact")
        configure_grouping(True)
        assert grouping_enabled()

    def test_batching_off_also_bypasses_the_group_path(self):
        items = _mixed_shape_items()[:4]
        configure_batching(False)
        grouped_off = run_group_queries(items)
        configure_batching(True)
        assert grouped_off == _per_chain(items, "exact")


class TestChainGroupStructure:
    def test_offsets_starts_and_repr_expose_the_stacking(self):
        chains = [chain for chain, _ in _mixed_shape_items()[:6]]
        group = ChainGroup(chains)
        assert group.num_states == sum(c.num_states for c in chains)
        assert group.num_transitions == sum(
            c.num_transitions for c in chains
        )
        expected_offsets = np.cumsum([0] + [c.num_states for c in chains])
        assert list(group.offsets) == list(expected_offsets[:-1])
        assert list(group.starts) == [
            off + c.start for off, c in zip(expected_offsets, chains)
        ]
        text = repr(group)
        assert f"chains={len(chains)}" in text
        assert group.evolution in text  # the adaptive decision, exposed

    def test_merged_schedule_matches_single_chain_sweep(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 3))
        chain = compile_chain(alpha)
        task = leader_election(5)
        mask = chain.solvable_mask(task)
        group = ChainGroup([chain])
        stacked = group.reverse_sweep(
            [[mask]],
            accumulator_init=0.0,
            masked_value=1.0,
            absorbing_value=0.0,
        )
        from repro.chain.backends import absorption_float_matrix

        single = absorption_float_matrix(
            chain, np.asarray([mask], dtype=bool)
        )
        assert np.allclose(stacked, single, atol=1e-15)

    def test_state_budget_splits_chunks(self, monkeypatch):
        items = _mixed_shape_items()
        monkeypatch.setattr(multi_module, "MAX_GROUP_STATES", 8)
        plan = MultiQueryPlan(items)
        chunks = plan._chunks()
        assert len(chunks) > 1
        assert sorted(i for chunk in chunks for i in chunk) == list(
            range(len(items))
        )
        # Oversized chains still get a (singleton) chunk of their own.
        results = plan.execute(backend="float")
        assert len(results) == len(items)
        grouped_exact = plan.execute(backend="exact")
        assert grouped_exact == _per_chain(items, "exact")


class TestAdaptiveEvolution:
    def test_strategy_follows_density_below_the_hard_cap(self):
        from repro.chain import DENSE_STATE_LIMIT
        from repro.chain.backends import (
            DENSE_ALWAYS_STATES,
            DENSE_DENSITY_FLOOR,
        )

        assert evolution_strategy(DENSE_STATE_LIMIT + 1, 10**9) == "scatter"
        assert evolution_strategy(DENSE_ALWAYS_STATES, 1) == "dense"
        states = DENSE_ALWAYS_STATES * 2
        dense_nnz = int(states * states * DENSE_DENSITY_FLOOR) + 1
        assert evolution_strategy(states, dense_nnz) == "dense"
        assert evolution_strategy(states, states) == "scatter"

    def test_plan_and_batch_reprs_expose_the_decision(self):
        from repro.chain import QueryBatch, QueryPlan

        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = compile_chain(alpha)
        task = leader_election(5)
        plan = QueryPlan(chain, [Query.limit(task)])
        assert plan.evolution in ("dense", "scatter")
        assert plan.evolution in repr(plan)
        batch = QueryBatch(chain)
        batch.limit(task)
        assert plan.evolution in repr(batch)
