"""Batched query layer: agreement with the scalar paths, plan hygiene.

The batched exact path must be *byte-identical* to the scalar one (it
reuses the scalar kernels, and these tests pin that contract), and the
batched float path must agree with the scalar float path -- and with
exact -- to 1e-12, across a grid of configurations, port assignments,
tasks, and horizons.
"""

from fractions import Fraction

import pytest

from repro.chain import (
    Query,
    QueryBatch,
    QueryPlan,
    batching_enabled,
    compile_chain,
    configure_batching,
    run_queries,
    run_query_batch,
    set_distribution_cache_cap,
)
from repro.core import k_leader_election, leader_election, unique_ids
from repro.models import adversarial_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration

SHAPES = ((1, 1), (3,), (1, 2), (2, 2), (1, 1, 2), (1, 2, 2))
PORT_MAKERS = (
    ("blackboard", lambda shape: None),
    ("adversarial", lambda shape: adversarial_assignment(shape)),
    ("round-robin", lambda shape: round_robin_assignment(sum(shape))),
)
HORIZONS = (0, 1, 3, 6)


def _tasks(n):
    return (
        leader_election(n),
        k_leader_election(n, 2),
        unique_ids(n),
    )


def _grid():
    for shape in SHAPES:
        for name, make in PORT_MAKERS:
            yield pytest.param(shape, make, id=f"{shape}-{name}")


def _all_queries(tasks, horizons):
    queries = []
    for task in tasks:
        queries.append(Query.series(task, max(horizons)))
        queries.append(Query.limit(task))
        queries.append(Query.expected_time(task))
        queries.append(Query.solvable(task))
        for t in horizons:
            queries.append(Query.probability(task, t))
    return queries


def _scalar_answers(chain, queries, backend):
    answers = []
    for query in queries:
        if query.quantity == "probability":
            answers.append(
                chain.solving_probability(
                    query.task, query.horizon, backend=backend
                )
            )
        elif query.quantity == "series":
            answers.append(
                chain.solving_probability_series(
                    query.task, query.horizon, backend=backend
                )
            )
        elif query.quantity == "limit":
            answers.append(
                chain.limit_solving_probability(query.task, backend=backend)
            )
        elif query.quantity == "expected":
            answers.append(
                chain.expected_solving_time(query.task, backend=backend)
            )
        else:
            answers.append(chain.eventually_solvable(query.task))
    return answers


class TestExactAgreement:
    @pytest.mark.parametrize("shape,make_ports", list(_grid()))
    def test_batched_exact_byte_identical_to_scalar(self, shape, make_ports):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, make_ports(shape))
        queries = _all_queries(_tasks(alpha.n), HORIZONS)
        batched = run_query_batch(chain, queries, backend="exact")
        scalar = _scalar_answers(chain, queries, "exact")
        assert batched == scalar
        # Byte-identical means identical types too: Fractions everywhere
        # a scalar query yields one (never silently degraded floats).
        for got, want in zip(batched, scalar):
            if isinstance(want, list):
                assert [type(x) for x in got] == [type(x) for x in want]
            else:
                assert type(got) is type(want)


class TestFloatAgreement:
    @pytest.mark.parametrize("shape,make_ports", list(_grid()))
    def test_batched_float_matches_scalar_and_exact(self, shape, make_ports):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, make_ports(shape))
        queries = _all_queries(_tasks(alpha.n), HORIZONS)
        batched = run_query_batch(chain, queries, backend="float")
        scalar = _scalar_answers(chain, queries, "float")
        exact = _scalar_answers(chain, queries, "exact")
        for got, flt, ref in zip(batched, scalar, exact):
            if isinstance(got, list):
                assert len(got) == len(flt) == len(ref)
                for g, f, r in zip(got, flt, ref):
                    assert g == pytest.approx(f, abs=1e-12)
                    assert g == pytest.approx(float(r), abs=1e-12)
            elif got is None or isinstance(got, bool):
                assert got == flt == (
                    ref if isinstance(got, bool) else None
                )
            else:
                assert got == pytest.approx(flt, abs=1e-12)
                assert got == pytest.approx(float(ref), abs=1e-12)


class TestPlan:
    def test_shared_masks_collapse_to_one_slot(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        task = leader_election(3)
        plan = QueryPlan(
            chain, [Query.limit(task), Query.expected_time(task),
                    Query.limit(task)]
        )
        assert len(plan._masks) == 1
        assert len(plan) == 3

    def test_empty_batch(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        assert run_queries(compile_chain(alpha), []) == []

    def test_unknown_quantity_rejected(self):
        with pytest.raises(ValueError):
            Query("absorbance", leader_election(2))

    def test_probability_needs_horizon(self):
        with pytest.raises(ValueError):
            Query("probability", leader_election(2))
        with pytest.raises(ValueError):
            Query("probability", leader_election(2), -1)

    def test_limit_takes_no_horizon(self):
        with pytest.raises(ValueError):
            Query("limit", leader_election(2), 4)

    def test_unknown_backend_rejected(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        with pytest.raises(ValueError):
            run_query_batch(
                chain, [Query.limit(leader_election(3))], backend="decimal"
            )


class TestQueryBatchBuilder:
    def test_handles_index_results_in_order(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        task = leader_election(3)
        batch = QueryBatch(chain)
        h_series = batch.series(task, 4)
        h_limit = batch.limit(task)
        h_prob = batch.probability(task, 2)
        h_expected = batch.expected_time(task)
        h_solvable = batch.solvable(task)
        assert len(batch) == 5
        results = batch.run()
        assert results[h_series] == chain.solving_probability_series(task, 4)
        assert results[h_limit] == chain.limit_solving_probability(task)
        assert results[h_prob] == chain.solving_probability(task, 2)
        assert results[h_expected] == chain.expected_solving_time(task)
        assert results[h_solvable] == chain.eventually_solvable(task)


class TestToggle:
    def test_configure_batching_round_trips(self):
        assert batching_enabled()
        previous = configure_batching(False)
        try:
            assert previous is True
            assert not batching_enabled()
            alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
            chain = compile_chain(alpha)
            task = leader_election(alpha.n)
            off = run_queries(
                chain, [Query.series(task, 5), Query.limit(task)]
            )
        finally:
            configure_batching(True)
        on = run_queries(chain, [Query.series(task, 5), Query.limit(task)])
        assert off == on

    def test_run_query_batch_ignores_toggle(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        task = leader_election(3)
        configure_batching(False)
        try:
            value = run_query_batch(chain, [Query.limit(task)])[0]
        finally:
            configure_batching(True)
        assert value == chain.limit_solving_probability(task)


class TestZeroOneAssertion:
    def test_solvable_asserts_zero_one_on_both_backends(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        chain = compile_chain(alpha)
        task = leader_election(4)
        assert run_query_batch(chain, [Query.solvable(task)]) == [False]
        assert run_query_batch(
            chain, [Query.solvable(task)], backend="float"
        ) == [False]
        # Float 'solvable' verdicts are exact Fractions under the hood.
        assert isinstance(
            run_query_batch(chain, [Query.limit(task)])[0], Fraction
        )


class TestDistributionCacheCap:
    def test_deep_horizons_stay_exact_under_a_small_cap(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        task = leader_election(alpha.n)
        chain = compile_chain(alpha)
        reference = chain.solving_probability(task, 12)
        fresh = compile_chain(alpha, use_memo=False)
        set_distribution_cache_cap(4)
        try:
            assert fresh.solving_probability(task, 12) == reference
            assert len(fresh._dist_exact) <= 4
            # Batched series past the cap stays byte-identical too.
            capped = run_query_batch(fresh, [Query.series(task, 12)])[0]
        finally:
            set_distribution_cache_cap(None)
        assert capped == chain.solving_probability_series(task, 12)

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            set_distribution_cache_cap(0)
