"""Unit tests for state interning (label vectors, hash-consing)."""

import itertools

import pytest

from repro.chain import (
    StateTable,
    block_count,
    block_sizes,
    blocks_from_labels,
    canonical_labels,
    labels_from_blocks,
)
from repro.core import canonical_state
from repro.randomness import enumerate_configurations


class TestCanonicalLabels:
    def test_restricted_growth_form(self):
        assert canonical_labels([7, 7, 3, 7, 3]) == (0, 0, 1, 0, 1)
        assert canonical_labels([2, 1, 0]) == (0, 1, 2)
        assert canonical_labels([]) == ()

    def test_equality_pattern_is_all_that_matters(self):
        for raw in itertools.product(range(3), repeat=4):
            relabeled = tuple(9 - v for v in raw)
            assert canonical_labels(raw) == canonical_labels(relabeled)

    def test_idempotent(self):
        for raw in itertools.product(range(2), repeat=5):
            once = canonical_labels(raw)
            assert canonical_labels(once) == once


class TestBlocksRoundTrip:
    def test_round_trip_over_all_partitions(self):
        # Configurations of [n] enumerate exactly the set partitions.
        for n in (1, 2, 3, 4):
            for alpha in enumerate_configurations(n):
                blocks = alpha.source_partition()
                labels = labels_from_blocks(blocks)
                assert canonical_labels(labels) == labels
                assert blocks_from_labels(labels) == canonical_state(blocks)

    def test_block_statistics(self):
        labels = (0, 1, 0, 2, 1)
        assert block_count(labels) == 3
        assert block_sizes(labels) == (1, 2, 2)
        assert block_count(()) == 0


class TestStateTable:
    def test_dense_ids_in_intern_order(self):
        table = StateTable()
        a = table.intern((0, 0, 0))
        b = table.intern((0, 0, 1))
        assert (a, b) == (0, 1)
        assert table.intern((0, 0, 0)) == 0
        assert len(table) == 2
        assert table.labels_of(1) == (0, 0, 1)
        assert table.get((0, 1, 1)) is None
        assert list(table) == [(0, 0, 0), (0, 0, 1)]


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
