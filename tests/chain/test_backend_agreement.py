"""Cross-backend property tests over a sweep of configurations.

The ISSUE-level contract: for every configuration/ports/task triple,

* the exact backend's ``solving_probability_series`` equals
  ``solving_probability(t)`` per ``t`` (shared-work vs per-time paths);
* the float backend agrees with the exact backend within 1e-12 on the
  series, the limit, and the expected solving time;
* absorption limits respect the zero-one law under both backends.
"""

from fractions import Fraction

import pytest

from repro.chain import compile_chain
from repro.core import k_leader_election, leader_election, unique_ids
from repro.models import adversarial_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes

T_MAX = 5
TOLERANCE = 1e-12


def _port_variants(shape):
    n = sum(shape)
    yield "blackboard", None
    if n >= 2:
        yield "adversarial", adversarial_assignment(shape)
        yield "round-robin", round_robin_assignment(n)


def _tasks(n):
    yield "leader", leader_election(n)
    if n >= 2:
        yield "k-leader:2", k_leader_election(n, 2)
    yield "unique-ids", unique_ids(n)


def _triples():
    for n in (2, 3, 4, 5):
        for shape in enumerate_size_shapes(n):
            for ports_name, ports in _port_variants(shape):
                for task_name, task in _tasks(n):
                    yield pytest.param(
                        shape,
                        ports,
                        task,
                        id=f"{shape}-{ports_name}-{task_name}",
                    )


#: Materialized: a generator would be consumed by the first parametrized
#: method and leave the remaining ones with an empty parameter set.
TRIPLES = list(_triples())


@pytest.mark.parametrize("shape, ports, task", TRIPLES)
class TestCrossBackend:
    def test_series_matches_per_time_probabilities(self, shape, ports, task):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, ports)
        series = chain.solving_probability_series(task, T_MAX)
        assert all(isinstance(p, Fraction) for p in series)
        for t, prob in enumerate(series, start=1):
            assert prob == chain.solving_probability(task, t)

    def test_float_series_within_tolerance(self, shape, ports, task):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, ports)
        exact = chain.solving_probability_series(task, T_MAX)
        approx = chain.solving_probability_series(
            task, T_MAX, backend="float"
        )
        assert all(isinstance(p, float) for p in approx)
        for e, a in zip(exact, approx):
            assert abs(float(e) - a) <= TOLERANCE

    def test_float_limit_within_tolerance(self, shape, ports, task):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, ports)
        exact = chain.limit_solving_probability(task)
        approx = chain.limit_solving_probability(task, backend="float")
        assert exact in (Fraction(0), Fraction(1))  # zero-one law
        assert abs(float(exact) - approx) <= TOLERANCE

    def test_float_expected_time_within_tolerance(self, shape, ports, task):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        chain = compile_chain(alpha, ports)
        exact = chain.expected_solving_time(task)
        approx = chain.expected_solving_time(task, backend="float")
        if exact is None:
            assert approx is None
        else:
            assert abs(float(exact) - approx) <= TOLERANCE


class TestBackendValidation:
    def test_unknown_backend_rejected(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = compile_chain(alpha)
        with pytest.raises(ValueError):
            chain.solving_probability(leader_election(3), 2, backend="exakt")

    def test_facade_rejects_unknown_backend(self):
        from repro.core import ConsistencyChain

        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        with pytest.raises(ValueError):
            ConsistencyChain(alpha, backend="float32")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(pytest.main([__file__, "-q"]))
