"""The full experiment registry, executed end to end.

This is the repository's single most comprehensive test: every registered
experiment (figures, lemmas, theorems, extensions) runs with default
parameters and must reproduce the paper.
"""

from repro.analysis import ALL_EXPERIMENTS, run_all_experiments


class TestRegistry:
    def test_all_experiments_pass(self):
        failures = [
            result.experiment_id
            for result in run_all_experiments()
            if not result.passed
        ]
        assert not failures, f"diverged from the paper: {failures}"

    def test_experiment_ids_unique(self):
        ids = [generator().experiment_id for generator in ALL_EXPERIMENTS]
        assert len(ids) == len(set(ids))

    def test_every_result_renders(self):
        for result in run_all_experiments():
            text = result.render()
            assert result.experiment_id in text
            assert "verdict" in text

    def test_results_serialize(self):
        from repro.analysis import results_from_json, results_to_json

        results = run_all_experiments()
        rebuilt = results_from_json(results_to_json(results))
        assert [r.experiment_id for r in rebuilt] == [
            r.experiment_id for r in results
        ]
