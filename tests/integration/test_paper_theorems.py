"""Integration tests: framework, chain, and protocols must all agree.

The three layers of the reproduction decide solvability independently:

1. closed-form characterizations (Theorems 4.1 / 4.2);
2. exact limits of the consistency-partition Markov chain;
3. actual protocol executions on the simulated networks.

These tests sweep configurations and require three-way agreement -- the
strongest end-to-end statement the library makes.
"""

import pytest

from repro.algorithms import (
    BlackboardLeaderNode,
    BlackboardNetwork,
    CliqueNetwork,
    EuclidLeaderNode,
)
from repro.core import (
    ConsistencyChain,
    blackboard_solvable,
    leader_election,
    message_passing_worst_case_solvable,
)
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes

SEEDS = (0, 1)


def shapes_up_to(n_max):
    for n in range(1, n_max + 1):
        for shape in enumerate_size_shapes(n):
            yield n, shape


class TestTheorem41ThreeWay:
    @pytest.mark.parametrize("n,shape", list(shapes_up_to(5)))
    def test_blackboard_agreement(self, n, shape):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(n)

        predicted = blackboard_solvable(alpha)
        chain = ConsistencyChain(alpha).eventually_solvable(task)
        assert chain == predicted

        for seed in SEEDS:
            run = BlackboardNetwork(
                alpha, BlackboardLeaderNode, seed=seed
            ).run(max_rounds=72)
            if predicted:
                assert run.all_decided and len(run.leaders()) == 1, (
                    shape,
                    seed,
                )
            else:
                assert not run.all_decided, (shape, seed)


class TestTheorem42ThreeWay:
    @pytest.mark.parametrize("n,shape", list(shapes_up_to(5)))
    def test_adversarial_agreement(self, n, shape):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(n)
        ports = adversarial_assignment(shape)

        predicted = message_passing_worst_case_solvable(alpha)
        chain = ConsistencyChain(alpha, ports).eventually_solvable(task)
        assert chain == predicted

        for seed in SEEDS:
            run = CliqueNetwork(
                alpha, ports, EuclidLeaderNode, seed=seed
            ).run(max_rounds=96)
            if predicted:
                assert run.all_decided and len(run.leaders()) == 1, (
                    shape,
                    seed,
                )
            else:
                assert not run.all_decided, (shape, seed)


class TestFootnote5:
    def test_benign_ports_can_beat_the_worst_case(self):
        """(2,2) is worst-case impossible but solvable with some wiring."""
        from repro.models import random_assignment

        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        task = leader_election(4)
        assert not message_passing_worst_case_solvable(alpha)

        solvable_wirings = 0
        for seed in range(6):
            chain = ConsistencyChain(alpha, random_assignment(4, seed))
            if chain.eventually_solvable(task):
                solvable_wirings += 1
        assert solvable_wirings > 0

    def test_protocol_exploits_benign_ports(self):
        """The Euclid protocol folds port asymmetries into its tags, so it
        elects on a benign wiring of the worst-case-impossible (2,2)."""
        from repro.models import random_assignment

        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        task = leader_election(4)
        for seed in range(6):
            ports = random_assignment(4, seed)
            if ConsistencyChain(alpha, ports).eventually_solvable(task):
                run = CliqueNetwork(
                    alpha, ports, EuclidLeaderNode, seed=0
                ).run(max_rounds=96)
                assert run.all_decided and len(run.leaders()) == 1
                return
        pytest.skip("no benign wiring found among tested seeds")


class TestBlackboardVsCliquePower:
    def test_clique_strictly_stronger_on_coprime_shapes(self):
        """(2,3): impossible on the blackboard, solvable on the clique --
        the paper's headline separation between the two models."""
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        task = leader_election(5)
        assert not ConsistencyChain(alpha).eventually_solvable(task)
        assert ConsistencyChain(
            alpha, adversarial_assignment((2, 3))
        ).eventually_solvable(task)

    def test_blackboard_solvable_implies_clique_solvable(self):
        """A singleton source gives gcd 1: Theorem 4.1's condition implies
        Theorem 4.2's, never the reverse."""
        for n in range(1, 8):
            for shape in enumerate_size_shapes(n):
                if 1 in shape:
                    import math

                    assert math.gcd(*shape) == 1
