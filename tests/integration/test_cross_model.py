"""Cross-model consistency: blackboard vs clique vs graph.

The three communication models sit in a refinement hierarchy -- more
structure can only create more distinctions -- and the clique is the
complete-graph special case of the graph model.  These relations tie the
model implementations together and are exactly what the paper's footnote 5
and the conclusion's generalization rely on.
"""

import itertools

from repro.core import ConsistencyChain, is_refinement, leader_election
from repro.models import (
    BlackboardModel,
    GraphMessagePassingModel,
    GraphTopology,
    MessagePassingModel,
    random_assignment,
)
from repro.randomness import RandomnessConfiguration


def all_realizations(n, t):
    return itertools.product(
        list(itertools.product((0, 1), repeat=t)), repeat=n
    )


class TestRefinementHierarchy:
    def test_clique_refines_blackboard_everywhere(self):
        n = 4
        bb = BlackboardModel(n)
        mp = MessagePassingModel(random_assignment(n, 3))
        for rho in all_realizations(n, 2):
            mp_blocks = mp.partition(rho)
            bb_blocks = bb.partition(rho)
            for block in mp_blocks:
                assert any(block <= other for other in bb_blocks)

    def test_back_ports_refine_plain_graph_model(self):
        topology = GraphTopology.complete_bipartite(2, 2)
        plain = GraphMessagePassingModel(topology)
        classical = GraphMessagePassingModel(
            topology, include_back_ports=True
        )
        for rho in all_realizations(4, 2):
            plain_blocks = plain.partition(rho)
            classical_blocks = classical.partition(rho)
            for block in classical_blocks:
                assert any(block <= other for other in plain_blocks)

    def test_clique_is_complete_graph_special_case(self):
        """MessagePassingModel on round-robin ports == GraphModel on the
        round-robin complete topology, knowledge id for knowledge id."""
        n = 4
        from repro.models import round_robin_assignment

        mp = MessagePassingModel(round_robin_assignment(n))
        graph = GraphMessagePassingModel(GraphTopology.complete(n))
        for rho in all_realizations(n, 2):
            assert mp.partition(rho) == graph.partition(rho)


class TestChainVsModelAgreement:
    def test_chain_refine_equals_model_partition_per_round(self):
        """One chain step == one round of knowledge evolution, on graphs."""
        topology = GraphTopology.ring(4)
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        chain = ConsistencyChain(alpha, topology)
        model = GraphMessagePassingModel(topology)
        for source_bits in itertools.product(
            list(itertools.product((0, 1), repeat=2)), repeat=2
        ):
            # two rounds of bits for two sources
            rho = tuple(
                source_bits[alpha.source_of(i)] for i in range(4)
            )
            state = chain.refine(
                chain.refine(
                    ((0, 1, 2, 3),), tuple(b[0] for b in source_bits)
                ),
                tuple(b[1] for b in source_bits),
            )
            assert [frozenset(b) for b in state] == model.partition(rho)

    def test_solvability_monotone_across_models(self):
        """If the blackboard solves a shape, so does every richer model."""
        for shape in ((1, 2), (1, 1, 2), (1, 4)):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            task = leader_election(alpha.n)
            assert ConsistencyChain(alpha).eventually_solvable(task)
            ports = random_assignment(alpha.n, 5)
            assert ConsistencyChain(alpha, ports).eventually_solvable(task)

    def test_partition_traces_are_monotone(self):
        """Knowledge traces refine over time in every model."""
        models = [
            BlackboardModel(4),
            MessagePassingModel(random_assignment(4, 9)),
            GraphMessagePassingModel(GraphTopology.ring(4)),
            GraphMessagePassingModel(
                GraphTopology.star(4), include_back_ports=True
            ),
        ]
        rho = ((0, 1, 0), (0, 1, 1), (1, 0, 0), (1, 0, 0))
        for model in models:
            previous = [frozenset(range(4))]
            for t in range(4):
                prefix = tuple(bits[:t] for bits in rho)
                blocks = model.partition(prefix)
                assert is_refinement(
                    tuple(tuple(sorted(b)) for b in blocks),
                    tuple(tuple(sorted(b)) for b in previous),
                )
                previous = blocks
