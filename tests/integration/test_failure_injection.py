"""Failure injection: the simulator must fail loudly, not silently.

Distributed-systems code earns trust by how it behaves when something is
wrong: exhausted randomness, malformed payloads, mis-sized tables, and
protocol misuse must surface as exceptions at the faulty round, never as
corrupted results.
"""

import pytest

from repro.algorithms import (
    BlackboardLeaderNode,
    BlackboardNetwork,
    CliqueNetwork,
    EuclidLeaderNode,
    NodeProtocol,
)
from repro.models import PortAssignment, round_robin_assignment
from repro.randomness import FixedBitSource, RandomnessConfiguration


class TestRandomnessExhaustion:
    def test_scripted_source_exhaustion_raises(self):
        """A protocol consuming more bits than budgeted must crash, not
        silently reuse stale bits."""
        alpha = RandomnessConfiguration.from_group_sizes([2, 2])
        sources = [FixedBitSource("0101"), FixedBitSource("0101")]
        network = BlackboardNetwork(
            alpha, BlackboardLeaderNode, sources=sources
        )
        # (2,2) never elects, so the run keeps consuming bits until the
        # scripts run dry at round 5.
        with pytest.raises(IndexError):
            network.run(max_rounds=10)

    def test_exhaustion_round_is_exact(self):
        alpha = RandomnessConfiguration.shared(2)
        network = BlackboardNetwork(
            alpha, BlackboardLeaderNode, sources=[FixedBitSource("01")]
        )
        network.run(max_rounds=2)  # exactly the budget: fine
        with pytest.raises(IndexError):
            network.run(max_rounds=1)  # round 3 -> exhausted


class MalformedCliqueNode(NodeProtocol):
    """Returns a per-port mapping that misses a port."""

    def compose(self):
        return {1: ("only-port-one",)}

    def absorb(self, bit, inbox):
        pass


class TestMalformedProtocols:
    def test_missing_port_payload_raises(self):
        alpha = RandomnessConfiguration.independent(3)
        network = CliqueNetwork(
            alpha, round_robin_assignment(3), MalformedCliqueNode
        )
        with pytest.raises(ValueError, match="port"):
            network.run(max_rounds=1)

    def test_blackboard_rejects_per_port_mapping(self):
        alpha = RandomnessConfiguration.independent(3)
        network = BlackboardNetwork(alpha, MalformedCliqueNode)
        with pytest.raises(TypeError):
            network.run(max_rounds=1)


class TestBadWiring:
    def test_corrupt_port_table_rejected_at_construction(self):
        # duplicate neighbour on one node's ports
        with pytest.raises(ValueError):
            PortAssignment([[1, 1, 2], [0, 2, 3], [0, 1, 3], [0, 1, 2]])

    def test_asymmetric_but_valid_table_accepted(self):
        # Port tables need not be symmetric between endpoints; only local
        # bijectivity is required.
        PortAssignment([[1, 2], [2, 0], [1, 0]])

    def test_network_size_mismatches(self):
        alpha = RandomnessConfiguration.independent(4)
        with pytest.raises(ValueError):
            CliqueNetwork(alpha, round_robin_assignment(3), EuclidLeaderNode)


class TestDecisionStability:
    def test_outputs_never_change_after_decision(self):
        """Once a node decides, extra rounds must not alter its output."""
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        network = BlackboardNetwork(alpha, BlackboardLeaderNode, seed=0)
        first = network.run(max_rounds=40)
        assert first.all_decided
        snapshot = tuple(node.output() for node in network.nodes)
        network.run(max_rounds=5)  # keep running the same nodes
        assert tuple(node.output() for node in network.nodes) == snapshot

    def test_rerun_with_same_seed_is_deterministic(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2, 2])
        runs = [
            BlackboardNetwork(alpha, BlackboardLeaderNode, seed=11).run(64)
            for _ in range(2)
        ]
        assert runs[0].outputs == runs[1].outputs
        assert runs[0].rounds == runs[1].rounds
