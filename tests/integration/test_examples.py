"""Smoke tests: every example script must run cleanly.

Examples are documentation; these tests keep them from rotting.  Each runs
in a subprocess with the repository's interpreter; the slowest sweep
scripts get a generous timeout, everything else must finish quickly.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "correlated_keys_fleet.py",
    "topology_figures.py",
    "chain_explorer.py",
    "anonymous_networks.py",
]

SLOW_EXAMPLES = [
    "gcd_phase_diagram.py",
    "two_leader_election.py",
    "expected_election_time.py",
    "worst_case_adversary.py",
]


def run_example(name: str, timeout: int) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = run_example(name, timeout=120)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


@pytest.mark.parametrize("name", SLOW_EXAMPLES)
def test_slow_example_runs(name):
    result = run_example(name, timeout=420)
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_all_examples_are_covered():
    """New example scripts must be added to one of the lists above."""
    present = {
        path.name
        for path in EXAMPLES_DIR.glob("*.py")
        if path.name != "reproduce_paper.py"  # covered by the registry test
    }
    assert present == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)
