"""Integration tests of the framework's internal consistency claims.

Section 3 makes several structural claims that tie the complexes together;
these tests verify them across models and parameters:

* the consistency projections are disjoint unions of simplices (homology);
* ``h`` pairs facets of ``P(t)`` and ``R(t)`` bijectively;
* the chain's finite-``t`` probabilities equal literal enumeration with
  each of the four solvability checkers;
* knowledge is cumulative: once a realization solves, all successors do.
"""

import itertools

from repro.core import (
    ConsistencyChain,
    build_protocol_complex,
    facet_correspondence_is_bijective,
    knowledge_projection,
    leader_election,
    realization_solves,
    solves_by_definition_31,
    solves_by_definition_34,
    solving_probability_enumerated,
)
from repro.models import (
    BlackboardModel,
    MessagePassingModel,
    adversarial_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.randomness import (
    RandomnessConfiguration,
    iter_consistent_realizations,
)
from repro.topology import is_disjoint_union_of_simplices


def all_realizations(n, t):
    return itertools.product(
        list(itertools.product((0, 1), repeat=t)), repeat=n
    )


class TestProjectionStructure:
    def test_projections_are_disjoint_unions(self):
        models = [
            BlackboardModel(3),
            MessagePassingModel(round_robin_assignment(3)),
            MessagePassingModel(random_assignment(3, 2)),
        ]
        for model in models:
            for rho in all_realizations(3, 2):
                assert is_disjoint_union_of_simplices(
                    knowledge_projection(model, rho)
                )

    def test_blocks_cover_all_names(self):
        model = MessagePassingModel(random_assignment(4, 3))
        for rho in all_realizations(4, 1):
            projected = knowledge_projection(model, rho)
            assert projected.names() == frozenset(range(4))


class TestFacetIsomorphism:
    def test_bijective_across_models_and_times(self):
        cases = [
            (BlackboardModel(2), 2),
            (BlackboardModel(3), 1),
            (MessagePassingModel(round_robin_assignment(3)), 1),
            (MessagePassingModel(adversarial_assignment((2, 2))), 1),
        ]
        for model, t in cases:
            build = build_protocol_complex(model, t)
            assert facet_correspondence_is_bijective(build)
            build.h_vertex_map()  # raises if ill-defined


class TestChainVsEnumerationVsMaps:
    def test_three_engines_agree_blackboard(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        chain = ConsistencyChain(alpha)
        for t in (1, 2):
            expected = chain.solving_probability(task, t)
            for solver in (
                realization_solves,
                solves_by_definition_34,
                solves_by_definition_31,
            ):
                assert (
                    solving_probability_enumerated(
                        alpha, task, t, solver=solver
                    )
                    == expected
                )

    def test_three_engines_agree_message_passing(self):
        shape = (2, 2)
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape)
        task = leader_election(4)
        chain = ConsistencyChain(alpha, ports)
        for t in (1, 2):
            expected = chain.solving_probability(task, t)
            assert (
                solving_probability_enumerated(
                    alpha, task, t, ports, solver=solves_by_definition_34
                )
                == expected
            )


class TestCumulativeKnowledge:
    def test_solving_persists_to_successors(self):
        """If rho solves at time t, every extension solves at t+1."""
        model = BlackboardModel(3)
        task = leader_election(3)
        alpha = RandomnessConfiguration.independent(3)
        for rho in iter_consistent_realizations(alpha, 1):
            if not realization_solves(model, rho, task):
                continue
            for suffix in itertools.product((0, 1), repeat=3):
                extended = tuple(
                    bits + (extra,) for bits, extra in zip(rho, suffix)
                )
                assert realization_solves(model, extended, task)

    def test_probability_series_monotone_all_shapes(self):
        from repro.randomness import enumerate_size_shapes

        for shape in enumerate_size_shapes(4):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            task = leader_election(4)
            for ports in (None, adversarial_assignment(shape)):
                series = ConsistencyChain(
                    alpha, ports
                ).solving_probability_series(task, 4)
                assert all(a <= b for a, b in zip(series, series[1:]))
