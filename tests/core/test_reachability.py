"""Unit tests for the worst-case matching closure."""

import math

import pytest

from repro.core.reachability import (
    gcd_divides_k,
    has_submultiset_sum,
    matching_moves,
    minimum_reachable_class,
    reachable_multisets,
    worst_case_k_leader_solvable,
    worst_case_leader_election_solvable,
)
from repro.randomness import enumerate_size_shapes


class TestMatchingMoves:
    def test_basic_split(self):
        # Matching 2 into 3 splits the 3 into (2, 1); multisets are sorted.
        assert (1, 2, 2) in matching_moves((2, 3))

    def test_equal_pair_is_noop(self):
        assert matching_moves((3, 3)) == set()

    def test_exhausting_split_drops_zero(self):
        # (2,2) from matching 2 into 4 twice: (2,4) -> (2,2,2)
        assert (2, 2, 2) in matching_moves((2, 4))

    def test_moves_preserve_total(self):
        for move in matching_moves((2, 3, 5)):
            assert sum(move) == 10

    def test_moves_preserve_gcd(self):
        for sizes in [(2, 4), (3, 6), (2, 3), (4, 6, 8)]:
            g = math.gcd(*sizes)
            for move in matching_moves(sizes):
                assert math.gcd(*move) == g


class TestClosure:
    def test_euclid_reaches_gcd(self):
        for sizes in [(2, 3), (4, 6), (3, 5), (6, 10, 15), (2, 2), (5,)]:
            assert minimum_reachable_class(sizes) == math.gcd(*sizes)

    def test_closure_contains_start(self):
        start = (2, 3)
        assert start in reachable_multisets(start)

    def test_closure_members_are_partitions(self):
        for multiset in reachable_multisets((2, 3, 4)):
            assert sum(multiset) == 9
            assert tuple(sorted(multiset)) == multiset

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            reachable_multisets((0, 2))


class TestSubsetSum:
    def test_positive(self):
        assert has_submultiset_sum((1, 2, 4), 3)
        assert has_submultiset_sum((2, 2), 4)

    def test_negative(self):
        assert not has_submultiset_sum((2, 4), 3)
        assert not has_submultiset_sum((5,), 2)


class TestOracle:
    def test_leader_election_iff_gcd_one(self):
        """The computed oracle reproduces Theorem 4.2 via Euclid."""
        for n in range(1, 10):
            for shape in enumerate_size_shapes(n):
                assert worst_case_leader_election_solvable(shape) == (
                    math.gcd(*shape) == 1
                )

    def test_k_leader_matches_gcd_divides_k(self):
        """Closure oracle == closed form g | k, exhaustively to n=9."""
        for n in range(1, 10):
            for shape in enumerate_size_shapes(n):
                for k in range(1, n + 1):
                    assert worst_case_k_leader_solvable(
                        shape, k
                    ) == gcd_divides_k(shape, k), (shape, k)

    def test_k_bounds(self):
        with pytest.raises(ValueError):
            worst_case_k_leader_solvable((2, 3), 0)
        with pytest.raises(ValueError):
            worst_case_k_leader_solvable((2, 3), 6)

    def test_two_leader_examples(self):
        assert worst_case_k_leader_solvable((2, 2), 2)  # gcd 2 | 2
        assert worst_case_k_leader_solvable((1, 3), 2)  # gcd 1
        assert not worst_case_k_leader_solvable((3, 3), 2)  # gcd 3
