"""Unit tests for P(t) and the facet isomorphism h."""

import pytest

from repro.core import (
    build_protocol_complex,
    facet_correspondence_is_bijective,
    protocol_facet,
)
from repro.models import BlackboardModel, MessagePassingModel, round_robin_assignment


class TestProtocolComplex:
    def test_figure1_counts(self):
        model = BlackboardModel(2)
        for t, (verts, facets) in {
            0: (2, 1),
            1: (4, 4),
            2: (16, 16),
        }.items():
            build = build_protocol_complex(model, t)
            assert build.vertex_count() == verts
            assert build.facet_count() == facets

    def test_facet_bijection(self):
        model = BlackboardModel(2)
        for t in (0, 1, 2):
            assert facet_correspondence_is_bijective(
                build_protocol_complex(model, t)
            )

    def test_message_passing_bijection(self):
        model = MessagePassingModel(round_robin_assignment(3))
        assert facet_correspondence_is_bijective(
            build_protocol_complex(model, 1)
        )

    def test_h_vertex_map_well_defined(self):
        model = BlackboardModel(2)
        build = build_protocol_complex(model, 2)
        h = build.h_vertex_map()
        # h maps each knowledge vertex to a bits vertex with the same name.
        for src, dst in h.items():
            assert src.name == dst.name
        # h is many-to-one on vertices in general but must be single-valued.
        assert len(h) == build.vertex_count()

    def test_h_is_many_to_one_on_vertices(self):
        # In R(1) for n=2 there are 4 vertices; P(1) also has 4 here, but
        # at t=2, P(2) has 16 vertices mapping onto R(2)'s 8.
        model = BlackboardModel(2)
        build = build_protocol_complex(model, 2)
        h = build.h_vertex_map()
        images = {dst for dst in h.values()}
        assert len(images) == 8
        assert build.vertex_count() == 16

    def test_guard(self):
        with pytest.raises(ValueError):
            build_protocol_complex(BlackboardModel(5), 4)

    def test_protocol_facet_is_chromatic(self):
        model = BlackboardModel(3)
        facet = protocol_facet(model, ((0,), (0,), (1,)))
        assert facet.is_chromatic()
        assert facet.dimension == 2

    def test_equal_knowledge_shares_vertices(self):
        model = BlackboardModel(2)
        facet = protocol_facet(model, ((1,), (1,)))
        # both nodes have the same knowledge value but different names
        assert facet.value_of(0) == facet.value_of(1)
