"""Unit tests for exact expected solving times."""

from fractions import Fraction

from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    expected_time_table,
    leader_election,
    single_block_state,
    weak_symmetry_breaking,
)
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


class TestClosedForms:
    def test_two_independent_nodes(self):
        """Solved when the strings first differ: E[T] = sum t/2^t = 2."""
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        assert expected_solving_time(chain, leader_election(2)) == 2

    def test_three_independent_nodes(self):
        """Solved when some node separates; a short geometric mixture."""
        alpha = RandomnessConfiguration.independent(3)
        chain = ConsistencyChain(alpha)
        expected = expected_solving_time(chain, leader_election(3))
        # From the all-equal state: round splits into {3}:1/4, {1,2}:3/4.
        # {1,2} already solves; {3} restarts.  E = 4/3.
        assert expected == Fraction(4, 3)

    def test_single_node_zero(self):
        alpha = RandomnessConfiguration.independent(1)
        chain = ConsistencyChain(alpha)
        assert expected_solving_time(chain, leader_election(1)) == 0

    def test_unsolvable_is_none(self):
        alpha = RandomnessConfiguration.shared(4)
        chain = ConsistencyChain(alpha)
        assert expected_solving_time(chain, leader_election(4)) is None

    def test_weak_sb_two_sources(self):
        """Weak symmetry breaking with two pair-sources: solved when the
        sources first differ: E[T] = 2."""
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        chain = ConsistencyChain(alpha)
        assert expected_solving_time(chain, weak_symmetry_breaking(4)) == 2


class TestAgainstSimulation:
    def test_matches_monte_carlo(self):
        import random

        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        exact = float(
            expected_solving_time(ConsistencyChain(alpha), task)
        )
        rng = random.Random(0)
        total = 0
        runs = 4000
        for _ in range(runs):
            strings = ["", ""]
            t = 0
            while True:
                t += 1
                strings = [s + str(rng.getrandbits(1)) for s in strings]
                # partition solves iff the singleton-source node separates
                if strings[0] != strings[1]:
                    break
            total += t
        assert abs(total / runs - exact) < 0.1

    def test_ports_never_slow_things_down(self):
        for shape in [(1, 2), (2, 3), (1, 1, 2)]:
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            task = leader_election(alpha.n)
            bb = expected_solving_time(ConsistencyChain(alpha), task)
            mp = expected_solving_time(
                ConsistencyChain(alpha, adversarial_assignment(shape)), task
            )
            if bb is None:
                continue
            assert mp is not None and mp <= bb


class TestTable:
    def test_solving_states_zero(self):
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        table = expected_time_table(chain, leader_election(2))
        assert table[((0,), (1,))] == 0

    def test_initial_state_matches_function(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        task = leader_election(3)
        table = expected_time_table(chain, task)
        assert table[single_block_state(3)] == expected_solving_time(
            chain, task
        )

    def test_stuck_states_are_none(self):
        alpha = RandomnessConfiguration.shared(3)
        chain = ConsistencyChain(alpha)
        table = expected_time_table(chain, leader_election(3))
        assert table[single_block_state(3)] is None
