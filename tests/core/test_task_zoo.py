"""Unit tests for the task zoo and its derived characterizations."""

import pytest

from repro.core import (
    ConsistencyChain,
    blackboard_leader_and_deputy_solvable,
    blackboard_teams_solvable,
    blackboard_threshold_solvable,
    blackboard_unique_ids_solvable,
    leader_and_deputy,
    mp_worst_case_leader_and_deputy_solvable,
    mp_worst_case_teams_solvable,
    mp_worst_case_threshold_solvable,
    mp_worst_case_unique_ids_solvable,
    partition_into_teams,
    threshold_election,
    unique_ids,
)
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes


def alpha_of(*sizes):
    return RandomnessConfiguration.from_group_sizes(sizes)


class TestTaskConstruction:
    def test_unique_ids_profile(self):
        task = unique_ids(3)
        assert task.count_multisets() == ((1, 1, 1),)
        assert task.output_complex().facet_count() == 6  # 3!

    def test_unique_ids_solvable_only_discrete(self):
        task = unique_ids(3)
        assert task.solvable_from_sizes([1, 1, 1])
        assert not task.solvable_from_sizes([1, 2])

    def test_leader_and_deputy_needs_two_singletons(self):
        task = leader_and_deputy(4)
        assert task.solvable_from_sizes([1, 1, 2])
        assert not task.solvable_from_sizes([2, 2])
        assert not task.solvable_from_sizes([1, 3])

    def test_leader_and_deputy_n2(self):
        task = leader_and_deputy(2)
        assert task.solvable_from_sizes([1, 1])
        assert not task.solvable_from_sizes([2])

    def test_threshold_window(self):
        task = threshold_election(5, 2, 3)
        assert task.solvable_from_sizes([2, 3])
        assert task.solvable_from_sizes([3, 2])
        assert task.solvable_from_sizes([1, 1, 3])
        assert not task.solvable_from_sizes([5])

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            threshold_election(3, 2, 1)
        with pytest.raises(ValueError):
            threshold_election(3, 0, 2)

    def test_teams(self):
        task = partition_into_teams((2, 3))
        assert task.n == 5
        assert task.solvable_from_sizes([2, 3])
        assert task.solvable_from_sizes([1, 1, 3])
        assert not task.solvable_from_sizes([5])
        assert not task.solvable_from_sizes([4, 1])

    def test_teams_validation(self):
        with pytest.raises(ValueError):
            partition_into_teams(())
        with pytest.raises(ValueError):
            partition_into_teams((0, 2))


class TestClosedFormsVsExactLimits:
    """Every derived characterization must match the chain limits."""

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_unique_ids(self, n):
        task = unique_ids(n)
        for shape in enumerate_size_shapes(n):
            alpha = alpha_of(*shape)
            assert ConsistencyChain(alpha).eventually_solvable(
                task
            ) == blackboard_unique_ids_solvable(alpha)
            assert ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).eventually_solvable(task) == mp_worst_case_unique_ids_solvable(
                alpha
            )

    @pytest.mark.parametrize("n", [2, 3, 4])
    def test_leader_and_deputy(self, n):
        task = leader_and_deputy(n)
        for shape in enumerate_size_shapes(n):
            alpha = alpha_of(*shape)
            assert ConsistencyChain(alpha).eventually_solvable(
                task
            ) == blackboard_leader_and_deputy_solvable(alpha)
            assert ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).eventually_solvable(
                task
            ) == mp_worst_case_leader_and_deputy_solvable(alpha)

    @pytest.mark.parametrize("low,high", [(1, 1), (1, 2), (2, 3)])
    def test_threshold(self, low, high):
        n = 4
        task = threshold_election(n, low, high)
        for shape in enumerate_size_shapes(n):
            alpha = alpha_of(*shape)
            assert ConsistencyChain(alpha).eventually_solvable(
                task
            ) == blackboard_threshold_solvable(alpha, low, high)
            assert ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).eventually_solvable(task) == mp_worst_case_threshold_solvable(
                alpha, low, high
            )

    def test_teams_vs_limits(self):
        team_sizes = (2, 3)
        task = partition_into_teams(team_sizes)
        for shape in enumerate_size_shapes(5):
            alpha = alpha_of(*shape)
            assert ConsistencyChain(alpha).eventually_solvable(
                task
            ) == blackboard_teams_solvable(alpha, team_sizes)
            assert ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).eventually_solvable(task) == mp_worst_case_teams_solvable(
                alpha, team_sizes
            )


class TestNotableConsequences:
    def test_deputy_as_hard_as_leader_on_clique(self):
        """Worst-case clique: leader+deputy solvable iff plain leader
        election is (gcd = 1) -- adding a deputy costs nothing."""
        for shape in enumerate_size_shapes(5):
            alpha = alpha_of(*shape)
            assert mp_worst_case_leader_and_deputy_solvable(alpha) == (
                alpha.n >= 2 and alpha.gcd == 1
            )

    def test_deputy_strictly_harder_on_blackboard(self):
        """Blackboard: (1,4) elects a leader but no deputy."""
        alpha = alpha_of(1, 4)
        assert not blackboard_leader_and_deputy_solvable(alpha)
        assert alpha.has_singleton_source  # leader alone is fine

    def test_unique_ids_separates_models(self):
        """(2,3): unique ids impossible on the blackboard (pairs never
        split) yet worst-case solvable on the clique."""
        alpha = alpha_of(2, 3)
        assert not blackboard_unique_ids_solvable(alpha)
        assert mp_worst_case_unique_ids_solvable(alpha)

    def test_threshold_covers_weak_symmetry_breaking(self):
        """threshold[1, n-1] == weak symmetry breaking."""
        from repro.core import weak_symmetry_breaking

        n = 4
        a = threshold_election(n, 1, n - 1)
        b = weak_symmetry_breaking(n)
        for shape in enumerate_size_shapes(n):
            assert a.solvable_from_sizes(shape) == b.solvable_from_sizes(
                shape
            )
