"""White-box tests of the consistency chain's internals.

The chain implements two optimizations whose correctness the black-box
tests cannot isolate: transition caching and the bit-complement halving
(a source-bit vector and its complement refine identically).  These tests
pin both down, plus the refine function's behaviour on graph topologies
and with back-port semantics.
"""

import itertools
from fractions import Fraction

from repro.core import ConsistencyChain, leader_election, single_block_state
from repro.models import GraphTopology, adversarial_assignment
from repro.randomness import RandomnessConfiguration


class TestComplementOptimization:
    def test_transitions_match_full_enumeration(self):
        """The halved enumeration must equal the full 2^k average."""
        for shape in ((1, 2), (2, 2), (1, 1, 2)):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            for ports in (None, adversarial_assignment(shape)):
                chain = ConsistencyChain(alpha, ports)
                state = single_block_state(alpha.n)
                # full enumeration, no halving
                full: dict = {}
                weight = Fraction(1, 2**alpha.k)
                for bits in itertools.product((0, 1), repeat=alpha.k):
                    nxt = chain.refine(state, bits)
                    full[nxt] = full.get(nxt, Fraction(0)) + weight
                assert chain.transitions(state) == full

    def test_complement_invariance_of_refine(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = ConsistencyChain(alpha)
        state = single_block_state(5)
        for bits in itertools.product((0, 1), repeat=3):
            complement = tuple(1 - b for b in bits)
            assert chain.refine(state, bits) == chain.refine(
                state, complement
            )


class TestTransitionCache:
    def test_cache_hit_returns_same_object(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        state = single_block_state(3)
        first = chain.transitions(state)
        second = chain.transitions(state)
        assert first is second

    def test_cache_isolated_per_chain(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 2))
        plain = ConsistencyChain(alpha, adversarial_assignment((2, 2)))
        classical = ConsistencyChain(
            alpha,
            adversarial_assignment((2, 2)),
            include_back_ports=True,
        )
        state = single_block_state(4)
        # Both are valid distributions; the caches must not bleed.
        assert sum(plain.transitions(state).values()) == 1
        assert sum(classical.transitions(state).values()) == 1


class TestGraphRefinement:
    def test_degree_split_in_one_round(self):
        path = GraphTopology.path(4)
        alpha = RandomnessConfiguration.shared(4)
        chain = ConsistencyChain(alpha, path)
        nxt = chain.refine(single_block_state(4), (0,))
        # endpoints (degree 1) separate from the middle (degree 2)
        assert nxt == ((0, 3), (1, 2))

    def test_back_ports_only_refine(self):
        base = GraphTopology.complete_bipartite(2, 2)
        alpha = RandomnessConfiguration.shared(4)
        for labeled in base.iter_labelings():
            plain = ConsistencyChain(alpha, labeled)
            classical = ConsistencyChain(
                alpha, labeled, include_back_ports=True
            )
            state = single_block_state(4)
            for _ in range(3):
                p_next = plain.refine(state, (0,))
                c_next = classical.refine(state, (0,))
                from repro.core import is_refinement

                assert is_refinement(c_next, p_next)
                state = p_next

    def test_limit_on_graph_topology(self):
        ring = GraphTopology.ring(4)
        alpha = RandomnessConfiguration.independent(4)
        chain = ConsistencyChain(alpha, ring)
        assert chain.limit_solving_probability(leader_election(4)) == 1


class TestDistributionEvolution:
    def test_states_only_refine_along_support(self):
        from repro.core import is_refinement

        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = ConsistencyChain(alpha)
        previous_support = {single_block_state(5)}
        for t in range(1, 5):
            support = set(chain.state_distribution(t))
            for state in support:
                assert any(
                    is_refinement(state, prev) for prev in previous_support
                )
            previous_support = support

    def test_reachable_states_cover_all_supports(self):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = ConsistencyChain(alpha, adversarial_assignment((2, 3)))
        reachable = chain.reachable_states()
        for t in (1, 2, 3):
            assert set(chain.state_distribution(t)) <= reachable
