"""Edge cases of the zero-one diagnostics (ISSUE 2 satellite).

The diagnostics are fed by both backends now, so they must accept exact
``Fraction`` values, floats, numpy scalars/arrays, generators, mixes of
all of the above, the empty series, and non-finite values -- without
raising and without type-based misclassification.
"""

import math
from fractions import Fraction

import numpy as np

from repro.core import classify_limit, is_monotone_non_decreasing


class TestMonotoneEdgeCases:
    def test_generator_input(self):
        assert is_monotone_non_decreasing(Fraction(1, 2**t) for t in (3, 2, 1))
        assert not is_monotone_non_decreasing(iter([0.5, 0.4]))

    def test_numpy_array_input(self):
        assert is_monotone_non_decreasing(np.array([0.1, 0.5, 0.5]))
        assert not is_monotone_non_decreasing(np.array([0.5, 0.1]))
        assert is_monotone_non_decreasing(np.array([]))

    def test_mixed_fraction_and_float_compare_by_value(self):
        assert is_monotone_non_decreasing([Fraction(1, 2), 0.5, Fraction(3, 4)])
        assert is_monotone_non_decreasing([0.25, Fraction(1, 2), 0.75])
        # 1/3 as a float is strictly below the true rational 1/3: the
        # comparison must be exact, not a type coincidence.
        assert not is_monotone_non_decreasing([Fraction(1, 3), 1 / 3])
        assert is_monotone_non_decreasing([1 / 3, Fraction(1, 3)])

    def test_non_finite_values_do_not_raise(self):
        assert not is_monotone_non_decreasing([0.1, math.nan, 0.2])
        assert not is_monotone_non_decreasing([0.1, math.inf])

    def test_numpy_scalars(self):
        assert is_monotone_non_decreasing(
            [np.float64(0.25), Fraction(1, 2), np.float64(0.75)]
        )


class TestClassifyLimitEdgeCases:
    def test_empty_and_generators(self):
        assert classify_limit([]) is None
        assert classify_limit(p for p in ()) is None
        assert classify_limit(Fraction(1, 2**t) for t in (3, 2, 1)) is None

    def test_numpy_array_input(self):
        assert classify_limit(np.array([])) is None
        assert classify_limit(np.array([0.0, 0.0])) == 0
        assert classify_limit(np.array([0.5, 0.99])) == 1

    def test_mixed_exact_and_float(self):
        assert classify_limit([Fraction(0), 0.0, Fraction(0)]) == 0
        assert classify_limit([0.5, Fraction(97, 100)]) == 1
        assert classify_limit([Fraction(1, 2), 0.5]) is None

    def test_non_finite_is_undetermined(self):
        assert classify_limit([0.5, math.nan]) is None
        assert classify_limit([math.inf]) is None

    def test_exact_tail_comparison(self):
        # A tail exactly at the tolerance boundary counts as converged.
        assert classify_limit([Fraction(19, 20)], tolerance=0.05) == 1
