"""Tests for the synchronous round operator on protocol complexes."""

import pytest

from repro.core.protocol_complex import build_protocol_complex
from repro.core.round_operator import (
    evolve_facet,
    facet_successors,
    initial_protocol_complex,
    iterate_protocol_complex,
    round_operator,
)
from repro.models import (
    BlackboardModel,
    MessagePassingModel,
    round_robin_assignment,
)
from repro.topology import Simplex, Vertex


class TestEvolveFacet:
    def test_branching_factor(self):
        model = BlackboardModel(2)
        start = next(iter(initial_protocol_complex(model).facets))
        successors = list(facet_successors(model, start))
        assert len(successors) == 4
        assert len(set(successors)) == 4

    def test_bit_count_validated(self):
        model = BlackboardModel(2)
        start = next(iter(initial_protocol_complex(model).facets))
        with pytest.raises(ValueError):
            evolve_facet(model, start, (0,))

    def test_facet_names_validated(self):
        model = BlackboardModel(3)
        with pytest.raises(ValueError):
            evolve_facet(
                model, Simplex([Vertex(0, 0), Vertex(1, 0)]), (0, 0, 0)
            )

    def test_unsupported_model_rejected(self):
        from repro.models import GraphMessagePassingModel, GraphTopology

        model = GraphMessagePassingModel(GraphTopology.complete(3))
        start = next(iter(initial_protocol_complex(model).facets))
        with pytest.raises(TypeError):
            evolve_facet(model, start, (0, 0, 0))


class TestOperatorIteration:
    @pytest.mark.parametrize("t", [0, 1, 2, 3])
    def test_matches_direct_construction_blackboard(self, t):
        """Figure 1's evolution: iterated operator == direct P(t)."""
        model = BlackboardModel(2)
        iterated = iterate_protocol_complex(model, t)
        direct = build_protocol_complex(model, t).complex
        assert iterated == direct

    @pytest.mark.parametrize("t", [0, 1, 2])
    def test_matches_direct_construction_message_passing(self, t):
        model = MessagePassingModel(round_robin_assignment(3))
        iterated = iterate_protocol_complex(model, t)
        direct = build_protocol_complex(model, t).complex
        assert iterated == direct

    def test_facet_counts_grow_by_2_to_n(self):
        model = BlackboardModel(2)
        complex_ = initial_protocol_complex(model)
        for t in range(3):
            complex_ = round_operator(model, complex_)
            assert complex_.facet_count() == 4 ** (t + 1)

    def test_negative_t_rejected(self):
        with pytest.raises(ValueError):
            iterate_protocol_complex(BlackboardModel(2), -1)

    def test_chromaticity_preserved(self):
        model = MessagePassingModel(round_robin_assignment(3))
        complex_ = iterate_protocol_complex(model, 2)
        assert complex_.is_chromatic()
