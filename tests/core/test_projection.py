"""Unit tests for the consistency projections pi and pi~."""

from repro.core import (
    knowledge_projection,
    project_complex,
    project_facet,
    projected_realization_complex,
    realization_facet,
)
from repro.core.leader_election import leader_election_complex
from repro.models import BlackboardModel, MessagePassingModel, round_robin_assignment
from repro.topology import (
    Simplex,
    is_disjoint_union_of_simplices,
)


class TestProjectFacet:
    def test_groups_by_value(self):
        facet = Simplex([(0, "x"), (1, "y"), (2, "x")])
        projected = project_facet(facet)
        assert projected.facet_count() == 2
        assert is_disjoint_union_of_simplices(projected)

    def test_all_equal_values_single_facet(self):
        facet = Simplex([(0, "v"), (1, "v")])
        assert project_facet(facet).facet_count() == 1

    def test_leader_election_facet(self):
        facet = Simplex([(0, 1), (1, 0), (2, 0)])
        projected = project_facet(facet)
        assert projected.isolated_vertices() == [(0, 1)]

    def test_projection_preserves_vertices(self):
        facet = Simplex([(0, "a"), (1, "b"), (2, "a")])
        assert project_facet(facet).vertices() == facet.vertices


class TestProjectComplex:
    def test_figure3(self):
        projected = project_complex(leader_election_complex(3))
        # n isolated leaders + n follower simplices
        assert projected.facet_count() == 6
        assert len(projected.isolated_vertices()) == 3

    def test_projection_is_subcomplex(self):
        complex_ = leader_election_complex(3)
        assert project_complex(complex_).is_subcomplex_of(complex_)


class TestKnowledgeProjection:
    def test_blackboard_blocks(self):
        model = BlackboardModel(3)
        rho = ((0, 1), (0, 1), (1, 1))
        projected = knowledge_projection(model, rho)
        assert is_disjoint_union_of_simplices(projected)
        assert projected.facet_count() == 2
        assert projected.isolated_vertices() == [(2, (1, 1))]

    def test_vertices_carry_bits_not_knowledge(self):
        model = BlackboardModel(2)
        rho = ((0,), (1,))
        projected = knowledge_projection(model, rho)
        assert projected.vertices() == realization_facet(rho).vertices

    def test_message_passing_projection(self):
        model = MessagePassingModel(round_robin_assignment(3))
        rho = ((0, 0), (0, 0), (1, 0))
        projected = knowledge_projection(model, rho)
        assert is_disjoint_union_of_simplices(projected)

    def test_union_over_realizations(self):
        model = BlackboardModel(2)
        realizations = [((0,), (0,)), ((0,), (1,)), ((1,), (0,)), ((1,), (1,))]
        union = projected_realization_complex(model, realizations)
        # vertices: 2 nodes x 2 strings; facets: the two monochromatic
        # edges plus four isolated-vertex... isolated vertices are faces of
        # edges? vertex (0,(0,)) is isolated in the split realizations but
        # belongs to the edge of ((0,),(0,)) -- the union keeps maximal
        # simplices only.
        assert len(union.vertices()) == 4
        assert union.facet_count() == 2
        assert all(f.dimension == 1 for f in union.facets)


class TestRealizationFacet:
    def test_structure(self):
        facet = realization_facet(((0, 1), (1, 1)))
        assert facet.value_of(0) == (0, 1)
        assert facet.dimension == 1
