"""Unit tests for the consistency-partition Markov chain."""

from fractions import Fraction

import pytest

from repro.core import (
    ConsistencyChain,
    canonical_state,
    is_refinement,
    leader_election,
    single_block_state,
    solving_probability_enumerated,
)
from repro.models import adversarial_assignment, random_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes


class TestStateHelpers:
    def test_canonical_state_sorts(self):
        state = canonical_state([frozenset({2, 0}), frozenset({1})])
        assert state == ((0, 2), (1,))

    def test_single_block(self):
        assert single_block_state(3) == ((0, 1, 2),)

    def test_is_refinement(self):
        coarse = ((0, 1, 2),)
        fine = ((0,), (1, 2))
        assert is_refinement(fine, coarse)
        assert not is_refinement(coarse, fine)
        assert is_refinement(fine, fine)


class TestRefinement:
    def test_blackboard_splits_by_source_bits(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        chain = ConsistencyChain(alpha)
        start = single_block_state(3)
        same = chain.refine(start, (0, 0))
        split = chain.refine(start, (0, 1))
        assert same == start
        assert split == ((0, 1), (2,))

    def test_refinement_is_monotone(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 2])
        chain = ConsistencyChain(alpha)
        state = single_block_state(4)
        for bits in ((0, 1), (0, 0), (1, 0)):
            nxt = chain.refine(state, bits)
            assert is_refinement(nxt, state)
            state = nxt

    def test_mp_ports_condition_refines_more(self):
        # Nodes with equal bits may still split through their port views.
        alpha = RandomnessConfiguration.from_group_sizes([2, 2])
        ports = random_assignment(4, 1)
        bb = ConsistencyChain(alpha)
        mp = ConsistencyChain(alpha, ports)
        state = bb.refine(single_block_state(4), (0, 1))
        bb_next = bb.refine(state, (0, 0))
        mp_next = mp.refine(state, (0, 0))
        assert is_refinement(mp_next, bb_next)

    def test_transitions_sum_to_one(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2, 2])
        chain = ConsistencyChain(alpha)
        for state in list(chain.reachable_states())[:10]:
            assert sum(chain.transitions(state).values()) == 1

    def test_max_nodes_guard(self):
        with pytest.raises(ValueError):
            ConsistencyChain(RandomnessConfiguration.independent(11))

    def test_port_size_mismatch(self):
        with pytest.raises(ValueError):
            ConsistencyChain(
                RandomnessConfiguration.independent(3),
                round_robin_assignment(4),
            )


class TestFiniteTimeExactness:
    """The chain must match literal enumeration over realizations."""

    @pytest.mark.parametrize("shape", [(1, 2), (2, 2), (1, 1, 1), (3,)])
    def test_blackboard_matches_enumeration(self, shape):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        task = leader_election(alpha.n)
        chain = ConsistencyChain(alpha)
        for t in (1, 2, 3):
            assert chain.solving_probability(
                task, t
            ) == solving_probability_enumerated(alpha, task, t)

    @pytest.mark.parametrize("shape", [(1, 2), (2, 2), (2, 3)])
    def test_message_passing_matches_enumeration(self, shape):
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape)
        task = leader_election(alpha.n)
        chain = ConsistencyChain(alpha, ports)
        for t in (1, 2):
            assert chain.solving_probability(
                task, t
            ) == solving_probability_enumerated(alpha, task, t, ports)

    def test_series_matches_pointwise(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        task = leader_election(3)
        chain = ConsistencyChain(alpha)
        series = chain.solving_probability_series(task, 4)
        assert series == [chain.solving_probability(task, t) for t in (1, 2, 3, 4)]

    def test_distribution_at_zero(self):
        alpha = RandomnessConfiguration.independent(3)
        dist = ConsistencyChain(alpha).state_distribution(0)
        assert dist == {single_block_state(3): Fraction(1)}

    def test_distribution_mass_one(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 3])
        dist = ConsistencyChain(alpha).state_distribution(3)
        assert sum(dist.values()) == 1


class TestLimits:
    def test_zero_one_law_holds_on_sweep(self):
        """Lemma 3.2, machine-checked: every limit is exactly 0 or 1."""
        for n in range(1, 6):
            task = leader_election(n)
            for shape in enumerate_size_shapes(n):
                alpha = RandomnessConfiguration.from_group_sizes(shape)
                for ports in (None, adversarial_assignment(shape)):
                    limit = ConsistencyChain(
                        alpha, ports
                    ).limit_solving_probability(task)
                    assert limit in (Fraction(0), Fraction(1)), (shape, ports)

    def test_blackboard_limits_match_theorem41(self):
        for shape in enumerate_size_shapes(5):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            limit = ConsistencyChain(alpha).limit_solving_probability(
                leader_election(5)
            )
            assert (limit == 1) == (1 in shape)

    def test_known_limit_values(self):
        alpha = RandomnessConfiguration.shared(3)
        chain = ConsistencyChain(alpha)
        assert chain.limit_solving_probability(leader_election(3)) == 0

    def test_eventually_solvable_wrapper(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 3])
        assert ConsistencyChain(alpha).eventually_solvable(leader_election(4))

    def test_monotone_series(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2, 3])
        series = ConsistencyChain(alpha).solving_probability_series(
            leader_election(6), 5
        )
        assert all(a <= b for a, b in zip(series, series[1:]))
