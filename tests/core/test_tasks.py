"""Unit tests for task abstractions (output complexes, count profiles)."""

import pytest

from repro.core import CountTask, OutputComplexTask, leader_election
from repro.core.leader_election import leader_election_complex
from repro.topology import Simplex, SimplicialComplex


def blocks(*groups):
    return [frozenset(g) for g in groups]


class TestOutputComplexTask:
    def test_from_leader_election_complex(self):
        task = OutputComplexTask(leader_election_complex(3))
        assert task.n == 3

    def test_rejects_asymmetric(self):
        asym = SimplicialComplex([Simplex([(0, 1), (1, 0)])])
        with pytest.raises(ValueError):
            OutputComplexTask(asym)

    def test_rejects_partial_facets(self):
        partial = SimplicialComplex(
            [Simplex([(0, 0), (1, 0)]), Simplex([(2, 0)])]
        )
        with pytest.raises(ValueError):
            OutputComplexTask(partial)

    def test_rejects_gap_in_names(self):
        gap = SimplicialComplex([Simplex([(0, 0), (2, 0)])])
        with pytest.raises(ValueError):
            OutputComplexTask(gap)

    def test_solvability_matches_count_task(self):
        explicit = OutputComplexTask(leader_election_complex(3))
        counted = leader_election(3)
        for partition in (
            blocks({0}, {1}, {2}),
            blocks({0, 1}, {2}),
            blocks({0, 1, 2}),
        ):
            assert explicit.solvable_from_partition(
                partition
            ) == counted.solvable_from_partition(partition)

    def test_input_complex_is_single_facet(self):
        task = OutputComplexTask(leader_election_complex(2))
        assert task.input_complex().facet_count() == 1

    def test_partition_validation(self):
        task = OutputComplexTask(leader_election_complex(3))
        with pytest.raises(ValueError):
            task.solvable_from_partition(blocks({0}, {1}))  # misses node 2
        with pytest.raises(ValueError):
            task.solvable_from_partition(blocks({0, 1}, {1, 2}))  # overlap


class TestCountTask:
    def test_profile_must_cover_n(self):
        with pytest.raises(ValueError):
            CountTask(3, [{1: 1, 0: 1}])

    def test_profile_positive_counts(self):
        with pytest.raises(ValueError):
            CountTask(2, [{1: 0, 0: 2}])

    def test_needs_a_profile(self):
        with pytest.raises(ValueError):
            CountTask(2, [])

    def test_leader_election_profile(self):
        task = leader_election(4)
        assert task.count_multisets() == ((1, 3),)

    def test_output_complex_generation(self):
        task = leader_election(3)
        complex_ = task.output_complex()
        assert complex_.facet_count() == 3
        assert complex_.is_symmetric()
        assert complex_ == leader_election_complex(3)

    def test_multi_profile_output_complex(self):
        task = CountTask(2, [{1: 1, 0: 1}, {1: 2}])
        assert task.output_complex().facet_count() == 3

    def test_solvable_from_partition(self):
        task = leader_election(3)
        assert task.solvable_from_partition(blocks({0}, {1, 2}))
        assert not task.solvable_from_partition(blocks({0, 1, 2}))

    def test_solvable_from_sizes(self):
        task = leader_election(5)
        assert task.solvable_from_sizes([1, 4])
        assert task.solvable_from_sizes([1, 2, 2])
        assert not task.solvable_from_sizes([5])
        assert not task.solvable_from_sizes([2, 3])

    def test_sizes_must_sum_to_n(self):
        with pytest.raises(ValueError):
            leader_election(3).solvable_from_sizes([1, 1])

    def test_packing_needs_exact_groups(self):
        # Profile {a:2, b:2}; blocks (1,1,2) can pack (1+1, 2); blocks (1,3)
        # cannot.
        task = CountTask(4, [{"a": 2, "b": 2}])
        assert task.solvable_from_sizes([1, 1, 2])
        assert task.solvable_from_sizes([2, 2])
        assert not task.solvable_from_sizes([1, 3])
        assert not task.solvable_from_sizes([4])

    def test_equal_counts_different_values(self):
        # {a:2, b:2} with blocks (2,2): both assignments work.
        task = CountTask(4, [{"a": 2, "b": 2}])
        assert task.solvable_from_sizes([1, 1, 1, 1])

    def test_repr(self):
        assert "leader-election" in repr(leader_election(3))
