"""Unit tests for the probability engines."""

from fractions import Fraction

import pytest

from repro.core import (
    leader_election,
    model_for,
    solves_by_definition_34,
    solving_probability_enumerated,
    solving_probability_exact,
    solving_probability_sampled,
    solving_probability_series,
    solving_realizations,
)
from repro.models import BlackboardModel, MessagePassingModel, round_robin_assignment
from repro.randomness import RandomnessConfiguration


class TestModelFor:
    def test_blackboard_default(self):
        alpha = RandomnessConfiguration.independent(3)
        assert isinstance(model_for(alpha), BlackboardModel)

    def test_message_passing_with_ports(self):
        alpha = RandomnessConfiguration.independent(3)
        model = model_for(alpha, round_robin_assignment(3))
        assert isinstance(model, MessagePassingModel)

    def test_size_mismatch(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            model_for(alpha, round_robin_assignment(4))


class TestEnumeratedProbability:
    def test_two_independent_nodes(self):
        # n=2 private sources: solved at time t iff the two strings differ:
        # Pr = 1 - 2^-t.
        alpha = RandomnessConfiguration.independent(2)
        task = leader_election(2)
        for t in (1, 2, 3):
            assert solving_probability_enumerated(alpha, task, t) == 1 - Fraction(
                1, 2**t
            )

    def test_shared_source_never_solves(self):
        alpha = RandomnessConfiguration.shared(3)
        task = leader_election(3)
        assert solving_probability_enumerated(alpha, task, 3) == 0

    def test_custom_solver_injection(self):
        alpha = RandomnessConfiguration.independent(2)
        task = leader_election(2)
        literal = solving_probability_enumerated(
            alpha, task, 2, solver=solves_by_definition_34
        )
        fast = solving_probability_enumerated(alpha, task, 2)
        assert literal == fast

    def test_enumeration_guard(self):
        alpha = RandomnessConfiguration.independent(6)
        with pytest.raises(ValueError):
            solving_probability_enumerated(alpha, leader_election(6), 5)


class TestChainBackedAPI:
    def test_exact_equals_enumerated(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        task = leader_election(3)
        for t in (1, 2, 3):
            assert solving_probability_exact(
                alpha, task, t
            ) == solving_probability_enumerated(alpha, task, t)

    def test_series_shape(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 1, 2])
        series = solving_probability_series(alpha, leader_election(4), 5)
        assert len(series) == 5
        assert all(isinstance(p, Fraction) for p in series)


class TestSampledProbability:
    def test_close_to_exact(self):
        alpha = RandomnessConfiguration.independent(2)
        task = leader_election(2)
        exact = float(solving_probability_exact(alpha, task, 2))
        sampled = solving_probability_sampled(
            alpha, task, 2, samples=4000, seed=0
        )
        assert abs(sampled - exact) < 0.03

    def test_extremes(self):
        alpha = RandomnessConfiguration.shared(3)
        assert (
            solving_probability_sampled(
                alpha, leader_election(3), 3, samples=200
            )
            == 0.0
        )

    def test_samples_validation(self):
        alpha = RandomnessConfiguration.independent(2)
        with pytest.raises(ValueError):
            solving_probability_sampled(
                alpha, leader_election(2), 1, samples=0
            )


class TestSolvingRealizations:
    def test_members_actually_solve(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        task = leader_election(3)
        model = model_for(alpha)
        members = list(solving_realizations(model, alpha, task, 2))
        assert members
        for rho in members:
            assert task.solvable_from_partition(model.partition(rho))

    def test_count_matches_probability(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        task = leader_election(3)
        model = model_for(alpha)
        count = sum(1 for _ in solving_realizations(model, alpha, task, 2))
        prob = solving_probability_enumerated(alpha, task, 2)
        assert Fraction(count, 2 ** (2 * alpha.k)) == prob
