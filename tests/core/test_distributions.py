"""Tests for solving-time distributions, quantiles, and the chain export."""

from fractions import Fraction

import pytest

from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    leader_election,
    solving_time_distribution,
    solving_time_quantile,
)
from repro.randomness import RandomnessConfiguration


class TestDistribution:
    def test_two_independent_nodes_geometric(self):
        """T ~ Geometric(1/2): Pr[T = t] = 2^-t."""
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        dist = solving_time_distribution(chain, leader_election(2), 6)
        assert dist == [Fraction(1, 2**t) for t in range(1, 7)]

    def test_mass_never_exceeds_one(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = ConsistencyChain(alpha)
        dist = solving_time_distribution(chain, leader_election(5), 10)
        assert all(p >= 0 for p in dist)
        assert sum(dist) <= 1

    def test_unsolvable_all_zero(self):
        alpha = RandomnessConfiguration.shared(3)
        chain = ConsistencyChain(alpha)
        dist = solving_time_distribution(chain, leader_election(3), 5)
        assert dist == [Fraction(0)] * 5

    def test_expectation_consistency(self):
        """Partial expectation from the distribution lower-bounds E[T] and
        approaches it as the horizon grows."""
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        task = leader_election(3)
        exact = expected_solving_time(chain, task)
        dist = solving_time_distribution(chain, task, 40)
        partial = sum(t * p for t, p in enumerate(dist, start=1))
        assert partial <= exact
        assert float(exact - partial) < 1e-9


class TestQuantile:
    def test_median_of_geometric(self):
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        assert solving_time_quantile(chain, leader_election(2), Fraction(1, 2)) == 1
        assert solving_time_quantile(chain, leader_election(2), Fraction(3, 4)) == 2

    def test_unsolvable_returns_none(self):
        alpha = RandomnessConfiguration.shared(3)
        chain = ConsistencyChain(alpha)
        assert (
            solving_time_quantile(
                chain, leader_election(3), 0.9, t_cap=20
            )
            is None
        )

    def test_validation(self):
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        with pytest.raises(ValueError):
            solving_time_quantile(chain, leader_election(2), 0)


class TestNetworkxExport:
    def test_graph_structure(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        graph = chain.to_networkx()
        assert set(graph.nodes()) == chain.reachable_states()
        for state in graph.nodes():
            out = sum(
                graph.edges[state, nxt]["weight"]
                for nxt in graph.successors(state)
            )
            assert out == 1

    def test_absorption_matches_internal_solver(self):
        """Cross-validate the limit against a networkx-based solve."""
        import networkx as nx

        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        task = leader_election(5)
        chain = ConsistencyChain(alpha)
        graph = chain.to_networkx()

        solved = {
            state
            for state in graph.nodes()
            if task.solvable_from_partition([frozenset(b) for b in state])
        }
        # Absorption probability via reverse topological order on the DAG
        # of non-self-loop edges.
        dag = nx.DiGraph(
            (u, v) for u, v in graph.edges() if u != v
        )
        prob: dict = {}
        order = list(nx.topological_sort(dag))
        for state in reversed(order):
            if state in solved:
                prob[state] = Fraction(1)
                continue
            self_loop = (
                graph.edges[state, state]["weight"]
                if graph.has_edge(state, state)
                else Fraction(0)
            )
            if self_loop == 1:
                prob[state] = Fraction(0)
                continue
            total = sum(
                (
                    graph.edges[state, nxt]["weight"] * prob[nxt]
                    for nxt in dag.successors(state)
                ),
                Fraction(0),
            )
            prob[state] = total / (1 - self_loop)
        from repro.core import single_block_state

        start = single_block_state(5)
        assert prob[start] == chain.limit_solving_probability(task)
