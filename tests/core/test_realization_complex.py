"""Unit tests for R(t)."""

import pytest

from repro.core import (
    facet_count,
    iter_realizations,
    realization_complex,
    succeeds,
    vertex_count,
)


class TestCounts:
    def test_closed_forms(self):
        assert vertex_count(3, 1) == 6
        assert facet_count(3, 1) == 8
        assert facet_count(2, 2) == 16

    def test_iterator_matches_count(self):
        assert sum(1 for _ in iter_realizations(2, 2)) == facet_count(2, 2)

    def test_complex_figure2(self):
        complex_ = realization_complex(3, 1)
        assert len(complex_.vertices()) == 6
        assert complex_.facet_count() == 8
        assert complex_.is_pure()
        assert complex_.dimension == 2

    def test_time_zero(self):
        complex_ = realization_complex(3, 0)
        assert complex_.facet_count() == 1
        assert len(complex_.vertices()) == 3

    def test_materialization_guard(self):
        with pytest.raises(ValueError):
            realization_complex(5, 5)

    def test_chromatic(self):
        assert realization_complex(2, 1).is_chromatic()


class TestSucceeds:
    def test_prefix_extension(self):
        early = ((0,), (1,))
        late = ((0, 1), (1, 1))
        assert succeeds(early, late)

    def test_non_prefix_rejected(self):
        early = ((0,), (1,))
        late = ((1, 1), (1, 1))
        assert not succeeds(early, late)

    def test_same_time_rejected(self):
        rho = ((0,), (1,))
        assert not succeeds(rho, rho)

    def test_node_count_mismatch(self):
        assert not succeeds(((0,),), ((0, 1), (1, 1)))
