"""Unit tests for the anonymous-graphs slice of the framework."""

import math
from fractions import Fraction

import pytest

from repro.core import (
    ConsistencyChain,
    color_refinement_fixpoint,
    deterministic_solvable,
    iter_labeling_verdicts,
    leader_election,
    randomized_worst_case_solvable,
    single_block_state,
    worst_case_deterministic_solvable,
)
from repro.models import GraphTopology
from repro.randomness import RandomnessConfiguration


class TestColorRefinement:
    def test_vertex_transitive_graph_stays_uniform(self):
        ring = GraphTopology.ring(4)  # canonical orientation labeling
        assert color_refinement_fixpoint(ring) == single_block_state(4)

    def test_path_centre_isolated(self):
        fixpoint = color_refinement_fixpoint(GraphTopology.path(5))
        assert (2,) in fixpoint  # the centre is a singleton class

    def test_star_hub_isolated(self):
        fixpoint = color_refinement_fixpoint(GraphTopology.star(4))
        assert (0,) in fixpoint

    def test_bipartite_sides_split_by_degree(self):
        fixpoint = color_refinement_fixpoint(
            GraphTopology.complete_bipartite(2, 3)
        )
        blocks = {frozenset(b) for b in fixpoint}
        # the left side {0,1} and right side {2,3,4} are separated
        assert all(
            block <= {0, 1} or block <= {2, 3, 4} for block in blocks
        )

    def test_fixpoint_is_stable(self):
        topology = GraphTopology.complete_bipartite(2, 4)
        alpha = RandomnessConfiguration.shared(6)
        chain = ConsistencyChain(alpha, topology, include_back_ports=True)
        fixpoint = color_refinement_fixpoint(topology)
        assert chain.refine(fixpoint, (0,)) == fixpoint


class TestClassicalResults:
    def test_angluin_rings(self):
        for n in (3, 4, 5):
            assert not worst_case_deterministic_solvable(
                GraphTopology.ring(n), leader_election(n)
            )

    def test_some_ring_labelings_do_solve(self):
        """Port numbers are extra structure: asymmetric labelings break
        the rotational symmetry (Boldi et al. fibrations)."""
        verdicts = [
            v
            for _, v in iter_labeling_verdicts(
                GraphTopology.ring(3), leader_election(3)
            )
        ]
        assert any(verdicts) and not all(verdicts)

    @pytest.mark.parametrize("m,n", [(1, 2), (1, 3), (2, 2), (2, 3)])
    def test_codenotti_bipartite(self, m, n):
        base = GraphTopology.complete_bipartite(m, n)
        got = worst_case_deterministic_solvable(
            base, leader_election(m + n), include_back_ports=True
        )
        assert got == (math.gcd(m, n) == 1 and (m, n) != (1, 1))

    def test_k11_is_the_exception(self):
        """gcd(1,1)=1 but two fully symmetric nodes cannot elect."""
        base = GraphTopology.complete_bipartite(1, 1)
        assert not worst_case_deterministic_solvable(
            base, leader_election(2), include_back_ports=True
        )

    def test_paths_odd_iff(self):
        for n in (2, 3, 4, 5):
            assert worst_case_deterministic_solvable(
                GraphTopology.path(n), leader_election(n)
            ) == (n % 2 == 1)

    def test_randomness_rescues_the_ring(self):
        n = 4
        assert randomized_worst_case_solvable(
            GraphTopology.ring(n),
            RandomnessConfiguration.independent(n),
            leader_election(n),
        )

    def test_shared_source_ring_stays_stuck_even_randomized(self):
        """One shared source on a symmetric ring labeling: the chain limit
        must be 0 (randomness carries no distinguishing information)."""
        n = 4
        alpha = RandomnessConfiguration.shared(n)
        chain = ConsistencyChain(alpha, GraphTopology.ring(n))
        assert chain.limit_solving_probability(leader_election(n)) == 0


class TestTheorem42Robustness:
    def test_back_ports_do_not_change_clique_characterization(self):
        """Theorem 4.2 is stated for Eq. (2) knowledge; the classical
        semantics gives the same worst-case answers on the clique."""
        from repro.models import adversarial_assignment
        from repro.randomness import enumerate_size_shapes

        for n in range(2, 6):
            task = leader_election(n)
            for shape in enumerate_size_shapes(n):
                alpha = RandomnessConfiguration.from_group_sizes(shape)
                ports = adversarial_assignment(shape)
                plain = ConsistencyChain(alpha, ports).eventually_solvable(
                    task
                )
                classical = ConsistencyChain(
                    alpha, ports, include_back_ports=True
                ).eventually_solvable(task)
                assert plain == classical == (alpha.gcd == 1), shape


class TestValidation:
    def test_blackboard_back_ports_rejected(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            ConsistencyChain(alpha, None, include_back_ports=True)

    def test_size_mismatch(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            randomized_worst_case_solvable(
                GraphTopology.ring(4), alpha, leader_election(4)
            )
