"""Unit tests for the zero-one diagnostics."""

from fractions import Fraction

import pytest

from repro.core import (
    blackboard_unique_source_linear_bound,
    blackboard_unique_source_lower_bound,
    classify_limit,
    is_monotone_non_decreasing,
)


class TestMonotonicity:
    def test_monotone(self):
        assert is_monotone_non_decreasing([0, Fraction(1, 2), 1])

    def test_not_monotone(self):
        assert not is_monotone_non_decreasing([0.5, 0.4])

    def test_empty_and_singleton(self):
        assert is_monotone_non_decreasing([])
        assert is_monotone_non_decreasing([0.3])


class TestClassifyLimit:
    def test_limit_one(self):
        assert classify_limit([0.5, 0.9, 0.99]) == 1

    def test_limit_zero(self):
        assert classify_limit([0, 0, 0]) == 0

    def test_undetermined(self):
        assert classify_limit([0.1, 0.4, 0.5]) is None

    def test_empty(self):
        assert classify_limit([]) is None

    def test_tolerance(self):
        assert classify_limit([0.9], tolerance=0.2) == 1
        assert classify_limit([0.9], tolerance=0.01) is None


class TestBlackboardBounds:
    def test_strong_ge_linear(self):
        for k in (2, 3, 5):
            for t in range(1, 10):
                assert blackboard_unique_source_lower_bound(
                    k, t
                ) >= blackboard_unique_source_linear_bound(k, t)

    def test_k1_trivial(self):
        assert blackboard_unique_source_lower_bound(1, 3) == 1
        assert blackboard_unique_source_linear_bound(1, 3) == 1

    def test_values(self):
        # k=2, t=1: (2^1-1)^1 / 2^1 = 1/2
        assert blackboard_unique_source_lower_bound(2, 1) == Fraction(1, 2)
        assert blackboard_unique_source_linear_bound(2, 1) == Fraction(1, 2)

    def test_bounds_approach_one(self):
        assert blackboard_unique_source_lower_bound(3, 20) > Fraction(99, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            blackboard_unique_source_lower_bound(0, 1)
