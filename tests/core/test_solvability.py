"""Unit tests for the solvability checkers (Definitions 3.1 / 3.4)."""

import itertools

import pytest

from repro.core import (
    k_leader_election,
    leader_election,
    realization_solves,
    solves_by_definition_31,
    solves_by_definition_34,
    solves_by_forced_map,
    weak_symmetry_breaking,
)
from repro.models import BlackboardModel, MessagePassingModel, round_robin_assignment

ALL_CHECKERS = (
    realization_solves,
    solves_by_definition_34,
    solves_by_forced_map,
    solves_by_definition_31,
)


class TestLeaderElectionSolvability:
    def test_unique_history_solves(self):
        model = BlackboardModel(3)
        task = leader_election(3)
        rho = ((0, 0), (0, 0), (1, 1))
        for checker in ALL_CHECKERS:
            assert checker(model, rho, task), checker.__name__

    def test_uniform_history_does_not_solve(self):
        model = BlackboardModel(3)
        task = leader_election(3)
        rho = ((0, 0), (0, 0), (0, 0))
        for checker in ALL_CHECKERS:
            assert not checker(model, rho, task), checker.__name__

    def test_all_distinct_solves(self):
        model = BlackboardModel(3)
        task = leader_election(3)
        rho = ((0, 0), (0, 1), (1, 1))
        for checker in ALL_CHECKERS:
            assert checker(model, rho, task)

    def test_single_node_always_solves(self):
        model = BlackboardModel(1)
        task = leader_election(1)
        assert realization_solves(model, ((0, 1),), task)


class TestOtherTasks:
    def test_weak_symmetry_breaking(self):
        model = BlackboardModel(4)
        task = weak_symmetry_breaking(4)
        assert realization_solves(model, ((0,), (0,), (1,), (1,)), task)
        assert not realization_solves(model, ((0,), (0,), (0,), (0,)), task)

    def test_two_leaders_need_pair_or_singletons(self):
        model = BlackboardModel(4)
        task = k_leader_election(4, 2)
        assert realization_solves(model, ((0,), (0,), (1,), (1,)), task)
        assert not realization_solves(model, ((0,), (1,), (1,), (1,)), task)
        assert realization_solves(model, ((0,), (1,), (0,), (1,)), task)


class TestLemma35Equivalence:
    """All four checkers agree -- exhaustively, in both models."""

    @pytest.mark.parametrize("n,t", [(2, 1), (2, 2), (3, 1)])
    def test_blackboard_exhaustive(self, n, t):
        model = BlackboardModel(n)
        task = leader_election(n)
        for rho in itertools.product(
            list(itertools.product((0, 1), repeat=t)), repeat=n
        ):
            answers = [checker(model, rho, task) for checker in ALL_CHECKERS]
            assert len(set(answers)) == 1, (rho, answers)

    @pytest.mark.parametrize("n,t", [(3, 1), (3, 2)])
    def test_message_passing_exhaustive(self, n, t):
        model = MessagePassingModel(round_robin_assignment(n))
        task = leader_election(n)
        for rho in itertools.product(
            list(itertools.product((0, 1), repeat=t)), repeat=n
        ):
            answers = [checker(model, rho, task) for checker in ALL_CHECKERS]
            assert len(set(answers)) == 1, (rho, answers)

    def test_weak_sb_equivalence_sample(self):
        model = BlackboardModel(3)
        task = weak_symmetry_breaking(3)
        for rho in itertools.product(
            list(itertools.product((0, 1), repeat=1)), repeat=3
        ):
            answers = [checker(model, rho, task) for checker in ALL_CHECKERS]
            assert len(set(answers)) == 1
