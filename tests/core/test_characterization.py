"""Unit tests for the closed-form characterizations."""

import pytest

from repro.core import (
    blackboard_k_leader_solvable,
    blackboard_solvable,
    blackboard_task_solvable,
    k_leader_election,
    leader_election,
    message_passing_worst_case_k_leader_solvable,
    message_passing_worst_case_solvable,
    message_passing_worst_case_task_solvable,
    two_leader_blackboard_solvable,
    two_leader_message_passing_solvable,
    weak_symmetry_breaking,
)
from repro.randomness import RandomnessConfiguration


def alpha_of(*sizes):
    return RandomnessConfiguration.from_group_sizes(sizes)


class TestTheorem41:
    def test_examples(self):
        assert blackboard_solvable(alpha_of(1, 4))
        assert blackboard_solvable(alpha_of(1))
        assert not blackboard_solvable(alpha_of(2, 2))
        assert not blackboard_solvable(alpha_of(5))


class TestTheorem42:
    def test_examples(self):
        assert message_passing_worst_case_solvable(alpha_of(2, 3))
        assert message_passing_worst_case_solvable(alpha_of(1, 1))
        assert not message_passing_worst_case_solvable(alpha_of(2, 4))
        assert not message_passing_worst_case_solvable(alpha_of(3,))

    def test_km_n_corollary(self):
        """The paper cites leader election on K_{m,n}-style splits being
        possible iff gcd(m,n)=1 (Codenotti et al.)."""
        assert message_passing_worst_case_solvable(alpha_of(4, 9))
        assert not message_passing_worst_case_solvable(alpha_of(4, 6))


class TestGeneralTasks:
    def test_blackboard_task_solvable_uses_source_partition(self):
        alpha = alpha_of(2, 3)
        assert not blackboard_task_solvable(alpha, leader_election(5))
        assert blackboard_task_solvable(alpha, weak_symmetry_breaking(5))

    def test_blackboard_task_size_mismatch(self):
        with pytest.raises(ValueError):
            blackboard_task_solvable(alpha_of(2, 2), leader_election(3))

    def test_mp_worst_case_task_solvable(self):
        alpha = alpha_of(2, 4)
        # gcd 2: leader election impossible, 2-leader possible
        assert not message_passing_worst_case_task_solvable(
            alpha, leader_election(6)
        )
        assert message_passing_worst_case_task_solvable(
            alpha, k_leader_election(6, 2)
        )

    def test_weak_sb_blackboard_iff_two_sources(self):
        assert blackboard_task_solvable(
            alpha_of(3, 3), weak_symmetry_breaking(6)
        )
        assert not blackboard_task_solvable(
            alpha_of(6), weak_symmetry_breaking(6)
        )

    def test_weak_sb_mp_iff_two_sources(self):
        assert message_passing_worst_case_task_solvable(
            alpha_of(3, 3), weak_symmetry_breaking(6)
        )
        assert not message_passing_worst_case_task_solvable(
            alpha_of(6), weak_symmetry_breaking(6)
        )


class TestKLeader:
    def test_blackboard_subset_sum(self):
        assert blackboard_k_leader_solvable(alpha_of(2, 3), 2)
        assert blackboard_k_leader_solvable(alpha_of(2, 3), 3)
        assert blackboard_k_leader_solvable(alpha_of(2, 3), 5)
        assert not blackboard_k_leader_solvable(alpha_of(2, 3), 1)
        assert not blackboard_k_leader_solvable(alpha_of(2, 3), 4)

    def test_blackboard_k_bounds(self):
        with pytest.raises(ValueError):
            blackboard_k_leader_solvable(alpha_of(2, 3), 0)

    def test_mp_gcd_divides_k(self):
        assert message_passing_worst_case_k_leader_solvable(alpha_of(2, 4), 2)
        assert message_passing_worst_case_k_leader_solvable(alpha_of(2, 4), 4)
        assert not message_passing_worst_case_k_leader_solvable(
            alpha_of(2, 4), 3
        )

    def test_two_leader_exercise(self):
        """The Section 1.2 challenge, both models."""
        # blackboard: subset-sum 2
        assert two_leader_blackboard_solvable(alpha_of(2, 3))
        assert two_leader_blackboard_solvable(alpha_of(1, 1, 4))
        assert not two_leader_blackboard_solvable(alpha_of(3, 4))
        # clique worst case: gcd | 2
        assert two_leader_message_passing_solvable(alpha_of(2, 4))
        assert two_leader_message_passing_solvable(alpha_of(3, 4))
        assert not two_leader_message_passing_solvable(alpha_of(3, 3))
