"""Unit tests for the election task builders."""

import pytest

from repro.core import (
    FOLLOWER,
    LEADER,
    k_leader_election,
    leader_election,
    leader_election_complex,
    leader_election_facet,
    weak_symmetry_breaking,
)
from repro.core.projection import project_complex


class TestLeaderElection:
    def test_single_node(self):
        task = leader_election(1)
        assert task.solvable_from_sizes([1])

    def test_complex_facets(self):
        complex_ = leader_election_complex(4)
        assert complex_.facet_count() == 4
        for facet in complex_.facets:
            values = [facet.value_of(i) for i in range(4)]
            assert values.count(LEADER) == 1
            assert values.count(FOLLOWER) == 3

    def test_facet_builder(self):
        facet = leader_election_facet(3, leader=1)
        assert facet.value_of(1) == LEADER
        assert facet.value_of(0) == FOLLOWER

    def test_facet_builder_bounds(self):
        with pytest.raises(ValueError):
            leader_election_facet(3, leader=3)

    def test_projection_structure(self):
        projected = project_complex(leader_election_complex(3))
        assert len(projected.isolated_vertices()) == 3
        assert projected.facet_count() == 6


class TestKLeaderElection:
    def test_bounds(self):
        with pytest.raises(ValueError):
            k_leader_election(3, 0)
        with pytest.raises(ValueError):
            k_leader_election(3, 4)

    def test_k_equals_n(self):
        task = k_leader_election(3, 3)
        assert task.solvable_from_sizes([3])
        assert task.solvable_from_sizes([1, 2])

    def test_two_leader_solvability(self):
        task = k_leader_election(4, 2)
        assert task.solvable_from_sizes([2, 2])
        assert task.solvable_from_sizes([1, 1, 2])
        assert not task.solvable_from_sizes([4])
        assert not task.solvable_from_sizes([1, 3])

    def test_output_complex_count(self):
        # C(4,2) = 6 facets
        assert k_leader_election(4, 2).output_complex().facet_count() == 6


class TestWeakSymmetryBreaking:
    def test_needs_two_nodes(self):
        with pytest.raises(ValueError):
            weak_symmetry_breaking(1)

    def test_any_split_works(self):
        task = weak_symmetry_breaking(4)
        assert task.solvable_from_sizes([1, 3])
        assert task.solvable_from_sizes([2, 2])
        assert task.solvable_from_sizes([1, 1, 1, 1])
        assert not task.solvable_from_sizes([4])

    def test_output_complex_is_everything_but_constants(self):
        complex_ = weak_symmetry_breaking(3).output_complex()
        # 2^3 assignments minus the two constant ones.
        assert complex_.facet_count() == 6
        assert complex_.is_symmetric()
