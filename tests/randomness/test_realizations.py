"""Unit tests for realization enumeration and Lemma B.1 probabilities."""

from fractions import Fraction

import pytest

from repro.randomness import (
    RandomnessConfiguration,
    all_bit_strings,
    count_consistent_realizations,
    is_consistent,
    iter_consistent_realizations,
    iter_source_realizations,
    node_realization,
    realization_probability,
)


class TestEnumerators:
    def test_all_bit_strings_count(self):
        assert len(list(all_bit_strings(3))) == 8

    def test_all_bit_strings_lexicographic(self):
        strings = list(all_bit_strings(2))
        assert strings[0] == (0, 0)
        assert strings[-1] == (1, 1)

    def test_source_realizations_count(self):
        assert len(list(iter_source_realizations(2, 2))) == 16

    def test_consistent_realizations_count(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        found = list(iter_consistent_realizations(alpha, 2))
        assert len(found) == count_consistent_realizations(alpha, 2) == 16

    def test_node_realization_expansion(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        rho = node_realization(alpha, [(0, 1), (1, 1)])
        assert rho == ((0, 1), (0, 1), (1, 1))

    def test_node_realization_wrong_source_count(self):
        alpha = RandomnessConfiguration.independent(2)
        with pytest.raises(ValueError):
            node_realization(alpha, [(0,)])


class TestConsistency:
    def test_same_source_same_bits_required(self):
        alpha = RandomnessConfiguration.from_group_sizes([2])
        assert is_consistent(((0, 1), (0, 1)), alpha)
        assert not is_consistent(((0, 1), (1, 1)), alpha)

    def test_distinct_sources_may_coincide(self):
        alpha = RandomnessConfiguration.independent(2)
        assert is_consistent(((0,), (0,)), alpha)

    def test_size_mismatch_raises(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            is_consistent(((0,), (0,)), alpha)


class TestLemmaB1:
    def test_probability_zero_on_bad_set(self):
        alpha = RandomnessConfiguration.from_group_sizes([2])
        assert realization_probability(((0,), (1,)), alpha) == 0

    def test_probability_two_power(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        rho = ((0, 1), (0, 1), (1, 0))
        assert realization_probability(rho, alpha) == Fraction(1, 16)

    def test_total_mass_is_one(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        total = sum(
            realization_probability(rho, alpha)
            for rho in iter_consistent_realizations(alpha, 2)
        )
        assert total == 1

    def test_ragged_realization_rejected(self):
        alpha = RandomnessConfiguration.independent(2)
        with pytest.raises(ValueError):
            realization_probability(((0,), (0, 1)), alpha)

    def test_duplicate_node_realizations_counted_separately(self):
        # Two independent sources emitting the same string produce the same
        # node realization via two distinct elementary events.
        alpha = RandomnessConfiguration.independent(2)
        realizations = list(iter_consistent_realizations(alpha, 1))
        assert len(realizations) == 4
        assert len(set(realizations)) == 4  # n=2 distinct nodes => distinct

        alpha2 = RandomnessConfiguration.independent(1)
        assert len(list(iter_consistent_realizations(alpha2, 1))) == 2
