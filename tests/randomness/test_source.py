"""Unit tests for bit sources."""

import itertools

import pytest

from repro.randomness import BitSource, FixedBitSource


class TestBitSource:
    def test_bits_are_binary(self):
        source = BitSource(seed=1)
        assert all(source.bit(t) in (0, 1) for t in range(1, 50))

    def test_deterministic_given_seed(self):
        assert BitSource(7).prefix(32) == BitSource(7).prefix(32)

    def test_different_seeds_differ(self):
        assert BitSource(1).prefix(64) != BitSource(2).prefix(64)

    def test_history_is_stable(self):
        source = BitSource(3)
        first = source.bit(5)
        source.prefix(20)
        assert source.bit(5) == first

    def test_rounds_one_indexed(self):
        with pytest.raises(ValueError):
            BitSource(0).bit(0)

    def test_prefix_zero_empty(self):
        assert BitSource(0).prefix(0) == ()

    def test_prefix_string(self):
        source = FixedBitSource("0110")
        assert source.prefix_string(4) == "0110"

    def test_iteration(self):
        source = BitSource(9)
        first_five = list(itertools.islice(iter(source), 5))
        assert first_five == list(source.prefix(5))


class TestFixedBitSource:
    def test_replays_script(self):
        source = FixedBitSource([1, 0, 1])
        assert source.prefix(3) == (1, 0, 1)
        assert source.bit(2) == 0

    def test_accepts_strings(self):
        assert FixedBitSource("10").prefix(2) == (1, 0)

    def test_rejects_non_bits(self):
        with pytest.raises(ValueError):
            FixedBitSource([2, 0])

    def test_exhaustion_raises(self):
        source = FixedBitSource("01")
        with pytest.raises(IndexError):
            source.bit(3)
        with pytest.raises(IndexError):
            source.prefix(3)
