"""Unit tests for randomness configurations (the facets of A)."""

import math

import pytest

from repro.randomness import (
    RandomnessConfiguration,
    bell_number,
    enumerate_configurations,
    enumerate_size_shapes,
)


class TestConstruction:
    def test_normalization_first_seen_order(self):
        a = RandomnessConfiguration([5, 5, 2, 5])
        assert a.assignment == (0, 0, 1, 0)

    def test_renamed_sources_compare_equal(self):
        assert RandomnessConfiguration([1, 2, 1]) == RandomnessConfiguration(
            [9, 4, 9]
        )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RandomnessConfiguration([])

    def test_independent(self):
        a = RandomnessConfiguration.independent(4)
        assert a.k == 4
        assert a.group_sizes == (1, 1, 1, 1)

    def test_shared(self):
        a = RandomnessConfiguration.shared(5)
        assert a.k == 1
        assert a.group_sizes == (5,)

    def test_from_group_sizes(self):
        a = RandomnessConfiguration.from_group_sizes([2, 3])
        assert a.n == 5
        assert a.groups() == [(0, 1), (2, 3, 4)]

    def test_from_group_sizes_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            RandomnessConfiguration.from_group_sizes([2, 0])


class TestDerivedQuantities:
    def test_gcd(self):
        assert RandomnessConfiguration.from_group_sizes([2, 4]).gcd == 2
        assert RandomnessConfiguration.from_group_sizes([2, 3]).gcd == 1
        assert RandomnessConfiguration.shared(6).gcd == 6

    def test_has_singleton_source(self):
        assert RandomnessConfiguration.from_group_sizes([1, 4]).has_singleton_source
        assert not RandomnessConfiguration.from_group_sizes([2, 2]).has_singleton_source

    def test_sorted_group_sizes(self):
        a = RandomnessConfiguration.from_group_sizes([3, 1, 2])
        assert a.sorted_group_sizes == (1, 2, 3)

    def test_source_partition_blocks(self):
        a = RandomnessConfiguration([0, 1, 0])
        assert set(a.source_partition()) == {
            frozenset({0, 2}),
            frozenset({1}),
        }

    def test_hash_consistency(self):
        a = RandomnessConfiguration([0, 0, 1])
        b = RandomnessConfiguration([3, 3, 7])
        assert hash(a) == hash(b)


class TestSamplingSupport:
    def test_make_sources_count(self):
        a = RandomnessConfiguration.from_group_sizes([2, 1])
        assert len(a.make_sources(seed=0)) == 2

    def test_node_bits_shares_streams(self):
        a = RandomnessConfiguration.from_group_sizes([2, 1])
        bits = a.node_bits(a.make_sources(seed=5), t=16)
        assert bits[0] == bits[1]  # same source
        assert len(bits) == 3

    def test_node_bits_seeded_reproducible(self):
        a = RandomnessConfiguration.independent(3)
        assert a.node_bits(a.make_sources(2), 8) == a.node_bits(
            a.make_sources(2), 8
        )


class TestEnumeration:
    def test_counts_are_bell_numbers(self):
        for n in range(1, 7):
            assert len(list(enumerate_configurations(n))) == bell_number(n)

    def test_bell_numbers(self):
        assert [bell_number(n) for n in range(7)] == [1, 1, 2, 5, 15, 52, 203]

    def test_all_distinct(self):
        configs = list(enumerate_configurations(4))
        assert len(set(configs)) == len(configs)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(enumerate_configurations(0))

    def test_size_shapes_are_integer_partitions(self):
        shapes = list(enumerate_size_shapes(5))
        assert len(shapes) == 7  # p(5)
        assert all(sum(s) == 5 for s in shapes)
        assert all(tuple(sorted(s)) == s for s in shapes)

    def test_shapes_cover_configurations(self):
        shapes = set(enumerate_size_shapes(4))
        from_configs = {
            tuple(sorted(a.group_sizes)) for a in enumerate_configurations(4)
        }
        assert shapes == from_configs

    def test_gcd_matches_math(self):
        for shape in enumerate_size_shapes(6):
            a = RandomnessConfiguration.from_group_sizes(shape)
            assert a.gcd == math.gcd(*shape)
