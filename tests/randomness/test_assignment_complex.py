"""Unit tests for the assignment complex A."""

from repro.randomness import (
    RandomnessConfiguration,
    assignment_complex,
    bell_number,
    configuration_facet,
)


class TestConfigurationFacet:
    def test_one_based_names(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        facet = configuration_facet(alpha)
        assert facet.value_of(1) == 1
        assert facet.value_of(2) == 1
        assert facet.value_of(3) == 2

    def test_dimension(self):
        alpha = RandomnessConfiguration.independent(4)
        assert configuration_facet(alpha).dimension == 3


class TestAssignmentComplex:
    def test_facet_count_is_bell(self):
        for n in (1, 2, 3, 4):
            complex_ = assignment_complex(n)
            assert complex_.facet_count() == bell_number(n)

    def test_pure_of_dimension_n_minus_1(self):
        complex_ = assignment_complex(3)
        assert complex_.is_pure()
        assert complex_.dimension == 2

    def test_chromatic(self):
        assert assignment_complex(3).is_chromatic()

    def test_contiguous_source_names(self):
        # Facet values (source ids) must be 1..k for some k.
        for facet in assignment_complex(3).facets:
            values = {facet.value_of(name) for name in facet.names()}
            assert values == set(range(1, len(values) + 1))
