"""The ``repro results`` subcommand: golden outputs over a tiny sweep."""

import csv
import io
import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def run_dir(tmp_path_factory):
    path = tmp_path_factory.mktemp("results-cli") / "run"
    assert (
        main(
            [
                "sweep",
                "--shapes", "2,3", "1,2,2", "5",
                "--tasks", "leader", "k-leader:2",
                "--run-dir", str(path),
            ]
        )
        == 0
    )
    return path


class TestStats:
    def test_stats_lists_tables_and_memo(self, run_dir, capsys):
        assert main(["results", "stats", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "records" in out and "groups" in out
        assert "memo:" in out and "entries" in out

    def test_missing_warehouse_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no warehouse"):
            main(["results", "stats", str(tmp_path)])


class TestQuery:
    def test_filter_and_project(self, run_dir, capsys):
        assert (
            main(
                [
                    "results", "query", str(run_dir),
                    "--where", "model=clique",
                    "--where", "task=leader",
                    "--columns", "sizes,limit,solvable",
                    "--sort-by", "sizes",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        # Three clique shapes, one row each; gcd>1 shapes solve.
        assert out.count("True") + out.count("False") == 3
        assert "1,2,2" in out and "2,3" in out

    def test_group_aggregate(self, run_dir, capsys):
        assert (
            main(
                [
                    "results", "query", str(run_dir),
                    "--group-by", "task",
                    "--agg", "count",
                    "--agg", "mean:limit_float",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "k-leader:2" in out and "leader" in out
        assert "mean_limit_float" in out
        assert "2 rows" in out

    def test_groups_table_has_forensics_columns(self, run_dir, capsys):
        assert (
            main(["results", "query", str(run_dir), "--table", "groups"])
            == 0
        )
        out = capsys.readouterr().out
        for column in ("states", "density", "evolution", "memo_hits"):
            assert column in out

    def test_bad_where_clause(self, run_dir):
        with pytest.raises(SystemExit, match="bad --where"):
            main(["results", "query", str(run_dir), "--where", "nonsense"])

    def test_bad_where_value_for_numeric_column(self, run_dir):
        with pytest.raises(SystemExit, match="not a valid value"):
            main(["results", "query", str(run_dir), "--where", "seed=abc"])


class TestExport:
    def test_csv_round_trips_records(self, run_dir, capsys):
        assert (
            main(
                [
                    "results", "export", str(run_dir),
                    "--columns", "key,limit,solvable",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        rows = list(csv.DictReader(io.StringIO(out)))
        records = [
            json.loads(line)
            for line in (run_dir / "records.jsonl").read_text().splitlines()
        ]
        assert len(rows) == len(records)
        by_key = {record["key"]: record for record in records}
        for row in rows:
            assert row["limit"] == by_key[row["key"]]["value"]["limit"]

    def test_json_export_to_file(self, run_dir, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert (
            main(
                [
                    "results", "export", str(run_dir),
                    "--format", "json",
                    "--where", "solvable=true",
                    "-o", str(target),
                ]
            )
            == 0
        )
        assert "wrote" in capsys.readouterr().out

        def no_constants(token):  # NaN/Infinity must not appear
            raise AssertionError(f"non-strict JSON token {token}")

        rows = json.loads(target.read_text(), parse_constant=no_constants)
        assert rows and all(row["solvable"] for row in rows)
        # Unfilled kind-specific columns export as null, not NaN.
        assert all(row["estimate"] is None for row in rows)


class TestCompactAndIngest:
    def test_compact_preserves_queries(self, run_dir, capsys):
        before = main(
            ["results", "query", str(run_dir), "--group-by", "model"]
        )
        first = capsys.readouterr().out
        assert main(["results", "compact", str(run_dir)]) == 0
        assert "memo folded" in capsys.readouterr().out
        assert (
            main(["results", "query", str(run_dir), "--group-by", "model"])
            == before
        )
        assert capsys.readouterr().out == first

    def test_explicit_ingest(self, run_dir, tmp_path, capsys):
        warehouse = tmp_path / "standalone"
        assert (
            main(["results", "ingest", str(warehouse), str(run_dir)]) == 0
        )
        out = capsys.readouterr().out
        assert "ingested" in out
        assert main(["results", "stats", str(warehouse)]) == 0
        assert "records" in capsys.readouterr().out

    def test_ingest_into_run_dir_targets_its_warehouse(
        self, run_dir, tmp_path, capsys
    ):
        # Ingesting "into a run directory" must land in the same store
        # query/stats read (its warehouse/), not a parallel one.
        other = tmp_path / "other"
        assert main(["sweep", "--shapes", "2,2", "--run-dir", str(other)]) == 0
        assert main(["results", "ingest", str(run_dir), str(other)]) == 0
        capsys.readouterr()
        assert not (run_dir / "segments").exists()
        assert main(
            ["results", "query", str(run_dir), "--where", "sizes=2,2"]
        ) == 0
        assert "2,2" in capsys.readouterr().out


class TestVacuum:
    def test_vacuum_removes_ingested_run_dirs(self, tmp_path, capsys):
        run = tmp_path / "run"
        assert main(["sweep", "--shapes", "2,2", "--run-dir", str(run)]) == 0
        warehouse = tmp_path / "wh"
        assert main(["results", "ingest", str(warehouse), str(run)]) == 0
        capsys.readouterr()
        assert main(["results", "vacuum", str(warehouse), str(run)]) == 0
        out = capsys.readouterr().out
        assert "removed" in out and "vacuumed 1/1" in out
        assert not run.exists()

    def test_vacuum_refuses_its_own_warehouse_home(self, tmp_path, capsys):
        run = tmp_path / "run"
        assert main(["sweep", "--shapes", "2,2", "--run-dir", str(run)]) == 0
        capsys.readouterr()
        # The default warehouse lives inside the run directory; vacuuming
        # the run dir through it must refuse and exit nonzero.
        assert main(["results", "vacuum", str(run), str(run)]) == 1
        assert "contains-warehouse" in capsys.readouterr().out
        assert run.exists()

    def test_vacuum_needs_run_dirs(self, run_dir):
        with pytest.raises(SystemExit, match="need at least one"):
            main(["results", "vacuum", str(run_dir)])
