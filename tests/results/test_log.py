"""AppendLog: exact counts under concurrent writers, compaction safety."""

import json

from repro.results import AppendLog


def fold_counts(state, events):
    counts = dict(state or {})
    for event in events:
        key = event["k"]
        counts[key] = counts.get(key, 0) + 1
    return counts


class TestAppend:
    def test_append_and_load(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        for key in ["a", "b", "a"]:
            assert log.append({"k": key})
        assert log.load(fold_counts) == {"a": 2, "b": 1}

    def test_interleaved_writers_never_lose_events(self, tmp_path):
        # Two independent handles (two processes in real life) append
        # turn by turn; the old read-modify-write sidecar lost one
        # writer's increment in exactly this pattern.
        first = AppendLog(tmp_path, "events")
        second = AppendLog(tmp_path, "events")
        for _ in range(25):
            first.append({"k": "x"})
            second.append({"k": "x"})
        assert first.load(fold_counts) == {"x": 50}
        assert second.load(fold_counts) == {"x": 50}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        with log.log_path.open("a") as handle:
            handle.write('{"k": "tor')  # killed writer
        assert log.load(fold_counts) == {"a": 1}


class TestCompaction:
    def test_compact_preserves_counts(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        for key in ["a", "a", "b"]:
            log.append({"k": key})
        assert log.compact(fold_counts) == {"a": 2, "b": 1}
        assert not log.log_path.exists()  # rotated away
        assert log.load(fold_counts) == {"a": 2, "b": 1}

    def test_compact_is_idempotent(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        for _ in range(3):
            log.append({"k": "a"})
        assert log.compact(fold_counts) == {"a": 3}
        assert log.compact(fold_counts) == {"a": 3}
        assert log.compact(fold_counts) == {"a": 3}
        # Segments folded in one cycle are deleted the next.
        assert log.segment_paths() == []

    def test_appends_between_compactions_accumulate(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        log.compact(fold_counts)
        log.append({"k": "a"})
        assert log.load(fold_counts) == {"a": 2}
        assert log.compact(fold_counts) == {"a": 2}

    def test_crash_before_snapshot_refolds_cleanly(self, tmp_path):
        # A compaction that rotated the log but died before writing the
        # snapshot leaves an unfolded segment; the next compaction folds
        # it exactly once (the snapshot is the sole commit point).
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        (tmp_path / "events-000-crash.seg").write_text('{"k": "a"}\n')
        assert log.load(fold_counts) == {"a": 2}
        assert log.compact(fold_counts) == {"a": 2}
        assert log.compact(fold_counts) == {"a": 2}

    def test_legacy_flat_snapshot_migrates(self, tmp_path):
        # An old-format sidecar (the whole document is the state) reads
        # as the initial state and upgrades on the next compaction.
        (tmp_path / "events.json").write_text(json.dumps({"a": 7}))
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        assert log.load(fold_counts) == {"a": 8}
        assert log.compact(fold_counts) == {"a": 8}
        raw = json.loads((tmp_path / "events.json").read_text())
        assert set(raw) == {"state", "folded"}

    def test_folded_segment_still_on_disk_is_never_recounted(self, tmp_path):
        # A segment the snapshot already folded (deletion pending or
        # failed) must not contribute again -- not to reads, not to the
        # next compaction.
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        log.compact(fold_counts)
        folded = json.loads((tmp_path / "events.json").read_text())["folded"]
        assert len(folded) == 1
        # Resurrect the folded segment as if its unlink had failed.
        (tmp_path / folded[0]).write_text('{"k": "a"}\n')
        assert log.load(fold_counts) == {"a": 1}
        assert log.compact(fold_counts) == {"a": 1}

    def test_clear_removes_everything(self, tmp_path):
        log = AppendLog(tmp_path, "events")
        log.append({"k": "a"})
        log.compact(fold_counts)
        log.append({"k": "b"})
        log.clear()
        assert log.load(fold_counts) == {}
