"""Warehouse retention: vacuuming fully ingested run directories."""

import pytest

from repro.results import ResultsStore
from repro.runner import RunDirectory, SweepSpec, run_sweep


@pytest.fixture
def run_dir(tmp_path):
    path = tmp_path / "run"
    sweep = SweepSpec(shapes=((1, 2), (3,)), models=("blackboard",))
    run_sweep(sweep, run_dir=path, warehouse=False)
    return path


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "wh")


class TestVacuum:
    def test_removes_a_fully_ingested_directory(self, store, run_dir):
        assert store.ingest_run_directory(run_dir) > 0
        assert store.vacuum_run_directory(run_dir) == "removed"
        assert not run_dir.exists()
        # The warehouse still serves the records it certified.
        assert len(store.table("records")) > 0

    def test_accepts_a_run_directory_object(self, store, run_dir):
        directory = RunDirectory(run_dir)
        store.ingest_run_directory(directory)
        assert store.vacuum_run_directory(directory) == "removed"
        assert not run_dir.exists()

    def test_refuses_uningested_records(self, store, run_dir):
        store.ingest_run_directory(run_dir)
        with (run_dir / "records.jsonl").open("a") as handle:
            handle.write('{"index": 99}\n')
        assert store.vacuum_run_directory(run_dir) == "not-covered"
        assert run_dir.exists()

    def test_refuses_a_torn_trailing_line(self, store, run_dir):
        # run_directory_records tolerates a torn tail; vacuum must not,
        # because deleting would destroy the only copy of those bytes.
        store.ingest_run_directory(run_dir)
        with (run_dir / "records.jsonl").open("a") as handle:
            handle.write('{"index": 99')  # no newline
        assert store.run_directory_records(run_dir) is not None
        assert store.vacuum_run_directory(run_dir) == "not-covered"
        assert run_dir.exists()

    def test_refuses_an_out_of_band_shrink(self, store, run_dir):
        store.ingest_run_directory(run_dir)
        records = run_dir / "records.jsonl"
        records.write_text(records.read_text()[:10])
        assert store.vacuum_run_directory(run_dir) == "not-covered"
        assert run_dir.exists()

    def test_missing_records_is_reported_not_deleted(self, store, tmp_path):
        bare = tmp_path / "bare"
        bare.mkdir()
        (bare / "keepsake.txt").write_text("not a run directory")
        assert store.vacuum_run_directory(bare) == "missing"
        assert (bare / "keepsake.txt").exists()

    def test_never_deletes_its_own_warehouse(self, run_dir):
        store = ResultsStore(run_dir / "warehouse")
        store.ingest_run_directory(run_dir)
        assert store.vacuum_run_directory(run_dir) == "contains-warehouse"
        assert run_dir.exists()
        assert store.vacuum_run_directory(run_dir / "warehouse") == (
            "contains-warehouse"
        )

    def test_untouched_directory_is_not_covered(self, store, run_dir):
        assert store.vacuum_run_directory(run_dir) == "not-covered"
        assert run_dir.exists()

    def test_live_sidecar_files_never_block_vacuum(self, store, tmp_path):
        # progress.jsonl and heartbeats/ are run-dir *metadata* (see
        # STORE.md): the warehouse never ingests them, so vacuum must
        # delete them with the directory without requiring coverage.
        from repro.chain import clear_memo

        path = tmp_path / "live-run"
        sweep = SweepSpec(shapes=((1, 2), (3,)), models=("blackboard",))
        clear_memo()
        run_sweep(
            sweep,
            run_dir=path,
            warehouse=False,
            live={"interval": 0.0, "poll": 0.05},
        )
        assert (path / "progress.jsonl").exists()
        assert list((path / "heartbeats").glob("*.log"))
        store.ingest_run_directory(path)
        assert store.vacuum_run_directory(path) == "removed"
        assert not path.exists()
