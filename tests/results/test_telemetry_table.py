"""Multi-sweep telemetry and models tables in one warehouse.

The cross-run analytics tier (`repro.obs.analyze`) assumes the
warehouse keeps telemetry from *different* traced sweeps apart: rows
carry their sweep's clock stamp and master seed, and both must survive
segment writes and compaction so `metrics history --master-seed` and
`obs diff` read clean per-sweep slices.  Same for the versioned
``models`` table the calibration pass appends to.
"""

import pytest

from repro.results import ResultsStore, col
from repro.results.store import MODEL_COLUMNS, TELEMETRY_COLUMNS


def sweep_rows(stamp, master_seed, jobs):
    return [
        {
            "stamp": float(stamp),
            "master_seed": int(master_seed),
            "kind": "counter",
            "name": "runner.jobs",
            "value": float(jobs),
            "count": int(jobs),
        },
        {
            "stamp": float(stamp),
            "master_seed": int(master_seed),
            "kind": "span.self",
            "name": "sweep.execute",
            "value": 0.5,
            "count": 1,
        },
    ]


@pytest.fixture
def store(tmp_path):
    store = ResultsStore(tmp_path / "warehouse")
    store.append_rows("telemetry", sweep_rows(100.0, 0, 10), TELEMETRY_COLUMNS)
    store.append_rows("telemetry", sweep_rows(200.0, 7, 20), TELEMETRY_COLUMNS)
    return store


class TestMultiSweepTelemetry:
    def test_sweeps_keep_distinguishable_stamps(self, store):
        table = store.table("telemetry")
        assert sorted(set(table.column("stamp"))) == [100.0, 200.0]
        # Stamp identifies the sweep: each slice is internally uniform.
        for stamp, seed in ((100.0, 0), (200.0, 7)):
            rows = table.filter(col("stamp") == stamp).to_rows()
            assert rows and all(r["master_seed"] == seed for r in rows)

    def test_query_by_master_seed_selects_one_sweep(self, store):
        table = store.table("telemetry")
        second = table.filter(col("master_seed") == 7)
        assert len(second) == 2
        assert set(second.column("stamp")) == {200.0}
        assert len(table.filter(col("master_seed") == 3)) == 0

    def test_slices_survive_compaction(self, store):
        store.compact()
        table = store.table("telemetry")
        assert len(table) == 4
        counters = table.filter(col("kind") == "counter").sort_by(["stamp"])
        assert counters.column("value").tolist() == [10.0, 20.0]
        assert counters.column("master_seed").tolist() == [0, 7]


class TestModelsTable:
    def test_models_rows_survive_compaction_in_append_order(self, tmp_path):
        from repro.obs.calibrate import model_row
        from repro.obs.policy import CostModel

        store = ResultsStore(tmp_path / "warehouse")
        old = CostModel("evolve.dense", ("log2_states", "log2_nnz"),
                        (-20.0, 1.0, 0.5))
        new = CostModel("evolve.dense", ("log2_states", "log2_nnz"),
                        (-19.0, 1.1, 0.4))
        store.append_rows("models", [model_row(old, 100.0)], MODEL_COLUMNS)
        store.append_rows("models", [model_row(new, 200.0)], MODEL_COLUMNS)
        store.compact()
        digests = store.table("models").column("digest").tolist()
        assert digests == [old.digest(), new.digest()]
        # Latest-wins load order is what the policy depends on.
        from repro.obs.calibrate import load_cost_models

        assert load_cost_models(store)["evolve.dense"] == new
