"""Vectorized table expressions: filter, project, group-aggregate."""

import numpy as np
import pytest

from repro.results import Table, col


@pytest.fixture
def table():
    return Table(
        {
            "model": np.asarray(
                ["clique", "blackboard", "clique", "clique"], dtype=np.str_
            ),
            "gcd": np.asarray([1, 2, 2, 3], dtype=np.int64),
            "limit": np.asarray([1.0, 0.0, 1.0, 0.5]),
            "solvable": np.asarray([True, False, True, False]),
        }
    )


class TestPredicates:
    def test_string_equality(self, table):
        assert len(table.filter(col("model") == "clique")) == 3

    def test_numeric_comparisons(self, table):
        assert len(table.filter(col("gcd") >= 2)) == 3
        assert len(table.filter(col("limit") < 1.0)) == 2

    def test_boolean_truthiness(self, table):
        assert len(table.filter(col("solvable"))) == 2

    def test_conjunction_disjunction_negation(self, table):
        both = table.filter((col("model") == "clique") & (col("gcd") > 1))
        assert len(both) == 2
        either = table.filter((col("gcd") == 1) | (col("gcd") == 3))
        assert len(either) == 2
        inverted = table.filter(~(col("model") == "clique"))
        assert inverted.column("model").tolist() == ["blackboard"]

    def test_isin(self, table):
        assert len(table.filter(col("gcd").isin([1, 3]))) == 2

    def test_unknown_column_raises(self, table):
        with pytest.raises(KeyError, match="no column"):
            table.filter(col("nope") == 1)


class TestVerbs:
    def test_project_and_head(self, table):
        small = table.project(["model", "gcd"]).head(2)
        assert sorted(small.columns) == ["gcd", "model"]
        assert len(small) == 2

    def test_sort_by(self, table):
        ordered = table.sort_by(["gcd", "model"])
        assert ordered.column("gcd").tolist() == [1, 2, 2, 3]
        assert ordered.column("model").tolist()[1:3] == [
            "blackboard", "clique",
        ]

    def test_ragged_columns_rejected(self):
        with pytest.raises(ValueError, match="ragged"):
            Table({"a": np.zeros(2), "b": np.zeros(3)})

    def test_to_rows_unboxes_scalars(self, table):
        row = table.head(1).to_rows()[0]
        assert type(row["gcd"]) is int
        assert type(row["model"]) is str
        assert type(row["solvable"]) is bool


class TestGroupBy:
    def test_count_and_mean(self, table):
        grouped = table.group_by(
            ["model"], {"n": ("count",), "mean_limit": ("mean", "limit")}
        )
        rows = {row["model"]: row for row in grouped.to_rows()}
        assert rows["clique"]["n"] == 3
        assert rows["clique"]["mean_limit"] == pytest.approx(2.5 / 3)
        assert rows["blackboard"]["n"] == 1

    def test_min_max_sum(self, table):
        grouped = table.group_by(
            ["model"],
            {
                "lo": ("min", "limit"),
                "hi": ("max", "limit"),
                "total": ("sum", "gcd"),
            },
        )
        rows = {row["model"]: row for row in grouped.to_rows()}
        assert rows["clique"]["lo"] == 0.5
        assert rows["clique"]["hi"] == 1.0
        assert rows["clique"]["total"] == 6

    def test_any_all(self, table):
        grouped = table.group_by(
            ["model"],
            {"some": ("any", "solvable"), "every": ("all", "solvable")},
        )
        rows = {row["model"]: row for row in grouped.to_rows()}
        assert rows["clique"]["some"] and not rows["clique"]["every"]
        assert not rows["blackboard"]["some"]

    def test_multi_key_groups_are_sorted(self, table):
        grouped = table.group_by(["model", "gcd"], {"n": ("count",)})
        keys = list(
            zip(
                grouped.column("model").tolist(),
                grouped.column("gcd").tolist(),
            )
        )
        assert keys == sorted(keys)
        assert sum(grouped.column("n").tolist()) == len(table)

    def test_unknown_aggregate_rejected(self, table):
        with pytest.raises(ValueError, match="unknown aggregate"):
            table.group_by(["model"], {"x": ("median", "limit")})
