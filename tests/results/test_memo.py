"""Cross-run query memo: byte-identical hits, skipped passes."""

import json
from fractions import Fraction

import pytest

from repro.chain import (
    Query,
    clear_memo,
    compile_chain,
    run_group_queries,
    run_queries,
)
from repro.core import k_leader_election, leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.results import (
    configure_query_memo,
    decode_value,
    encode_value,
    query_memo,
    query_token,
    task_token,
)
from repro.runner import SweepSpec, run_sweep


@pytest.fixture
def memo(tmp_path):
    installed = configure_query_memo(tmp_path / "memo")
    yield installed
    configure_query_memo(None)


def queries_for(n):
    task = leader_election(n)
    return [
        Query.limit(task),
        Query.expected_time(task),
        Query.series(task, 4),
        Query.probability(task, 3),
        Query.solvable(task),
    ]


class TestValueCodec:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            7,
            Fraction(3, 7),
            Fraction(1),
            0.1 + 0.2,  # not exactly representable in decimal
            float("inf"),
            [Fraction(1, 3), Fraction(2, 3)],
            [0.25, 0.5],
            [],
        ],
    )
    def test_round_trip_is_exact(self, value):
        decoded = decode_value(encode_value(value))
        if isinstance(value, tuple):
            value = list(value)
        assert decoded == value
        assert type(decoded) is type(value) or isinstance(value, list)

    def test_fraction_survives_json(self):
        encoded = json.loads(json.dumps(encode_value(Fraction(22, 7))))
        assert decode_value(encoded) == Fraction(22, 7)

    def test_tokens_need_value_identity(self):
        assert task_token(leader_election(3)) is not None
        assert task_token(object()) is None
        assert query_token("digest", "limit", object(), None, "exact") is None

    def test_distinct_tasks_get_distinct_tokens(self):
        one = query_token(
            "d", "limit", leader_election(4), None, "exact"
        )
        other = query_token(
            "d", "limit", k_leader_election(4, 2), None, "exact"
        )
        assert one != other

    def test_solvable_keys_exact_under_any_backend(self):
        task = leader_election(3)
        assert query_token("d", "solvable", task, None, "float") == (
            query_token("d", "solvable", task, None, "exact")
        )


class TestRunQueriesMemo:
    def test_exact_hits_are_byte_identical(self, memo):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        cold = run_queries(chain, queries_for(5))
        assert memo.stats()["entries"] == len(cold)
        warm = run_queries(chain, queries_for(5))
        assert warm == cold
        for lhs, rhs in zip(warm, cold):
            assert type(lhs) is type(rhs)
        assert memo.stats()["hits"] >= len(cold)

    def test_float_hits_are_bit_exact(self, memo):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        cold = run_queries(chain, queries_for(5), backend="float")
        warm = run_queries(chain, queries_for(5), backend="float")
        assert warm == cold

    def test_backends_never_share_entries(self, memo):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        task = leader_election(5)
        exact = run_queries(chain, [Query.limit(task)])[0]
        floaty = run_queries(chain, [Query.limit(task)], backend="float")[0]
        assert isinstance(exact, Fraction)
        assert isinstance(floaty, float)

    def test_group_queries_skip_memoized_items(self, memo):
        items = []
        for shape in [(2, 3), (1, 2, 2), (5,)]:
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            chain = compile_chain(alpha, adversarial_assignment(shape))
            items.append((chain, queries_for(5)))
        cold = run_group_queries(items)
        # Memoize only the first item fully, then re-ask everything: the
        # group pass must answer the rest and splice hits back in order.
        warm = run_group_queries(items)
        assert warm == cold
        partial = run_group_queries(items[:1] + [items[2]])
        assert partial == [cold[0], cold[2]]

    def test_memo_survives_process_restart(self, tmp_path):
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        configure_query_memo(tmp_path / "memo")
        cold = run_queries(chain, queries_for(5))
        configure_query_memo(None)
        # A "new process": a fresh instance over the same directory.
        fresh = configure_query_memo(tmp_path / "memo")
        assert len(fresh) == len(cold)
        warm = run_queries(chain, queries_for(5))
        configure_query_memo(None)
        assert warm == cold

    def test_no_memo_means_no_overhead_path(self):
        assert query_memo() is None
        alpha = RandomnessConfiguration.from_group_sizes((2, 3))
        chain = compile_chain(alpha, adversarial_assignment((2, 3)))
        assert run_queries(chain, [Query.limit(leader_election(5))])


class TestWarmSweepIdentity:
    def test_warm_rerun_is_byte_identical_minus_timing(self, tmp_path):
        sweep = SweepSpec.for_total_size(
            4, models=("blackboard", "clique"), tasks=("leader", "weak-sb")
        )
        warehouse = tmp_path / "warehouse"
        run_sweep(sweep, run_dir=tmp_path / "cold", warehouse=warehouse)
        clear_memo()  # drop compiled chains: warm must win via the memo
        outcome = run_sweep(
            sweep, run_dir=tmp_path / "warm", warehouse=warehouse
        )
        # Every exact cell came from the memo, no chain was compiled.
        assert sum(g["memo_hits"] for g in outcome.group_stats) == (
            outcome.total
        )
        assert all(g["chains"] == 0 for g in outcome.group_stats)

        def lines(path):
            return [
                {k: v for k, v in json.loads(line).items() if k != "elapsed"}
                for line in path.read_text().splitlines()
            ]

        assert lines(tmp_path / "cold" / "records.jsonl") == lines(
            tmp_path / "warm" / "records.jsonl"
        )
