"""Columnar store: segments, watermarked ingestion, compaction."""

import json

import pytest

from repro.results import ResultsStore, flatten_record, unflatten_row
from repro.runner import SweepSpec, run_sweep


@pytest.fixture
def sweep():
    return SweepSpec(
        shapes=((2, 3), (1, 2, 2), (5,)),
        models=("blackboard", "clique"),
        tasks=("leader", "k-leader:2"),
    )


@pytest.fixture
def run_dir(tmp_path, sweep):
    path = tmp_path / "run"
    run_sweep(sweep, run_dir=path, warehouse=False)
    return path


SCHEMA = {"name": "str", "count": "int", "score": "float", "ok": "bool"}

ROWS = [
    {"name": "alpha", "count": 3, "score": 0.5, "ok": True},
    {"name": "beta", "count": -1, "score": 2.25, "ok": False},
    {"name": "alpha", "count": 0, "score": 0.0, "ok": True},
]


class TestSegments:
    def test_append_rows_round_trip(self, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        store.append_rows("things", ROWS, SCHEMA, name="things-1")
        table = store.table("things")
        assert len(table) == 3
        assert table.to_rows() == ROWS

    def test_typed_column_pages(self, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        store.append_rows("things", ROWS, SCHEMA, name="things-1")
        table = store.table("things")
        assert table.column("count").dtype.kind == "i"
        assert table.column("score").dtype.kind == "f"
        assert table.column("ok").dtype.kind == "b"
        assert table.column("name").dtype.kind == "U"

    def test_write_segment_is_idempotent_by_name(self, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        assert store.append_rows("t", ROWS, SCHEMA, name="seg") is not None
        assert store.append_rows("t", ROWS[:1], SCHEMA, name="seg") is None
        assert len(store.table("t")) == 3

    def test_segments_without_manifest_are_invisible(self, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        store.append_rows("t", ROWS, SCHEMA, name="seg")
        # A crash between page write and manifest commit leaves a bare
        # npz; readers must not see a phantom segment.
        (store.segment_dir / "ghost.npz").write_bytes(b"not a segment")
        assert [info.name for info in store.segments("t")] == ["seg"]


class TestIngestion:
    def test_ingest_flattens_every_record(self, run_dir, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        added = store.ingest_run_directory(run_dir)
        records = [
            json.loads(line)
            for line in (run_dir / "records.jsonl").read_text().splitlines()
        ]
        assert added == len(records)
        rebuilt = [unflatten_row(row) for row in
                   store.table("records").to_rows()]
        assert rebuilt == records

    def test_ingest_is_incremental_and_idempotent(self, run_dir, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        assert store.ingest_run_directory(run_dir) > 0
        # Nothing new: the watermark already covers the file.
        assert store.ingest_run_directory(run_dir) == 0
        baseline = store.total_rows("records")
        # Append two more records; only they ingest.
        lines = (run_dir / "records.jsonl").read_text().splitlines()
        with (run_dir / "records.jsonl").open("a") as handle:
            for line in lines[:2]:
                handle.write(line + "\n")
        assert store.ingest_run_directory(run_dir) == 2
        assert store.total_rows("records") == baseline + 2

    def test_ingest_resumes_after_kill(self, run_dir, tmp_path):
        # A killed writer leaves a torn trailing line; ingestion stops
        # at the last complete record and picks the rest up once the
        # line is completed -- no duplicates, no lost rows.
        store = ResultsStore(tmp_path / "wh")
        records_path = run_dir / "records.jsonl"
        whole = records_path.read_text()
        lines = whole.splitlines(keepends=True)
        torn = "".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2]
        records_path.write_text(torn)
        assert store.ingest_run_directory(run_dir) == len(lines) - 1
        # The job re-runs on resume and re-appends its record whole.
        records_path.write_text("".join(lines[:-1]) + lines[-1])
        assert store.ingest_run_directory(run_dir) == 1
        rebuilt = [unflatten_row(row) for row in
                   store.table("records").to_rows()]
        assert rebuilt == [json.loads(line) for line in lines]

    def test_run_directory_records_match_jsonl_scan(self, run_dir, tmp_path):
        from repro.runner import RunDirectory

        store = ResultsStore(tmp_path / "wh")
        directory = RunDirectory(run_dir)
        assert store.run_directory_records(directory) is None  # not covered
        store.ingest_run_directory(directory)
        assert (
            store.run_directory_records(directory)
            == directory.load_records()
        )

    def test_uncovered_tail_forces_jsonl_fallback(self, run_dir, tmp_path):
        from repro.runner import RunDirectory

        store = ResultsStore(tmp_path / "wh")
        directory = RunDirectory(run_dir)
        store.ingest_run_directory(directory)
        with directory.records_path.open("a") as handle:
            handle.write('{"k": 1}\n')
        assert store.run_directory_records(directory) is None

    def test_shrunken_log_forces_jsonl_fallback(self, run_dir, tmp_path):
        # An out-of-band truncation (the documented way to simulate an
        # interruption) must re-run the lost jobs: the JSONL stays the
        # source of truth, stale column pages are never served over it.
        from repro.runner import RunDirectory

        store = ResultsStore(tmp_path / "wh")
        directory = RunDirectory(run_dir)
        store.ingest_run_directory(directory)
        lines = directory.records_path.read_text().splitlines(keepends=True)
        directory.records_path.write_text("".join(lines[:3]))
        assert store.run_directory_records(directory) is None


class TestFlattening:
    def test_non_canonical_record_round_trips_via_extra(self):
        weird = {"key": "custom", "anything": [1, {"deep": None}]}
        row = flatten_record(weird)
        assert row["extra"]
        assert row["key"] == "custom"
        assert unflatten_row(row) == weird

    def test_non_dict_record_round_trips(self):
        row = flatten_record([1, 2, 3])
        assert unflatten_row(row) == [1, 2, 3]

    def test_sample_records_round_trip(self):
        record = {
            "key": "k", "index": 4,
            "spec": {
                "sizes": [2, 3], "model": "clique", "ports": "adversarial",
                "task": "leader", "kind": "sample", "t": 4,
                "samples": 100, "replicate": 1,
            },
            "seed": 99, "gcd": 1,
            "value": {"estimate": 0.25, "successes": 25, "samples": 100},
            "elapsed": 0.125,
        }
        row = flatten_record(record)
        assert not row["extra"]
        assert unflatten_row(row) == record


class TestCompaction:
    def _filled(self, tmp_path):
        store = ResultsStore(tmp_path / "wh")
        for i in range(3):
            store.append_rows(
                "t", [dict(row, count=i) for row in ROWS], SCHEMA,
                name=f"part-{i}",
            )
        return store

    def test_compact_merges_and_preserves_rows(self, tmp_path):
        store = self._filled(tmp_path)
        before = store.table("t").to_rows()
        summary = store.compact()
        assert summary["merged"] == 1
        assert len(store.segments("t")) == 1
        assert store.table("t").to_rows() == before

    def test_compact_is_idempotent(self, tmp_path):
        store = self._filled(tmp_path)
        store.compact()
        before = store.table("t").to_rows()
        assert store.compact()["merged"] == 0
        assert store.table("t").to_rows() == before

    def test_crash_between_merge_and_delete_never_duplicates(self, tmp_path):
        store = self._filled(tmp_path)
        rows = store.table("t").to_rows()
        members = [info.name for info in store.segments("t")]
        # Simulate the crash: write the merged segment (manifest lists
        # what it replaces) but leave the members on disk.
        store.write_segment(
            "t--merged-crash", "t", rows, SCHEMA, replaces=members
        )
        assert store.table("t").to_rows() == rows  # members skipped
        # The re-run cleans the members up and converges.
        store.compact()
        assert store.table("t").to_rows() == rows
        assert [info.name for info in store.segments("t")] == [
            "t--merged-crash"
        ]

    def test_ingest_after_compaction_continues_watermark(
        self, run_dir, tmp_path
    ):
        store = ResultsStore(tmp_path / "wh")
        store.ingest_run_directory(run_dir)
        lines = (run_dir / "records.jsonl").read_text().splitlines()
        total = len(lines)
        with (run_dir / "records.jsonl").open("a") as handle:
            handle.write(lines[0] + "\n")
        store.ingest_run_directory(run_dir)
        store.compact()
        with (run_dir / "records.jsonl").open("a") as handle:
            handle.write(lines[1] + "\n")
        assert store.ingest_run_directory(run_dir) == 1
        assert store.total_rows("records") == total + 2
