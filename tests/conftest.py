"""Keep process-global chain-engine state from leaking between tests."""

import pytest


@pytest.fixture(autouse=True)
def _reset_quotient_mode():
    """The CLI entry points set the process-wide quotient mode (their
    default is "auto"); restore the library default afterwards so a test
    that routes through ``repro.cli.main`` cannot change which chain a
    later test's ``compile_chain`` returns."""
    yield
    from repro.chain import configure_quotient

    configure_quotient("off")


@pytest.fixture(autouse=True)
def _reset_cost_model_policy():
    """CLI entry points (``--policy measured``) configure the process-wide
    cost-model policy; restore the static default afterwards so a test
    that routes through ``repro.cli.main`` cannot change which evolution
    strategy or group budget a later test observes."""
    yield
    from repro.obs import configure_policy

    configure_policy()
