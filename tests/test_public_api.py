"""Quality gates on the public API surface.

A downstream user navigates by ``__all__`` and docstrings; these tests
keep both honest: every advertised name must exist, every public callable
must be documented, and the package version must be consistent.
"""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.topology",
    "repro.randomness",
    "repro.models",
    "repro.core",
    "repro.algorithms",
    "repro.analysis",
    "repro.runner",
    "repro.results",
    "repro.sampling",
    "repro.obs",
    "repro.viz",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_names_resolve(module_name):
    module = importlib.import_module(module_name)
    assert hasattr(module, "__all__"), f"{module_name} lacks __all__"
    for name in module.__all__:
        assert hasattr(module, name), f"{module_name}.{name} missing"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_lists_are_duplicate_free(module_name):
    module = importlib.import_module(module_name)
    assert len(module.__all__) == len(set(module.__all__))


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_documented(module_name):
    module = importlib.import_module(module_name)
    undocumented = []
    for name in module.__all__:
        obj = getattr(module, name)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            if not inspect.getdoc(obj):
                undocumented.append(name)
    assert not undocumented, f"{module_name}: {undocumented}"


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_docstrings(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()


def test_version_consistency():
    import repro

    assert repro.__version__ == "1.0.0"

    import pathlib
    import tomllib

    pyproject = pathlib.Path(repro.__file__).parents[2] / "pyproject.toml"
    data = tomllib.loads(pyproject.read_text())
    assert data["project"]["version"] == repro.__version__


def test_py_typed_marker_present():
    import pathlib

    import repro

    assert (pathlib.Path(repro.__file__).parent / "py.typed").exists()


def test_public_class_methods_documented():
    """Spot-check the workhorse classes for per-method docs."""
    from repro.core import ConsistencyChain
    from repro.models import GraphTopology, PortAssignment
    from repro.topology import Simplex, SimplicialComplex

    for cls in (ConsistencyChain, SimplicialComplex, Simplex, PortAssignment, GraphTopology):
        for name, member in inspect.getmembers(cls, inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name}"
