"""Kernel contracts: substream purity, prefix stability, and bit-exact
agreement between the vectorized solvers and the scalar oracle."""

import numpy as np
import pytest

from repro.core import leader_election
from repro.core.task_zoo import unique_ids
from repro.models import adversarial_assignment, random_assignment
from repro.randomness import RandomnessConfiguration
from repro.sampling import (
    BLOCK_SAMPLES,
    block_indicators,
    chain_draws,
    philox_key,
    resolve_method,
    scalar_block_indicators,
    source_words,
    words_needed,
)


class TestSubstreams:
    def test_key_is_a_pure_function(self):
        assert np.array_equal(philox_key(7, 3), philox_key(7, 3))
        assert not np.array_equal(philox_key(7, 3), philox_key(7, 4))
        assert not np.array_equal(philox_key(7, 3), philox_key(8, 3))

    def test_blocks_are_independent_of_generation_order(self):
        # Generating block 5 never requires blocks 0..4: counter-based
        # keys, not sequential state.
        late = source_words(11, 5, 3, 2)
        early = source_words(11, 0, 3, 2)
        again = source_words(11, 5, 3, 2)
        assert np.array_equal(late, again)
        assert not np.array_equal(late, early)

    def test_word_prefix_extension(self):
        # More words on the same key extends -- never reshuffles -- the
        # earlier words, so horizons t and t' > t share their first
        # rounds (the CRN property across the t axis).
        small = source_words(3, 0, 4, 1)
        large = source_words(3, 0, 4, 3)
        assert np.array_equal(large[:, :, :1], small)

    def test_chain_draw_prefix_extension(self):
        assert np.array_equal(chain_draws(9, 2, 6)[:, :4], chain_draws(9, 2, 4))

    def test_shapes(self):
        assert source_words(0, 0, 5, 2).shape == (BLOCK_SAMPLES, 5, 2)
        assert chain_draws(0, 0, 3).shape == (BLOCK_SAMPLES, 3)
        assert words_needed(1) == words_needed(64) == 1
        assert words_needed(65) == 2
        with pytest.raises(ValueError):
            words_needed(0)

    def test_resolve_method(self):
        assert resolve_method("auto") == "bits"
        assert resolve_method("chain") == "chain"
        with pytest.raises(ValueError):
            resolve_method("quantum")


# The sharp correctness test: the vectorized solvers must reproduce the
# per-trajectory oracle (realization_solves over the same Philox words)
# bit for bit, trial by trial.
ORACLE_CASES = [
    pytest.param((1, 2), None, 3, id="blackboard-1,2-t3"),
    pytest.param((2, 2), None, 5, id="blackboard-2,2-t5"),
    pytest.param((1, 1, 2), None, 4, id="blackboard-1,1,2-t4"),
    pytest.param((1, 2), "adversarial", 3, id="clique-adv-1,2-t3"),
    pytest.param((2, 3), "adversarial", 4, id="clique-adv-2,3-t4"),
    pytest.param((1, 1, 2), "random", 4, id="clique-rand-1,1,2-t4"),
]


class TestBitExactness:
    @pytest.mark.parametrize("sizes,port_kind,t", ORACLE_CASES)
    def test_bits_matches_scalar_oracle(self, sizes, port_kind, t):
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        if port_kind == "adversarial":
            ports = adversarial_assignment(sizes)
        elif port_kind == "random":
            ports = random_assignment(alpha.n, 5)
        else:
            ports = None
        task = leader_election(alpha.n)
        fast = block_indicators(
            alpha, task, t, ports, stream_seed=17, block=2, method="bits"
        )
        slow = scalar_block_indicators(
            alpha, task, t, ports, stream_seed=17, block=2
        )
        assert fast.dtype == bool and fast.shape == (BLOCK_SAMPLES,)
        assert np.array_equal(fast, slow)

    def test_scalar_is_the_method_behind_method_scalar(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = unique_ids(3)
        via_method = block_indicators(
            alpha, task, 3, stream_seed=1, block=0, method="scalar"
        )
        direct = scalar_block_indicators(
            alpha, task, 3, stream_seed=1, block=0
        )
        assert np.array_equal(via_method, direct)

    def test_distinct_blocks_sample_distinct_trials(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        a = block_indicators(alpha, task, 1, stream_seed=0, block=0)
        b = block_indicators(alpha, task, 1, stream_seed=0, block=1)
        assert 0 < a.sum() < BLOCK_SAMPLES  # intermediate probability
        assert not np.array_equal(a, b)
