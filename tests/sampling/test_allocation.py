"""Adaptive allocation and common-random-numbers comparisons."""

import pytest

from repro.core import leader_election
from repro.core.task_zoo import unique_ids
from repro.randomness import RandomnessConfiguration
from repro.sampling import (
    adaptive_cell_estimate,
    allocate_budget,
    paired_difference,
    sample_cell,
)


def _cell(sizes, task, t, *, stream_seed, **extra):
    alpha = RandomnessConfiguration.from_group_sizes(sizes)
    return {
        "alpha": alpha,
        "task": task,
        "t": t,
        "stream_seed": stream_seed,
        **extra,
    }


class TestAdaptiveCell:
    def test_stops_when_narrow_enough(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        estimate = adaptive_cell_estimate(
            alpha, task, 3, stream_seed=0, target_width=0.02,
            initial=1000, increment=1000, max_samples=64000,
        )
        low, high = estimate.interval()
        assert high - low <= 0.02
        assert estimate.samples < 64000

    def test_adaptive_run_is_a_one_shot_prefix(self):
        # Adaptivity decides when to stop, never what is measured: the
        # stopped estimate is bit-identical to a one-shot run of the
        # same size over the same stream.
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        adaptive = adaptive_cell_estimate(
            alpha, task, 3, stream_seed=3, target_width=0.03,
            initial=500, increment=700,
        )
        one_shot = sample_cell(
            alpha, task, 3, stream_seed=3, samples=adaptive.samples
        )
        assert adaptive == one_shot

    def test_respects_the_cap(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        estimate = adaptive_cell_estimate(
            alpha, task, 3, stream_seed=0, target_width=0.0001,
            initial=1000, increment=1000, max_samples=3000,
        )
        assert estimate.samples == 3000

    def test_validation(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        with pytest.raises(ValueError):
            adaptive_cell_estimate(
                alpha, task, 3, stream_seed=0, target_width=0.0
            )


class TestBudgetAllocation:
    def test_spends_exactly_the_budget(self):
        cells = [
            _cell((1, 2), leader_election(3), 2, stream_seed=0),
            _cell((1, 2), leader_election(3), 4, stream_seed=0),
            _cell((1, 3), unique_ids(4), 3, stream_seed=1),
        ]
        estimates = allocate_budget(
            cells, 9000, initial=1000, increment=1000
        )
        assert sum(e.samples for e in estimates) == 9000
        assert all(e.samples >= 1000 for e in estimates)

    def test_widest_interval_gets_the_top_ups(self):
        # t=4 sits near certainty (narrow interval), t=1 near the middle
        # (wide interval): the extra budget must flow to the wide cell.
        narrow = _cell((1, 2), leader_election(3), 4, stream_seed=0)
        wide = _cell((1, 2), leader_election(3), 1, stream_seed=0)
        estimates = allocate_budget(
            [narrow, wide], 6000, initial=1000, increment=1000
        )
        assert estimates[1].samples > estimates[0].samples

    def test_deterministic(self):
        cells = [
            _cell((1, 2), leader_election(3), 2, stream_seed=0),
            _cell((2, 3), leader_election(5), 3, stream_seed=7),
        ]
        first = allocate_budget(cells, 5000)
        again = allocate_budget(cells, 5000)
        assert first == again

    def test_validation(self):
        cell = _cell((1, 2), leader_election(3), 2, stream_seed=0)
        with pytest.raises(ValueError):
            allocate_budget([cell], 0)
        with pytest.raises(ValueError):
            allocate_budget([cell, cell, cell], 2, initial=1000)
        assert allocate_budget([], 100) == []


class TestCommonRandomNumbers:
    def test_paired_variance_beats_independent(self):
        # The canonical CRN comparison: the same cell at two horizons.
        # Solvability is monotone in t over shared source words, so the
        # trials are strongly positively coupled and pairing must cut
        # the difference variance well below the independent-streams sum.
        a = _cell((1, 2), leader_election(3), 4, stream_seed=0)
        b = _cell((1, 2), leader_election(3), 2, stream_seed=0)
        result = paired_difference(a, b, stream_seed=5, samples=4000)
        assert result["samples"] == 4000
        assert 0 <= result["difference"] <= 1  # monotone in t
        assert result["paired_variance"] < result["independent_variance"]

    def test_difference_matches_shared_stream_cells(self):
        # Both cells see the same (seed, block) words, so the paired
        # difference must equal the difference of the two cell
        # estimates on that stream -- bit-exactly.
        a = _cell((1, 2), leader_election(3), 4, stream_seed=0)
        b = _cell((1, 2), leader_election(3), 2, stream_seed=0)
        result = paired_difference(a, b, stream_seed=5, samples=3000)
        est_a = sample_cell(
            a["alpha"], a["task"], 4, stream_seed=5, samples=3000
        )
        est_b = sample_cell(
            b["alpha"], b["task"], 2, stream_seed=5, samples=3000
        )
        expected = (est_a.successes - est_b.successes) / 3000
        assert result["difference"] == pytest.approx(expected, abs=0)

    def test_validation(self):
        a = _cell((1, 2), leader_election(3), 2, stream_seed=0)
        with pytest.raises(ValueError):
            paired_difference(a, a, stream_seed=0, samples=1)
