"""Sampled sweeps through the runner: engine-independent bytes and
warehouse-backed MC cells that merge across budgets."""

import json

import pytest

from repro.obs import OBS, configure_tracing, reset_telemetry
from repro.runner import ProcessPoolEngine, SerialEngine, SweepSpec, run_sweep


@pytest.fixture
def sweep_args():
    return dict(
        shapes=((1, 2), (1, 3)),
        models=("blackboard", "clique"),
        ports=("adversarial", "random"),
        kind="sample",
        t=3,
        samples=2000,
        master_seed=11,
    )


def stripped(path):
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in path.read_text().splitlines()
    ]


class TestEngineIndependence:
    def test_serial_and_two_workers_write_identical_records(
        self, tmp_path, sweep_args
    ):
        sweep = SweepSpec(**sweep_args)
        run_sweep(sweep, run_dir=tmp_path / "serial", engine=SerialEngine())
        run_sweep(
            sweep,
            run_dir=tmp_path / "pooled",
            engine=ProcessPoolEngine(workers=2, chunksize=1),
        )
        serial = stripped(tmp_path / "serial" / "records.jsonl")
        pooled = stripped(tmp_path / "pooled" / "records.jsonl")
        assert serial == pooled
        assert all("successes" in r["value"] for r in serial)

    def test_budget_does_not_change_cell_identity(self, tmp_path, sweep_args):
        # samples is excluded from the stream key: a bigger budget
        # extends each cell's stream instead of resampling it, so the
        # small sweep's successes are a prefix-consistent lower bound.
        small = run_sweep(SweepSpec(**sweep_args), run_dir=tmp_path / "small")
        big = run_sweep(
            SweepSpec(**{**sweep_args, "samples": 4000}),
            run_dir=tmp_path / "big",
        )
        for a, b in zip(small.records, big.records):
            assert a["spec"]["sizes"] == b["spec"]["sizes"]
            assert a["value"]["successes"] <= b["value"]["successes"]
            assert b["value"]["samples"] == 2 * a["value"]["samples"]


class TestWarehouseMCCells:
    def test_warm_rerun_serves_sampled_cells_from_the_memo(
        self, tmp_path, sweep_args
    ):
        warehouse = tmp_path / "shared"
        sweep = SweepSpec(**sweep_args)
        run_sweep(sweep, run_dir=tmp_path / "cold", warehouse=warehouse)
        previous = configure_tracing(True)
        reset_telemetry()
        try:
            run_sweep(sweep, run_dir=tmp_path / "warm", warehouse=warehouse)
            hits = OBS.metrics.counter("mc.memo.hit")
            fresh = OBS.metrics.counter("mc.blocks")
        finally:
            configure_tracing(previous)
            reset_telemetry()
        assert hits == len(sweep.expand()) * 2  # 2 full blocks per cell
        assert fresh == 0
        assert stripped(tmp_path / "cold" / "records.jsonl") == stripped(
            tmp_path / "warm" / "records.jsonl"
        )

    def test_bigger_budget_merges_memoized_blocks_with_fresh(
        self, tmp_path, sweep_args
    ):
        warehouse = tmp_path / "shared"
        run_sweep(
            SweepSpec(**sweep_args),
            run_dir=tmp_path / "cold",
            warehouse=warehouse,
        )
        doubled = SweepSpec(**{**sweep_args, "samples": 4000})
        warm = run_sweep(
            doubled, run_dir=tmp_path / "warm", warehouse=warehouse
        )
        cold_fresh = run_sweep(doubled, run_dir=tmp_path / "fresh")
        assert stripped(tmp_path / "warm" / "records.jsonl") == stripped(
            tmp_path / "fresh" / "records.jsonl"
        )
        assert all(
            r["value"]["samples"] == 4000 for r in warm.records
        )
