"""Merge law and memoized MC cells: estimates that are pure functions of
``(seed, cell, range)`` -- independent of partitioning and memo state."""

import pytest

from repro.core import leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.results.memo import configure_query_memo, query_memo
from repro.sampling import (
    BLOCK_SAMPLES,
    MCEstimate,
    block_token,
    cell_digest,
    sample_cell,
    sample_range,
)


@pytest.fixture
def cell():
    alpha = RandomnessConfiguration.from_group_sizes((1, 2))
    return alpha, leader_election(3), 3


@pytest.fixture
def memo_dir(tmp_path):
    configure_query_memo(tmp_path / "memo")
    yield tmp_path / "memo"
    configure_query_memo(None)


class TestMCEstimate:
    def test_merge_is_integer_addition(self):
        merged = MCEstimate(3, 10).merge(MCEstimate(4, 5))
        assert (merged.successes, merged.samples) == (7, 15)
        assert merged.probability == pytest.approx(7 / 15)

    def test_validation(self):
        with pytest.raises(ValueError):
            MCEstimate(5, 4)
        with pytest.raises(ValueError):
            MCEstimate(-1, 4)
        with pytest.raises(ValueError):
            MCEstimate(0, 0).probability

    def test_interval_is_wilson(self):
        from repro.sampling.stats import wilson_interval

        assert MCEstimate(40, 100).interval() == wilson_interval(40, 100)


class TestMergeLaw:
    def test_any_split_reassembles_the_cell(self, cell):
        alpha, task, t = cell
        whole = sample_cell(alpha, task, t, stream_seed=5, samples=4321)
        # An odd split straddling block boundaries: [0, 1700) + [1700, 4321).
        left = sample_range(
            alpha, task, t, stream_seed=5, start=0, stop=1700
        )
        right = sample_range(
            alpha, task, t, stream_seed=5, start=1700, stop=4321
        )
        assert left.merge(right) == whole

    def test_budget_extension_is_a_prefix(self, cell):
        alpha, task, t = cell
        small = sample_cell(alpha, task, t, stream_seed=5, samples=2000)
        large = sample_cell(alpha, task, t, stream_seed=5, samples=5000)
        tail = sample_range(
            alpha, task, t, stream_seed=5, start=2000, stop=5000
        )
        assert small.merge(tail) == large

    def test_seed_and_method_change_the_stream(self, cell):
        alpha, task, t = cell
        a = sample_cell(alpha, task, t, stream_seed=0, samples=3000)
        b = sample_cell(alpha, task, t, stream_seed=1, samples=3000)
        assert a != b
        scalar = sample_cell(
            alpha, task, t, stream_seed=0, samples=3000, method="scalar"
        )
        assert scalar == a  # same words, same verdicts: the oracle contract

    def test_range_validation(self, cell):
        alpha, task, t = cell
        with pytest.raises(ValueError):
            sample_range(alpha, task, t, stream_seed=0, start=5, stop=5)
        with pytest.raises(ValueError):
            sample_cell(alpha, task, t, stream_seed=0, samples=0)


class TestMemoizedCells:
    def test_tokens_separate_cells(self, cell):
        alpha, task, t = cell
        digest = cell_digest(alpha)
        token = block_token(digest, task, t, "bits", 7, 0)
        assert token == block_token(digest, task, t, "bits", 7, 0)
        distinct = {
            block_token(digest, task, t, "bits", 7, 1),
            block_token(digest, task, t, "bits", 8, 0),
            block_token(digest, task, t, "scalar", 7, 0),
            block_token(digest, task, t + 1, "bits", 7, 0),
        }
        assert token not in distinct and len(distinct) == 4

    def test_warm_cell_serves_full_blocks(self, cell, memo_dir):
        alpha, task, t = cell
        cold = sample_cell(alpha, task, t, stream_seed=9, samples=3000)
        memo = query_memo()
        before = memo.stats()["hits"]
        warm = sample_cell(alpha, task, t, stream_seed=9, samples=3000)
        assert warm == cold
        assert memo.stats()["hits"] == before + 3  # three full blocks

    def test_memoized_plus_fresh_equals_one_big_estimate(self, cell, memo_dir):
        alpha, task, t = cell
        sample_cell(alpha, task, t, stream_seed=9, samples=10000)
        grown = sample_cell(alpha, task, t, stream_seed=9, samples=20000)
        fresh = sample_cell(
            alpha, task, t, stream_seed=9, samples=20000, use_memo=False
        )
        assert grown == fresh

    def test_partial_blocks_never_stored(self, cell, memo_dir):
        alpha, task, t = cell
        sample_cell(alpha, task, t, stream_seed=2, samples=BLOCK_SAMPLES // 2)
        assert query_memo().stats()["entries"] == 0
        sample_cell(alpha, task, t, stream_seed=2, samples=BLOCK_SAMPLES + 1)
        assert query_memo().stats()["entries"] == 1  # only the full block

    def test_memo_state_never_changes_the_estimate(self, cell, memo_dir):
        alpha, task, t = cell
        ports = adversarial_assignment((1, 2))
        with_memo = sample_cell(
            alpha, task, t, ports, stream_seed=4, samples=2500
        )
        without = sample_cell(
            alpha, task, t, ports, stream_seed=4, samples=2500, use_memo=False
        )
        assert with_memo == without
