"""Statistical agreement with the exact engines over a small registry.

Fixed seeds make these runs reproducible byte for byte, so the 1e-2
tolerance is a one-time verification, not a flaky statistical bound.
"""

import pytest

from repro.core import leader_election
from repro.core.probability import solving_probability_exact
from repro.core.task_zoo import unique_ids
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.sampling import sample_cell

SAMPLES = 20000

REGISTRY = [
    pytest.param((1, 2), None, "leader", 3, id="bb-1,2-leader"),
    pytest.param((1, 3), None, "leader", 4, id="bb-1,3-leader"),
    pytest.param((1, 1, 2), None, "unique", 4, id="bb-1,1,2-unique"),
    pytest.param((2, 3), None, "leader", 5, id="bb-2,3-leader"),
    pytest.param((1, 2), "adversarial", "leader", 3, id="mp-1,2-leader"),
    pytest.param((1, 3), "adversarial", "unique", 4, id="mp-1,3-unique"),
    pytest.param((2, 2), "adversarial", "leader", 4, id="mp-2,2-leader"),
]


def _case(sizes, port_kind, task_kind, t):
    alpha = RandomnessConfiguration.from_group_sizes(sizes)
    ports = adversarial_assignment(sizes) if port_kind else None
    task = (
        leader_election(alpha.n)
        if task_kind == "leader"
        else unique_ids(alpha.n)
    )
    return alpha, ports, task, t


class TestAgreementWithExact:
    @pytest.mark.parametrize("sizes,port_kind,task_kind,t", REGISTRY)
    def test_bits_within_1e2_of_exact(self, sizes, port_kind, task_kind, t):
        alpha, ports, task, t = _case(sizes, port_kind, task_kind, t)
        exact = solving_probability_exact(
            alpha, task, t, ports, backend="float"
        )
        estimate = sample_cell(
            alpha, task, t, ports, stream_seed=1, samples=SAMPLES
        )
        assert estimate.probability == pytest.approx(exact, abs=1e-2)

    @pytest.mark.parametrize(
        "sizes,port_kind,task_kind,t",
        [REGISTRY[0], REGISTRY[3], REGISTRY[4]],
    )
    def test_chain_trajectories_within_1e2_of_exact(
        self, sizes, port_kind, task_kind, t
    ):
        # The chain method samples a different process (state
        # trajectories, not source bits) with the same marginals.
        alpha, ports, task, t = _case(sizes, port_kind, task_kind, t)
        exact = solving_probability_exact(
            alpha, task, t, ports, backend="float"
        )
        estimate = sample_cell(
            alpha, task, t, ports,
            stream_seed=1, samples=SAMPLES, method="chain",
        )
        assert estimate.probability == pytest.approx(exact, abs=1e-2)

    def test_chain_method_respects_quotient_compilation(self):
        # Quotient and full chains are different state spaces with the
        # same absorption marginals; both must land within tolerance.
        alpha, ports, task, t = _case((1, 1, 2), None, "leader", 4)
        exact = solving_probability_exact(
            alpha, task, t, ports, backend="float"
        )
        for quotient in (False, True):
            estimate = sample_cell(
                alpha, task, t, ports,
                stream_seed=2, samples=SAMPLES,
                method="chain", quotient=quotient,
            )
            assert estimate.probability == pytest.approx(exact, abs=1e-2)
