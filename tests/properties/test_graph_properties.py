"""Property-based tests for anonymous graph topologies."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    color_refinement_fixpoint,
    deterministic_solvable,
    is_refinement,
    leader_election,
    single_block_state,
)
from repro.models import GraphMessagePassingModel, GraphTopology


@st.composite
def connected_topologies(draw):
    """Random connected graphs: a random tree plus a few extra edges."""
    n = draw(st.integers(2, 7))
    edges = set()
    for node in range(1, n):
        parent = draw(st.integers(0, node - 1))
        edges.add(frozenset((parent, node)))
    extra = draw(st.integers(0, 3))
    for _ in range(extra):
        a = draw(st.integers(0, n - 1))
        b = draw(st.integers(0, n - 1))
        if a != b:
            edges.add(frozenset((a, b)))
    rows = [[] for _ in range(n)]
    for edge in sorted(tuple(sorted(e)) for e in edges):
        a, b = edge
        rows[a].append(b)
        rows[b].append(a)
    return GraphTopology(rows)


@given(connected_topologies())
@settings(max_examples=100, deadline=None)
def test_port_to_inverts_neighbour(topology):
    for node in range(topology.n):
        for port in range(1, topology.degree(node) + 1):
            target = topology.neighbour(node, port)
            assert topology.port_to(node, target) == port


@given(connected_topologies())
@settings(max_examples=100, deadline=None)
def test_edges_symmetric_and_handshake(topology):
    degree_sum = sum(topology.degree(i) for i in range(topology.n))
    assert degree_sum == 2 * len(topology.edges())


@given(connected_topologies())
@settings(max_examples=60, deadline=None)
def test_networkx_round_trip(topology):
    rebuilt = GraphTopology.from_networkx(topology.to_networkx())
    assert rebuilt.edges() == topology.edges()


@given(connected_topologies())
@settings(max_examples=60, deadline=None)
def test_fixpoint_refines_initial_state(topology):
    fixpoint = color_refinement_fixpoint(topology)
    assert is_refinement(fixpoint, single_block_state(topology.n))


@given(connected_topologies())
@settings(max_examples=40, deadline=None)
def test_fixpoint_refines_degree_partition(topology):
    """Equitable partitions separate nodes of different degree."""
    fixpoint = color_refinement_fixpoint(topology)
    for block in fixpoint:
        degrees = {topology.degree(node) for node in block}
        assert len(degrees) == 1


@given(connected_topologies())
@settings(max_examples=40, deadline=None)
def test_back_ports_refine_at_least_as_much(topology):
    plain = color_refinement_fixpoint(topology, include_back_ports=False)
    classical = color_refinement_fixpoint(topology, include_back_ports=True)
    assert is_refinement(classical, plain)


@given(connected_topologies())
@settings(max_examples=40, deadline=None)
def test_deterministic_solvable_iff_fixpoint_singleton(topology):
    n = topology.n
    fixpoint = color_refinement_fixpoint(topology)
    expected = any(len(block) == 1 for block in fixpoint)
    assert deterministic_solvable(topology, leader_election(n)) == expected


@given(connected_topologies())
@settings(max_examples=30, deadline=None)
def test_knowledge_model_partition_matches_fixpoint_under_shared_source(
    topology,
):
    """The k=1 knowledge partition stabilizes at the refinement fixpoint."""
    n = topology.n
    model = GraphMessagePassingModel(topology, include_back_ports=True)
    # shared source: all nodes receive the same (arbitrary) bits; run for
    # n rounds which always reaches the fixpoint.
    bits = tuple(tuple(1 for _ in range(n)) for _ in range(n))
    partition = {frozenset(b) for b in model.partition(bits)}
    fixpoint = {
        frozenset(b) for b in color_refinement_fixpoint(topology)
    }
    assert partition == fixpoint
