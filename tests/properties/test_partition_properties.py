"""Property-based tests: partitions, tasks, and the matching closure."""

import math

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import CountTask, k_leader_election, leader_election
from repro.core.reachability import (
    matching_moves,
    minimum_reachable_class,
    reachable_multisets,
    worst_case_k_leader_solvable,
)

size_multisets = st.lists(st.integers(1, 6), min_size=1, max_size=4).map(
    lambda sizes: tuple(sorted(sizes))
)


@given(size_multisets)
@settings(max_examples=150, deadline=None)
def test_moves_preserve_sum_and_gcd(sizes):
    g = math.gcd(*sizes)
    for move in matching_moves(sizes):
        assert sum(move) == sum(sizes)
        assert math.gcd(*move) == g


@given(size_multisets)
@settings(max_examples=60, deadline=None)
def test_minimum_reachable_is_gcd(sizes):
    assert minimum_reachable_class(sizes) == math.gcd(*sizes)


@given(size_multisets)
@settings(max_examples=60, deadline=None)
def test_closure_is_closed(sizes):
    closure = reachable_multisets(sizes)
    for member in closure:
        assert matching_moves(member) <= closure


@given(size_multisets, st.integers(1, 10))
@settings(max_examples=120, deadline=None)
def test_oracle_equals_gcd_divides_k(sizes, k):
    n = sum(sizes)
    if k > n:
        return
    assert worst_case_k_leader_solvable(sizes, k) == (
        k % math.gcd(*sizes) == 0
    )


@given(size_multisets)
@settings(max_examples=100, deadline=None)
def test_leader_election_solvable_iff_singleton_class(sizes):
    n = sum(sizes)
    task = leader_election(n)
    assert task.solvable_from_sizes(sizes) == (1 in sizes)


@given(size_multisets, st.integers(1, 8))
@settings(max_examples=120, deadline=None)
def test_k_leader_solvable_iff_submultiset_sum(sizes, k):
    n = sum(sizes)
    if k > n:
        return
    task = k_leader_election(n, k)
    reachable = {0}
    for size in sizes:
        reachable |= {r + size for r in reachable}
    assert task.solvable_from_sizes(sizes) == (k in reachable)


@given(size_multisets)
@settings(max_examples=80, deadline=None)
def test_refining_a_partition_preserves_solvability(sizes):
    """Monotonicity: splitting one class never breaks solvability."""
    n = sum(sizes)
    task = leader_election(n)
    if not task.solvable_from_sizes(sizes):
        return
    for index, size in enumerate(sizes):
        if size < 2:
            continue
        for cut in range(1, size):
            refined = list(sizes[:index]) + list(sizes[index + 1 :]) + [
                cut,
                size - cut,
            ]
            assert task.solvable_from_sizes(refined)


@given(
    st.integers(2, 6),
    st.lists(st.integers(0, 3), min_size=1, max_size=3),
)
@settings(max_examples=80, deadline=None)
def test_count_task_profiles_validated(n, raw):
    """Random profiles either construct cleanly or raise ValueError."""
    import pytest

    profile = {f"v{i}": c for i, c in enumerate(raw)}
    total = sum(profile.values())
    if total == n and all(c >= 1 for c in profile.values()):
        CountTask(n, [profile])
    else:
        with pytest.raises(ValueError):
            CountTask(n, [profile])
