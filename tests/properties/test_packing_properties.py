"""Property tests validating the packing solver against brute force.

``CountTask`` solvability reduces to packing knowledge-class sizes into
value-count targets; this is the one piece of clever search in the task
layer, so it gets an independent oracle: exhaustive assignment of classes
to targets.
"""

import itertools

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.tasks import _can_pack

sizes_lists = st.lists(st.integers(1, 5), min_size=1, max_size=5)


def brute_force_pack(sizes: tuple[int, ...], targets: tuple[int, ...]) -> bool:
    """Try every assignment of sizes to target bins."""
    if sum(sizes) != sum(targets):
        return False
    bins = len(targets)
    for assignment in itertools.product(range(bins), repeat=len(sizes)):
        loads = [0] * bins
        for size, bin_index in zip(sizes, assignment):
            loads[bin_index] += size
        if loads == list(targets):
            return True
    return False


@given(sizes_lists, sizes_lists)
@settings(max_examples=200, deadline=None)
def test_can_pack_matches_brute_force(sizes, targets):
    sizes = tuple(sorted(sizes))
    targets = tuple(sorted(targets))
    assert _can_pack(sizes, targets) == brute_force_pack(sizes, targets)


@given(sizes_lists)
@settings(max_examples=100, deadline=None)
def test_identity_packing(sizes):
    sizes = tuple(sorted(sizes))
    assert _can_pack(sizes, sizes)


@given(sizes_lists)
@settings(max_examples=100, deadline=None)
def test_single_target_always_packs(sizes):
    sizes = tuple(sorted(sizes))
    assert _can_pack(sizes, (sum(sizes),))


@given(sizes_lists)
@settings(max_examples=100, deadline=None)
def test_splitting_a_size_preserves_packability(sizes):
    """Refining the partition can only help packing."""
    sizes = tuple(sorted(sizes))
    targets = (sum(sizes),)
    for index, size in enumerate(sizes):
        if size < 2:
            continue
        refined = tuple(
            sorted(sizes[:index] + sizes[index + 1 :] + (1, size - 1))
        )
        assert _can_pack(refined, targets)


@given(sizes_lists, st.integers(1, 4))
@settings(max_examples=100, deadline=None)
def test_pack_requires_exact_total(sizes, extra):
    sizes = tuple(sorted(sizes))
    assert not _can_pack(sizes, (sum(sizes) + extra,))
