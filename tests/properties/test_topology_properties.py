"""Property-based tests for the topology substrate (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.topology import (
    Simplex,
    SimplicialComplex,
    betti_numbers,
    disjoint_union_of_simplices,
    euler_characteristic_from_betti,
    is_disjoint_union_of_simplices,
)

# Small random chromatic complexes: a few facets over names 0..4 with
# values drawn from a tiny alphabet.
vertices = st.tuples(st.integers(0, 4), st.sampled_from("abc"))
simplices = st.frozensets(vertices, min_size=1, max_size=4).map(Simplex)
complexes = st.lists(simplices, min_size=1, max_size=5).map(SimplicialComplex)


@given(complexes)
@settings(max_examples=120, deadline=None)
def test_facets_are_maximal(complex_):
    for facet in complex_.facets:
        others = [f for f in complex_.facets if f != facet]
        assert not any(facet.vertices < other.vertices for other in others)


@given(complexes)
@settings(max_examples=120, deadline=None)
def test_every_face_of_facet_is_member(complex_):
    for facet in complex_.facets:
        for face in facet.faces():
            assert face in complex_


@given(complexes)
@settings(max_examples=80, deadline=None)
def test_euler_characteristic_two_ways(complex_):
    assert (
        euler_characteristic_from_betti(complex_)
        == complex_.euler_characteristic()
    )


@given(complexes)
@settings(max_examples=80, deadline=None)
def test_beta0_equals_component_count(complex_):
    assert betti_numbers(complex_)[0] == len(complex_.connected_components())


@given(complexes)
@settings(max_examples=80, deadline=None)
def test_f_vector_sums_to_simplices(complex_):
    assert sum(complex_.f_vector()) == sum(1 for _ in complex_.simplices())


@given(complexes)
@settings(max_examples=80, deadline=None)
def test_union_is_idempotent_and_monotone(complex_):
    assert complex_.union(complex_) == complex_
    assert complex_.is_subcomplex_of(complex_)


@given(complexes, st.permutations(list(range(5))))
@settings(max_examples=60, deadline=None)
def test_rename_preserves_structure(complex_, perm):
    mapping = {i: perm[i] for i in range(5)}
    renamed = complex_.rename(mapping)
    assert renamed.f_vector() == complex_.f_vector()
    assert renamed.euler_characteristic() == complex_.euler_characteristic()
    back = renamed.rename({v: k for k, v in mapping.items()})
    assert back == complex_


# Partitions of 0..n-1 -> disjoint-union complexes (projection shape).
@st.composite
def partitions(draw):
    n = draw(st.integers(1, 6))
    labels = [draw(st.integers(0, 3)) for _ in range(n)]
    blocks: dict[int, list[int]] = {}
    for node, label in enumerate(labels):
        blocks.setdefault(label, []).append(node)
    return [
        [(node, f"class{label}") for node in members]
        for label, members in blocks.items()
    ]


@given(partitions())
@settings(max_examples=100, deadline=None)
def test_projection_shape_homology(blocks):
    complex_ = disjoint_union_of_simplices(blocks)
    assert is_disjoint_union_of_simplices(complex_)
    betti = betti_numbers(complex_)
    assert betti[0] == len(blocks)
    assert all(b == 0 for b in betti[1:])
