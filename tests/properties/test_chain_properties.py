"""Property-based tests for the consistency Markov chain."""

from fractions import Fraction

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    ConsistencyChain,
    is_refinement,
    leader_election,
    single_block_state,
    weak_symmetry_breaking,
)
from repro.models import adversarial_assignment, random_assignment
from repro.randomness import RandomnessConfiguration

shapes = st.lists(st.integers(1, 3), min_size=1, max_size=3).map(
    lambda sizes: tuple(sorted(sizes))
)
bit_vectors = st.lists(st.integers(0, 1), min_size=1, max_size=4)


@given(shapes, st.lists(bit_vectors, min_size=1, max_size=4))
@settings(max_examples=80, deadline=None)
def test_refinement_chain_is_monotone(shape, rounds):
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    chain = ConsistencyChain(alpha)
    state = single_block_state(alpha.n)
    for bits in rounds:
        padded = tuple((bits * alpha.k)[: alpha.k])
        nxt = chain.refine(state, padded)
        assert is_refinement(nxt, state)
        state = nxt


@given(shapes)
@settings(max_examples=40, deadline=None)
def test_transition_distributions_normalized(shape):
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    for ports in (None, adversarial_assignment(shape)):
        chain = ConsistencyChain(alpha, ports)
        for state in chain.reachable_states():
            moves = chain.transitions(state)
            assert sum(moves.values()) == 1
            assert all(0 < p <= 1 for p in moves.values())


@given(shapes)
@settings(max_examples=30, deadline=None)
def test_zero_one_law_everywhere(shape):
    """Lemma 3.2 as a property: limits are never strictly between 0 and 1."""
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    n = alpha.n
    tasks = [leader_election(n)]
    if n >= 2:
        tasks.append(weak_symmetry_breaking(n))
    for ports in (None, adversarial_assignment(shape)):
        chain = ConsistencyChain(alpha, ports)
        for task in tasks:
            limit = chain.limit_solving_probability(task)
            assert limit in (Fraction(0), Fraction(1))


@given(shapes, st.integers(0, 5))
@settings(max_examples=30, deadline=None)
def test_source_partition_is_a_refinement_floor(shape, seed):
    """The consistency partition never splits same-source nodes on a
    blackboard: every reachable state coarsens the source partition."""
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    chain = ConsistencyChain(alpha)
    source_state = tuple(
        sorted(tuple(sorted(block)) for block in alpha.source_partition())
    )
    for state in chain.reachable_states():
        assert is_refinement(source_state, state)


@given(shapes, st.integers(0, 3))
@settings(max_examples=25, deadline=None)
def test_mp_refines_blackboard_distributionwise(shape, seed):
    """At every time, the MP solving probability dominates the blackboard's
    (ports only add distinctions)."""
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    task = leader_election(alpha.n)
    ports = random_assignment(alpha.n, seed) if alpha.n > 1 else None
    if ports is None:
        return
    bb = ConsistencyChain(alpha).solving_probability_series(task, 3)
    mp = ConsistencyChain(alpha, ports).solving_probability_series(task, 3)
    for p_bb, p_mp in zip(bb, mp):
        assert p_mp >= p_bb
