"""Unit tests for the command-line interface."""

import pytest

from repro.cli import _make_task, _parse_sizes, main


class TestParsing:
    def test_parse_sizes(self):
        assert _parse_sizes("2,3") == (2, 3)
        assert _parse_sizes("1") == (1,)

    def test_parse_sizes_rejects_garbage(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _parse_sizes("two,three")
        with pytest.raises(argparse.ArgumentTypeError):
            _parse_sizes("0,2")

    def test_make_task_variants(self):
        assert _make_task("leader", 4).n == 4
        assert _make_task("k-leader:2", 4).count_multisets() == ((2, 2),)
        assert _make_task("weak-sb", 3).n == 3
        assert _make_task("unique-ids", 3).count_multisets() == ((1, 1, 1),)
        assert _make_task("deputy", 4).count_multisets() == ((1, 1, 2),)
        assert _make_task("threshold:1,2", 4).n == 4
        assert _make_task("teams:2,2", 4).n == 4

    def test_make_task_unknown(self):
        import argparse

        with pytest.raises(argparse.ArgumentTypeError):
            _make_task("bogus", 3)


class TestCommands:
    def test_solve_blackboard(self, capsys):
        assert main(["solve", "1,2"]) == 0
        out = capsys.readouterr().out
        assert "eventually solvable: YES" in out

    def test_solve_clique_unsolvable(self, capsys):
        assert main(["solve", "2,2", "--model", "clique"]) == 0
        out = capsys.readouterr().out
        assert "eventually solvable: NO" in out

    def test_series(self, capsys):
        assert main(["series", "1,1", "--t-max", "3"]) == 0
        out = capsys.readouterr().out
        assert "1/2" in out and "7/8" in out

    def test_expected_time(self, capsys):
        assert main(["expected-time", "1,1"]) == 0
        out = capsys.readouterr().out
        assert "expected rounds" in out
        assert "2" in out

    def test_expected_time_infinite(self, capsys):
        assert main(["expected-time", "3"]) == 0
        assert "infinite" in capsys.readouterr().out

    def test_phase_diagram(self, capsys):
        assert main(["phase-diagram", "3"]) == 0
        out = capsys.readouterr().out
        assert "(1, 2)" in out
        assert "(3,)" in out

    def test_protocol_success(self, capsys):
        assert main(
            ["protocol", "2,3", "--model", "clique", "--seed", "1"]
        ) == 0
        assert "elected" in capsys.readouterr().out

    def test_protocol_failure_exit_code(self, capsys):
        assert main(
            ["protocol", "2,2", "--model", "clique", "--max-rounds", "12"]
        ) == 1
        assert "no election" in capsys.readouterr().out

    def test_protocol_two_leaders(self, capsys):
        assert main(
            ["protocol", "2,4", "--model", "clique", "--k", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "k=2" in out

    def test_figures(self, capsys):
        assert main(["figures"]) == 0
        out = capsys.readouterr().out
        assert "O_LE" in out and "P(0)" in out

    def test_experiments_selected(self, capsys):
        assert main(["experiments", "figure-3"]) == 0
        out = capsys.readouterr().out
        assert "figure-3" in out
        assert "theorem-4.1" not in out

    def test_tasks_through_solve(self, capsys):
        assert main(
            ["solve", "2,4", "--model", "clique", "--task", "k-leader:2"]
        ) == 0
        assert "YES" in capsys.readouterr().out

    def test_graphs_ring(self, capsys):
        assert main(["graphs", "ring:4"]) == 0
        out = capsys.readouterr().out
        assert "NO" in out

    def test_graphs_bipartite(self, capsys):
        assert main(["graphs", "bipartite:2,3"]) == 0
        assert "YES" in capsys.readouterr().out

    def test_graphs_star_and_path(self, capsys):
        assert main(["graphs", "star:4"]) == 0
        assert "YES" in capsys.readouterr().out
        assert main(["graphs", "path:4"]) == 0
        assert "NO" in capsys.readouterr().out

    def test_graphs_labeling_limit(self, capsys):
        assert main(["graphs", "clique:6", "--labeling-limit", "10"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_graphs_unknown(self):
        with pytest.raises(SystemExit):
            main(["graphs", "torus:4"])

    def test_mermaid(self, capsys):
        assert main(["mermaid", "1,2"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("stateDiagram-v2")
        assert "[solves]" in out

    def test_mermaid_max_states(self):
        with pytest.raises(ValueError):
            main(["mermaid", "1,1,1,1", "--max-states", "2"])

    def test_quotient_flag_leaves_answers_unchanged(self, capsys):
        assert main(["solve", "1,1,1", "--no-quotient"]) == 0
        full = capsys.readouterr().out
        assert main(["solve", "1,1,1", "--quotient"]) == 0
        assert capsys.readouterr().out == full
        assert main(["series", "2,3", "--t-max", "4", "--no-quotient"]) == 0
        series_full = capsys.readouterr().out
        assert main(["series", "2,3", "--t-max", "4", "--quotient"]) == 0
        assert capsys.readouterr().out == series_full

    def test_quotient_flag_sets_the_process_mode(self, capsys):
        from repro.chain import quotient_mode

        assert main(["solve", "1,1", "--quotient"]) == 0
        assert quotient_mode() == "on"
        assert main(["solve", "1,1", "--no-quotient"]) == 0
        assert quotient_mode() == "off"
        # Flag absent on a quotient-aware command: auto.
        assert main(["solve", "1,1"]) == 0
        assert quotient_mode() == "auto"
        capsys.readouterr()

    def test_report(self, tmp_path, capsys):
        # Running all experiments is slow-ish; limit via direct call is
        # covered elsewhere -- here just verify the wiring end to end.
        assert main(["report", str(tmp_path)]) == 0
        assert (tmp_path / "experiments.json").exists()
        assert "experiments pass" in capsys.readouterr().out
