"""Unit tests for the blackboard election protocol (Theorem 4.1 algorithm)."""

import pytest

from repro.algorithms import BlackboardLeaderNode, BlackboardNetwork, choose_classes
from repro.randomness import FixedBitSource, RandomnessConfiguration


class TestChooseClasses:
    def test_finds_singleton(self):
        assert choose_classes([("a", 2), ("b", 1)], 1) == ("b",)

    def test_none_when_impossible(self):
        assert choose_classes([("a", 2), ("b", 2)], 1) is None

    def test_deterministic_choice(self):
        # Two singletons: the canonical (repr-ordered) first subset wins.
        chosen = choose_classes([("x", 1), ("a", 1), ("m", 2)], 1)
        assert chosen == ("a",)

    def test_multi_class_sum(self):
        assert choose_classes([("a", 1), ("b", 1), ("c", 2)], 2) in (
            ("a", "b"),
            ("c",),
        )

    def test_respects_exact_sum(self):
        assert choose_classes([("a", 3)], 2) is None


class TestElection:
    @pytest.mark.parametrize("sizes", [(1, 2), (1, 1), (1, 3, 3), (1,)])
    def test_elects_exactly_one_with_singleton_source(self, sizes):
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        for seed in range(4):
            result = BlackboardNetwork(
                alpha, BlackboardLeaderNode, seed=seed
            ).run(max_rounds=64)
            assert result.all_decided, (sizes, seed)
            assert len(result.leaders()) == 1, (sizes, seed)

    @pytest.mark.parametrize("sizes", [(2, 2), (3,), (2, 2, 2), (4, 2)])
    def test_never_elects_without_singleton_source(self, sizes):
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        for seed in range(3):
            result = BlackboardNetwork(
                alpha, BlackboardLeaderNode, seed=seed
            ).run(max_rounds=40)
            assert not result.all_decided
            assert all(out is None for out in result.outputs)

    def test_scripted_election_round(self):
        # Sources: node 2 alone on source B; split appears at round 1 so the
        # election closes at round 2 (decisions use round-(r-1) histories).
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        sources = [FixedBitSource("000"), FixedBitSource("100")]
        result = BlackboardNetwork(
            alpha, BlackboardLeaderNode, sources=sources
        ).run(max_rounds=5)
        assert result.leaders() == (2,)
        assert result.rounds == 2

    def test_delayed_split(self):
        # Identical prefixes delay the election until the sources diverge.
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        sources = [FixedBitSource("00010"), FixedBitSource("00000")]
        result = BlackboardNetwork(
            alpha, BlackboardLeaderNode, sources=sources
        ).run(max_rounds=6)
        assert result.leaders() == (2,)
        assert result.rounds == 5  # divergence at round 4, decision at 5

    def test_all_decide_same_round(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2, 2])
        result = BlackboardNetwork(
            alpha, BlackboardLeaderNode, seed=2
        ).run(max_rounds=64)
        assert len(set(result.decision_rounds)) == 1

    def test_two_leader_variant(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 3])
        result = BlackboardNetwork(
            alpha, lambda: BlackboardLeaderNode(k=2), seed=1
        ).run(max_rounds=64)
        assert result.all_decided
        assert len(result.leaders()) == 2

    def test_two_leader_impossible_shape(self):
        # sizes (3, 4): no sub-multiset sums to 2.
        alpha = RandomnessConfiguration.from_group_sizes([3, 4])
        result = BlackboardNetwork(
            alpha, lambda: BlackboardLeaderNode(k=2), seed=1
        ).run(max_rounds=40)
        assert not result.all_decided

    def test_k_validation(self):
        with pytest.raises(ValueError):
            BlackboardLeaderNode(k=0)
