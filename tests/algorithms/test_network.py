"""Unit tests for the synchronous network simulator."""

import pytest

from repro.algorithms import (
    BlackboardNetwork,
    CliqueNetwork,
    NodeProtocol,
)
from repro.models import round_robin_assignment
from repro.randomness import FixedBitSource, RandomnessConfiguration


class EchoNode(NodeProtocol):
    """Records everything; decides after a fixed number of rounds."""

    def __init__(self, decide_after=2):
        self.decide_after = decide_after
        self.bits = []
        self.inboxes = []
        self.round = 0

    def compose(self):
        return ("echo", self.round)

    def absorb(self, bit, inbox):
        self.bits.append(bit)
        self.inboxes.append(inbox)
        self.round += 1

    def output(self):
        return self.round if self.round >= self.decide_after else None


class PerPortNode(NodeProtocol):
    """Sends a distinct payload on each port."""

    def __init__(self):
        self.received = []

    def compose(self):
        return {port: ("to-port", port) for port in range(1, self.ctx.n)}

    def absorb(self, bit, inbox):
        self.received.append(inbox)

    def output(self):
        return "done" if self.received else None


class TestBlackboardNetwork:
    def test_runs_until_decided(self):
        alpha = RandomnessConfiguration.independent(3)
        result = BlackboardNetwork(alpha, EchoNode).run(max_rounds=10)
        assert result.all_decided
        assert result.rounds == 2
        assert result.decision_rounds == (2, 2, 2)

    def test_max_rounds_cap(self):
        alpha = RandomnessConfiguration.independent(2)
        result = BlackboardNetwork(
            alpha, lambda: EchoNode(decide_after=99)
        ).run(max_rounds=5)
        assert not result.all_decided
        assert result.rounds == 5

    def test_inbox_excludes_own_message(self):
        alpha = RandomnessConfiguration.independent(3)
        network = BlackboardNetwork(alpha, EchoNode)
        network.run(max_rounds=1)
        for node in network.nodes:
            assert len(node.inboxes[0]) == 2

    def test_same_source_nodes_get_same_bits(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        network = BlackboardNetwork(alpha, EchoNode, seed=7)
        network.run(max_rounds=4)
        assert network.nodes[0].bits == network.nodes[1].bits

    def test_scripted_sources(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 1])
        sources = [FixedBitSource("0101"), FixedBitSource("1111")]
        network = BlackboardNetwork(
            alpha, lambda: EchoNode(decide_after=3), sources=sources
        )
        network.run(max_rounds=3)
        assert network.nodes[0].bits == [0, 1, 0]
        assert network.nodes[2].bits == [1, 1, 1]

    def test_per_port_payload_rejected(self):
        alpha = RandomnessConfiguration.independent(3)
        network = BlackboardNetwork(alpha, PerPortNode)
        with pytest.raises(TypeError):
            network.run(max_rounds=1)

    def test_source_count_validation(self):
        alpha = RandomnessConfiguration.independent(2)
        with pytest.raises(ValueError):
            BlackboardNetwork(alpha, EchoNode, sources=[FixedBitSource("0")])


class TestCliqueNetwork:
    def test_per_port_delivery(self):
        alpha = RandomnessConfiguration.independent(3)
        ports = round_robin_assignment(3)
        network = CliqueNetwork(alpha, ports, PerPortNode)
        network.run(max_rounds=1)
        # Node i receives, on its port p, the payload the sender addressed
        # to *its own* port facing i.
        for i, node in enumerate(network.nodes):
            inbox = node.received[0]
            for port in range(1, 3):
                sender = ports.neighbour(i, port)
                expected_port = ports.port_to(sender, i)
                assert inbox[port - 1] == ("to-port", expected_port)

    def test_broadcast_payload(self):
        alpha = RandomnessConfiguration.independent(3)
        network = CliqueNetwork(
            alpha, round_robin_assignment(3), EchoNode
        )
        result = network.run(max_rounds=3)
        assert result.all_decided

    def test_ports_alpha_mismatch(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            CliqueNetwork(alpha, round_robin_assignment(4), EchoNode)

    def test_leaders_helper(self):
        alpha = RandomnessConfiguration.independent(2)

        class OneLeader(NodeProtocol):
            def __init__(self):
                self.out = None

            def compose(self):
                return ()

            def absorb(self, bit, inbox):
                self.out = bit  # arbitrary but decided

            def output(self):
                return self.out

        network = CliqueNetwork(
            alpha,
            round_robin_assignment(2),
            OneLeader,
            sources=[FixedBitSource("1"), FixedBitSource("0")],
        )
        result = network.run(max_rounds=1)
        assert result.leaders() == (0,)
