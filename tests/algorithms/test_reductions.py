"""Unit tests for the Theorem C.1 reduction."""

import pytest

from repro.algorithms import (
    consensus_on_max,
    frequency_rank,
    is_name_independent,
    parity_of_sum,
    solve_name_independent_task,
)
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


class TestSpecifications:
    def test_consensus_on_max(self):
        mapping = consensus_on_max((3, 1, 4, 1))
        assert set(mapping.values()) == {4}

    def test_parity(self):
        assert set(parity_of_sum((1, 2, 2)).values()) == {1}
        assert set(parity_of_sum((2, 2)).values()) == {0}

    def test_frequency_rank(self):
        mapping = frequency_rank(("a", "a", "b"))
        assert mapping["a"] == 0
        assert mapping["b"] == 1

    def test_is_name_independent(self):
        assert is_name_independent((1, 2, 1), ("x", "y", "x"))
        assert not is_name_independent((1, 2, 1), ("x", "y", "z"))


class TestReduction:
    def test_blackboard_consensus(self):
        alpha = RandomnessConfiguration.from_group_sizes([1, 2])
        outputs, election = solve_name_independent_task(
            alpha, (5, 1, 3), consensus_on_max, seed=0
        )
        assert outputs == (5, 5, 5)
        assert len(election.leaders()) == 1

    def test_clique_parity(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 3])
        outputs, _ = solve_name_independent_task(
            alpha,
            (1, 1, 0, 1, 0),
            parity_of_sum,
            ports=adversarial_assignment((2, 3)),
            seed=1,
        )
        assert outputs == (1, 1, 1, 1, 1)

    def test_fails_when_election_impossible(self):
        alpha = RandomnessConfiguration.from_group_sizes([2, 2])
        outputs, election = solve_name_independent_task(
            alpha, (1, 2, 3, 4), consensus_on_max, max_rounds=24, seed=0
        )
        assert outputs is None
        assert not election.all_decided

    def test_outputs_respect_name_independence(self):
        alpha = RandomnessConfiguration.independent(4)
        inputs = ("x", "y", "x", "z")
        outputs, _ = solve_name_independent_task(
            alpha, inputs, frequency_rank, seed=3
        )
        assert outputs is not None
        assert is_name_independent(inputs, outputs)

    def test_input_arity_validated(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            solve_name_independent_task(alpha, (1, 2), consensus_on_max)

    def test_incomplete_specification_rejected(self):
        alpha = RandomnessConfiguration.independent(2)

        def partial(values):
            return {}

        with pytest.raises(ValueError):
            solve_name_independent_task(alpha, (1, 2), partial, seed=0)
