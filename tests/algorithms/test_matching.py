"""Unit tests for the literal CreateMatching protocol (Algorithm 1)."""

import pytest

from repro.algorithms import (
    OBSERVER,
    V1,
    V2,
    CliqueNetwork,
    CreateMatchingNode,
    matching_summary,
)
from repro.models import adversarial_assignment, random_assignment
from repro.randomness import RandomnessConfiguration


def run_matching(n1, n2, observers=0, seed=0, ports=None, sizes=None):
    n = n1 + n2 + observers
    alpha = (
        RandomnessConfiguration.from_group_sizes(sizes)
        if sizes
        else RandomnessConfiguration.independent(n)
    )
    roles = iter([V1] * n1 + [V2] * n2 + [OBSERVER] * observers)
    network = CliqueNetwork(
        alpha,
        ports or random_assignment(n, seed + 17),
        lambda: CreateMatchingNode(next(roles)),
        seed=seed,
    )
    return network.run(max_rounds=3 * (n1 + 2))


class TestLemma48:
    @pytest.mark.parametrize("n1,n2", [(1, 1), (1, 3), (2, 3), (3, 5), (4, 4)])
    def test_all_of_v1_matched(self, n1, n2):
        for seed in range(3):
            result = run_matching(n1, n2, seed=seed)
            summary = matching_summary(result.outputs)
            assert summary["matched"] == 2 * n1, (n1, n2, seed)
            assert summary["unmatched"] == n2 - n1
            assert summary["undecided"] == 0

    @pytest.mark.parametrize("n1,n2", [(2, 4), (3, 6), (4, 7)])
    def test_iteration_bound(self, n1, n2):
        for seed in range(3):
            result = run_matching(n1, n2, seed=seed)
            summary = matching_summary(result.outputs)
            assert 1 <= summary["iterations"] <= n1

    def test_matching_is_injective(self):
        """Each matched V1 node pairs with a distinct V2 node: matched
        counts on the two sides are equal."""
        result = run_matching(3, 5, seed=1)
        v1_matched = sum(
            1
            for out in result.outputs[:3]
            if out and out[0] == "matched"
        )
        v2_matched = sum(
            1
            for out in result.outputs[3:8]
            if out and out[0] == "matched"
        )
        assert v1_matched == v2_matched == 3

    def test_observers_unaffected(self):
        result = run_matching(2, 3, observers=2, seed=2)
        assert result.outputs[-2:] == (("observer",), ("observer",))

    def test_works_with_correlated_randomness(self):
        """All V1 nodes on one source, all V2 on another -- the paper's
        actual use case; termination is deterministic, not statistical."""
        result = run_matching(2, 4, sizes=(2, 4), seed=0)
        summary = matching_summary(result.outputs)
        assert summary["matched"] == 4
        assert summary["unmatched"] == 2

    def test_works_under_adversarial_ports(self):
        sizes = (2, 4)
        result = run_matching(
            2, 4, sizes=sizes, ports=adversarial_assignment(sizes), seed=0
        )
        summary = matching_summary(result.outputs)
        assert summary["matched"] == 4

    def test_role_validation(self):
        with pytest.raises(ValueError):
            CreateMatchingNode("bogus")


class TestSplitSizes:
    def test_lemma47_split(self):
        """After matching, V2 splits into parts of sizes (n1, n2-n1)."""
        for n1, n2 in [(1, 4), (2, 5), (3, 7)]:
            result = run_matching(n1, n2, seed=4)
            outputs_v2 = result.outputs[n1 : n1 + n2]
            matched = [o for o in outputs_v2 if o and o[0] == "matched"]
            unmatched = [o for o in outputs_v2 if o == ("unmatched",)]
            assert len(matched) == n1
            assert len(unmatched) == n2 - n1
