"""Unit tests for the Euclid-style clique election (Theorem 4.2 algorithm)."""

import math

import pytest

from repro.algorithms import CliqueNetwork, EuclidLeaderNode
from repro.models import (
    MessagePassingModel,
    adversarial_assignment,
    random_assignment,
    round_robin_assignment,
)
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes


def run_election(sizes, ports, seed, k=1, max_rounds=96):
    alpha = RandomnessConfiguration.from_group_sizes(sizes)
    network = CliqueNetwork(
        alpha, ports, lambda: EuclidLeaderNode(k=k), seed=seed
    )
    return network.run(max_rounds=max_rounds)


class TestLiveness:
    @pytest.mark.parametrize(
        "sizes", [(1,), (1, 1), (1, 2), (2, 3), (3, 4), (2, 3, 4), (1, 5)]
    )
    def test_gcd_one_elects_under_adversarial_ports(self, sizes):
        ports = adversarial_assignment(sizes)
        for seed in range(3):
            result = run_election(sizes, ports, seed)
            assert result.all_decided, (sizes, seed)
            assert len(result.leaders()) == 1

    @pytest.mark.parametrize("sizes", [(2, 3), (3, 4), (2, 2, 3)])
    def test_gcd_one_elects_under_benign_ports(self, sizes):
        n = sum(sizes)
        for ports in (round_robin_assignment(n), random_assignment(n, 5)):
            result = run_election(sizes, ports, seed=1)
            assert result.all_decided
            assert len(result.leaders()) == 1

    def test_single_node(self):
        result = run_election((1,), adversarial_assignment((1,)), seed=0)
        assert result.leaders() == (0,)
        assert result.rounds == 1


class TestImpossibilityWitness:
    @pytest.mark.parametrize("sizes", [(2, 2), (3, 3), (2, 4), (2, 2, 2)])
    def test_gcd_gt_one_never_decides_under_adversarial_ports(self, sizes):
        ports = adversarial_assignment(sizes)
        for seed in range(2):
            result = run_election(sizes, ports, seed, max_rounds=48)
            assert not result.all_decided
            assert all(out is None for out in result.outputs)

    def test_class_sizes_stay_divisible_by_g(self):
        """Lemma 4.3's invariant holds along a protocol run."""
        sizes = (2, 4)
        g = math.gcd(*sizes)
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        ports = adversarial_assignment(sizes)
        network = CliqueNetwork(alpha, ports, EuclidLeaderNode, seed=3)
        for _ in range(12):
            network.run(max_rounds=1)
            tags = [node._tag for node in network.nodes]
            counts = {}
            for tag in tags:
                counts[tag] = counts.get(tag, 0) + 1
            assert all(c % g == 0 for c in counts.values()), counts


class TestSafety:
    def test_exactly_k_leaders_whenever_decided(self):
        """Safety sweep: across shapes, ports, and seeds, a decided run has
        exactly k leaders and all nodes decide in the same round."""
        for n in range(2, 6):
            for shape in enumerate_size_shapes(n):
                for ports in (
                    adversarial_assignment(shape),
                    random_assignment(n, 13),
                ):
                    result = run_election(shape, ports, seed=7, max_rounds=48)
                    if result.all_decided:
                        assert len(result.leaders()) == 1
                        assert len(set(result.decision_rounds)) == 1
                    else:
                        assert all(o is None for o in result.outputs)


class TestKLeaderGeneralization:
    def test_two_leaders_with_gcd_two(self):
        result = run_election((2, 4), adversarial_assignment((2, 4)), 1, k=2)
        assert result.all_decided
        assert len(result.leaders()) == 2

    def test_two_leaders_with_gcd_one(self):
        result = run_election((2, 3), adversarial_assignment((2, 3)), 1, k=2)
        assert result.all_decided
        assert len(result.leaders()) == 2

    def test_two_leaders_impossible_with_gcd_three(self):
        result = run_election(
            (3, 3), adversarial_assignment((3, 3)), 1, k=2, max_rounds=48
        )
        assert not result.all_decided

    def test_k_validation(self):
        with pytest.raises(ValueError):
            EuclidLeaderNode(k=0)


class TestAgreementWithFramework:
    def test_tags_track_knowledge_partition_without_requests(self):
        """Before any matching request fires, the protocol's tag classes
        coincide with the Eq. (2) knowledge partition."""
        sizes = (2, 3)
        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        ports = round_robin_assignment(5)
        network = CliqueNetwork(alpha, ports, EuclidLeaderNode, seed=9)
        network.run(max_rounds=1)  # round 1: no requests were sent yet
        tags = [node._tag for node in network.nodes]
        tag_partition = {}
        for node, tag in enumerate(tags):
            tag_partition.setdefault(tag, set()).add(node)

        model = MessagePassingModel(ports)
        bits = tuple((node._bits[0],) for node in network.nodes)
        knowledge_blocks = set(map(frozenset, model.partition(bits)))
        assert set(map(frozenset, tag_partition.values())) == knowledge_blocks
