"""Unit tests for GF(2) homology."""

import itertools

from repro.topology import (
    Simplex,
    SimplicialComplex,
    betti_numbers,
    disjoint_union_of_simplices,
    euler_characteristic_from_betti,
    is_disjoint_union_of_simplices,
)


def solid(k: int) -> SimplicialComplex:
    """The full k-simplex on vertices (0..k, 'v')."""
    return SimplicialComplex([Simplex([(i, "v") for i in range(k + 1)])])


def sphere(k: int) -> SimplicialComplex:
    """The boundary of a (k+1)-simplex: a combinatorial k-sphere."""
    return SimplicialComplex.simplex_boundary(
        Simplex([(i, "v") for i in range(k + 2)])
    )


class TestBettiNumbers:
    def test_point(self):
        assert betti_numbers(solid(0)) == (1,)

    def test_solid_simplices_are_contractible(self):
        for k in range(1, 4):
            betti = betti_numbers(solid(k))
            assert betti[0] == 1
            assert all(b == 0 for b in betti[1:])

    def test_circle(self):
        assert betti_numbers(sphere(1)) == (1, 1)

    def test_two_sphere(self):
        assert betti_numbers(sphere(2)) == (1, 0, 1)

    def test_two_components(self):
        c = disjoint_union_of_simplices([[(0, "a"), (1, "a")], [(2, "b")]])
        assert betti_numbers(c)[0] == 2

    def test_wedge_of_two_circles(self):
        # Two hollow triangles sharing the vertex (0,'v'): beta_1 = 2.
        t1 = SimplicialComplex.simplex_boundary(
            Simplex([(0, "v"), (1, "v"), (2, "v")])
        )
        t2 = SimplicialComplex.simplex_boundary(
            Simplex([(0, "v"), (3, "v"), (4, "v")])
        )
        wedge = t1.union(t2)
        assert betti_numbers(wedge) == (1, 2)

    def test_empty_complex(self):
        assert betti_numbers(SimplicialComplex.empty()) == ()


class TestEulerConsistency:
    def test_matches_combinatorial_on_small_complexes(self):
        # All complexes on three 'abstract' vertices with <=2 facets.
        verts = [(0, "a"), (1, "b"), (2, "c")]
        simplices = [
            Simplex(s)
            for r in (1, 2, 3)
            for s in itertools.combinations(verts, r)
        ]
        for pair in itertools.combinations(simplices, 2):
            complex_ = SimplicialComplex(pair)
            assert (
                euler_characteristic_from_betti(complex_)
                == complex_.euler_characteristic()
            )

    def test_sphere_euler(self):
        assert sphere(2).euler_characteristic() == 2
        assert euler_characteristic_from_betti(sphere(2)) == 2


class TestDisjointUnionFingerprint:
    def test_positive(self):
        c = disjoint_union_of_simplices(
            [[(0, "x"), (1, "x")], [(2, "y"), (3, "y"), (4, "y")], [(5, "z")]]
        )
        assert is_disjoint_union_of_simplices(c)
        betti = betti_numbers(c)
        assert betti[0] == 3
        assert all(b == 0 for b in betti[1:])

    def test_negative_shared_vertex(self):
        c = SimplicialComplex(
            [
                Simplex([(0, "a"), (1, "b")]),
                Simplex([(1, "b"), (2, "c")]),
            ]
        )
        assert not is_disjoint_union_of_simplices(c)

    def test_projection_shape_matches_homology(self):
        # For a consistency projection, beta_0 equals the facet count.
        c = disjoint_union_of_simplices(
            [[(0, "k"), (1, "k")], [(2, "l")], [(3, "m"), (4, "m")]]
        )
        assert betti_numbers(c)[0] == c.facet_count()
