"""Unit tests for complex isomorphism and projection canonical forms."""

import pytest

from repro.topology import (
    Simplex,
    SimplicialComplex,
    are_isomorphic,
    are_isomorphic_chromatic,
    disjoint_union_of_simplices,
    equal_as_projections,
    facet_name_partition,
    iter_isomorphisms,
)


def edge(v0, v1):
    return SimplicialComplex([Simplex([v0, v1])])


class TestChromaticIsomorphism:
    def test_identical_complexes(self):
        c = edge((0, "a"), (1, "b"))
        assert are_isomorphic_chromatic(c, c)

    def test_value_relabel_is_isomorphic(self):
        left = edge((0, "a"), (1, "b"))
        right = edge((0, "x"), (1, "y"))
        assert are_isomorphic_chromatic(left, right)

    def test_different_shapes_not_isomorphic(self):
        left = edge((0, "a"), (1, "b"))
        right = SimplicialComplex([Simplex([(0, "a")]), Simplex([(1, "b")])])
        assert not are_isomorphic_chromatic(left, right)

    def test_name_swap_needs_unrestricted(self):
        left = SimplicialComplex([Simplex([(0, "a")]), Simplex([(1, "b"), (2, "c")])])
        right = SimplicialComplex([Simplex([(2, "a")]), Simplex([(0, "b"), (1, "c")])])
        assert not are_isomorphic_chromatic(left, right)
        assert are_isomorphic(left, right)

    def test_invariant_pruning(self):
        # Same facet counts, different vertex degrees: quickly rejected.
        left = SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")]), Simplex([(0, "a"), (2, "c")])]
        )
        right = SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")]), Simplex([(2, "c"), (3, "d")])]
        )
        assert not are_isomorphic(left, right)

    def test_iter_isomorphisms_yields_maps(self):
        c = SimplicialComplex([Simplex([(0, "a")]), Simplex([(0, "b")])])
        isos = list(iter_isomorphisms(c, c, name_preserving=True))
        # identity and the swap of the two values
        assert len(isos) == 2


class TestProjectionForms:
    def test_facet_name_partition(self):
        c = disjoint_union_of_simplices([[(0, "k"), (2, "k")], [(1, "l")]])
        assert facet_name_partition(c) == ((0, 2), (1,))

    def test_equal_as_projections_true(self):
        left = disjoint_union_of_simplices([[(0, "k1"), (1, "k1")], [(2, "k2")]])
        right = disjoint_union_of_simplices([[(0, "zz"), (1, "zz")], [(2, "qq")]])
        assert equal_as_projections(left, right)

    def test_equal_as_projections_false(self):
        left = disjoint_union_of_simplices([[(0, "k"), (1, "k")], [(2, "l")]])
        right = disjoint_union_of_simplices([[(0, "k")], [(1, "l"), (2, "l")]])
        assert not equal_as_projections(left, right)

    def test_rejects_non_projection(self):
        shared = SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")]), Simplex([(1, "b"), (2, "c")])]
        )
        with pytest.raises(ValueError):
            equal_as_projections(shared, shared)
