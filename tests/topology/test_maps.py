"""Unit tests for vertex/simplicial maps and map search."""

import pytest

from repro.topology import (
    Simplex,
    SimplicialComplex,
    VertexMap,
    exists_simplicial_map,
    find_simplicial_map,
    iter_simplicial_maps,
    unique_name_preserving_map,
)


def edge(v0, v1) -> SimplicialComplex:
    return SimplicialComplex([Simplex([v0, v1])])


class TestVertexMap:
    def test_total_required(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        with pytest.raises(ValueError):
            VertexMap(src, dst, {(0, "a"): (0, "x")})

    def test_target_membership_required(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        with pytest.raises(ValueError):
            VertexMap(src, dst, {(0, "a"): (0, "zzz"), (1, "b"): (1, "y")})

    def test_call_and_getitem(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        m = VertexMap(src, dst, {(0, "a"): (0, "x"), (1, "b"): (1, "y")})
        assert m((0, "a")) == (0, "x")
        assert m[(1, "b")] == (1, "y")

    def test_is_simplicial_positive(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        m = VertexMap(src, dst, {(0, "a"): (0, "x"), (1, "b"): (1, "y")})
        assert m.is_simplicial()

    def test_is_simplicial_negative(self):
        src = edge((0, "a"), (1, "b"))
        # Target: two isolated vertices -- the edge cannot map onto them.
        dst = SimplicialComplex([Simplex([(0, "x")]), Simplex([(1, "y")])])
        m = VertexMap(src, dst, {(0, "a"): (0, "x"), (1, "b"): (1, "y")})
        assert not m.is_simplicial()

    def test_name_preserving(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        m = VertexMap(src, dst, {(0, "a"): (0, "x"), (1, "b"): (1, "y")})
        assert m.is_name_preserving()

    def test_not_name_preserving(self):
        src = edge((0, "a"), (1, "b"))
        dst = edge((0, "x"), (1, "y"))
        m = VertexMap(src, dst, {(0, "a"): (1, "y"), (1, "b"): (0, "x")})
        assert not m.is_name_preserving()

    def test_name_independent(self):
        src = SimplicialComplex(
            [Simplex([(0, "same"), (1, "same")]), Simplex([(2, "other")])]
        )
        dst = SimplicialComplex(
            [Simplex([(0, 0), (1, 0)]), Simplex([(2, 1)])]
        )
        good = VertexMap(
            src,
            dst,
            {(0, "same"): (0, 0), (1, "same"): (1, 0), (2, "other"): (2, 1)},
        )
        assert good.is_name_independent()

    def test_not_name_independent(self):
        src = SimplicialComplex(
            [Simplex([(0, "same")]), Simplex([(1, "same")])]
        )
        dst = SimplicialComplex([Simplex([(0, 0)]), Simplex([(1, 1)])])
        bad = VertexMap(src, dst, {(0, "same"): (0, 0), (1, "same"): (1, 1)})
        assert not bad.is_name_independent()

    def test_image_of(self):
        src = edge((0, "a"), (1, "b"))
        dst = SimplicialComplex([Simplex([(0, "x"), (1, "x")])])
        m = VertexMap(src, dst, {(0, "a"): (0, "x"), (1, "b"): (1, "x")})
        image = m.image_of(next(iter(src.facets)))
        assert image.dimension == 1


class TestMapSearch:
    def test_finds_identity(self):
        c = edge((0, "a"), (1, "b"))
        found = find_simplicial_map(c, c)
        assert found is not None
        assert found((0, "a")) == (0, "a")

    def test_no_map_to_disconnected_target(self):
        src = edge((0, "a"), (1, "b"))
        dst = SimplicialComplex([Simplex([(0, "x")]), Simplex([(1, "y")])])
        assert not exists_simplicial_map(src, dst)

    def test_name_preserving_restricts_candidates(self):
        src = SimplicialComplex([Simplex([(0, "a")])])
        dst = SimplicialComplex([Simplex([(1, "x")])])
        assert not exists_simplicial_map(src, dst, name_preserving=True)
        assert exists_simplicial_map(src, dst, name_preserving=False)

    def test_name_independent_search(self):
        # Two vertices with equal values must map to equal values.
        src = SimplicialComplex(
            [Simplex([(0, "v")]), Simplex([(1, "v")])]
        )
        dst = SimplicialComplex([Simplex([(0, 0)]), Simplex([(1, 1)])])
        assert exists_simplicial_map(src, dst, name_independent=False)
        assert not exists_simplicial_map(src, dst, name_independent=True)

    def test_iter_counts_all_maps(self):
        # One isolated source vertex, target has two vertices of its name.
        src = SimplicialComplex([Simplex([(0, "a")])])
        dst = SimplicialComplex([Simplex([(0, "x")]), Simplex([(0, "y")])])
        assert len(list(iter_simplicial_maps(src, dst))) == 2

    def test_empty_source_has_trivial_map(self):
        src = SimplicialComplex.empty()
        dst = edge((0, "x"), (1, "y"))
        assert exists_simplicial_map(src, dst)

    def test_collapse_is_allowed(self):
        # An edge may map onto a single target vertex set {(0,x),(1,x)}
        # only if that pair is a simplex; mapping both endpoints to the
        # same vertex is impossible name-preservingly, so check the
        # unrestricted search collapses correctly.
        src = edge((0, "a"), (1, "b"))
        dst = SimplicialComplex([Simplex([(0, "x")])])
        assert exists_simplicial_map(src, dst, name_preserving=False)


class TestUniqueNamePreservingMap:
    def test_forced_map_exists(self):
        src = SimplicialComplex(
            [Simplex([(0, "k1")]), Simplex([(1, "k2"), (2, "k2")])]
        )
        dst = SimplicialComplex(
            [Simplex([(0, 1)]), Simplex([(1, 0), (2, 0)])]
        )
        forced = unique_name_preserving_map(src, dst)
        assert forced is not None
        assert forced((0, "k1")) == (0, 1)
        assert forced.is_simplicial()

    def test_none_when_name_missing(self):
        src = SimplicialComplex([Simplex([(5, "k")])])
        dst = SimplicialComplex([Simplex([(0, 1)])])
        assert unique_name_preserving_map(src, dst) is None

    def test_none_when_target_ambiguous(self):
        src = SimplicialComplex([Simplex([(0, "k")])])
        dst = SimplicialComplex([Simplex([(0, 1)]), Simplex([(0, 2)])])
        assert unique_name_preserving_map(src, dst) is None
