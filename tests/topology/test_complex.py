"""Unit tests for SimplicialComplex."""

import pytest

from repro.topology import (
    Simplex,
    SimplicialComplex,
    Vertex,
    disjoint_union_of_simplices,
)


def triangle() -> SimplicialComplex:
    return SimplicialComplex([Simplex([(0, "a"), (1, "b"), (2, "c")])])


def hollow_triangle() -> SimplicialComplex:
    return SimplicialComplex.simplex_boundary(
        Simplex([(0, "a"), (1, "b"), (2, "c")])
    )


class TestConstruction:
    def test_empty(self):
        c = SimplicialComplex.empty()
        assert c.is_empty
        assert c.dimension == -1
        assert c.f_vector() == ()

    def test_contained_facets_dropped(self):
        c = SimplicialComplex(
            [
                Simplex([(0, "a"), (1, "b")]),
                Simplex([(0, "a")]),
            ]
        )
        assert c.facet_count() == 1

    def test_incomparable_facets_kept(self):
        c = SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")]), Simplex([(2, "c")])]
        )
        assert c.facet_count() == 2
        assert not c.is_pure()

    def test_accepts_raw_iterables(self):
        c = SimplicialComplex([[(0, "a"), (1, "b")]])
        assert c.dimension == 1

    def test_full_complex(self):
        c = SimplicialComplex.full_complex([(0, "a"), (1, "b")])
        assert c.facet_count() == 1
        assert (0, "a") in c.vertices()


class TestQueries:
    def test_dimension_and_purity(self):
        assert triangle().dimension == 2
        assert triangle().is_pure()

    def test_vertices(self):
        assert len(triangle().vertices()) == 3

    def test_names(self):
        assert triangle().names() == {0, 1, 2}

    def test_simplices_count(self):
        # A 2-simplex has 7 faces.
        assert sum(1 for _ in triangle().simplices()) == 7

    def test_simplices_of_dimension(self):
        assert len(triangle().simplices_of_dimension(1)) == 3
        assert len(hollow_triangle().simplices_of_dimension(2)) == 0

    def test_membership(self):
        assert Simplex([(0, "a"), (1, "b")]) in triangle()
        assert Simplex([(0, "a"), (1, "wrong")]) not in triangle()
        assert "garbage" not in triangle()

    def test_equality_and_hash(self):
        assert triangle() == triangle()
        assert hash(triangle()) == hash(triangle())
        assert triangle() != hollow_triangle()


class TestCountingInvariants:
    def test_f_vector_triangle(self):
        assert triangle().f_vector() == (3, 3, 1)

    def test_f_vector_hollow(self):
        assert hollow_triangle().f_vector() == (3, 3)

    def test_euler_characteristic(self):
        # Solid triangle is contractible (chi=1); its boundary is a circle
        # (chi=0).
        assert triangle().euler_characteristic() == 1
        assert hollow_triangle().euler_characteristic() == 0


class TestSubcomplexes:
    def test_induced_subcomplex(self):
        sub = triangle().induced_subcomplex([(0, "a"), (1, "b")])
        assert sub.facets == SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")])]
        ).facets

    def test_induced_on_disjoint_vertices(self):
        sub = triangle().induced_subcomplex([(9, "z")])
        assert sub.is_empty

    def test_union(self):
        u = hollow_triangle().union(triangle())
        assert u == triangle()

    def test_is_subcomplex_of(self):
        assert hollow_triangle().is_subcomplex_of(triangle())
        assert not triangle().is_subcomplex_of(hollow_triangle())

    def test_star_and_link(self):
        star = triangle().star((0, "a"))
        assert star.facet_count() == 1
        link = triangle().link((0, "a"))
        assert link == SimplicialComplex([Simplex([(1, "b"), (2, "c")])])

    def test_link_of_absent_vertex(self):
        assert triangle().link((9, "z")).is_empty


class TestChromaticAndSymmetry:
    def test_is_chromatic(self):
        assert triangle().is_chromatic()
        bad = SimplicialComplex([Simplex([(0, "a"), (0, "b")])])
        assert not bad.is_chromatic()

    def test_symmetric_complex(self):
        # Both "binary splittings" of two nodes: symmetric.
        c = SimplicialComplex(
            [
                Simplex([(0, 1), (1, 0)]),
                Simplex([(0, 0), (1, 1)]),
            ]
        )
        assert c.is_symmetric()

    def test_asymmetric_complex(self):
        c = SimplicialComplex([Simplex([(0, 1), (1, 0)])])
        assert not c.is_symmetric()

    def test_constant_values_symmetric(self):
        c = SimplicialComplex([Simplex([(0, "v"), (1, "v")])])
        assert c.is_symmetric()


class TestTopologicalStructure:
    def test_isolated_vertices(self):
        c = SimplicialComplex(
            [Simplex([(0, "a"), (1, "b")]), Simplex([(2, "c")])]
        )
        assert c.isolated_vertices() == [Vertex(2, "c")]
        assert c.has_isolated_vertex()

    def test_no_isolated_vertices(self):
        assert not triangle().has_isolated_vertex()

    def test_connected_components(self):
        c = disjoint_union_of_simplices([[(0, "a"), (1, "a")], [(2, "b")]])
        comps = c.connected_components()
        assert len(comps) == 2
        assert not c.is_connected()

    def test_connected(self):
        assert triangle().is_connected()

    def test_empty_is_connected(self):
        assert SimplicialComplex.empty().is_connected()


class TestTransformations:
    def test_map_vertices(self):
        image = triangle().map_vertices(lambda v: Vertex(v.name, "same"))
        assert image.dimension == 2
        assert all(v.value == "same" for v in image.vertices())

    def test_rename(self):
        renamed = triangle().rename({0: 2, 1: 1, 2: 0})
        facet = next(iter(renamed.facets))
        assert facet.value_of(2) == "a"
        assert facet.value_of(0) == "c"

    def test_disjoint_union_builder(self):
        c = disjoint_union_of_simplices([[(0, "x"), (1, "x")], [(2, "y")]])
        assert c.facet_count() == 2
        assert c.dimension == 1
