"""Unit tests for chromatic vertices and simplices."""

import pytest

from repro.topology import Simplex, Vertex, as_vertex


class TestVertex:
    def test_fields(self):
        v = Vertex(2, "x")
        assert v.name == 2
        assert v.value == "x"

    def test_equals_plain_tuple(self):
        assert Vertex(1, "a") == (1, "a")

    def test_with_value(self):
        assert Vertex(1, "a").with_value("b") == Vertex(1, "b")

    def test_as_vertex_coerces(self):
        assert as_vertex((3, None)) == Vertex(3, None)

    def test_as_vertex_passthrough(self):
        v = Vertex(0, ())
        assert as_vertex(v) is v

    def test_hashable_in_sets(self):
        assert len({Vertex(1, "a"), (1, "a"), Vertex(1, "b")}) == 2


class TestSimplexBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Simplex([])

    def test_dimension(self):
        assert Simplex([(0, "a")]).dimension == 0
        assert Simplex([(0, "a"), (1, "b"), (2, "c")]).dimension == 2

    def test_duplicate_vertices_collapse(self):
        s = Simplex([(0, "a"), (0, "a")])
        assert len(s) == 1

    def test_equality_is_structural(self):
        assert Simplex([(0, "a"), (1, "b")]) == Simplex([(1, "b"), (0, "a")])

    def test_contains_vertex(self):
        s = Simplex([(0, "a"), (1, "b")])
        assert (0, "a") in s
        assert Vertex(1, "b") in s
        assert (0, "b") not in s

    def test_contains_garbage_is_false(self):
        assert "nonsense" not in Simplex([(0, "a")])

    def test_sorted_vertices_by_name(self):
        s = Simplex([(2, "c"), (0, "a"), (1, "b")])
        assert [v.name for v in s.sorted_vertices()] == [0, 1, 2]

    def test_iteration_is_canonical(self):
        s = Simplex([(1, "b"), (0, "a")])
        assert [v.name for v in s] == [0, 1]


class TestSimplexFaces:
    def test_face_count(self):
        s = Simplex([(0, "a"), (1, "b"), (2, "c")])
        assert len(list(s.faces())) == 7  # 2^3 - 1

    def test_proper_faces_exclude_self(self):
        s = Simplex([(0, "a"), (1, "b")])
        proper = list(s.faces(proper=True))
        assert s not in proper
        assert len(proper) == 2  # the two vertices

    def test_is_face_of(self):
        big = Simplex([(0, "a"), (1, "b"), (2, "c")])
        assert Simplex([(1, "b")]).is_face_of(big)
        assert big.is_face_of(big)
        assert not Simplex([(3, "d")]).is_face_of(big)


class TestChromaticStructure:
    def test_names(self):
        assert Simplex([(0, "a"), (2, "b")]).names() == {0, 2}

    def test_is_chromatic(self):
        assert Simplex([(0, "a"), (1, "a")]).is_chromatic()
        assert not Simplex([(0, "a"), (0, "b")]).is_chromatic()

    def test_value_of(self):
        s = Simplex([(0, "a"), (1, "b")])
        assert s.value_of(1) == "b"
        with pytest.raises(KeyError):
            s.value_of(9)

    def test_value_partition_groups_equal_values(self):
        s = Simplex([(0, "x"), (1, "y"), (2, "x"), (3, "y")])
        assert s.value_partition() == [frozenset({0, 2}), frozenset({1, 3})]

    def test_value_partition_all_distinct(self):
        s = Simplex([(0, "a"), (1, "b")])
        assert len(s.value_partition()) == 2

    def test_value_partition_all_equal(self):
        s = Simplex([(0, "a"), (1, "a"), (2, "a")])
        assert s.value_partition() == [frozenset({0, 1, 2})]

    def test_rename(self):
        s = Simplex([(0, "a"), (1, "b")])
        renamed = s.rename({0: 1, 1: 0})
        assert renamed.value_of(1) == "a"
        assert renamed.value_of(0) == "b"
