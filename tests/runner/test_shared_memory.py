"""Process-pool sweeps over shared-memory chains (workers=2).

The acceptance contract: a pooled sweep with a
:class:`~repro.chain.shm.SharedChainStore` produces byte-identical run
directories (modulo per-record wall-clock timing) and byte-identical
aggregates to a serial run -- and warm workers attach published chains
instead of loading the disk cache.
"""

import json

import pytest

from repro.chain import configure_disk_cache, configure_shared_chains
from repro.runner import (
    ProcessPoolEngine,
    SerialEngine,
    SweepSpec,
    run_sweep,
)


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    configure_shared_chains(None)
    configure_disk_cache(None)


def _strip_timing(records):
    return [
        {key: value for key, value in record.items() if key != "elapsed"}
        for record in records
    ]


def _sweep():
    return SweepSpec.for_total_size(
        4, models=("blackboard", "clique"), ports=("adversarial",)
    )


class TestPooledSharedMemorySweeps:
    def test_pool_with_shared_chains_matches_serial(self, tmp_path):
        serial = run_sweep(_sweep(), engine=SerialEngine(),
                           run_dir=tmp_path / "serial")
        pooled = run_sweep(
            _sweep(),
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "pooled",
        )
        assert _strip_timing(serial.records) == _strip_timing(pooled.records)
        assert serial.result().render() == pooled.result().render()
        # The persisted JSONL agrees too (same stripped records on disk).
        for run in ("serial", "pooled"):
            lines = (tmp_path / run / "records.jsonl").read_text()
            loaded = [json.loads(line) for line in lines.splitlines()]
            assert _strip_timing(loaded) == _strip_timing(serial.records)

    def test_shared_chains_opt_out_still_matches(self, tmp_path):
        baseline = run_sweep(_sweep(), engine=SerialEngine())
        pooled = run_sweep(
            _sweep(),
            engine=ProcessPoolEngine(workers=2, shared_chains=False),
        )
        assert _strip_timing(baseline.records) == _strip_timing(
            pooled.records
        )

    def test_store_is_closed_after_the_sweep(self, tmp_path):
        from repro.chain.shm import SharedChainStore, attach_chain

        published = []
        original = SharedChainStore.publish_group

        def spying_publish_group(self, chains):
            name = original(self, chains)
            if name is not None:
                published.append(name)
            return name

        # Warm the parent memo first (a serial run executes in-process):
        # pooled run-dir sweeps only publish chains that are already
        # warm, leaving cold compilations to the workers.
        run_sweep(_sweep(), engine=SerialEngine())
        SharedChainStore.publish_group = spying_publish_group
        try:
            run_sweep(
                _sweep(),
                engine=ProcessPoolEngine(workers=2),
                run_dir=tmp_path / "run",
            )
        finally:
            SharedChainStore.publish_group = original
        assert published, "warm pooled sweep should publish shared chains"
        for name in published:
            with pytest.raises(OSError):
                attach_chain(name)

    def test_cold_run_dir_sweep_leaves_compilation_to_workers(
        self, tmp_path
    ):
        from repro.chain import clear_memo, compile_chain
        from repro.chain.shm import SharedChainStore

        published = []
        original = SharedChainStore.publish_group

        def spying_publish_group(self, chains):
            published.extend(chain.key for chain in chains)
            return original(self, chains)

        clear_memo()
        SharedChainStore.publish_group = spying_publish_group
        try:
            outcome = run_sweep(
                _sweep(),
                engine=ProcessPoolEngine(workers=2),
                run_dir=tmp_path / "run",
            )
        finally:
            SharedChainStore.publish_group = original
        # Cold parent + a disk cache for workers to share through: no
        # serial parent-side compilation stall, nothing published...
        assert published == []
        assert outcome.executed == outcome.total
        # ...but the workers still persisted every chain, so a resumed
        # (cache-warm) re-run publishes from the disk cache.
        (tmp_path / "run" / "records.jsonl").unlink()
        clear_memo()
        SharedChainStore.publish_group = spying_publish_group
        try:
            again = run_sweep(
                _sweep(),
                engine=ProcessPoolEngine(workers=2),
                run_dir=tmp_path / "run",
            )
        finally:
            SharedChainStore.publish_group = original
        assert published, "cache-warm re-run should publish shared chains"
        assert _strip_timing(again.records) == _strip_timing(outcome.records)

    def test_grouped_pooled_sweep_byte_identical_to_serial(self, tmp_path):
        """The ISSUE 4 contract: a 2-worker sweep dispatched as group
        payloads (one shm attach + one grouped pass per payload) writes
        a run directory byte-identical to a serial one, and both match
        an ungrouped (--no-group-chains) serial baseline."""
        from repro.chain import configure_grouping
        from repro.runner.worker import execute_run_group

        captured = []

        class SpyPool(ProcessPoolEngine):
            def map(self, fn, payloads):
                captured.append((fn, list(payloads)))
                return super().map(fn, captured[-1][1])

        serial = run_sweep(_sweep(), engine=SerialEngine(),
                           run_dir=tmp_path / "serial")
        pooled = run_sweep(
            _sweep(),
            engine=SpyPool(workers=2),
            run_dir=tmp_path / "pooled",
        )
        configure_grouping(False)
        try:
            ungrouped = run_sweep(_sweep(), engine=SerialEngine())
        finally:
            configure_grouping(True)
        # The pool really ran group payloads, several jobs per payload.
        fn, payloads = captured[0]
        assert fn is execute_run_group
        assert all("jobs" in payload for payload in payloads)
        assert len(payloads) < serial.total
        assert sum(len(p["jobs"]) for p in payloads) == serial.total
        assert _strip_timing(serial.records) == _strip_timing(pooled.records)
        assert _strip_timing(serial.records) == _strip_timing(
            ungrouped.records
        )
        for run in ("serial", "pooled"):
            lines = (tmp_path / run / "records.jsonl").read_text()
            loaded = [json.loads(line) for line in lines.splitlines()]
            assert _strip_timing(loaded) == _strip_timing(serial.records)

    def test_group_segments_serve_every_chain_from_one_attach(
        self, tmp_path
    ):
        """A warm parent publishes the sweep's chains into one group
        segment; the manifest locators all name that segment."""
        from repro.chain.shm import SharedChainStore

        manifests = []
        original = SharedChainStore.manifest.fget

        def spying_manifest(self):
            manifest = original(self)
            manifests.append(manifest)
            return manifest

        run_sweep(_sweep(), engine=SerialEngine())  # warm the memo
        SharedChainStore.manifest = property(spying_manifest)
        try:
            run_sweep(
                _sweep(),
                engine=ProcessPoolEngine(workers=2),
                run_dir=tmp_path / "run",
            )
        finally:
            SharedChainStore.manifest = property(original)
        assert manifests and manifests[0]
        segments = {
            locator.partition("@")[0] for locator in manifests[0].values()
        }
        assert len(segments) == 1, "whole sweep should share one segment"
        assert all("@" in locator for locator in manifests[0].values())

    def test_resumed_pooled_sweep_executes_nothing(self, tmp_path):
        first = run_sweep(
            _sweep(),
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "run",
        )
        again = run_sweep(
            _sweep(),
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "run",
        )
        assert first.total == again.total == again.resumed
        assert again.executed == 0
        assert _strip_timing(first.records) == _strip_timing(again.records)


class TestProcessContext:
    def test_callers_disk_cache_survives_a_run_dirless_pool_sweep(
        self, tmp_path
    ):
        from repro.chain import disk_cache

        installed = configure_disk_cache(tmp_path / "mine")
        run_sweep(_sweep(), engine=ProcessPoolEngine(workers=2))
        assert disk_cache() is installed

    def test_no_batch_travels_in_every_pool_payload(self):
        from repro.analysis import iter_all_experiments
        from repro.chain import configure_batching

        captured = []

        class SpyEngine:
            name = "spy"

            def map(self, fn, payloads):
                captured.extend(payloads)
                return iter(())

        configure_batching(False)
        try:
            list(iter_all_experiments(engine=SpyEngine()))
        finally:
            configure_batching(True)
        assert captured and all(
            payload["batch"] is False for payload in captured
        )

    def test_no_group_chains_travels_in_every_pool_payload(self):
        from repro.analysis import iter_all_experiments
        from repro.chain import configure_grouping

        captured = []

        class SpyEngine:
            name = "spy"

            def map(self, fn, payloads):
                captured.extend(payloads)
                return iter(())

        configure_grouping(False)
        try:
            list(iter_all_experiments(engine=SpyEngine()))
        finally:
            configure_grouping(True)
        assert captured and all(
            payload["group_chains"] is False for payload in captured
        )

    def test_pooled_experiments_get_a_published_chain_manifest(self):
        from repro.analysis import iter_all_experiments

        captured = []

        class SpyEngine:
            name = "spy"
            supports_shared_chains = True

            def map(self, fn, payloads):
                captured.extend(payloads)
                return iter(())

        list(iter_all_experiments(engine=SpyEngine()))
        assert captured and all(
            payload.get("chain_shm") for payload in captured
        )


class TestWarmWorkersSkipDisk:
    def test_attach_beats_the_disk_cache_on_cache_warm_chains(
        self, tmp_path, monkeypatch
    ):
        """The worker-side lookup order is memo -> shared -> disk.

        Simulated in-process (the same code path ``execute_run`` takes in
        a pool worker): with a manifest installed, compiling a published
        chain must never call ``ChainDiskCache.load`` even though a warm
        disk cache is configured.
        """
        from repro.chain import clear_memo, compile_chain
        from repro.chain.cache import ChainDiskCache
        from repro.chain.shm import SharedChainStore
        from repro.randomness import RandomnessConfiguration

        alpha = RandomnessConfiguration.from_group_sizes((1, 1, 2))
        configure_disk_cache(tmp_path / "chains")
        chain = compile_chain(alpha)  # compiles and warms the disk cache
        with SharedChainStore() as store:
            store.publish(chain)
            configure_shared_chains(store.manifest)
            monkeypatch.setattr(
                ChainDiskCache,
                "load",
                lambda self, key: pytest.fail(
                    "cache-warm chain was loaded from disk despite "
                    "shared memory"
                ),
            )
            clear_memo()
            attached = compile_chain(alpha)
            assert attached.key == chain.key
            assert hasattr(attached, "_shm")
