"""Runner-backed parallel paths in the analysis package."""

from fractions import Fraction

from repro.analysis import (
    estimate_solving_probability,
    parallel_estimate,
    run_all_experiments,
)
from repro.analysis.worst_case_search import exhaustive_worst_case
from repro.core import ConsistencyChain, leader_election
from repro.randomness import RandomnessConfiguration
from repro.runner import ProcessPoolEngine, SerialEngine
from repro.runner.worker import execute_experiment


class TestParallelEstimate:
    def test_engine_independent(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        serial = parallel_estimate(
            alpha, task, 3, samples=120, batches=6, seed=9
        )
        pooled = parallel_estimate(
            alpha, task, 3, samples=120, batches=6, seed=9,
            engine=ProcessPoolEngine(workers=3, chunksize=1),
        )
        assert serial == pooled

    def test_interval_brackets_exact_value(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        exact = float(ConsistencyChain(alpha).solving_probability(task, 3))
        estimate = parallel_estimate(alpha, task, 3, samples=4000, batches=8)
        assert abs(estimate.probability - exact) < 0.05

    def test_batching_changes_stream_but_stays_sane(self):
        # Different batch counts give different (seeded) streams; both
        # must remain valid estimates of the same probability.
        alpha = RandomnessConfiguration.from_group_sizes((1, 1))
        task = leader_election(2)
        one = parallel_estimate(alpha, task, 4, samples=300, batches=1)
        many = parallel_estimate(alpha, task, 4, samples=300, batches=10)
        assert one.samples == many.samples == 300
        assert abs(one.probability - many.probability) < 0.15


class TestWorstCaseSearchEngine:
    def test_pooled_enumeration_matches_serial(self):
        serial = exhaustive_worst_case((1, 2))
        pooled = exhaustive_worst_case(
            (1, 2), engine=ProcessPoolEngine(workers=2), chunk=2
        )
        assert serial == pooled
        assert isinstance(pooled[0], Fraction)

    def test_invalid_chunk_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            exhaustive_worst_case(
                (1, 2), engine=ProcessPoolEngine(workers=2), chunk=0
            )


class TestExperimentFanOut:
    def test_worker_returns_the_result_with_native_cell_types(self):
        from repro.analysis import ALL_EXPERIMENTS

        record = execute_experiment({"index": 0})
        direct = ALL_EXPERIMENTS[0]()
        assert record["result"].experiment_id == direct.experiment_id
        assert record["result"].passed == direct.passed
        # The record carries the object itself (pickled across the pool
        # boundary), so cells keep their types: run_all_experiments is
        # engine-equivalent, not JSON-round-tripped.
        assert record["result"].rows == direct.rows

    def test_serial_engine_takes_the_legacy_path(self):
        from unittest import mock

        from repro.analysis import ALL_EXPERIMENTS

        # A serial engine must not round-trip results through JSON (cells
        # keep their original types), i.e. the worker is never consulted.
        with mock.patch(
            "repro.analysis.ALL_EXPERIMENTS", (ALL_EXPERIMENTS[0],)
        ), mock.patch(
            "repro.runner.worker.execute_experiment",
            side_effect=AssertionError("serial path must not use the worker"),
        ):
            results = run_all_experiments(engine=SerialEngine())
        assert len(results) == 1
        assert results[0].experiment_id == ALL_EXPERIMENTS[0]().experiment_id
