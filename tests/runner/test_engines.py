"""Engines: ordering contract and worker-count-independent determinism."""

import json

import pytest

from repro.analysis.report import result_to_dict
from repro.runner import (
    ProcessPoolEngine,
    SerialEngine,
    SweepSpec,
    make_engine,
    run_sweep,
)
from repro.runner.worker import execute_run


def _aggregate_bytes(outcome) -> str:
    return json.dumps(result_to_dict(outcome.result()), sort_keys=True)


class TestEngineContract:
    def test_serial_preserves_order(self):
        engine = SerialEngine()
        out = list(engine.map(lambda p: p["i"] * 2, [{"i": i} for i in range(9)]))
        assert out == [i * 2 for i in range(9)]

    def test_process_preserves_order(self):
        engine = ProcessPoolEngine(workers=2, chunksize=2)
        payloads = [
            {"spec": {"sizes": [1, 1]}, "master_seed": 0, "index": i}
            for i in range(5)
        ]
        records = list(engine.map(execute_run, payloads))
        assert [r["index"] for r in records] == list(range(5))

    def test_process_empty_payloads(self):
        assert list(ProcessPoolEngine(workers=2).map(execute_run, [])) == []

    def test_process_streams_generator_payloads_in_order(self):
        # Unsized iterables take the bounded-window path: order must
        # still hold and every payload must be consumed.
        engine = ProcessPoolEngine(workers=2)
        payloads = (
            {"spec": {"sizes": [1, 1]}, "master_seed": 0, "index": i}
            for i in range(10)
        )
        records = list(engine.map(execute_run, payloads))
        assert [r["index"] for r in records] == list(range(10))

    def test_make_engine(self):
        assert isinstance(make_engine("serial"), SerialEngine)
        engine = make_engine("process", workers=3)
        assert isinstance(engine, ProcessPoolEngine)
        assert engine.workers == 3
        with pytest.raises(ValueError):
            make_engine("threads")

    def test_bad_worker_counts(self):
        with pytest.raises(ValueError):
            ProcessPoolEngine(workers=0)
        with pytest.raises(ValueError):
            ProcessPoolEngine(chunksize=0)


class TestDeterminism:
    def test_exact_sweep_identical_serial_vs_process(self):
        sweep = SweepSpec.for_total_size(
            4, models=("blackboard", "clique"), master_seed=7
        )
        serial = run_sweep(sweep, engine=SerialEngine())
        pooled = run_sweep(sweep, engine=ProcessPoolEngine(workers=3))
        assert _aggregate_bytes(serial) == _aggregate_bytes(pooled)

    def test_sample_sweep_identical_for_one_vs_many_workers(self):
        # The sampling kind actually consumes the derived seeds, so this
        # is the sharp test: identical bytes for 1 vs N workers.
        sweep = SweepSpec(
            shapes=((1, 2), (2, 2)),
            models=("blackboard", "clique"),
            ports=("adversarial", "random"),
            kind="sample",
            t=3,
            samples=120,
            replicates=(0, 1),
            master_seed=42,
        )
        one = run_sweep(sweep, engine=ProcessPoolEngine(workers=1))
        many = run_sweep(sweep, engine=ProcessPoolEngine(workers=4, chunksize=1))
        serial = run_sweep(sweep, engine=SerialEngine())
        assert _aggregate_bytes(one) == _aggregate_bytes(many)
        assert _aggregate_bytes(one) == _aggregate_bytes(serial)

    def test_master_seed_changes_sampled_results(self):
        sweep = SweepSpec(
            shapes=((2, 3),),
            models=("clique",),
            kind="sample",
            t=2,
            samples=200,
            master_seed=0,
        )
        other = SweepSpec.from_dict({**sweep.to_dict(), "master_seed": 1})
        a = run_sweep(sweep).records[0]["value"]
        b = run_sweep(other).records[0]["value"]
        assert a != b  # 200 samples at t=2: collision is ~impossible
