"""Cross-process telemetry: pool merges match serial, records stay clean."""

import json

import pytest

from repro.chain import clear_memo
from repro.obs import (
    OBS,
    TRACER,
    configure_tracing,
    reset_telemetry,
)
from repro.runner import ProcessPoolEngine, SerialEngine, SweepSpec, run_sweep


@pytest.fixture(autouse=True)
def clean_obs():
    configure_tracing(False)
    reset_telemetry()
    yield
    configure_tracing(False)
    reset_telemetry()


@pytest.fixture
def sweep():
    return SweepSpec(
        shapes=((2, 3), (1, 2, 2), (1, 4)),
        models=("blackboard", "clique"),
        tasks=("leader", "k-leader:2"),
    )


def stripped(path):
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in path.read_text().splitlines()
    ]


def _engine_invariant(snapshot):
    """The counter slice that must not depend on the engine.

    ``runner.jobs`` counts executed jobs; the ``chain.compile.*`` family
    counts compile calls by outcome, and its *sum* equals the number of
    compile requests regardless of how jobs were binned into workers.
    (Per-kind splits like shm-vs-memo hits, ``chain.cache.load.*``, and
    ``runner.groups`` legitimately differ between serial and pooled
    runs, so they stay out of this slice.)
    """
    counters = snapshot["counters"]
    return {
        "runner.jobs": counters.get("runner.jobs", 0),
        "chain.compile.total": sum(
            value for name, value in counters.items()
            if name.startswith("chain.compile.")
        ),
    }


class TestPoolMergeDeterminism:
    def test_pool_matches_serial_on_engine_invariant_counters(
        self, tmp_path, sweep
    ):
        configure_tracing(True)

        clear_memo()
        run_sweep(sweep, engine=SerialEngine(), run_dir=tmp_path / "serial")
        serial = _engine_invariant(OBS.metrics.snapshot())

        reset_telemetry()
        configure_tracing(True)
        clear_memo()
        run_sweep(
            sweep,
            engine=ProcessPoolEngine(workers=2, chunksize=1),
            run_dir=tmp_path / "pool",
        )
        pooled = _engine_invariant(OBS.metrics.snapshot())

        assert serial == pooled
        assert serial["runner.jobs"] == 12  # 3 shapes x 2 models x 2 tasks
        assert serial["chain.compile.total"] > 0

    def test_pool_spans_are_adopted_into_the_parent(self, tmp_path, sweep):
        configure_tracing(True)
        clear_memo()
        run_sweep(
            sweep,
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "run",
        )

        def names(spans):
            for span in spans:
                yield span.name
                yield from names(span.children)

        seen = set(names(TRACER.finished()))
        # Worker-side spans crossed the process boundary and nested
        # under the sweep's execute phase.
        assert "sweep.execute" in seen
        assert "runner.group" in seen
        assert "group.evolve" in seen


class TestRecordHygiene:
    def test_records_identical_with_tracing_on_and_off(
        self, tmp_path, sweep
    ):
        clear_memo()
        run_sweep(
            sweep,
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "off",
            warehouse=False,
        )

        configure_tracing(True)
        clear_memo()
        run_sweep(
            sweep,
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "on",
            warehouse=False,
        )

        assert stripped(tmp_path / "off" / "records.jsonl") == stripped(
            tmp_path / "on" / "records.jsonl"
        )

    def test_no_telemetry_keys_leak_into_records(self, tmp_path, sweep):
        configure_tracing(True)
        clear_memo()
        outcome = run_sweep(sweep, run_dir=tmp_path / "run")
        for record in outcome.records:
            assert "_telemetry" not in record
            assert "telemetry" not in record
        for line in (tmp_path / "run" / "records.jsonl").read_text(
        ).splitlines():
            assert "_telemetry" not in json.loads(line)


class _InlineEngine:
    """A non-serial engine that maps in-process: exercises the pool code
    path (payload context, telemetry attach/fold) without pool cost."""

    name = "inline"
    supports_shared_chains = False

    def map(self, fn, payloads):
        for payload in payloads:
            yield fn(payload)


class TestExperimentPathTelemetry:
    def test_execute_experiment_ships_telemetry_when_traced(self):
        from repro.runner.worker import execute_experiment

        record = execute_experiment({"index": 0, "obs": True})
        assert record["telemetry"]["metrics"]["counters"][
            "runner.experiments"
        ] == 1
        spans = record["telemetry"]["spans"]
        assert any(s["name"] == "runner.experiment" for s in spans)

    def test_execute_experiment_stays_clean_untraced(self):
        from repro.runner.worker import execute_experiment

        record = execute_experiment({"index": 0})
        assert "telemetry" not in record

    def test_engine_path_folds_worker_telemetry_into_parent(
        self, monkeypatch
    ):
        import repro.analysis as analysis

        monkeypatch.setattr(
            analysis, "ALL_EXPERIMENTS", analysis.ALL_EXPERIMENTS[:1]
        )
        configure_tracing(True)
        results = list(
            analysis.iter_all_experiments(engine=_InlineEngine())
        )
        assert len(results) == 1
        # The worker-side drain crossed the engine boundary and folded
        # back: the counter and the worker's span are visible here.
        assert OBS.metrics.counter("runner.experiments") == 1

        def names(spans):
            for span in spans:
                yield span.name
                yield from names(span.children)

        assert "runner.experiment" in set(names(TRACER.finished()))
