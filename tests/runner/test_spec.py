"""Sweep grammar: expansion counts, canonical keys, seed derivation."""

import pytest

from repro.runner import RunSpec, SweepSpec, derive_seed


class TestRunSpec:
    def test_blackboard_normalizes_ports(self):
        spec = RunSpec(sizes=(2, 3), model="blackboard", ports="random")
        assert spec.ports == "none"

    def test_clique_keeps_ports(self):
        spec = RunSpec(sizes=(2, 3), model="clique", ports="round-robin")
        assert spec.ports == "round-robin"

    def test_job_key_omits_sampling_fields_for_exact(self):
        exact = RunSpec(sizes=(2, 3), kind="exact", t=4, samples=100)
        also = RunSpec(sizes=(2, 3), kind="exact", t=9, samples=999)
        assert exact.job_key == also.job_key

    def test_job_key_includes_sampling_fields_for_sample(self):
        a = RunSpec(sizes=(2, 3), kind="sample", t=4)
        b = RunSpec(sizes=(2, 3), kind="sample", t=5)
        assert a.job_key != b.job_key

    def test_dict_round_trip(self):
        spec = RunSpec(
            sizes=(1, 2), model="clique", ports="random", task="k-leader:2",
            kind="sample", t=3, samples=50, replicate=7,
        )
        assert RunSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sizes": ()},
            {"sizes": (0, 2)},
            {"sizes": (2,), "model": "mesh"},
            {"sizes": (2,), "model": "clique", "ports": "bogus"},
            {"sizes": (2,), "model": "blackboard", "ports": "bogus"},
            {"sizes": (2,), "task": "bogus"},
            {"sizes": (2,), "task": "k-leader:x"},
            {"sizes": (2,), "kind": "bogus"},
            {"sizes": (2,), "t": 0},
            {"sizes": (2,), "samples": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RunSpec(**kwargs)


class TestSweepSpec:
    def test_expansion_count(self):
        sweep = SweepSpec(
            shapes=((1, 2), (2, 2), (3,)),
            models=("clique",),
            ports=("adversarial", "round-robin"),
            tasks=("leader", "weak-sb"),
            kind="sample",
            replicates=(0, 1, 2),
        )
        assert len(sweep.expand()) == 3 * 1 * 2 * 2 * 3

    def test_exact_replicates_collapse_for_deterministic_jobs(self):
        # Exact jobs with non-random ports consume no randomness, so a
        # replicates axis must not re-run identical computations...
        sweep = SweepSpec(
            shapes=((1, 2),),
            models=("clique",),
            ports=("adversarial",),
            replicates=(0, 1, 2, 3),
        )
        assert len(sweep.expand()) == 1
        # ...but exact jobs with *random* ports do consume the seed, so
        # their replicates stay distinct.
        random_ports = SweepSpec(
            shapes=((1, 2),),
            models=("clique",),
            ports=("random",),
            replicates=(0, 1, 2, 3),
        )
        assert len(random_ports.expand()) == 4

    def test_blackboard_jobs_deduplicate_over_ports(self):
        sweep = SweepSpec(
            shapes=((1, 2),),
            models=("blackboard", "clique"),
            ports=("adversarial", "round-robin", "random"),
        )
        jobs = sweep.expand()
        # 1 blackboard job (ports collapse) + 3 clique jobs.
        assert len(jobs) == 4
        assert len({j.job_key for j in jobs}) == 4

    def test_for_total_size_matches_shape_enumeration(self):
        from repro.randomness import enumerate_size_shapes

        sweep = SweepSpec.for_total_size(5)
        assert sweep.shapes == tuple(enumerate_size_shapes(5))

    def test_expansion_is_deterministic(self):
        sweep = SweepSpec.for_total_size(
            4, models=("blackboard", "clique"), replicates=(0, 1)
        )
        keys = [j.job_key for j in sweep.expand()]
        assert keys == [j.job_key for j in sweep.expand()]

    def test_dict_round_trip(self):
        sweep = SweepSpec(
            shapes=((1, 2), (4,)),
            models=("clique",),
            kind="sample",
            samples=10,
            master_seed=99,
        )
        assert SweepSpec.from_dict(sweep.to_dict()) == sweep


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(0, "a") == derive_seed(0, "a")

    def test_depends_on_both_inputs(self):
        assert derive_seed(0, "a") != derive_seed(1, "a")
        assert derive_seed(0, "a") != derive_seed(0, "b")

    def test_known_value_pins_the_scheme(self):
        # Changing the derivation silently would break resumed run
        # directories; pin concrete values so the change is loud.
        assert derive_seed(
            0, "sizes=2,3;model=blackboard;ports=none;task=leader;kind=exact;rep=0"
        ) == 4297432778500606839
        assert derive_seed(12345, "x") == 6565193953476843337
        assert 0 <= derive_seed(12345, "x") < 2 ** 63
