"""CLI round-trips for the runner: ``run``, ``sweep``, engine flags."""

import json

import pytest

from repro.cli import main


class TestRunCommand:
    def test_exact_record_round_trips(self, capsys):
        assert main(["run", "2,3", "--model", "clique"]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["spec"]["sizes"] == [2, 3]
        assert record["value"]["solvable"] is True
        assert "key" in record and "seed" in record

    def test_sample_record(self, capsys):
        assert main(
            ["run", "1,2", "--kind", "sample", "--t", "3", "--samples", "64"]
        ) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["value"]["samples"] == 64
        assert 0 <= record["value"]["estimate"] <= 1


class TestSweepCommand:
    def test_sweep_by_total_size(self, capsys):
        assert main(["sweep", "--n", "4"]) == 0
        out = capsys.readouterr().out
        assert "(2, 2)" in out
        assert "jobs: 10 total, 10 executed, 0 resumed" in out

    def test_sweep_requires_one_shape_source(self):
        with pytest.raises(SystemExit):
            main(["sweep"])
        with pytest.raises(SystemExit):
            main(["sweep", "--n", "4", "--shapes", "2,2"])

    def test_process_engine_matches_serial(self, capsys):
        args = ["sweep", "--shapes", "1,2", "2,2", "--kind", "sample",
                "--t", "3", "--samples", "80", "--master-seed", "5"]
        assert main(args + ["--engine", "serial"]) == 0
        serial_out = capsys.readouterr().out
        assert main(args + ["--engine", "process", "--workers", "2"]) == 0
        process_out = capsys.readouterr().out
        assert serial_out == process_out

    def test_sweep_resumes_from_run_dir(self, tmp_path, capsys):
        args = ["sweep", "--n", "4", "--run-dir", str(tmp_path / "run")]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "10 executed, 0 resumed" in first
        assert (tmp_path / "run" / "records.jsonl").exists()
        assert (tmp_path / "run" / "manifest.json").exists()
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "0 executed, 10 resumed" in second
        # The aggregated table itself is identical across the resume.
        assert first.split("jobs:")[0] == second.split("jobs:")[0]


class TestEngineFlagsOnExistingCommands:
    def test_phase_diagram_process_engine_matches_serial(self, capsys):
        assert main(["phase-diagram", "4"]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["phase-diagram", "4", "--engine", "process", "--workers", "2"]
        ) == 0
        assert capsys.readouterr().out == serial_out

    def test_experiments_accept_engine_flag(self, capsys):
        assert main(
            ["experiments", "figure-3", "--engine", "serial"]
        ) == 0
        assert "figure-3" in capsys.readouterr().out
