"""Sweep <-> warehouse integration: memo-warm reruns, columnar resume,
state-budget bin packing, and group forensics."""

import json

import pytest

from repro.chain import MAX_GROUP_STATES, clear_memo, compile_chain
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.results import ResultsStore
from repro.runner import ProcessPoolEngine, SweepSpec, run_sweep
from repro.runner.sweep import _family_state_weight, _group_job_payloads


@pytest.fixture
def sweep():
    return SweepSpec(
        shapes=((2, 3), (1, 2, 2), (5,), (1, 4)),
        models=("blackboard", "clique"),
        tasks=("leader", "k-leader:2"),
    )


def stripped(path):
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in path.read_text().splitlines()
    ]


class TestWarehouseWiring:
    def test_run_dir_gets_a_default_warehouse(self, tmp_path, sweep):
        outcome = run_sweep(sweep, run_dir=tmp_path / "run")
        store = ResultsStore(tmp_path / "run" / "warehouse")
        assert store.total_rows("records") == outcome.total
        assert store.total_rows("groups") == len(outcome.group_stats) > 0

    def test_warehouse_false_opts_out(self, tmp_path, sweep):
        run_sweep(sweep, run_dir=tmp_path / "run", warehouse=False)
        assert not (tmp_path / "run" / "warehouse").exists()

    def test_resume_reads_column_pages(self, tmp_path, sweep):
        first = run_sweep(sweep, run_dir=tmp_path / "run")
        resumed = run_sweep(sweep, run_dir=tmp_path / "run")
        assert resumed.executed == 0
        assert resumed.resumed == first.total
        assert resumed.result().rows == first.result().rows

    def test_shared_warehouse_makes_overlapping_sweeps_warm(
        self, tmp_path, sweep
    ):
        warehouse = tmp_path / "shared"
        run_sweep(sweep, run_dir=tmp_path / "a", warehouse=warehouse)
        clear_memo()
        # A *different* sweep whose cells overlap: same shapes/tasks,
        # different axis packaging -- every cell hits the shared memo.
        overlap = SweepSpec(
            shapes=sweep.shapes[:2],
            models=("clique",),
            tasks=sweep.tasks,
        )
        outcome = run_sweep(
            overlap, run_dir=tmp_path / "b", warehouse=warehouse
        )
        assert sum(g["memo_hits"] for g in outcome.group_stats) == (
            outcome.total
        )

    def test_warm_records_match_cold_without_pool(self, tmp_path, sweep):
        warehouse = tmp_path / "shared"
        run_sweep(sweep, run_dir=tmp_path / "cold", warehouse=warehouse)
        clear_memo()
        run_sweep(sweep, run_dir=tmp_path / "warm", warehouse=warehouse)
        assert stripped(tmp_path / "cold" / "records.jsonl") == stripped(
            tmp_path / "warm" / "records.jsonl"
        )

    def test_pooled_sweep_matches_serial_with_warehouse(
        self, tmp_path, sweep
    ):
        run_sweep(sweep, run_dir=tmp_path / "serial")
        pooled = run_sweep(
            sweep,
            engine=ProcessPoolEngine(workers=2),
            run_dir=tmp_path / "pooled",
        )
        assert stripped(tmp_path / "serial" / "records.jsonl") == sorted(
            stripped(tmp_path / "pooled" / "records.jsonl"),
            key=lambda r: r["index"],
        )
        assert pooled.executed == pooled.total


class TestGroupForensics:
    def test_group_stats_cover_every_job(self, tmp_path, sweep):
        outcome = run_sweep(sweep, run_dir=tmp_path / "run")
        assert sum(g["jobs"] for g in outcome.group_stats) == outcome.total
        for stats in outcome.group_stats:
            assert stats["evolution"] in ("dense", "scatter", "memo")
            assert stats["states"] >= 0
            assert 0.0 <= stats["density"] <= 1.0

    def test_group_stats_stay_out_of_job_records(self, tmp_path, sweep):
        run_sweep(sweep, run_dir=tmp_path / "run")
        for record in stripped(tmp_path / "run" / "records.jsonl"):
            assert set(record) == {
                "key", "index", "spec", "seed", "gcd", "value",
            }


class TestStateBudgetPacking:
    def _payloads(self, sweep):
        jobs = sweep.expand()
        payloads = [
            {"spec": spec.to_dict(), "master_seed": 0, "index": i}
            for i, spec in enumerate(jobs)
        ]
        return jobs, payloads

    def test_bins_are_contiguous_index_ranges(self, sweep):
        jobs, payloads = self._payloads(sweep)
        groups = _group_job_payloads(
            jobs, payloads, ProcessPoolEngine(workers=2)
        )
        assert groups is not None
        flattened = [
            payload["index"] for group in groups for payload in group["jobs"]
        ]
        assert flattened == list(range(len(jobs)))

    def test_bins_respect_the_state_budget(self, sweep):
        jobs, payloads = self._payloads(sweep)
        groups = _group_job_payloads(
            jobs, payloads, ProcessPoolEngine(workers=2)
        )
        for group in groups:
            families = {}
            for payload in group["jobs"]:
                spec = jobs[payload["index"]]
                families.setdefault(
                    (spec.sizes, spec.model, spec.ports, spec.replicate),
                    _family_state_weight(spec),
                )
            total = sum(families.values())
            # Either the bin fits the budget or it is a single family
            # too big to split.
            assert total <= MAX_GROUP_STATES or len(families) == 1

    def test_weight_uses_compiled_states_when_available(self):
        shape = (2, 3)
        spec = SweepSpec(shapes=(shape,), models=("clique",)).expand()[0]
        estimated = _family_state_weight(spec)
        chain = compile_chain(
            RandomnessConfiguration.from_group_sizes(shape),
            adversarial_assignment(shape),
        )
        assert _family_state_weight(spec) == chain.num_states
        assert estimated >= chain.num_states  # Bell bound from above

    def test_heavy_families_split_across_bins(self):
        # 2 x n=7 families next to many n=2 families: job-count binning
        # used to hand one worker both heavy chains; weight binning
        # separates them.
        sweep = SweepSpec(
            shapes=((1, 6), (2, 5), (2,), (1, 1)),
            models=("clique",),
            tasks=("leader", "k-leader:2", "weak-sb"),
        )
        jobs, payloads = self._payloads(sweep)
        groups = _group_job_payloads(
            jobs, payloads, ProcessPoolEngine(workers=2)
        )
        heavy_bins = []
        for position, group in enumerate(groups):
            shapes = {
                tuple(jobs[p["index"]].sizes) for p in group["jobs"]
            }
            if shapes & {(1, 6), (2, 5)}:
                heavy_bins.append(position)
        assert len(heavy_bins) >= 2  # the two heavy families split
