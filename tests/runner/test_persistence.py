"""Persistence: JSONL streaming, resume-from-partial, manifest guards."""

import json

import pytest

from repro.analysis.report import result_to_dict
from repro.runner import RunDirectory, SerialEngine, SweepSpec, run_sweep


def _sweep(master_seed: int = 0) -> SweepSpec:
    return SweepSpec.for_total_size(
        4, models=("blackboard", "clique"), master_seed=master_seed
    )


class TestRunDirectory:
    def test_append_and_load(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.append({"key": "a", "index": 0})
        rd.append({"key": "b", "index": 1})
        assert rd.completed_keys() == {"a", "b"}

    def test_torn_trailing_line_is_skipped(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.append({"key": "a", "index": 0})
        with rd.records_path.open("a") as handle:
            handle.write('{"key": "b", "ind')  # killed mid-write
        assert rd.completed_keys() == {"a"}

    def test_manifest_mismatch_rejected(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.write_manifest({"sweep": 1})
        rd.write_manifest({"sweep": 1})  # idempotent
        with pytest.raises(ValueError):
            rd.write_manifest({"sweep": 2})

    def test_torn_manifest_is_rewritten(self, tmp_path):
        rd = RunDirectory(tmp_path / "run")
        rd.manifest_path.write_text('{"sweep": 1, "jo')  # killed mid-write
        rd.write_manifest({"sweep": 1})
        assert rd.read_manifest() == {"sweep": 1}


class TestResume:
    def test_fresh_run_records_every_job(self, tmp_path):
        outcome = run_sweep(_sweep(), run_dir=tmp_path / "run")
        rd = RunDirectory(tmp_path / "run")
        assert len(rd.load_records()) == outcome.total
        assert outcome.executed == outcome.total
        assert outcome.resumed == 0

    def test_rerun_executes_nothing(self, tmp_path):
        run_sweep(_sweep(), run_dir=tmp_path / "run")
        again = run_sweep(_sweep(), run_dir=tmp_path / "run")
        assert again.executed == 0
        assert again.resumed == again.total

    def test_interrupted_run_completes_only_missing_jobs(self, tmp_path):
        full = run_sweep(_sweep(), run_dir=tmp_path / "full")
        # Simulate an interruption: keep only the first 3 completed jobs.
        partial = RunDirectory(tmp_path / "partial")
        for record in full.records[:3]:
            partial.append(record)
        resumed = run_sweep(_sweep(), run_dir=tmp_path / "partial")
        assert resumed.resumed == 3
        assert resumed.executed == resumed.total - 3
        assert json.dumps(result_to_dict(resumed.result()), sort_keys=True) == (
            json.dumps(result_to_dict(full.result()), sort_keys=True)
        )

    def test_resume_after_torn_line(self, tmp_path):
        full = run_sweep(_sweep(), run_dir=tmp_path / "full")
        partial = RunDirectory(tmp_path / "partial")
        for record in full.records[:2]:
            partial.append(record)
        with partial.records_path.open("a") as handle:
            handle.write(json.dumps(full.records[2])[: 40])
        resumed = run_sweep(_sweep(), run_dir=tmp_path / "partial")
        assert resumed.resumed == 2
        assert json.dumps(result_to_dict(resumed.result()), sort_keys=True) == (
            json.dumps(result_to_dict(full.result()), sort_keys=True)
        )

    def test_different_sweep_in_same_directory_is_an_error(self, tmp_path):
        run_sweep(_sweep(master_seed=0), run_dir=tmp_path / "run")
        with pytest.raises(ValueError):
            run_sweep(_sweep(master_seed=1), run_dir=tmp_path / "run")

    def test_cross_seed_records_are_not_resumed(self, tmp_path):
        # A records.jsonl without its manifest (e.g. hand-copied) must
        # not satisfy a sweep with a different master seed: the per-job
        # seed check forces those jobs to re-run.
        run_sweep(_sweep(master_seed=0), run_dir=tmp_path / "a")
        stale = RunDirectory(tmp_path / "a").records_path.read_text()
        b = RunDirectory(tmp_path / "b")
        b.records_path.write_text(stale)
        outcome = run_sweep(_sweep(master_seed=1), run_dir=tmp_path / "b")
        assert outcome.resumed == 0
        assert outcome.executed == outcome.total

    def test_resumed_records_reindex_to_this_sweeps_order(self, tmp_path):
        # Records copied from a sweep that declared its shapes in a
        # different order must aggregate in THIS sweep's job order.
        a = SweepSpec(shapes=((1, 2), (2, 2)))
        b = SweepSpec(shapes=((2, 2), (1, 2)))
        run_sweep(a, run_dir=tmp_path / "a")
        rd_b = RunDirectory(tmp_path / "b")
        rd_b.records_path.write_text(
            RunDirectory(tmp_path / "a").records_path.read_text()
        )
        outcome = run_sweep(b, run_dir=tmp_path / "b")
        assert outcome.resumed == 2 and outcome.executed == 0
        assert [row[0] for row in outcome.result().rows] == [(2, 2), (1, 2)]

    def test_records_stream_as_jobs_complete(self, tmp_path):
        rd_path = tmp_path / "run"
        seen: list[int] = []

        def spy(record):
            rd = RunDirectory(rd_path)
            seen.append(len(rd.load_records()))

        run_sweep(
            _sweep(), engine=SerialEngine(), run_dir=rd_path, progress=spy
        )
        # After the k-th completion the log already holds k records.
        assert seen == list(range(1, len(seen) + 1))
