"""Cost-model policy: verdicts, forwarding, and the how-fast-never-what law."""

import json

import pytest

from repro.chain import clear_memo
from repro.chain.backends import DENSE_ALWAYS_STATES, evolution_strategy
from repro.chain.engine import DENSE_STATE_LIMIT
from repro.chain.multi import MAX_GROUP_STATES, group_state_budget, plan_chunks
from repro.obs import (
    CostModel,
    configure_policy,
    configure_policy_payload,
    policy_mode,
    policy_payload,
)
from repro.obs.policy import MIN_GROUP_BUDGET, MODEL_VERSION, CostModelPolicy
from repro.runner import ProcessPoolEngine, SerialEngine, SweepSpec, run_sweep


def constant_model(target, log2_seconds):
    """A timing model predicting ``2**log2_seconds`` at every size."""
    return CostModel(
        target, ("log2_states", "log2_nnz"), (log2_seconds, 0.0, 0.0)
    )


def inverting_models():
    """Models that flip every static decision the policy can reach:
    scatter predicted cheaper everywhere, group budget narrowed to the
    floor.  The byte-identity tests run under these, so the planning
    genuinely changes while the records must not."""
    return [
        constant_model("evolve.dense", 10.0),
        constant_model("evolve.scatter", -10.0),
        CostModel("group.budget", (), (float(MIN_GROUP_BUDGET),)),
    ]


class TestCostModel:
    def test_dict_round_trip_is_digest_stable(self):
        model = CostModel(
            "evolve.dense", ("log2_states", "log2_nnz"),
            (-20.5, 1.25, 0.5), rows=12, residual=0.03,
        )
        clone = CostModel.from_dict(json.loads(json.dumps(model.to_dict())))
        assert clone == model
        assert clone.digest() == model.digest()

    def test_digest_tracks_content(self):
        a = constant_model("evolve.dense", 1.0)
        b = constant_model("evolve.dense", 2.0)
        assert a.digest() != b.digest()

    def test_coefficient_arity_is_validated(self):
        with pytest.raises(ValueError):
            CostModel("evolve.dense", ("log2_states",), (0.0, 1.0, 2.0))

    def test_prediction_is_a_power_law(self):
        # log2(seconds) = -3 + 1*log2(states) + 0.5*log2(nnz)
        model = CostModel(
            "evolve.dense", ("log2_states", "log2_nnz"), (-3.0, 1.0, 0.5)
        )
        assert model.predict_seconds(8, 16) == pytest.approx(
            2.0 ** (-3.0 + 3.0 + 2.0)
        )


class TestPolicyVerdicts:
    def test_static_mode_never_has_an_opinion(self):
        policy = CostModelPolicy("static", {
            m.target: m for m in inverting_models()
        })
        assert policy.evolution_strategy(100, 400) is None
        assert policy.group_state_budget(MAX_GROUP_STATES) is None

    def test_measured_without_models_falls_back(self):
        policy = CostModelPolicy("measured")
        assert policy.evolution_strategy(100, 400) is None
        assert policy.group_state_budget(MAX_GROUP_STATES) is None

    def test_measured_needs_both_timing_models(self):
        policy = CostModelPolicy(
            "measured", {"evolve.dense": constant_model("evolve.dense", 0.0)}
        )
        assert policy.evolution_strategy(100, 400) is None

    def test_measured_picks_the_predicted_cheaper_strategy(self):
        cheap_dense = CostModelPolicy("measured", {
            "evolve.dense": constant_model("evolve.dense", -10.0),
            "evolve.scatter": constant_model("evolve.scatter", 10.0),
        })
        cheap_scatter = CostModelPolicy("measured", {
            "evolve.dense": constant_model("evolve.dense", 10.0),
            "evolve.scatter": constant_model("evolve.scatter", -10.0),
        })
        assert cheap_dense.evolution_strategy(100, 400) == "dense"
        assert cheap_scatter.evolution_strategy(100, 400) == "scatter"

    def test_stale_model_version_is_ignored(self):
        stale = CostModel(
            "group.budget", (), (128.0,), version=MODEL_VERSION + 1
        )
        policy = CostModelPolicy("measured", {"group.budget": stale})
        assert policy.group_state_budget(MAX_GROUP_STATES) is None

    def test_budget_clamps_to_floor_and_cap(self):
        def with_budget(value):
            return CostModelPolicy("measured", {
                "group.budget": CostModel("group.budget", (), (value,))
            })

        assert with_budget(1.0).group_state_budget(
            MAX_GROUP_STATES
        ) == MIN_GROUP_BUDGET
        assert with_budget(1e12).group_state_budget(
            MAX_GROUP_STATES
        ) == MAX_GROUP_STATES  # narrows, never widens
        assert with_budget(4096.0).group_state_budget(
            MAX_GROUP_STATES
        ) == 4096

    def test_non_scalar_budget_model_is_refused(self):
        policy = CostModelPolicy("measured", {
            "group.budget": constant_model("group.budget", 12.0)
        })
        assert policy.group_state_budget(MAX_GROUP_STATES) is None

    def test_unknown_mode_raises(self):
        with pytest.raises(ValueError):
            CostModelPolicy("adaptive")


class TestBackendsHook:
    def test_static_default_is_unchanged(self):
        assert policy_mode() == "static"
        assert evolution_strategy(DENSE_ALWAYS_STATES, 1) == "dense"
        assert evolution_strategy(
            DENSE_ALWAYS_STATES * 4, DENSE_ALWAYS_STATES * 4
        ) == "scatter"  # sparse and above the always-dense floor

    def test_measured_policy_overrides_the_static_heuristic(self):
        configure_policy("measured", inverting_models())
        # Small and cache-resident: static says dense, the models say
        # scatter -- the policy verdict wins below the hard cap.
        assert evolution_strategy(32, 64) == "scatter"

    def test_hard_memory_cap_beats_any_verdict(self):
        configure_policy("measured", [
            constant_model("evolve.dense", -10.0),
            constant_model("evolve.scatter", 10.0),
        ])
        over = DENSE_STATE_LIMIT + 1
        assert evolution_strategy(over, over) == "scatter"


class FakeChain:
    def __init__(self, num_states):
        self.num_states = num_states


class TestChunkBudget:
    def test_static_budget_is_the_hard_cap(self):
        assert group_state_budget() == MAX_GROUP_STATES

    def test_measured_budget_narrows_plan_chunks(self):
        chains = [FakeChain(96) for _ in range(6)]
        assert plan_chunks(chains) == [chains]  # one stacked pass

        configure_policy("measured", [
            CostModel("group.budget", (), (128.0,))
        ])
        assert group_state_budget() == 128
        chunks = plan_chunks(chains)
        assert len(chunks) > 1
        # Re-partitioned, never re-ordered or dropped: same flattened
        # membership is what keeps grouped results byte-identical.
        assert [c for chunk in chunks for c in chunk] == chains


class TestForwarding:
    def test_payload_round_trip_preserves_verdicts(self):
        configure_policy("measured", inverting_models())
        payload = json.loads(json.dumps(policy_payload()))
        configure_policy()
        assert policy_mode() == "static"
        configure_policy_payload(payload)
        assert policy_mode() == "measured"
        assert evolution_strategy(32, 64) == "scatter"
        assert group_state_budget() == MIN_GROUP_BUDGET

    def test_none_and_malformed_payloads_reset_to_static(self):
        configure_policy("measured", inverting_models())
        configure_policy_payload(None)
        assert policy_mode() == "static"
        configure_policy("measured", inverting_models())
        configure_policy_payload({"mode": "measured", "models": [{"bad": 1}]})
        assert policy_mode() == "static"

    def test_chain_context_payload_ships_the_policy(self):
        from repro.runner.worker import chain_context_payload

        configure_policy("measured", inverting_models())
        context = chain_context_payload()
        assert context["policy"] == policy_payload()
        # And the worker-side installer round-trips it.
        from repro.runner.worker import _apply_chain_context

        configure_policy()
        _apply_chain_context(context)
        assert policy_mode() == "measured"


@pytest.fixture
def sweep():
    return SweepSpec(
        shapes=((2, 3), (1, 2, 2), (1, 4)),
        models=("blackboard", "clique"),
        tasks=("leader",),
    )


def stripped(path):
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in path.read_text().splitlines()
    ]


class TestByteIdentityLaw:
    """Policy may change how fast, never what: identical records under
    every policy mode and engine (the ISSUE's acceptance bar)."""

    def test_records_identical_static_vs_measured(self, tmp_path, sweep):
        clear_memo()
        run_sweep(
            sweep, engine=SerialEngine(),
            run_dir=tmp_path / "static", warehouse=False,
        )

        configure_policy("measured", inverting_models())
        # Sanity: the measured policy really does plan differently.
        assert evolution_strategy(32, 64) == "scatter"
        assert group_state_budget() == MIN_GROUP_BUDGET
        clear_memo()
        run_sweep(
            sweep, engine=SerialEngine(),
            run_dir=tmp_path / "measured", warehouse=False,
        )

        assert stripped(tmp_path / "static" / "records.jsonl") == stripped(
            tmp_path / "measured" / "records.jsonl"
        )

    def test_records_identical_serial_vs_pool_under_measured(
        self, tmp_path, sweep
    ):
        configure_policy("measured", inverting_models())
        clear_memo()
        run_sweep(
            sweep, engine=SerialEngine(),
            run_dir=tmp_path / "serial", warehouse=False,
        )
        clear_memo()
        run_sweep(
            sweep, engine=ProcessPoolEngine(workers=2, chunksize=1),
            run_dir=tmp_path / "pool", warehouse=False,
        )
        assert stripped(tmp_path / "serial" / "records.jsonl") == stripped(
            tmp_path / "pool" / "records.jsonl"
        )
