"""CLI observability round-trips: trace, metrics, profiles, stamps."""

import json

import pytest

from repro.chain import clear_memo
from repro.cli import main
from repro.obs import clock
from repro.obs.schema import validate_profile
from repro.results import ResultsStore


def _table_rows(text):
    """Rows of a ``format_table`` print-out, split on whitespace."""
    lines = [
        line for line in text.splitlines()
        if line.strip() and set(line) - {"-", " "}
    ]
    return [line.split() for line in lines[1:]]  # drop the header


class TestTraceCommand:
    def test_trace_prefix_prints_span_tree(self, capsys):
        assert main(["trace", "run", "2,3", "--model", "clique"]) == 0
        out = capsys.readouterr().out
        record_line, _, tree = out.partition("\n\n")
        record = json.loads(record_line)
        # Telemetry rides the return path, never the record itself.
        assert "_telemetry" not in record
        assert "telemetry" not in record
        assert "repro.run" in tree
        assert "runner.job" in tree
        assert tree.splitlines()[0].split() == [
            "span", "calls", "total", "self",
        ]

    def test_trace_flag_works_anywhere(self, capsys):
        assert main(["run", "2,3", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "repro.run" in out
        assert "job.compile" in out or "job.evolve" in out

    def test_bare_trace_is_a_usage_error(self, capsys):
        assert main(["trace"]) == 2
        err = capsys.readouterr().err
        assert "usage: repro trace" in err

    def test_untraced_run_prints_no_tree(self, capsys):
        assert main(["run", "2,3"]) == 0
        out = capsys.readouterr().out
        record = json.loads(out)
        assert "_telemetry" not in record
        assert "repro.run" not in out


class TestMetricsCommand:
    def test_show_without_telemetry_says_so(self, capsys):
        assert main(["metrics", "show"]) == 0
        out = capsys.readouterr().out
        assert "no telemetry collected" in out

    def test_chain_gauges_agree_with_chains_list(self, tmp_path, capsys):
        run = tmp_path / "run"
        # A warm process-wide compile memo would serve every chain
        # without ever writing the run directory's disk cache.
        clear_memo()
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()

        assert main(["chains", "list", str(run)]) == 0
        listing = capsys.readouterr().out
        # digest | bytes | loads | date | time; the last line is the
        # "<N> chains, <bytes> bytes" summary.
        listed = {
            parts[0]: int(parts[2])
            for parts in _table_rows(listing)[:-1]
        }
        assert listed  # the sweep cached at least one chain

        assert main(["metrics", "show", "--chains", str(run)]) == 0
        shown = capsys.readouterr().out
        gauged = {}
        for parts in _table_rows(shown):
            if parts[0] == "gauge" and parts[1].startswith(
                "chain.cache.loads."
            ):
                digest = parts[1].removeprefix("chain.cache.loads.")
                gauged[digest] = int(float(parts[2]))
        assert gauged == listed

    def test_export_writes_json_rows(self, tmp_path, capsys):
        run = tmp_path / "run"
        clear_memo()
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "metrics.json"
        assert main(
            ["metrics", "export", "--chains", str(run),
             "-o", str(out_path)]
        ) == 0
        rows = json.loads(out_path.read_text())
        assert all(
            set(row) == {"kind", "name", "value", "count"} for row in rows
        )
        assert any(row["name"] == "chain.cache.entries" for row in rows)


class TestProfileOut:
    def test_sweep_profile_validates_and_telemetry_lands(
        self, tmp_path, capsys
    ):
        run = tmp_path / "run"
        profile_path = tmp_path / "profile.json"
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(run),
             "--profile-out", str(profile_path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote profile to {profile_path}" in out

        document = json.loads(profile_path.read_text())
        assert validate_profile(document) == []
        assert document["meta"]["command"] == "sweep"
        assert "repro.sweep" in document["aggregates"]
        assert document["metrics"]["counters"]["runner.jobs"] == 10

        store = ResultsStore(run / "warehouse")
        assert "telemetry" in store.tables()
        rows = store.table("telemetry").to_rows()
        assert {row["kind"] for row in rows} >= {"counter", "span"}

        # And the table is reachable through the ordinary query CLI.
        assert main(
            ["results", "query", str(run), "--table", "telemetry",
             "--where", "kind=counter"]
        ) == 0
        queried = capsys.readouterr().out
        assert "runner.jobs" in queried

    def test_untraced_sweep_persists_no_telemetry(self, tmp_path, capsys):
        run = tmp_path / "run"
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()
        store = ResultsStore(run / "warehouse")
        assert "telemetry" not in store.tables()


class TestFrozenStamps:
    def test_frozen_clock_pins_telemetry_stamps(self, tmp_path, capsys):
        run = tmp_path / "run"
        with clock.frozen(1234.5):
            assert main(
                ["trace", "sweep", "--n", "4", "--run-dir", str(run)]
            ) == 0
        capsys.readouterr()
        rows = ResultsStore(run / "warehouse").table("telemetry").to_rows()
        assert rows
        assert {row["stamp"] for row in rows} == {1234.5}
        assert {row["master_seed"] for row in rows} == {0}


def _calibration_rows():
    """A groups history rich enough to fit every model target."""
    import math

    rows = []
    for states in (16, 64, 256, 1024):
        for factor in (2, 8):
            for evolution, c0 in (("dense", -20.0), ("scatter", -18.0)):
                nnz = states * factor
                elapsed = 2.0 ** (
                    c0 + math.log2(states) + 0.5 * math.log2(nnz)
                )
                rows.append(
                    {
                        "master_seed": 0,
                        "jobs": 4,
                        "chains": 2,
                        "states": states,
                        "transitions": nnz,
                        "density": nnz / (states * states),
                        "evolution": evolution,
                        "memo_hits": 0,
                        "elapsed": elapsed,
                    }
                )
    return rows


class TestCrossRunAnalyticsCLI:
    """Satellite coverage: several traced sweeps in one warehouse stay
    distinguishable and drive history/diff/tiers read-back."""

    @pytest.fixture
    def run(self, tmp_path, capsys):
        """Two traced sweeps (distinct specs, hence distinct run dirs)
        feeding one shared warehouse; returns the warehouse path."""
        from repro.obs import reset_telemetry

        warehouse = tmp_path / "warehouse"
        clear_memo()
        with clock.frozen(100.0):
            assert main(
                ["trace", "sweep", "--n", "4",
                 "--run-dir", str(tmp_path / "first"),
                 "--warehouse", str(warehouse)]
            ) == 0
        # A fresh registry between sweeps: each persisted profile is one
        # sweep's telemetry, not the process's running total.
        reset_telemetry()
        clear_memo()
        with clock.frozen(200.0):
            assert main(
                ["trace", "sweep", "--n", "4", "--master-seed", "7",
                 "--run-dir", str(tmp_path / "second"),
                 "--warehouse", str(warehouse)]
            ) == 0
        reset_telemetry()
        capsys.readouterr()
        return warehouse

    def test_sweeps_stay_distinguishable_by_stamp_and_seed(self, run):
        from repro.obs.analyze import sweep_stamps

        assert sweep_stamps(ResultsStore(run)) == [(100.0, 0), (200.0, 7)]

    def test_metrics_history_trends_across_sweeps(self, run, capsys):
        assert main(
            ["metrics", "history", "--warehouse", str(run)]
        ) == 0
        out = capsys.readouterr().out
        jobs = [
            line for line in out.splitlines()
            if line.startswith("runner.jobs")
        ]
        assert len(jobs) == 2  # one line per sweep, trend-ordered
        assert "100.000000" in jobs[0] and "200.000000" in jobs[1]

    def test_metrics_history_filters_by_master_seed(self, run, capsys):
        assert main(
            ["metrics", "history", "--warehouse", str(run),
             "--master-seed", "7", "--kind", "counter"]
        ) == 0
        out = capsys.readouterr().out
        rows = _table_rows(out)
        assert rows
        assert all(parts[2] == "200.000000" for parts in rows)

    def test_metrics_show_folds_persisted_telemetry(self, run, capsys):
        # The live registry is empty (reset after the sweeps); the rows
        # shown all come from the warehouse fold.
        assert main(["metrics", "show", "--warehouse", str(run)]) == 0
        out = capsys.readouterr().out
        assert "runner.jobs" in out

    def test_obs_diff_compares_the_two_sweeps(self, run, capsys):
        assert main(["obs", "diff", str(run)]) == 0
        out = capsys.readouterr().out
        jobs = next(
            line for line in out.splitlines() if "runner.jobs" in line
        )
        # Identical sweep specs: 10 jobs on both sides, ratio 1.
        assert "1.000" in jobs
        assert main(
            ["obs", "diff", str(run), "--a", "100.0", "--b", "200.0"]
        ) == 0

    def test_obs_diff_needs_two_sweeps(self, tmp_path, capsys):
        run = tmp_path / "one"
        with clock.frozen(50.0):
            assert main(
                ["trace", "sweep", "--n", "4", "--run-dir", str(run)]
            ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit):
            main(["obs", "diff", str(run)])

    def test_obs_tiers_attributes_wall_clock(self, run, capsys):
        assert main(["obs", "tiers", str(run)]) == 0
        out = capsys.readouterr().out
        assert "sweep.execute" in out
        assert "%" in out


class TestLiveCLI:
    """The live-operation surface: --progress, obs tail, obs top."""

    @pytest.fixture
    def live_run(self, tmp_path, capsys):
        """A completed --progress sweep; returns its run directory."""
        run = tmp_path / "run"
        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(run), "--no-warehouse",
             "--progress"]
        ) == 0
        capsys.readouterr()
        return run

    def test_progress_sweep_streams_stderr_and_writes_sidecar(
        self, tmp_path, capsys
    ):
        run = tmp_path / "run"
        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(run), "--no-warehouse",
             "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "progress: 1/10" in err
        assert "progress: 10/10" in err
        assert (run / "progress.jsonl").exists()
        assert list((run / "heartbeats").glob("*.log"))
        from repro.obs.schema import _validate_event_log

        assert _validate_event_log(run / "progress.jsonl") == []

    def test_progress_records_identical_to_plain_run(self, tmp_path, capsys):
        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(tmp_path / "plain"),
             "--no-warehouse"]
        ) == 0
        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(tmp_path / "live"),
             "--no-warehouse", "--progress"]
        ) == 0
        capsys.readouterr()

        def stripped(path):
            return [
                {k: v for k, v in json.loads(line).items()
                 if k != "elapsed"}
                for line in path.read_text().splitlines()
            ]

        assert stripped(
            tmp_path / "plain" / "records.jsonl"
        ) == stripped(tmp_path / "live" / "records.jsonl")
        assert not (tmp_path / "plain" / "progress.jsonl").exists()

    def test_obs_tail_replays_the_event_log(self, live_run, capsys):
        assert main(["obs", "tail", str(live_run)]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        assert lines[0].startswith("[start] 0/10 jobs")
        assert lines[-1].startswith("[end] 10/10 jobs")

    def test_obs_tail_without_a_log_is_an_error(self, tmp_path):
        with pytest.raises(SystemExit, match="no progress log"):
            main(["obs", "tail", str(tmp_path / "nope")])

    def test_obs_top_renders_worker_rows(self, live_run, capsys):
        assert main(["obs", "top", str(live_run)]) == 0
        out = capsys.readouterr().out
        rows = _table_rows(out)
        assert rows
        # Serial run: one worker, all ten jobs finished, none in flight.
        assert rows[0][2] == "10"
        assert rows[0][3] == "0"

    def test_obs_top_without_heartbeats_says_so(self, tmp_path, capsys):
        empty = tmp_path / "empty"
        empty.mkdir()
        assert main(["obs", "top", str(empty)]) == 0
        assert "no heartbeats" in capsys.readouterr().out

    def test_run_report_progress_flags_parse(self, tmp_path, capsys):
        assert main(["run", "2,3", "--progress"]) == 0
        err = capsys.readouterr().err
        assert "progress: 1/1" in err


class TestObsDiffStamps:
    def test_stamps_flag_selects_both_sides(self, tmp_path, capsys):
        clear_memo()
        warehouse = tmp_path / "warehouse"
        from repro.obs import reset_telemetry

        with clock.frozen(100.0):
            assert main(
                ["trace", "sweep", "--n", "4",
                 "--run-dir", str(tmp_path / "first"),
                 "--warehouse", str(warehouse)]
            ) == 0
        reset_telemetry()
        clear_memo()
        with clock.frozen(200.0):
            assert main(
                ["trace", "sweep", "--n", "4", "--master-seed", "7",
                 "--run-dir", str(tmp_path / "second"),
                 "--warehouse", str(warehouse)]
            ) == 0
        reset_telemetry()
        capsys.readouterr()
        assert main(
            ["obs", "diff", str(warehouse), "--stamps", "100.0", "200.0"]
        ) == 0
        out = capsys.readouterr().out
        assert "runner.jobs" in out

        # An unknown stamp names the ones that do exist.
        with pytest.raises(SystemExit, match="available stamps"):
            main(
                ["obs", "diff", str(warehouse),
                 "--stamps", "123.0", "200.0"]
            )


class TestCalibrateCLI:
    def test_calibrate_fits_persists_and_is_idempotent(
        self, tmp_path, capsys
    ):
        from repro.results.store import GROUP_COLUMNS

        warehouse = tmp_path / "warehouse"
        ResultsStore(warehouse).append_rows(
            "groups", _calibration_rows(), GROUP_COLUMNS
        )
        assert main(["chains", "calibrate", str(warehouse)]) == 0
        out = capsys.readouterr().out
        assert "evolve.dense" in out
        assert "evolve.scatter" in out
        assert "3 new row(s) persisted" in out

        assert main(["chains", "calibrate", str(warehouse)]) == 0
        again = capsys.readouterr().out
        assert "0 new row(s) persisted" in again

    def test_calibrate_without_history_reports_and_fails(
        self, tmp_path, capsys
    ):
        from repro.results.store import TELEMETRY_COLUMNS

        warehouse = tmp_path / "warehouse"
        # A real store (so the CLI opens it) with no groups history.
        ResultsStore(warehouse).append_rows(
            "telemetry",
            [{"stamp": 1.0, "master_seed": 0, "kind": "counter",
              "name": "x", "value": 1.0, "count": 1}],
            TELEMETRY_COLUMNS,
        )
        assert main(["chains", "calibrate", str(warehouse)]) == 1
        out = capsys.readouterr().out
        assert "no cost models fitted" in out


class TestPolicyCLI:
    def test_measured_without_models_warns_and_falls_back(self, capsys):
        assert main(["run", "2,3", "--policy", "measured"]) == 0
        err = capsys.readouterr().err
        assert "no fitted models" in err

    def test_measured_policy_records_identical_to_static(
        self, tmp_path, capsys
    ):
        from repro.results.store import GROUP_COLUMNS

        warehouse = tmp_path / "models-warehouse"
        ResultsStore(warehouse).append_rows(
            "groups", _calibration_rows(), GROUP_COLUMNS
        )
        assert main(["chains", "calibrate", str(warehouse)]) == 0
        capsys.readouterr()

        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(tmp_path / "static")]
        ) == 0
        clear_memo()
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(tmp_path / "measured"),
             "--policy", "measured", "--warehouse", str(warehouse)]
        ) == 0
        captured = capsys.readouterr()
        # The models were found: no fallback warning on stderr.
        assert "no fitted models" not in captured.err

        def stripped(path):
            return [
                {k: v for k, v in json.loads(line).items()
                 if k != "elapsed"}
                for line in path.read_text().splitlines()
            ]

        assert stripped(
            tmp_path / "static" / "records.jsonl"
        ) == stripped(tmp_path / "measured" / "records.jsonl")
