"""CLI observability round-trips: trace, metrics, profiles, stamps."""

import json

from repro.chain import clear_memo
from repro.cli import main
from repro.obs import clock
from repro.obs.schema import validate_profile
from repro.results import ResultsStore


def _table_rows(text):
    """Rows of a ``format_table`` print-out, split on whitespace."""
    lines = [
        line for line in text.splitlines()
        if line.strip() and set(line) - {"-", " "}
    ]
    return [line.split() for line in lines[1:]]  # drop the header


class TestTraceCommand:
    def test_trace_prefix_prints_span_tree(self, capsys):
        assert main(["trace", "run", "2,3", "--model", "clique"]) == 0
        out = capsys.readouterr().out
        record_line, _, tree = out.partition("\n\n")
        record = json.loads(record_line)
        # Telemetry rides the return path, never the record itself.
        assert "_telemetry" not in record
        assert "telemetry" not in record
        assert "repro.run" in tree
        assert "runner.job" in tree
        assert tree.splitlines()[0].split() == [
            "span", "calls", "total", "self",
        ]

    def test_trace_flag_works_anywhere(self, capsys):
        assert main(["run", "2,3", "--trace"]) == 0
        out = capsys.readouterr().out
        assert "repro.run" in out
        assert "job.compile" in out or "job.evolve" in out

    def test_bare_trace_is_a_usage_error(self, capsys):
        assert main(["trace"]) == 2
        err = capsys.readouterr().err
        assert "usage: repro trace" in err

    def test_untraced_run_prints_no_tree(self, capsys):
        assert main(["run", "2,3"]) == 0
        out = capsys.readouterr().out
        record = json.loads(out)
        assert "_telemetry" not in record
        assert "repro.run" not in out


class TestMetricsCommand:
    def test_show_without_telemetry_says_so(self, capsys):
        assert main(["metrics", "show"]) == 0
        out = capsys.readouterr().out
        assert "no telemetry collected" in out

    def test_chain_gauges_agree_with_chains_list(self, tmp_path, capsys):
        run = tmp_path / "run"
        # A warm process-wide compile memo would serve every chain
        # without ever writing the run directory's disk cache.
        clear_memo()
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()

        assert main(["chains", "list", str(run)]) == 0
        listing = capsys.readouterr().out
        # digest | bytes | loads | date | time; the last line is the
        # "<N> chains, <bytes> bytes" summary.
        listed = {
            parts[0]: int(parts[2])
            for parts in _table_rows(listing)[:-1]
        }
        assert listed  # the sweep cached at least one chain

        assert main(["metrics", "show", "--chains", str(run)]) == 0
        shown = capsys.readouterr().out
        gauged = {}
        for parts in _table_rows(shown):
            if parts[0] == "gauge" and parts[1].startswith(
                "chain.cache.loads."
            ):
                digest = parts[1].removeprefix("chain.cache.loads.")
                gauged[digest] = int(float(parts[2]))
        assert gauged == listed

    def test_export_writes_json_rows(self, tmp_path, capsys):
        run = tmp_path / "run"
        clear_memo()
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()
        out_path = tmp_path / "metrics.json"
        assert main(
            ["metrics", "export", "--chains", str(run),
             "-o", str(out_path)]
        ) == 0
        rows = json.loads(out_path.read_text())
        assert all(
            set(row) == {"kind", "name", "value", "count"} for row in rows
        )
        assert any(row["name"] == "chain.cache.entries" for row in rows)


class TestProfileOut:
    def test_sweep_profile_validates_and_telemetry_lands(
        self, tmp_path, capsys
    ):
        run = tmp_path / "run"
        profile_path = tmp_path / "profile.json"
        assert main(
            ["sweep", "--n", "4", "--run-dir", str(run),
             "--profile-out", str(profile_path)]
        ) == 0
        out = capsys.readouterr().out
        assert f"wrote profile to {profile_path}" in out

        document = json.loads(profile_path.read_text())
        assert validate_profile(document) == []
        assert document["meta"]["command"] == "sweep"
        assert "repro.sweep" in document["aggregates"]
        assert document["metrics"]["counters"]["runner.jobs"] == 10

        store = ResultsStore(run / "warehouse")
        assert "telemetry" in store.tables()
        rows = store.table("telemetry").to_rows()
        assert {row["kind"] for row in rows} >= {"counter", "span"}

        # And the table is reachable through the ordinary query CLI.
        assert main(
            ["results", "query", str(run), "--table", "telemetry",
             "--where", "kind=counter"]
        ) == 0
        queried = capsys.readouterr().out
        assert "runner.jobs" in queried

    def test_untraced_sweep_persists_no_telemetry(self, tmp_path, capsys):
        run = tmp_path / "run"
        assert main(["sweep", "--n", "4", "--run-dir", str(run)]) == 0
        capsys.readouterr()
        store = ResultsStore(run / "warehouse")
        assert "telemetry" not in store.tables()


class TestFrozenStamps:
    def test_frozen_clock_pins_telemetry_stamps(self, tmp_path, capsys):
        run = tmp_path / "run"
        with clock.frozen(1234.5):
            assert main(
                ["trace", "sweep", "--n", "4", "--run-dir", str(run)]
            ) == 0
        capsys.readouterr()
        rows = ResultsStore(run / "warehouse").table("telemetry").to_rows()
        assert rows
        assert {row["stamp"] for row in rows} == {1234.5}
        assert {row["master_seed"] for row in rows} == {0}
