"""In-flight telemetry: heartbeats, progress events, the stall watchdog."""

import json
import pathlib
import time

import pytest

from repro.chain import clear_memo
from repro.obs import OBS, clock, configure_tracing
from repro.obs.live import (
    LIVE,
    HeartbeatEmitter,
    LiveConfig,
    SweepMonitor,
    configure_heartbeat,
    format_progress_event,
    monitored_map,
    read_heartbeats,
    read_progress,
    worker_status,
)
from repro.obs.schema import validate_progress


@pytest.fixture(autouse=True)
def clean_live():
    configure_heartbeat(None)
    yield
    configure_heartbeat(None)


class TestLiveConfig:
    def test_defaults(self):
        config = LiveConfig()
        assert config.interval == 1.0
        assert config.deadline == 30.0
        assert config.action == "warn"

    def test_from_payload_accepts_none_dict_and_config(self):
        assert LiveConfig.from_payload(None) == LiveConfig()
        built = LiveConfig.from_payload({"deadline": 5.0, "action": "cancel"})
        assert built.deadline == 5.0
        assert built.action == "cancel"
        assert built.interval == 1.0  # untouched fields keep defaults
        config = LiveConfig(poll=0.25)
        assert LiveConfig.from_payload(config) is config

    def test_from_payload_ignores_unknown_keys(self):
        assert LiveConfig.from_payload({"dir": "/x", "interval": 2.0}) == (
            LiveConfig(interval=2.0)
        )


class TestHeartbeatEmitter:
    def test_constructor_announces_liveness(self, tmp_path):
        emitter = HeartbeatEmitter(tmp_path, interval=60.0)
        folded = read_heartbeats(tmp_path)
        assert set(folded) == {emitter.worker}
        state = folded[emitter.worker]
        assert state["seq"] == 1
        assert state["phase"] == "idle"
        assert state["jobs_started"] == 0
        assert "rss_peak" in state["resources"]

    def test_beats_are_throttled_but_forceable(self, tmp_path):
        emitter = HeartbeatEmitter(tmp_path, interval=60.0)
        assert not emitter.beat()  # inside the interval
        assert emitter.beat(force=True)
        emitter.interval = 0.0
        assert emitter.beat()

    def test_job_finish_always_beats(self, tmp_path):
        emitter = HeartbeatEmitter(tmp_path, interval=60.0)
        emitter.job_started("job:exact")  # throttled away
        emitter.job_finished()
        state = read_heartbeats(tmp_path)[emitter.worker]
        assert state["jobs_started"] == 1
        assert state["jobs_finished"] == 1
        assert state["phase"] == "idle"

    def test_counter_deltas_fold_to_totals(self, tmp_path):
        configure_tracing(True)
        emitter = HeartbeatEmitter(tmp_path, interval=0.0)
        OBS.metrics.inc("live.test.counter", 3)
        emitter.beat()
        OBS.metrics.inc("live.test.counter", 4)
        emitter.beat()
        state = read_heartbeats(tmp_path)[emitter.worker]
        assert state["counters"]["live.test.counter"] == 7

    def test_counter_deltas_survive_a_drain_reset(self, tmp_path):
        from repro.obs import drain_telemetry

        configure_tracing(True)
        emitter = HeartbeatEmitter(tmp_path, interval=0.0)
        OBS.metrics.inc("live.test.counter", 5)
        emitter.beat()
        drain_telemetry()  # the record-path fold resets the registry
        OBS.metrics.inc("live.test.counter", 2)
        emitter.beat()
        state = read_heartbeats(tmp_path)[emitter.worker]
        # 5 before the drain plus 2 after: the fold still sums exactly.
        assert state["counters"]["live.test.counter"] == 7

    def test_deltas_never_touch_the_process_registry(self, tmp_path):
        configure_tracing(True)
        emitter = HeartbeatEmitter(tmp_path, interval=0.0)
        OBS.metrics.inc("live.test.counter", 3)
        before = OBS.metrics.snapshot()["counters"]
        emitter.beat()
        emitter.beat()
        assert OBS.metrics.snapshot()["counters"] == before

    def test_untraced_beats_carry_no_counters(self, tmp_path):
        emitter = HeartbeatEmitter(tmp_path, interval=0.0)
        emitter.beat()
        assert read_heartbeats(tmp_path)[emitter.worker]["counters"] == {}


class TestConfigureHeartbeat:
    def test_install_update_and_uninstall(self, tmp_path):
        configure_heartbeat({"dir": str(tmp_path), "interval": 2.0})
        emitter = LIVE.emitter
        assert emitter is not None
        assert emitter.interval == 2.0
        # Same directory: the emitter (and its counters) is kept.
        configure_heartbeat({"dir": str(tmp_path), "interval": 0.5})
        assert LIVE.emitter is emitter
        assert emitter.interval == 0.5
        # A different sweep's directory rebuilds it.
        other = tmp_path / "other"
        other.mkdir()
        configure_heartbeat({"dir": str(other)})
        assert LIVE.emitter is not emitter
        configure_heartbeat(None)
        assert LIVE.emitter is None

    def test_payload_without_dir_uninstalls(self, tmp_path):
        configure_heartbeat({"dir": str(tmp_path)})
        configure_heartbeat({})
        assert LIVE.emitter is None


class TestWorkerStatus:
    def test_age_and_in_flight_under_frozen_clock(self, tmp_path):
        with clock.frozen(100.0):
            emitter = HeartbeatEmitter(tmp_path, interval=0.0)
            emitter.job_started("job:exact")
        rows = worker_status(tmp_path, now=103.5)
        assert len(rows) == 1
        assert rows[0]["age"] == pytest.approx(3.5)
        assert rows[0]["in_flight"] == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert worker_status(tmp_path / "nope") == []
        assert read_heartbeats(tmp_path / "nope") == {}


class TestProgressLog:
    def test_read_progress_skips_torn_tail(self, tmp_path):
        path = tmp_path / "progress.jsonl"
        path.write_bytes(
            json.dumps({"event": "start"}).encode() + b"\n"
            + b'{"event": "progr'  # a writer mid-append
        )
        events, offset = read_progress(path)
        assert [e["event"] for e in events] == ["start"]
        # Completing the line makes it visible from the saved offset.
        with path.open("ab") as handle:
            handle.write(b'ess"}\n')
        events, _ = read_progress(path, offset)
        assert [e["event"] for e in events] == ["progress"]

    def test_format_progress_event_renders_every_kind(self):
        assert format_progress_event(
            {"event": "start", "completed": 2, "total": 8, "resumed": 2}
        ) == "[start] 2/8 jobs (2 resumed)"
        line = format_progress_event(
            {
                "event": "progress", "completed": 4, "total": 8,
                "throughput": 2.0, "eta": 2.0,
                "workers": [{"worker": "a"}, {"worker": "b"}],
            }
        )
        assert line == "[progress] 4/8 jobs  2.00/s  eta 2.0s  workers 2"
        assert "stalled" not in format_progress_event(
            {"event": "stall", "worker": "w", "age": 3.0, "deadline": 1.0,
             "action": "warn", "completed": 0, "total": 8}
        )
        assert format_progress_event(
            {"event": "end", "completed": 8, "total": 8, "elapsed": 1.25}
        ) == "[end] 8/8 jobs in 1.25s"


class TestProgressSchemaValidation:
    def test_rejects_unknown_event_kinds_and_extra_fields(self):
        base = {"event": "start", "stamp": 1.0, "completed": 0, "total": 4}
        assert validate_progress(base) == []
        assert validate_progress({**base, "event": "oops"})
        assert validate_progress({**base, "mystery": 1})
        assert validate_progress({"event": "progress"})  # missing required

    def test_event_log_errors_are_line_numbered(self, tmp_path):
        from repro.obs.schema import _validate_event_log, main

        path = tmp_path / "progress.jsonl"
        path.write_text(
            json.dumps(
                {"event": "start", "stamp": 1.0, "completed": 0, "total": 2}
            )
            + "\n"
            + "not json\n"
            + json.dumps({"event": "bogus", "stamp": 2.0, "completed": 1,
                          "total": 2})
            + "\n"
        )
        errors = _validate_event_log(path)
        assert any(error.startswith("line 2:") for error in errors)
        assert any(error.startswith("line 3:") for error in errors)
        assert main([str(path)]) == 1

    def test_valid_log_passes_the_module_cli(self, tmp_path, capsys):
        from repro.obs.schema import main

        path = tmp_path / "progress.jsonl"
        path.write_text(
            json.dumps(
                {"event": "start", "stamp": 1.0, "completed": 0, "total": 2}
            )
            + "\n"
        )
        assert main([str(path)]) == 0
        assert "valid" in capsys.readouterr().out


class TestSweepMonitor:
    def test_lifecycle_events_validate_against_the_schema(self, tmp_path):
        monitor = SweepMonitor(tmp_path, total=4, resumed=1)
        monitor.heartbeat_dir.mkdir()
        with clock.frozen(10.0):
            HeartbeatEmitter(monitor.heartbeat_dir, interval=0.0)
        monitor.start()
        monitor.note_record({"key": "a"})
        monitor.tick(now=11.0)
        monitor.stop()
        events, _ = read_progress(monitor.progress_path)
        kinds = [e["event"] for e in events]
        assert kinds[0] == "start"
        assert kinds[-1] == "end"
        assert "progress" in kinds
        for event in events:
            assert validate_progress(event) == [], event
        start = events[0]
        assert (start["completed"], start["total"], start["resumed"]) == (
            1, 4, 1
        )
        assert events[-1]["completed"] == 2  # resumed + one record

    def test_tick_reports_throughput_and_eta_for_fresh_work_only(
        self, tmp_path
    ):
        monitor = SweepMonitor(tmp_path, total=10, resumed=4)
        event = monitor.tick(now=50.0)
        # Nothing fresh yet: no throughput/eta keys at all (the schema
        # has no union types, so unknown means absent, not null).
        assert "throughput" not in event
        assert "eta" not in event
        monitor.note_record({"key": "a"})
        monitor.note_record({"key": "b"})
        event = monitor.tick(now=51.0)
        assert event["throughput"] > 0
        assert event["eta"] > 0
        assert event["completed"] == 6

    def test_worker_rows_hoist_resources(self, tmp_path):
        monitor = SweepMonitor(tmp_path, total=1)
        monitor.heartbeat_dir.mkdir()
        HeartbeatEmitter(monitor.heartbeat_dir, interval=0.0)
        event = monitor.tick()
        (row,) = event["workers"]
        assert row["rss_peak"] > 0
        assert "resources" not in row
        assert validate_progress(event) == []

    def test_worker_gauges_are_labeled_when_traced(self, tmp_path):
        configure_tracing(True)
        monitor = SweepMonitor(tmp_path, total=1)
        monitor.heartbeat_dir.mkdir()
        emitter = HeartbeatEmitter(monitor.heartbeat_dir, interval=0.0)
        monitor.tick()
        labeled = OBS.metrics.labeled_gauges("worker.rss_peak")
        assert labeled[emitter.worker] > 0


class TestStallWatchdog:
    def _stale_in_flight_worker(self, directory):
        """One heartbeat at t=100 with a job in flight, then silence."""
        with clock.frozen(100.0):
            emitter = HeartbeatEmitter(directory, interval=0.0)
            emitter.job_started("job:exact")
        return emitter

    def test_detects_a_hung_worker_within_one_deadline(
        self, tmp_path, capsys
    ):
        config = LiveConfig(deadline=0.5)
        monitor = SweepMonitor(tmp_path, total=2, config=config)
        monitor.heartbeat_dir.mkdir()
        emitter = self._stale_in_flight_worker(monitor.heartbeat_dir)
        monitor.tick(now=100.4)  # age 0.4 <= deadline: healthy
        events, _ = read_progress(monitor.progress_path)
        assert all(e["event"] != "stall" for e in events)
        # One deadline interval later the very next tick flags it.
        monitor.tick(now=100.4 + config.deadline + 0.2)
        events, _ = read_progress(monitor.progress_path)
        stall = next(e for e in events if e["event"] == "stall")
        assert validate_progress(stall) == []
        assert stall["worker"] == emitter.worker
        assert stall["age"] > config.deadline
        assert stall["action"] == "warn"
        assert OBS.metrics.counter("obs.stall.detected") == 1
        assert "stalled" in capsys.readouterr().err

    def test_each_stalled_beat_is_flagged_once(self, tmp_path):
        monitor = SweepMonitor(
            tmp_path, total=2, config=LiveConfig(deadline=0.5)
        )
        monitor.heartbeat_dir.mkdir()
        self._stale_in_flight_worker(monitor.heartbeat_dir)
        monitor.tick(now=105.0)
        monitor.tick(now=106.0)  # same seq: not re-flagged
        events, _ = read_progress(monitor.progress_path)
        assert sum(e["event"] == "stall" for e in events) == 1
        assert OBS.metrics.counter("obs.stall.detected") == 1

    def test_idle_silence_is_not_a_stall(self, tmp_path):
        monitor = SweepMonitor(
            tmp_path, total=2, config=LiveConfig(deadline=0.5)
        )
        monitor.heartbeat_dir.mkdir()
        with clock.frozen(100.0):
            emitter = HeartbeatEmitter(monitor.heartbeat_dir, interval=0.0)
            emitter.job_started()
            emitter.job_finished()  # in_flight back to 0
        monitor.tick(now=1000.0)
        events, _ = read_progress(monitor.progress_path)
        assert all(e["event"] != "stall" for e in events)
        assert OBS.metrics.counter("obs.stall.detected") == 0

    def test_cancel_action_reaps_through_the_engine(self, tmp_path, capsys):
        class FakeEngine:
            calls = 0

            def terminate(self):
                self.calls += 1
                return True

        engine = FakeEngine()
        monitor = SweepMonitor(
            tmp_path,
            total=2,
            config=LiveConfig(deadline=0.5, action="cancel", max_reaps=1),
            engine=engine,
        )
        monitor.heartbeat_dir.mkdir()
        self._stale_in_flight_worker(monitor.heartbeat_dir)
        monitor.tick(now=105.0)
        assert engine.calls == 1
        assert monitor.consume_reap()
        assert not monitor.consume_reap()  # one-shot
        assert OBS.metrics.counter("obs.stall.reaped") == 1


class TestMonitoredMap:
    class _Reaper:
        """Monitor stub: approve exactly ``reaps`` broken-pool retries."""

        def __init__(self, reaps):
            self.reaps = reaps

        def consume_reap(self):
            if self.reaps > 0:
                self.reaps -= 1
                return True
            return False

    class _BreakOnceEngine:
        """Breaks mid-map once, like a reaped pool, then runs clean."""

        def __init__(self, break_after):
            self.break_after = break_after
            self.attempts = 0

        def map(self, fn, payloads):
            from concurrent.futures.process import BrokenProcessPool

            first = self.attempts == 0
            self.attempts += 1
            for index, payload in enumerate(payloads):
                if first and index == self.break_after:
                    raise BrokenProcessPool("reaped")
                yield fn(payload)

    def test_resubmits_the_unyielded_suffix_exactly_once(self):
        engine = self._BreakOnceEngine(break_after=2)
        results = list(
            monitored_map(
                engine, lambda p: p * 10, [1, 2, 3, 4], self._Reaper(1)
            )
        )
        assert results == [10, 20, 30, 40]
        assert engine.attempts == 2

    def test_genuine_pool_breakage_reraises(self):
        from concurrent.futures.process import BrokenProcessPool

        engine = self._BreakOnceEngine(break_after=0)
        with pytest.raises(BrokenProcessPool):
            list(
                monitored_map(
                    engine, lambda p: p, [1, 2], self._Reaper(0)
                )
            )


def _hang_until_reaped(payload):
    """Pool worker fn: hang (with one in-flight heartbeat) on the first
    attempt, then return normally on resubmission."""
    marker = pathlib.Path(payload["marker"])
    if not marker.exists():
        marker.touch()
        emitter = HeartbeatEmitter(payload["heartbeats"], interval=0.0)
        emitter.job_started("job:hang")
        time.sleep(120)  # reaped long before this expires
    return {"key": payload["key"], "value": payload["key"] * 2}


class TestReapAndResubmitEndToEnd:
    def test_watchdog_cancels_a_hung_pool_and_the_sweep_completes(
        self, tmp_path, capsys
    ):
        from repro.runner.engines import ProcessPoolEngine

        engine = ProcessPoolEngine(workers=2, chunksize=1)
        config = LiveConfig(
            poll=0.05, deadline=0.4, action="cancel", max_reaps=1
        )
        monitor = SweepMonitor(tmp_path, total=3, config=config, engine=engine)
        payloads = [
            {
                "key": key,
                "marker": str(tmp_path / "hang-attempted"),
                "heartbeats": str(tmp_path / "heartbeats"),
            }
            for key in (1, 2, 3)
        ]
        monitor.start()
        try:
            results = list(
                monitored_map(engine, _hang_until_reaped, payloads, monitor)
            )
        finally:
            monitor.stop()
        assert sorted(r["key"] for r in results) == [1, 2, 3]
        assert all(r["value"] == r["key"] * 2 for r in results)
        assert monitor.reaped == 1
        events, _ = read_progress(monitor.progress_path)
        stall = next(e for e in events if e["event"] == "stall")
        assert stall["action"] == "cancel"
        assert "stalled" in capsys.readouterr().err


class TestRunSweepLiveIntegration:
    @pytest.fixture
    def sweep(self):
        from repro.runner import SweepSpec

        return SweepSpec(shapes=((3,), (4,)), models=("blackboard",))

    def _stripped(self, path):
        return [
            {k: v for k, v in json.loads(line).items() if k != "elapsed"}
            for line in path.read_text().splitlines()
        ]

    def test_records_byte_identical_with_live_on_and_off(
        self, tmp_path, sweep
    ):
        from repro.runner import run_sweep

        clear_memo()
        run_sweep(
            sweep,
            run_dir=tmp_path / "off",
            warehouse=False,
        )
        clear_memo()
        run_sweep(
            sweep,
            run_dir=tmp_path / "on",
            warehouse=False,
            live={"interval": 0.0, "poll": 0.05},
        )
        assert self._stripped(
            tmp_path / "off" / "records.jsonl"
        ) == self._stripped(tmp_path / "on" / "records.jsonl")
        assert not (tmp_path / "off" / "progress.jsonl").exists()
        events, _ = read_progress(tmp_path / "on" / "progress.jsonl")
        assert events[0]["event"] == "start"
        assert events[-1]["event"] == "end"
        assert events[-1]["completed"] == events[-1]["total"]
        for event in events:
            assert validate_progress(event) == [], event
        # The serial engine's in-process emitter was detached at exit.
        assert LIVE.emitter is None

    def test_engine_invariant_counters_unchanged_by_live(
        self, tmp_path, sweep
    ):
        from repro.obs import reset_telemetry
        from repro.runner import run_sweep

        def invariant():
            counters = OBS.metrics.snapshot()["counters"]
            return {
                "runner.jobs": counters.get("runner.jobs", 0),
                "chain.compile.total": sum(
                    value for name, value in counters.items()
                    if name.startswith("chain.compile.")
                ),
            }

        configure_tracing(True)
        clear_memo()
        run_sweep(sweep, run_dir=tmp_path / "off", warehouse=False)
        plain = invariant()

        reset_telemetry()
        configure_tracing(True)
        clear_memo()
        run_sweep(
            sweep,
            run_dir=tmp_path / "on",
            warehouse=False,
            live={"interval": 0.0, "poll": 0.05},
        )
        live = invariant()
        assert plain == live
        assert live["runner.jobs"] == 2

    def test_live_without_run_dir_is_a_no_op(self, sweep):
        from repro.runner import run_sweep

        clear_memo()
        outcome = run_sweep(sweep, live=True)
        assert outcome.executed == 2

    def test_resumed_live_sweep_reports_resumed_jobs(self, tmp_path, sweep):
        from repro.runner import run_sweep

        clear_memo()
        run_sweep(sweep, run_dir=tmp_path / "run", warehouse=False)
        clear_memo()
        run_sweep(
            sweep,
            run_dir=tmp_path / "run",
            warehouse=False,
            live={"interval": 0.0, "poll": 0.05},
        )
        events, _ = read_progress(tmp_path / "run" / "progress.jsonl")
        assert events[0]["resumed"] == 2
        assert events[-1]["completed"] == 2
