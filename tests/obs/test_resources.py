"""Resource gauges: the stdlib-only RSS/CPU/GC sampler."""

from repro.obs import OBS, configure_tracing
from repro.obs.resources import publish_gauges, sample


class TestSample:
    def test_reading_has_the_three_fields(self):
        reading = sample()
        assert set(reading) == {
            "rss_peak", "cpu_seconds", "gc_collections"
        }

    def test_values_are_sane(self):
        reading = sample()
        # A live CPython process holds at least a few MiB and has spent
        # some CPU time; GC generations have collected at least once.
        assert reading["rss_peak"] > 1 << 20
        assert reading["cpu_seconds"] > 0.0
        assert reading["gc_collections"] >= 0

    def test_monotone_fields_never_regress(self):
        first = sample()
        list(range(10000))  # do a little work
        second = sample()
        assert second["rss_peak"] >= first["rss_peak"]
        assert second["cpu_seconds"] >= first["cpu_seconds"]
        assert second["gc_collections"] >= first["gc_collections"]

    def test_reading_is_json_safe(self):
        import json

        json.dumps(sample())


class TestPublishGauges:
    def test_publishes_process_gauges(self):
        configure_tracing(True)
        reading = publish_gauges(OBS.metrics)
        assert OBS.metrics.gauge_value("process.rss_peak") == float(
            reading["rss_peak"]
        )
        assert OBS.metrics.gauge_value("process.cpu_seconds") > 0.0

    def test_source_label_keeps_workers_apart(self):
        configure_tracing(True)
        publish_gauges(OBS.metrics, source="worker-1")
        publish_gauges(OBS.metrics, source="worker-2")
        labeled = OBS.metrics.labeled_gauges("process.rss_peak")
        assert set(labeled) == {"worker-1", "worker-2"}
        # Unlabeled slot untouched by labeled publishes.
        assert OBS.metrics.gauge_value("process.rss_peak") is None
