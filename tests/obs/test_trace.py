"""The span tracer: nesting, threads, the ring, and the disabled no-op."""

import threading

from repro.obs import OBS, Span, configure_tracing, trace
from repro.obs.trace import TRACER


class TestDisabledMode:
    def test_disabled_trace_records_no_spans(self):
        with trace("outer"):
            with trace("inner"):
                pass
        assert TRACER.finished() == []

    def test_disabled_trace_still_measures_duration(self):
        # Worker `elapsed` fields are timer.duration: the measurement
        # must exist (and be sane) whether tracing is on or off.
        with trace("timed") as timer:
            pass
        assert timer.duration is not None
        assert timer.duration >= 0.0

    def test_off_by_default(self):
        assert OBS.enabled is False

    def test_configure_returns_previous_state(self):
        assert configure_tracing(True) is False
        assert configure_tracing(False) is True


class TestNesting:
    def test_children_nest_under_open_parents(self):
        configure_tracing(True)
        with trace("parent", label="x"):
            with trace("child"):
                with trace("grandchild"):
                    pass
            with trace("sibling"):
                pass
        roots = TRACER.finished()
        assert [span.name for span in roots] == ["parent"]
        parent = roots[0]
        assert parent.attrs == {"label": "x"}
        assert [child.name for child in parent.children] == [
            "child", "sibling",
        ]
        assert [g.name for g in parent.children[0].children] == [
            "grandchild"
        ]

    def test_durations_cover_children(self):
        configure_tracing(True)
        with trace("parent"):
            with trace("child"):
                pass
        parent = TRACER.finished()[0]
        assert parent.duration >= parent.children[0].duration >= 0.0

    def test_reentrant_decorator(self):
        configure_tracing(True)

        @trace("fib")
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        assert fib(4) == 3
        roots = [s for s in TRACER.finished() if s.name == "fib"]
        assert len(roots) == 1  # one root; recursion nests below it

        def count(span):
            return 1 + sum(count(child) for child in span.children)

        assert count(roots[0]) == 9  # fib(4) makes 9 calls total

    def test_finished_sees_completed_children_of_open_spans(self):
        # A mid-command profile (e.g. --profile-out written inside the
        # CLI root span) must see the phases that already completed.
        configure_tracing(True)
        with trace("root"):
            with trace("done-phase"):
                pass
            visible = TRACER.finished()
            assert [span.name for span in visible] == ["done-phase"]


class TestRing:
    def test_drain_empties_the_ring(self):
        configure_tracing(True)
        with trace("a"):
            pass
        drained = TRACER.drain()
        assert [span.name for span in drained] == ["a"]
        assert TRACER.finished() == []

    def test_ring_capacity_bounds_memory(self):
        configure_tracing(True)
        for i in range(1100):
            with trace("s"):
                pass
        assert len(TRACER.finished()) == 1024

    def test_adopt_under_open_span(self):
        configure_tracing(True)
        foreign = Span("worker-span")
        with trace("sweep"):
            TRACER.adopt([foreign])
        root = TRACER.finished()[0]
        assert root.name == "sweep"
        assert foreign in root.children

    def test_adopt_without_open_span_goes_to_ring(self):
        configure_tracing(True)
        foreign = Span("worker-span")
        TRACER.adopt([foreign])
        assert foreign in TRACER.finished()


class TestThreads:
    def test_threads_keep_separate_stacks(self):
        configure_tracing(True)
        errors = []
        barrier = threading.Barrier(4)

        def work(tag):
            try:
                barrier.wait()
                for _ in range(50):
                    with trace(f"outer-{tag}"):
                        with trace(f"inner-{tag}"):
                            pass
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        roots = TRACER.finished()
        assert len(roots) == 200
        for root in roots:
            tag = root.name.removeprefix("outer-")
            # No cross-thread adoption: each root's child is its own
            # thread's inner span.
            assert [c.name for c in root.children] == [f"inner-{tag}"]

    def test_span_round_trips_through_dicts(self):
        configure_tracing(True)
        with trace("root", n=3):
            with trace("leaf"):
                pass
        span = TRACER.finished()[0]
        clone = Span.from_dict(span.to_dict())
        assert clone.name == span.name
        assert clone.attrs == span.attrs
        assert clone.duration == span.duration
        assert [c.name for c in clone.children] == ["leaf"]


class TestRingEviction:
    def test_full_ring_finish_notifies_once_per_drop(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(capacity=2)
        dropped = []
        tracer.on_evict = dropped.append
        for name in ("a", "b", "c", "d"):
            span = Span(name)
            tracer.begin(span)
            tracer.finish(span)
        assert sum(dropped) == 2
        assert [s.name for s in tracer.roots()] == ["c", "d"]

    def test_adopt_overflow_counts_every_dropped_span(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(capacity=3)
        dropped = []
        tracer.on_evict = dropped.append
        tracer.adopt([Span("a"), Span("b")])
        assert dropped == []
        tracer.adopt([Span("c"), Span("d")])
        assert sum(dropped) == 1

    def test_process_tracer_counts_dropped_spans(self):
        # The facade wires the process tracer's eviction hook to the
        # obs.spans.dropped counter, so a truncated profile is visible
        # in `repro metrics show` instead of silent.
        from repro.obs.trace import DEFAULT_RING_CAPACITY

        configure_tracing(True)
        for _ in range(DEFAULT_RING_CAPACITY + 5):
            with trace("s"):
                pass
        assert OBS.metrics.counter("obs.spans.dropped") == 5


class TestConcurrentEviction:
    """The eviction ledger under contention: N threads racing the ring
    must account for every dropped root exactly once -- the live layer
    leans on ``obs.spans.dropped`` being exact, not approximate."""

    def _race(self, work, threads=4):
        errors = []
        barrier = threading.Barrier(threads)

        def run(tag):
            try:
                barrier.wait()
                work(tag)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        pool = [
            threading.Thread(target=run, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        assert not errors

    def test_racing_finishes_account_for_every_drop(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(capacity=8)
        dropped = []
        lock = threading.Lock()

        def count(n):
            with lock:
                dropped.append(n)

        tracer.on_evict = count

        def work(tag):
            for i in range(50):
                span = Span(f"t{tag}-{i}")
                tracer.begin(span)
                tracer.finish(span)

        self._race(work)
        # 200 roots through a ring of 8: exactly 192 evictions, no
        # double counts, no lost updates.
        assert sum(dropped) == 4 * 50 - 8
        assert len(tracer.roots()) == 8

    def test_racing_adopts_account_for_every_drop(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(capacity=8)
        dropped = []
        lock = threading.Lock()

        def count(n):
            with lock:
                dropped.append(n)

        tracer.on_evict = count

        def work(tag):
            for i in range(25):
                tracer.adopt([Span(f"a{tag}-{i}"), Span(f"b{tag}-{i}")])

        self._race(work)
        assert sum(dropped) == 4 * 25 * 2 - 8
        assert len(tracer.roots()) == 8

    def test_process_counter_is_exact_under_thread_races(self):
        from repro.obs.trace import DEFAULT_RING_CAPACITY

        configure_tracing(True)
        per_thread = DEFAULT_RING_CAPACITY // 2

        def work(tag):
            for _ in range(per_thread):
                with trace("s"):
                    pass

        self._race(work)
        total = 4 * per_thread
        assert OBS.metrics.counter("obs.spans.dropped") == (
            total - DEFAULT_RING_CAPACITY
        )
        assert len(TRACER.finished()) == DEFAULT_RING_CAPACITY
