"""The freezable wall clock behind every persisted ``stamp`` field."""

import time

from repro.obs import clock


class TestClock:
    def test_now_tracks_the_real_clock(self):
        before = time.time()
        value = clock.now()
        after = time.time()
        assert before <= value <= after

    def test_freeze_pins_and_unfreeze_restores(self):
        clock.freeze(123.5)
        try:
            assert clock.now() == 123.5
            assert clock.now() == 123.5  # stable, not advancing
        finally:
            clock.unfreeze()
        assert abs(clock.now() - time.time()) < 5.0

    def test_frozen_context_manager_restores_previous_state(self):
        with clock.frozen(10.0):
            assert clock.now() == 10.0
            with clock.frozen(20.0):
                assert clock.now() == 20.0
            # Nested exit restores the *outer* freeze, not the real clock.
            assert clock.now() == 10.0
        assert abs(clock.now() - time.time()) < 5.0

    def test_frozen_restores_on_exception(self):
        try:
            with clock.frozen(7.0):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert abs(clock.now() - time.time()) < 5.0
