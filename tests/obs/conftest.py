"""Shared hygiene for observability tests: every test starts and ends
with tracing off and an empty tracer ring / metrics registry, so tests
cannot leak telemetry into each other (or into the rest of the suite)."""

import pytest

from repro.obs import configure_tracing, reset_telemetry


@pytest.fixture(autouse=True)
def clean_obs():
    configure_tracing(False)
    reset_telemetry()
    yield
    configure_tracing(False)
    reset_telemetry()
