"""Folding, rendering, rows, and the profile schema validator."""

from repro.obs import (
    MetricsRegistry,
    OBS,
    Span,
    build_profile,
    configure_tracing,
    drain_telemetry,
    merge_telemetry,
    render_span_tree,
    span_aggregates,
    telemetry_rows,
    trace,
)
from repro.obs.schema import validate, validate_profile
from repro.obs.trace import TRACER


def _span(name, duration, children=(), attrs=None):
    span = Span(name, attrs)
    span.duration = duration
    span.children = list(children)
    return span


class TestAggregates:
    def test_self_time_subtracts_children(self):
        tree = _span("outer", 1.0, [_span("inner", 0.25)])
        totals = span_aggregates([tree])
        assert totals["outer"] == {
            "calls": 1, "total": 1.0, "self": 0.75,
        }
        assert totals["inner"] == {
            "calls": 1, "total": 0.25, "self": 0.25,
        }

    def test_repeated_names_accumulate(self):
        spans = [_span("job", 0.5), _span("job", 1.5)]
        totals = span_aggregates(spans)
        assert totals["job"] == {"calls": 2, "total": 2.0, "self": 2.0}


class TestRenderSpanTree:
    def test_empty_forest_message(self):
        assert render_span_tree([]) == (
            "no spans recorded (tracing off or nothing traced)"
        )

    def test_golden_tree(self):
        forest = [
            _span(
                "repro.sweep", 2.0,
                [
                    _span("runner.job", 0.5, [_span("job.evolve", 0.25)]),
                    _span("runner.job", 0.5, [_span("job.evolve", 0.25)]),
                ],
            )
        ]
        assert render_span_tree(forest).splitlines() == [
            "span                                          "
            "calls        total         self",
            "repro.sweep                                   "
            "    1   2000.000ms   1000.000ms",
            "  runner.job                                  "
            "    2   1000.000ms    500.000ms",
            "    job.evolve                                "
            "    2    500.000ms    500.000ms",
        ]


class TestTelemetryRows:
    def test_row_kinds_and_values(self):
        registry = MetricsRegistry()
        registry.inc("jobs", 3)
        registry.gauge("entries", 7)
        registry.observe("lat", 2.0)
        registry.observe("lat", 4.0)
        spans = [_span("phase", 1.5)]
        rows = telemetry_rows(registry, spans)
        by_key = {(r["kind"], r["name"]): r for r in rows}
        assert by_key[("counter", "jobs")]["value"] == 3.0
        assert by_key[("counter", "jobs")]["count"] == 3
        assert by_key[("gauge", "entries")] == {
            "kind": "gauge", "name": "entries", "value": 7.0, "count": 1,
        }
        assert by_key[("hist", "lat")]["value"] == 6.0
        assert by_key[("hist", "lat")]["count"] == 2
        assert by_key[("span", "phase")]["value"] == 1.5
        assert by_key[("span.self", "phase")]["value"] == 1.5


class TestDrainMerge:
    def test_round_trip_preserves_totals(self):
        configure_tracing(True)
        OBS.metrics.inc("jobs", 5)
        with trace("phase"):
            pass
        before = OBS.metrics.snapshot()
        payload = drain_telemetry()
        assert OBS.metrics.snapshot()["counters"] == {}
        assert TRACER.finished() == []
        merge_telemetry(payload)
        assert OBS.metrics.snapshot() == before
        assert [s.name for s in TRACER.finished()] == ["phase"]

    def test_merged_spans_nest_under_open_span(self):
        configure_tracing(True)
        with trace("worker"):
            pass
        payload = drain_telemetry()
        with trace("sweep.execute"):
            merge_telemetry(payload)
        root = TRACER.finished()[0]
        assert root.name == "sweep.execute"
        assert [c.name for c in root.children] == ["worker"]

    def test_tolerates_partial_payloads(self):
        merge_telemetry({})
        merge_telemetry({"metrics": None})
        merge_telemetry(None)  # type: ignore[arg-type]
        assert OBS.metrics.snapshot()["counters"] == {}


class TestProfileSchema:
    def test_live_profile_validates(self):
        configure_tracing(True)
        OBS.metrics.inc("chain.compile.miss")
        OBS.metrics.observe("chain.compile.states", 12.0)
        with trace("repro.sweep", jobs=4):
            with trace("runner.job"):
                pass
        document = build_profile(command="sweep", argv=("--n", "4"))
        assert validate_profile(document) == []

    def test_missing_required_key_is_reported(self):
        document = build_profile()
        del document["metrics"]
        errors = validate_profile(document)
        assert any("metrics" in error for error in errors)

    def test_wrong_type_is_reported(self):
        document = build_profile()
        document["meta"]["command"] = 42
        errors = validate_profile(document)
        assert any("meta.command" in error or "command" in error
                   for error in errors)

    def test_unknown_top_level_key_is_reported(self):
        document = build_profile()
        document["surprise"] = True
        errors = validate_profile(document)
        assert any("surprise" in error for error in errors)

    def test_validator_primitives(self):
        assert validate(3, {"type": "integer"}) == []
        assert validate(True, {"type": "integer"}) != []  # bool != int
        assert validate(3, {"type": "number"}) == []
        assert validate("x", {"type": "number"}) != []
        assert validate([1, 2], {"type": "array",
                                 "items": {"type": "integer"}}) == []
        assert validate([1, "x"], {"type": "array",
                                   "items": {"type": "integer"}}) != []


class TestProfileSchemaV2:
    def test_meta_carries_the_schema_version(self):
        from repro.obs import PROFILE_SCHEMA_VERSION

        document = build_profile()
        assert document["meta"]["schema_version"] == PROFILE_SCHEMA_VERSION

    def test_histograms_carry_percentiles(self):
        from repro.obs import histogram_percentiles

        OBS.metrics.observe("lat", 2.0)
        OBS.metrics.observe("lat", 8.0)
        document = build_profile()
        hist = document["metrics"]["histograms"]["lat"]
        assert hist["percentiles"] == histogram_percentiles(hist)
        assert set(hist["percentiles"]) == {"p50", "p90", "p99"}
        assert validate_profile(document) == []

    def test_wrong_schema_version_is_rejected(self):
        document = build_profile()
        document["meta"]["schema_version"] = 1
        errors = validate_profile(document)
        assert any("schema_version" in error for error in errors)

    def test_missing_percentiles_are_rejected(self):
        OBS.metrics.observe("lat", 2.0)
        document = build_profile()
        del document["metrics"]["histograms"]["lat"]["percentiles"]
        errors = validate_profile(document)
        assert any("percentiles" in error for error in errors)

    def test_validator_enum_keyword(self):
        assert validate(2, {"type": "integer", "enum": [2]}) == []
        assert validate(3, {"type": "integer", "enum": [2]}) != []
