"""Calibration: power-law recovery, tolerance, idempotent persistence."""

import math

import pytest

from repro.obs import clock
from repro.obs.calibrate import (
    MIN_FIT_ROWS,
    calibrate_store,
    fit_budget_model,
    fit_cost_models,
    fit_timing_model,
    load_cost_models,
    model_from_row,
    model_row,
)
from repro.obs.policy import MODEL_VERSION, CostModel
from repro.results import ResultsStore
from repro.results.store import GROUP_COLUMNS


def group_row(states, nnz, elapsed, evolution="dense"):
    """One warehouse ``groups`` row with the forensic columns filled."""
    return {
        "master_seed": 0,
        "jobs": 4,
        "chains": 2,
        "states": int(states),
        "transitions": int(nnz),
        "density": nnz / (states * states) if states else 0.0,
        "evolution": evolution,
        "memo_hits": 0,
        "elapsed": float(elapsed),
    }


def power_law_rows(c0, a, b, evolution="dense", noise=None):
    """Rows sampled exactly from ``2**c0 * states**a * nnz**b``.

    Densities vary across the grid (nnz is not a fixed multiple of
    states), so the design matrix has full rank and the fit must
    recover the generating coefficients.  ``noise`` multiplies elapsed
    by ``2**±noise`` alternately.
    """
    rows = []
    flip = 1.0
    for states in (16, 64, 256, 1024):
        for factor in (2, 8):
            nnz = states * factor
            elapsed = 2.0 ** (
                c0 + a * math.log2(states) + b * math.log2(nnz)
            )
            if noise:
                elapsed *= 2.0 ** (flip * noise)
                flip = -flip
            rows.append(group_row(states, nnz, elapsed, evolution))
    return rows


class TestTimingFit:
    def test_recovers_the_generating_power_law(self):
        model = fit_timing_model(
            power_law_rows(-20.0, 1.0, 0.5), "dense"
        )
        assert model is not None
        assert model.target == "evolve.dense"
        assert model.rows == 8
        assert model.coef == pytest.approx((-20.0, 1.0, 0.5), abs=1e-8)
        assert model.residual == pytest.approx(0.0, abs=1e-8)

    def test_held_out_prediction_within_documented_tolerance(self):
        rows = power_law_rows(-18.0, 1.2, 0.4, noise=0.1)
        held_out = rows.pop()
        model = fit_timing_model(rows, "dense")
        assert model is not None
        predicted = model.predict_seconds(
            held_out["states"], held_out["transitions"]
        )
        # The documented tolerance: within a factor ~2**residual of the
        # truth (the injected noise is 0.1 octaves, so well inside 2x).
        ratio = predicted / held_out["elapsed"]
        assert 0.5 <= ratio <= 2.0
        assert model.residual <= 0.2

    def test_too_few_rows_yields_no_model(self):
        rows = power_law_rows(-20.0, 1.0, 0.5)[: MIN_FIT_ROWS - 1]
        assert fit_timing_model(rows, "dense") is None

    def test_rows_of_the_other_strategy_are_ignored(self):
        rows = power_law_rows(-20.0, 1.0, 0.5, evolution="scatter")
        assert fit_timing_model(rows, "dense") is None
        assert fit_timing_model(rows, "scatter") is not None

    def test_degenerate_rows_are_skipped(self):
        rows = power_law_rows(-20.0, 1.0, 0.5)
        rows += [
            group_row(0, 10, 1.0),        # no states
            group_row(10, 0, 1.0),        # no transitions
            group_row(10, 10, 0.0),       # unmeasured
        ]
        model = fit_timing_model(rows, "dense")
        assert model is not None and model.rows == 8


class TestBudgetFit:
    def test_budget_is_the_best_buckets_upper_edge(self):
        # Bucket log2=6 (states 64..127) measures 4x the throughput of
        # bucket log2=10: the fitted budget is 2**7.
        rows = [group_row(64, 128, 64 / 4000.0) for _ in range(4)]
        rows += [group_row(1024, 2048, 1024 / 1000.0) for _ in range(4)]
        model = fit_budget_model(rows, cap=1 << 15)
        assert model is not None
        assert model.features == ()
        assert model.coef == (128.0,)
        assert model.rows == 8

    def test_cap_bounds_the_fitted_budget(self):
        rows = [group_row(64, 128, 64 / 1000.0) for _ in range(4)]
        rows += [group_row(1024, 2048, 1024 / 4000.0) for _ in range(4)]
        model = fit_budget_model(rows, cap=512)
        assert model is not None
        assert model.coef == (512.0,)  # best bucket edge was 2**11

    def test_one_qualifying_bucket_is_not_a_fit(self):
        rows = [group_row(64, 128, 0.01) for _ in range(8)]
        rows += [group_row(1024, 2048, 0.5)]  # under MIN_FIT_ROWS
        assert fit_budget_model(rows, cap=1 << 15) is None


class TestFitCostModels:
    def test_fits_every_supported_target(self):
        rows = power_law_rows(-20.0, 1.0, 0.5, "dense")
        rows += power_law_rows(-18.0, 0.5, 1.0, "scatter")
        models = fit_cost_models(rows, cap=1 << 15)
        targets = {model.target for model in models}
        assert {"evolve.dense", "evolve.scatter"} <= targets

    def test_empty_history_fits_nothing(self):
        assert fit_cost_models([], cap=1 << 15) == []


class TestModelRows:
    def test_row_round_trip_is_digest_stable(self):
        model = CostModel(
            "evolve.scatter", ("log2_states", "log2_nnz"),
            (-19.0, 1.1, 0.3), rows=9, residual=0.05,
        )
        row = model_row(model, stamp=123.0)
        assert row["stamp"] == 123.0
        assert row["digest"] == model.digest()
        assert set(row) == set(
            ("stamp", "digest", "version", "target", "features", "coef",
             "rows", "residual")
        )
        assert model_from_row(row) == model


@pytest.fixture
def store(tmp_path):
    return ResultsStore(tmp_path / "warehouse")


def seed_groups(store, rows):
    store.append_rows("groups", rows, GROUP_COLUMNS)


class TestCalibrateStore:
    def test_fit_persist_load_round_trip(self, store):
        seed_groups(store, power_law_rows(-20.0, 1.0, 0.5, "dense"))
        with clock.frozen(100.0):
            models, appended = calibrate_store(store)
        assert appended == len(models) >= 1
        loaded = load_cost_models(store)
        assert loaded == {model.target: model for model in models}

    def test_recalibration_over_unchanged_history_appends_nothing(
        self, store
    ):
        seed_groups(store, power_law_rows(-20.0, 1.0, 0.5, "dense"))
        with clock.frozen(100.0):
            _, first = calibrate_store(store)
        with clock.frozen(200.0):
            models, second = calibrate_store(store)
        assert first >= 1
        assert second == 0
        assert models  # still reports the (unchanged) fit
        assert len(store.table("models")) == first

    def test_new_history_appends_only_the_changed_models(self, store):
        seed_groups(store, power_law_rows(-20.0, 1.0, 0.5, "dense"))
        with clock.frozen(100.0):
            calibrate_store(store)
        # More dense rows from a *different* law: the dense model
        # changes and re-persists; latest row wins on load.
        seed_groups(store, power_law_rows(-10.0, 1.5, 0.2, "dense"))
        with clock.frozen(200.0):
            models, appended = calibrate_store(store)
        # The dense law changed (refit) and the doubled history makes
        # the budget buckets deep enough to fit for the first time; the
        # scatter target stays absent either way.
        assert appended == 2
        assert {m.target for m in models} == {"evolve.dense", "group.budget"}
        loaded = load_cost_models(store)
        assert loaded["evolve.dense"] == next(
            model for model in models if model.target == "evolve.dense"
        )

    def test_rows_from_another_recipe_version_are_skipped(self, store):
        from repro.results.store import MODEL_COLUMNS

        stale = CostModel(
            "evolve.dense", ("log2_states", "log2_nnz"),
            (0.0, 1.0, 1.0), version=MODEL_VERSION + 1,
        )
        store.append_rows(
            "models", [model_row(stale, stamp=1.0)], MODEL_COLUMNS
        )
        assert load_cost_models(store) == {}

    def test_store_without_groups_is_a_clean_noop(self, store):
        assert calibrate_store(store) == ([], 0)
        assert load_cost_models(store) == {}
