"""The metrics registry: bins, merge laws, and atomic drains."""

from repro.obs import MetricsRegistry, bin_edges, bin_index
from repro.obs.metrics import MIN_EXP, NBINS


class TestHistogramBins:
    def test_bin_edges_are_pinned(self):
        edges = bin_edges()
        # 64 buckets need 63 finite boundaries; the first bucket is
        # everything below 2^-30 (including zero and negatives), the
        # last is open above 2^32.
        assert len(edges) == NBINS - 1
        assert edges[0] == 2.0 ** MIN_EXP == 2.0 ** -30
        assert edges[-1] == 2.0 ** (MIN_EXP + NBINS - 2) == 2.0 ** 32
        for lo, hi in zip(edges, edges[1:]):
            assert hi == lo * 2.0

    def test_bin_index_boundaries(self):
        assert bin_index(0.0) == 0
        assert bin_index(-5.0) == 0
        assert bin_index(2.0 ** -31) == 0  # below the first edge
        assert bin_index(2.0 ** -30) == 1  # exactly on it
        assert bin_index(1.0) == bin_index(1.5) == 31
        assert bin_index(2.0) == 32
        assert bin_index(2.0 ** 40) == NBINS - 1  # clamps into the top

    def test_observe_fills_the_right_bucket(self):
        registry = MetricsRegistry()
        registry.observe("lat", 1.0)
        registry.observe("lat", 1.9)
        registry.observe("lat", 4.0)
        hist = registry.histogram("lat")
        assert hist["count"] == 3
        assert hist["sum"] == 6.9
        assert hist["min"] == 1.0
        assert hist["max"] == 4.0
        assert hist["bins"] == {str(bin_index(1.0)): 2,
                                str(bin_index(4.0)): 1}


class TestMergeLaws:
    def test_counters_sum_gauges_max_histograms_fold(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("jobs", 3)
        b.inc("jobs", 4)
        a.gauge("entries", 10)
        b.gauge("entries", 7)
        a.observe("lat", 1.0)
        b.observe("lat", 8.0)
        a.merge(b.snapshot())
        assert a.counter("jobs") == 7
        assert a.gauge_value("entries") == 10  # max, order-independent
        hist = a.histogram("lat")
        assert hist["count"] == 2
        assert hist["sum"] == 9.0
        assert (hist["min"], hist["max"]) == (1.0, 8.0)

    def test_labeled_gauges_merge_per_source(self):
        # The OBS.md caveat: an unlabeled max-merged gauge collapses
        # per-worker readings.  Labels give each source its own slot,
        # each still max-merged -- so per-worker peaks survive the fold.
        a = MetricsRegistry()
        b = MetricsRegistry()
        c = MetricsRegistry()
        a.gauge("worker.rss_peak", 100, source="w1")
        b.gauge("worker.rss_peak", 80, source="w1")
        c.gauge("worker.rss_peak", 50, source="w2")
        a.merge(b.snapshot())  # same slot: max wins across registries
        a.merge(c.snapshot())
        assert a.labeled_gauges("worker.rss_peak") == {
            "w1": 100.0, "w2": 50.0,
        }
        assert a.gauge_value("worker.rss_peak", source="w1") == 100.0
        assert a.gauge_value("worker.rss_peak", source="w2") == 50.0

    def test_labeled_and_unlabeled_slots_are_disjoint(self):
        registry = MetricsRegistry()
        registry.gauge("entries", 9)
        registry.gauge("entries", 5, source="w1")
        assert registry.gauge_value("entries") == 9.0
        assert registry.labeled_gauges("entries") == {"w1": 5.0}
        # A name that is a prefix of another does not leak labels.
        registry.gauge("entries.extra", 1, source="w2")
        assert registry.labeled_gauges("entries") == {"w1": 5.0}

    def test_labeled_gauges_round_trip_snapshot_merge(self):
        registry = MetricsRegistry()
        registry.gauge("g", 3, source="a")
        snap = registry.snapshot()
        assert snap["gauges"] == {"g[a]": 3.0}  # plain keys: JSON-safe
        other = MetricsRegistry()
        other.merge(snap)
        assert other.labeled_gauges("g") == {"a": 3.0}

    def test_merge_is_order_independent(self):
        snaps = []
        for seed in (1, 2, 3):
            registry = MetricsRegistry()
            registry.inc("n", seed)
            registry.gauge("g", seed * 10)
            registry.observe("h", float(seed))
            snaps.append(registry.snapshot())
        forward = MetricsRegistry()
        backward = MetricsRegistry()
        for snap in snaps:
            forward.merge(snap)
        for snap in reversed(snaps):
            backward.merge(snap)
        assert forward.snapshot() == backward.snapshot()

    def test_drain_snapshots_and_resets_atomically(self):
        registry = MetricsRegistry()
        registry.inc("jobs", 2)
        registry.gauge("g", 5)
        registry.observe("h", 1.5)
        before = registry.snapshot()
        drained = registry.drain()
        assert drained == before
        empty = registry.snapshot()
        assert empty["counters"] == {}
        assert empty["gauges"] == {}
        assert empty["histograms"] == {}
        # Drain-then-merge-back is a no-op for the totals: the serial
        # engine relies on this when worker code drains in-process.
        registry.merge(drained)
        assert registry.snapshot() == before

    def test_snapshot_is_a_deep_copy(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        snap = registry.snapshot()
        snap["histograms"]["h"]["bins"]["99"] = 123
        assert "99" not in registry.histogram("h")["bins"]


class TestHistogramPercentiles:
    def test_empty_histogram_has_no_percentiles(self):
        from repro.obs import histogram_percentiles

        assert histogram_percentiles({"count": 0, "bins": {}}) == {}

    def test_single_value_reports_itself_everywhere(self):
        from repro.obs import histogram_percentiles

        registry = MetricsRegistry()
        registry.observe("h", 3.5)
        pct = histogram_percentiles(registry.histogram("h"))
        assert pct == {"p50": 3.5, "p90": 3.5, "p99": 3.5}

    def test_quantiles_walk_the_cumulative_buckets(self):
        from repro.obs import histogram_percentiles

        registry = MetricsRegistry()
        for _ in range(90):
            registry.observe("h", 1.0)      # octave [1, 2)
        for _ in range(10):
            registry.observe("h", 1000.0)   # octave [512, 1024)
        pct = histogram_percentiles(registry.histogram("h"))
        # p50/p90 land in the first octave (geometric midpoint 2**0.5);
        # p99 lands in the tail octave (midpoint 2**9.5).
        assert pct["p50"] == 2.0 ** 0.5
        assert pct["p90"] == 2.0 ** 0.5
        assert pct["p99"] == 2.0 ** 9.5

    def test_estimates_clamp_to_the_recorded_extremes(self):
        from repro.obs import histogram_percentiles

        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        registry.observe("h", 1.01)
        # Both in the [1, 2) octave: the midpoint estimate (~1.414)
        # exceeds the recorded max, so the max wins.
        pct = histogram_percentiles(registry.histogram("h"))
        assert pct == {"p50": 1.01, "p90": 1.01, "p99": 1.01}

    def test_bucket_zero_reports_the_minimum(self):
        from repro.obs import histogram_percentiles

        registry = MetricsRegistry()
        registry.observe("h", 0.0)  # bucket 0 is open below
        pct = histogram_percentiles(registry.histogram("h"))
        assert pct["p50"] == 0.0
