"""Cross-run analytics: history, sweep diffs, tier attribution."""

import pytest

from repro.obs.analyze import (
    TELEMETRY_KINDS,
    diff_sweeps,
    metrics_history,
    sweep_stamps,
    tier_attribution,
)
from repro.results import ResultsStore
from repro.results.store import TELEMETRY_COLUMNS


def telemetry_row(stamp, kind, name, value, count=1, master_seed=0):
    return {
        "stamp": float(stamp),
        "master_seed": int(master_seed),
        "kind": kind,
        "name": name,
        "value": float(value),
        "count": int(count),
    }


@pytest.fixture
def store(tmp_path):
    """Two persisted traced sweeps: stamp 100 (seed 0), stamp 200 (seed 7)."""
    store = ResultsStore(tmp_path / "warehouse")
    store.append_rows(
        "telemetry",
        [
            telemetry_row(100.0, "counter", "runner.jobs", 10, 10),
            telemetry_row(100.0, "counter", "chain.compile.fresh", 4, 4),
            telemetry_row(100.0, "span.self", "sweep.execute", 0.75, 1),
            telemetry_row(100.0, "span.self", "sweep.persist", 0.25, 1),
            telemetry_row(200.0, "counter", "runner.jobs", 20, 20,
                          master_seed=7),
            telemetry_row(200.0, "counter", "runner.groups", 3, 3,
                          master_seed=7),
            telemetry_row(200.0, "span.self", "sweep.execute", 0.5, 1,
                          master_seed=7),
        ],
        TELEMETRY_COLUMNS,
    )
    return store


class TestSweepStamps:
    def test_distinct_stamps_oldest_first(self, store):
        assert sweep_stamps(store) == [(100.0, 0), (200.0, 7)]

    def test_empty_store_has_no_sweeps(self, tmp_path):
        assert sweep_stamps(ResultsStore(tmp_path / "empty")) == []


class TestMetricsHistory:
    def test_rows_are_ordered_for_trend_reading(self, store):
        rows = metrics_history(store, kind="counter")
        assert [
            (r["name"], r["stamp"]) for r in rows
        ] == [
            ("chain.compile.fresh", 100.0),
            ("runner.groups", 200.0),
            ("runner.jobs", 100.0),
            ("runner.jobs", 200.0),
        ]

    def test_name_substring_and_seed_filters(self, store):
        by_name = metrics_history(store, name="jobs")
        assert {r["name"] for r in by_name} == {"runner.jobs"}
        assert len(by_name) == 2
        by_seed = metrics_history(store, master_seed=7)
        assert {r["stamp"] for r in by_seed} == {200.0}
        assert metrics_history(store, master_seed=3) == []

    def test_empty_store_yields_no_rows(self, tmp_path):
        assert metrics_history(ResultsStore(tmp_path / "empty")) == []


class TestDiffSweeps:
    def test_defaults_to_the_two_most_recent_sweeps(self, store):
        diff = diff_sweeps(store)
        by_name = {(r["kind"], r["name"]): r for r in diff}
        jobs = by_name[("counter", "runner.jobs")]
        assert (jobs["a"], jobs["b"]) == (10.0, 20.0)
        assert jobs["delta"] == 10.0
        assert jobs["ratio"] == 2.0
        # Present on one side only: absent side reads 0, ratio undefined.
        groups = by_name[("counter", "runner.groups")]
        assert (groups["a"], groups["b"]) == (0.0, 3.0)
        assert groups["ratio"] is None
        gone = by_name[("counter", "chain.compile.fresh")]
        assert (gone["a"], gone["b"]) == (4.0, 0.0)
        assert gone["ratio"] == 0.0

    def test_rows_are_ordered_counters_before_spans(self, store):
        kinds = [row["kind"] for row in diff_sweeps(store)]
        order = {kind: i for i, kind in enumerate(TELEMETRY_KINDS)}
        assert kinds == sorted(kinds, key=order.__getitem__)

    def test_explicit_stamps_select_their_sides(self, store):
        diff = diff_sweeps(store, stamp_a=200.0, stamp_b=100.0)
        jobs = next(r for r in diff if r["name"] == "runner.jobs")
        assert (jobs["a"], jobs["b"]) == (20.0, 10.0)
        assert jobs["ratio"] == 0.5

    def test_one_sweep_is_not_diffable(self, tmp_path):
        store = ResultsStore(tmp_path / "warehouse")
        store.append_rows(
            "telemetry",
            [telemetry_row(100.0, "counter", "runner.jobs", 1)],
            TELEMETRY_COLUMNS,
        )
        with pytest.raises(ValueError):
            diff_sweeps(store)
        with pytest.raises(ValueError):
            diff_sweeps(store, stamp_b=100.0)  # nothing earlier

    def test_unknown_stamp_error_lists_available_stamps(self, store):
        with pytest.raises(ValueError) as err:
            diff_sweeps(store, stamp_a=123.0, stamp_b=200.0)
        message = str(err.value)
        assert "123.0" in message
        assert "available stamps" in message
        assert "100.0" in message and "200.0" in message

    def test_too_few_sweeps_error_lists_available_stamps(self, tmp_path):
        store = ResultsStore(tmp_path / "warehouse")
        store.append_rows(
            "telemetry",
            [telemetry_row(100.0, "counter", "runner.jobs", 1)],
            TELEMETRY_COLUMNS,
        )
        with pytest.raises(ValueError) as err:
            diff_sweeps(store)
        assert "available stamps" in str(err.value)
        assert "100.0" in str(err.value)


class TestTierAttribution:
    def test_latest_sweep_by_default_shares_normalized(self, store):
        rows = tier_attribution(store)
        assert rows == [
            {
                "name": "sweep.execute",
                "seconds": 0.5,
                "calls": 1,
                "share": 1.0,
            }
        ]

    def test_explicit_stamp_descending_self_time(self, store):
        rows = tier_attribution(store, stamp=100.0)
        assert [r["name"] for r in rows] == [
            "sweep.execute", "sweep.persist",
        ]
        assert [r["share"] for r in rows] == [0.75, 0.25]
        assert sum(r["seconds"] for r in rows) == 1.0

    def test_empty_store_attributes_nothing(self, tmp_path):
        assert tier_attribution(ResultsStore(tmp_path / "empty")) == []
