"""Tests for the mermaid chain renderer."""

import pytest

from repro.core import ConsistencyChain, leader_election
from repro.randomness import RandomnessConfiguration
from repro.viz import chain_to_mermaid


class TestMermaid:
    def test_header_and_initial(self):
        alpha = RandomnessConfiguration.independent(2)
        text = chain_to_mermaid(ConsistencyChain(alpha))
        assert text.startswith("stateDiagram-v2")
        assert "[*] -->" in text

    def test_solving_states_marked(self):
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        text = chain_to_mermaid(chain, leader_election(2))
        assert "[solves]" in text
        # the initial single-block state does not solve
        assert "s01 : {1,2}\n" in text + "\n"

    def test_one_based_labels(self):
        alpha = RandomnessConfiguration.independent(2)
        text = chain_to_mermaid(ConsistencyChain(alpha))
        assert "{1,2}" in text
        assert "{0" not in text

    def test_transition_probabilities(self):
        alpha = RandomnessConfiguration.independent(2)
        text = chain_to_mermaid(ConsistencyChain(alpha))
        assert ": 1/2" in text

    def test_absorbing_self_loops_skipped(self):
        alpha = RandomnessConfiguration.shared(2)
        text = chain_to_mermaid(ConsistencyChain(alpha))
        # single state, fully absorbing: no self edge rendered
        assert "-->" not in text.replace("[*] -->", "")

    def test_max_states_guard(self):
        alpha = RandomnessConfiguration.independent(5)
        with pytest.raises(ValueError):
            chain_to_mermaid(ConsistencyChain(alpha), max_states=3)

    def test_every_reachable_state_listed(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        chain = ConsistencyChain(alpha)
        text = chain_to_mermaid(chain)
        assert text.count(" : ") >= len(chain.reachable_states())
