"""Unit tests for the Monte-Carlo estimators."""

import math

import pytest

from repro.analysis.montecarlo import (
    Estimate,
    adaptive_estimate,
    estimate_solving_probability,
    wilson_interval,
    _normal_quantile,
)
from repro.core import ConsistencyChain, leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


class TestWilsonInterval:
    def test_contains_phat(self):
        low, high = wilson_interval(40, 100)
        assert low < 0.4 < high

    def test_clamped_to_unit(self):
        low, _ = wilson_interval(0, 50)
        _, high = wilson_interval(50, 50)
        assert low == pytest.approx(0.0, abs=1e-12)
        assert high == pytest.approx(1.0, abs=1e-12)

    def test_narrows_with_samples(self):
        w_small = wilson_interval(10, 20)
        w_big = wilson_interval(1000, 2000)
        assert (w_big[1] - w_big[0]) < (w_small[1] - w_small[0])

    def test_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(0, 0)
        with pytest.raises(ValueError):
            wilson_interval(1, 2, confidence=1.5)

    def test_quantile_symmetry(self):
        assert math.isclose(
            _normal_quantile(0.975), 1.959964, rel_tol=1e-4
        )
        assert math.isclose(
            _normal_quantile(0.025), -_normal_quantile(0.975), rel_tol=1e-9
        )
        with pytest.raises(ValueError):
            _normal_quantile(0.0)


class TestEstimators:
    def test_interval_covers_exact_value(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2))
        task = leader_election(3)
        exact = float(ConsistencyChain(alpha).solving_probability(task, 3))
        estimate = estimate_solving_probability(
            alpha, task, 3, samples=3000, seed=1
        )
        assert estimate.contains(exact)

    def test_message_passing_estimate(self):
        shape = (2, 3)
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape)
        task = leader_election(5)
        exact = float(
            ConsistencyChain(alpha, ports).solving_probability(task, 2)
        )
        estimate = estimate_solving_probability(
            alpha, task, 2, ports, samples=3000, seed=2
        )
        assert estimate.contains(exact)

    def test_adaptive_stops_at_target_width(self):
        alpha = RandomnessConfiguration.independent(2)
        task = leader_election(2)
        estimate = adaptive_estimate(
            alpha, task, 2, target_width=0.06, seed=3
        )
        assert estimate.width() <= 0.06 or estimate.samples == 20000

    def test_adaptive_validation(self):
        alpha = RandomnessConfiguration.independent(2)
        with pytest.raises(ValueError):
            adaptive_estimate(
                alpha, leader_election(2), 1, target_width=0
            )

    def test_estimate_dataclass(self):
        estimate = Estimate(0.5, 0.4, 0.6, 100, 0.95)
        assert math.isclose(estimate.width(), 0.2)
        assert estimate.contains(0.45)
        assert not estimate.contains(0.7)

    def test_degenerate_probability_zero(self):
        alpha = RandomnessConfiguration.shared(3)
        estimate = estimate_solving_probability(
            alpha, leader_election(3), 3, samples=300, seed=0
        )
        assert estimate.probability == 0.0
        assert estimate.low == pytest.approx(0.0, abs=1e-12)
