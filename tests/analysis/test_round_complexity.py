"""Tests for the round-complexity experiment (analysis vs protocols)."""

from repro.analysis import protocol_round_complexity
from repro.analysis.round_complexity import _protocol_mean_rounds


class TestProtocolMeans:
    def test_blackboard_two_independent(self):
        mean, stderr = _protocol_mean_rounds((1, 1), clique=False, runs=300)
        # E[T] + 1 = 3 for two private sources.
        assert abs(mean - 3.0) < 5 * stderr + 0.05
        assert stderr < 0.2

    def test_clique_mean_bounded(self):
        mean, _ = _protocol_mean_rounds((2, 3), clique=True, runs=120)
        assert 2.0 <= mean <= 7.0

    def test_failure_raises(self):
        import pytest

        with pytest.raises(AssertionError):
            _protocol_mean_rounds(
                (2, 2), clique=True, runs=2, max_rounds=16
            )


class TestExperiment:
    def test_passes(self):
        protocol_round_complexity(runs=200).require_pass()
