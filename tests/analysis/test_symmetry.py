"""Tests for port-assignment symmetries."""

import pytest

from repro.analysis import (
    has_nontrivial_automorphism,
    source_preserving_automorphisms,
    symmetry_census,
)
from repro.models import adversarial_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration


class TestAutomorphisms:
    def test_lemma43_shift_is_found(self):
        shape = (2, 2)
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape)
        autos = list(source_preserving_automorphisms(ports, alpha))
        assert (1, 0, 3, 2) in autos  # the block shift f

    def test_round_robin_rotation_when_sources_allow(self):
        alpha = RandomnessConfiguration.shared(4)
        ports = round_robin_assignment(4)
        autos = list(source_preserving_automorphisms(ports, alpha))
        assert (1, 2, 3, 0) in autos  # the full rotation

    def test_source_constraint_filters(self):
        # With all-private sources no non-identity permutation preserves
        # the source map.
        alpha = RandomnessConfiguration.independent(4)
        ports = round_robin_assignment(4)
        assert not has_nontrivial_automorphism(ports, alpha)

    def test_size_mismatch(self):
        alpha = RandomnessConfiguration.independent(3)
        with pytest.raises(ValueError):
            list(
                source_preserving_automorphisms(
                    round_robin_assignment(4), alpha
                )
            )

    def test_automorphism_implies_unsolvable(self):
        """The sound direction, spot-checked beyond the census."""
        from repro.core import ConsistencyChain, leader_election

        shape = (3, 3)
        alpha = RandomnessConfiguration.from_group_sizes(shape)
        ports = adversarial_assignment(shape)
        assert has_nontrivial_automorphism(ports, alpha)
        assert not ConsistencyChain(alpha, ports).eventually_solvable(
            leader_election(6)
        )


class TestCensus:
    def test_census_passes(self):
        symmetry_census(shapes=((2, 2), (1, 3))).require_pass()

    def test_counts_for_two_two(self):
        result = symmetry_census(shapes=((2, 2),))
        row = result.rows[0]
        # 1296 assignments: 1152 solvable, 36 symmetric-unsolvable,
        # 108 asymmetric-unsolvable, 0 symmetric-solvable.
        assert row[2:7] == (1296, 1152, 36, 108, 0)
