"""The reproduction sweep itself, as tests: every experiment must PASS.

These are the repository's headline integration tests -- each asserts that
a figure/theorem of the paper is reproduced by the implementation.  Small
parameters are used where the default benchmark parameters would be slow.
"""

import pytest

from repro.analysis import (
    ALL_EXPERIMENTS,
    algorithm1_matching,
    euclid_protocol,
    extension_expected_times,
    extension_k_leader,
    extension_task_zoo,
    figure1_protocol_complex,
    figure2_realization_complex,
    figure3_output_projection,
    figure4_solvability_equivalence,
    lemma43_divisibility,
    lemma_b1_equiprobability,
    theoremC1_reduction,
    theorem41_blackboard,
    theorem41_convergence,
    theorem42_message_passing,
)


class TestFigures:
    def test_figure1(self):
        figure1_protocol_complex(t_max=2).require_pass()

    def test_figure2(self):
        figure2_realization_complex(n=3, t_max=1).require_pass()

    def test_figure3(self):
        figure3_output_projection(n=3).require_pass()

    def test_figure3_larger(self):
        figure3_output_projection(n=5).require_pass()

    def test_figure4(self):
        figure4_solvability_equivalence(n=3, t=1).require_pass()


class TestTheorems:
    def test_theorem41(self):
        theorem41_blackboard(n_max=4, t_max=5).require_pass()

    def test_theorem41_convergence(self):
        theorem41_convergence(k_values=(2, 3), t_max=6).require_pass()

    def test_theorem42(self):
        theorem42_message_passing(n_max=5, t_max=3).require_pass()

    def test_lemma_b1(self):
        lemma_b1_equiprobability(n_max=3, t_max=2).require_pass()

    def test_extension_k_leader(self):
        extension_k_leader(n_max=5).require_pass()

    def test_extension_task_zoo(self):
        extension_task_zoo(n_max=4).require_pass()

    def test_extension_expected_times(self):
        extension_expected_times(n_max=5).require_pass()

    def test_registry_covers_all_paper_items(self):
        ids = {gen().experiment_id for gen in ALL_EXPERIMENTS}
        required = {
            "figure-1",
            "figure-2",
            "figure-3",
            "figure-4",
            "lemma-B.1",
            "theorem-4.1",
            "theorem-4.1-rate",
            "theorem-4.2",
            "lemma-4.3",
            "algorithm-1",
            "euclid-protocol",
            "theorem-C.1",
        }
        assert required <= ids


class TestProtocolExperiments:
    def test_lemma43(self):
        lemma43_divisibility(shapes=((2, 2), (3, 3)), t=2).require_pass()

    def test_algorithm1(self):
        algorithm1_matching(
            pairs=((1, 2), (2, 3)), seeds=(0, 1)
        ).require_pass()

    def test_euclid_protocol(self):
        euclid_protocol(n_max=5, seeds=(0, 1), max_rounds=80).require_pass()

    def test_theoremC1(self):
        theoremC1_reduction(seeds=(0,)).require_pass()


class TestResultRendering:
    def test_render_contains_verdict(self):
        result = figure3_output_projection(n=3)
        text = result.render()
        assert "figure-3" in text
        assert "PASS" in text

    def test_require_pass_raises_on_failure(self):
        result = figure3_output_projection(n=3)
        result.passed = False
        with pytest.raises(AssertionError):
            result.require_pass()
