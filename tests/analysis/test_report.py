"""Unit tests for report serialization."""

import json

import pytest

from repro.analysis import (
    figure3_output_projection,
    result_from_dict,
    result_to_csv,
    result_to_dict,
    result_to_markdown,
    results_from_json,
    results_to_json,
    write_report,
)
from repro.analysis.result import ExperimentResult


@pytest.fixture
def sample():
    return figure3_output_projection(n=3)


class TestDictRoundTrip:
    def test_round_trip_preserves_content(self, sample):
        rebuilt = result_from_dict(result_to_dict(sample))
        assert rebuilt.experiment_id == sample.experiment_id
        assert rebuilt.title == sample.title
        assert list(rebuilt.headers) == list(sample.headers)
        assert len(rebuilt.rows) == len(sample.rows)
        assert rebuilt.passed == sample.passed

    def test_cells_stringified(self, sample):
        payload = result_to_dict(sample)
        assert all(
            isinstance(cell, str) for row in payload["rows"] for cell in row
        )

    def test_missing_keys_rejected(self):
        with pytest.raises(ValueError):
            result_from_dict({"experiment_id": "x"})


class TestJson:
    def test_json_round_trip(self, sample):
        text = results_to_json([sample, sample])
        loaded = results_from_json(text)
        assert len(loaded) == 2
        assert loaded[0].experiment_id == sample.experiment_id

    def test_json_is_valid(self, sample):
        json.loads(results_to_json([sample]))


class TestCsvAndMarkdown:
    def test_csv_shape(self, sample):
        lines = result_to_csv(sample).strip().splitlines()
        assert len(lines) == 1 + len(sample.rows)
        assert lines[0].startswith(str(sample.headers[0]))

    def test_markdown_structure(self, sample):
        text = result_to_markdown(sample)
        assert text.startswith("### figure-3")
        assert "| --- |" not in text  # separator has no padding
        assert "**Verdict: PASS**" in text

    def test_markdown_failure_verdict(self):
        result = ExperimentResult(
            "x", "t", ("a",), [(1,)], passed=False
        )
        assert "FAIL" in result_to_markdown(result)


class TestWriteReport:
    def test_writes_all_kinds(self, sample, tmp_path):
        paths = write_report([sample], tmp_path, stem="r")
        assert paths["json"].exists()
        assert paths["markdown"].exists()
        assert paths["csv"].exists()
        loaded = results_from_json(paths["json"].read_text())
        assert loaded[0].experiment_id == sample.experiment_id
        assert "figure-3" in paths["markdown"].read_text()

    def test_creates_directory(self, sample, tmp_path):
        target = tmp_path / "nested" / "deeper"
        write_report([sample], target)
        assert (target / "experiments.json").exists()
