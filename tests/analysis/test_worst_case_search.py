"""Tests for the exhaustive worst-case port search."""

import math
from fractions import Fraction

import pytest

from repro.analysis import (
    exhaustive_worst_case,
    iter_all_port_assignments,
    worst_case_port_search,
)
from repro.core import ConsistencyChain, leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


class TestEnumeration:
    def test_counts(self):
        assert sum(1 for _ in iter_all_port_assignments(2)) == 1
        assert sum(1 for _ in iter_all_port_assignments(3)) == 8
        assert sum(1 for _ in iter_all_port_assignments(4)) == 1296

    def test_all_distinct(self):
        found = list(iter_all_port_assignments(3))
        assert len(set(found)) == len(found)

    def test_guard(self):
        with pytest.raises(ValueError):
            list(iter_all_port_assignments(5, limit=100))


class TestExhaustiveWorstCase:
    def test_gcd_one_all_assignments_solve(self):
        lowest, highest, solvable, total = exhaustive_worst_case((1, 2))
        assert lowest == highest == 1
        assert solvable == total == 8

    def test_shared_source_no_assignment_solves(self):
        lowest, highest, solvable, total = exhaustive_worst_case((3,))
        assert lowest == highest == 0
        assert solvable == 0

    def test_two_two_mixed(self):
        """(2,2): most assignments solve, the adversarial ones do not."""
        lowest, highest, solvable, total = exhaustive_worst_case((2, 2))
        assert lowest == 0
        assert highest == 1
        assert 0 < solvable < total

    def test_lemma43_attains_minimum(self):
        for shape in ((2, 2), (1, 3)):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            task = leader_election(alpha.n)
            lemma_limit = ConsistencyChain(
                alpha, adversarial_assignment(shape)
            ).limit_solving_probability(task)
            lowest, _, _, _ = exhaustive_worst_case(shape)
            assert lemma_limit == lowest

    def test_limits_always_zero_or_one(self):
        """Zero-one law over the whole assignment space of n=3."""
        for shape in ((1, 2), (3,), (1, 1, 1)):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            task = leader_election(3)
            for ports in iter_all_port_assignments(3):
                limit = ConsistencyChain(
                    alpha, ports
                ).limit_solving_probability(task)
                assert limit in (Fraction(0), Fraction(1))


class TestExperiment:
    def test_small_sweep_passes(self):
        worst_case_port_search(shapes=((1, 2), (3,), (2, 2))).require_pass()

    def test_prediction_matches_gcd(self):
        result = worst_case_port_search(shapes=((2, 2), (1, 3)))
        for row in result.rows:
            shape = row[0]
            assert (row[4] == 1.0) == (math.gcd(*shape) == 1)
