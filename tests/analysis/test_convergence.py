"""Tests for the convergence-rate analysis."""

from fractions import Fraction

import pytest

from repro.analysis import convergence_rates, exact_tail_ratio, fitted_decay_rate
from repro.core import ConsistencyChain, leader_election
from repro.randomness import RandomnessConfiguration


class TestFittedRate:
    def test_pure_geometric_series(self):
        series = [1 - Fraction(1, 2**t) for t in range(1, 12)]
        assert abs(fitted_decay_rate(series) - 0.5) < 1e-9

    def test_skip_drops_transient(self):
        # transient followed by clean 1/3 decay
        series = [0.1, 0.2] + [1 - (1 / 3) ** t for t in range(1, 10)]
        fit = fitted_decay_rate(series, skip=4)
        assert abs(fit - 1 / 3) < 0.02

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fitted_decay_rate([Fraction(1)])


class TestExactTailRatio:
    def test_two_private_sources_exact_half(self):
        alpha = RandomnessConfiguration.independent(2)
        chain = ConsistencyChain(alpha)
        ratio = exact_tail_ratio(chain, leader_election(2), horizon=10)
        assert ratio == Fraction(1, 2)

    def test_unsolvable_returns_none(self):
        alpha = RandomnessConfiguration.shared(3)
        chain = ConsistencyChain(alpha)
        assert (
            exact_tail_ratio(chain, leader_election(3), horizon=6) is None
        )

    def test_ratio_is_rational(self):
        alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
        chain = ConsistencyChain(alpha)
        ratio = exact_tail_ratio(chain, leader_election(5), horizon=12)
        assert isinstance(ratio, Fraction)
        assert abs(float(ratio) - 0.5) < 0.01


class TestExperiment:
    def test_passes(self):
        convergence_rates(horizon=16).require_pass()
