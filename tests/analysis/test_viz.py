"""Unit tests for the text renderers."""

from repro.core import knowledge_projection, leader_election_complex
from repro.models import BlackboardModel
from repro.topology import Simplex, SimplicialComplex, Vertex
from repro.viz import (
    complex_to_dot,
    format_simplex,
    format_table,
    format_vertex,
    render_complex,
    render_partition,
)


class TestVertexAndSimplexFormatting:
    def test_one_based_by_default(self):
        assert format_vertex(Vertex(0, 1)) == "(1,1)"

    def test_zero_based_option(self):
        assert format_vertex(Vertex(0, 1), one_based=False) == "(0,1)"

    def test_bottom_rendering(self):
        assert "⊥" in format_vertex(Vertex(0, None))

    def test_bitstring_rendering(self):
        assert format_vertex(Vertex(0, (0, 1, 1))) == "(1,011)"

    def test_empty_bits_are_bottom(self):
        assert "⊥" in format_vertex(Vertex(0, ()))

    def test_simplex_sorted(self):
        s = Simplex([(1, 0), (0, 1)])
        assert format_simplex(s) == "{(1,1), (2,0)}"


class TestComplexRendering:
    def test_contains_all_facets(self):
        text = render_complex(leader_election_complex(3))
        assert text.count("{") == 3

    def test_summary_line(self):
        text = render_complex(leader_election_complex(3))
        assert "facets=3" in text
        assert "dim=2" in text

    def test_empty_complex(self):
        assert "empty" in render_complex(SimplicialComplex.empty())

    def test_title(self):
        text = render_complex(leader_election_complex(2), title="O_LE")
        assert text.startswith("O_LE")

    def test_projection_rendering_round_trip(self):
        model = BlackboardModel(3)
        projected = knowledge_projection(model, ((0,), (0,), (1,)))
        text = render_complex(projected)
        assert "facets=2" in text


class TestPartitionRendering:
    def test_blocks(self):
        text = render_partition([frozenset({0, 1}), frozenset({2})])
        assert text == "{1,2} | {3}"

    def test_zero_based(self):
        text = render_partition([frozenset({0})], one_based=False)
        assert text == "{0}"


class TestTableRendering:
    def test_alignment(self):
        table = format_table(("a", "bb"), [(1, 2), (333, 4)])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_values_stringified(self):
        table = format_table(("x",), [((1, 2),)])
        assert "(1, 2)" in table


class TestDotExport:
    def test_structure(self):
        dot = complex_to_dot(leader_election_complex(2), name="OLE")
        assert dot.startswith("graph OLE {")
        assert dot.rstrip().endswith("}")
        assert "--" in dot

    def test_isolated_highlight(self):
        from repro.core import project_complex

        projected = project_complex(leader_election_complex(3))
        dot = complex_to_dot(projected)
        assert "gold" in dot

    def test_no_duplicate_edges(self):
        dot = complex_to_dot(leader_election_complex(3))
        edges = [line for line in dot.splitlines() if "--" in line]
        assert len(edges) == len(set(edges))
