"""Unit tests for knowledge interning and the consistency partition."""

from repro.models import BOTTOM_ID, KnowledgeInterner, knowledge_partition


class TestInterner:
    def test_bottom_preallocated(self):
        interner = KnowledgeInterner()
        assert interner.structure(BOTTOM_ID) == ("bottom",)
        assert len(interner) == 1

    def test_intern_is_idempotent(self):
        interner = KnowledgeInterner()
        a = interner.intern(("x", 1))
        b = interner.intern(("x", 1))
        assert a == b
        assert len(interner) == 2

    def test_distinct_structures_distinct_ids(self):
        interner = KnowledgeInterner()
        assert interner.intern(("x",)) != interner.intern(("y",))

    def test_roundtrip(self):
        interner = KnowledgeInterner()
        kid = interner.intern(("payload", 3, (1, 2)))
        assert interner.structure(kid) == ("payload", 3, (1, 2))

    def test_blackboard_update_sorts_board(self):
        interner = KnowledgeInterner()
        a = interner.blackboard_update(BOTTOM_ID, 1, [3, 1, 2])
        b = interner.blackboard_update(BOTTOM_ID, 1, [2, 3, 1])
        assert a == b  # multiset semantics

    def test_message_passing_update_is_ordered(self):
        interner = KnowledgeInterner()
        a = interner.message_passing_update(BOTTOM_ID, 1, [3, 1])
        b = interner.message_passing_update(BOTTOM_ID, 1, [1, 3])
        assert a != b  # port order carries information

    def test_bit_distinguishes(self):
        interner = KnowledgeInterner()
        a = interner.blackboard_update(BOTTOM_ID, 0, [])
        b = interner.blackboard_update(BOTTOM_ID, 1, [])
        assert a != b

    def test_expand_reconstructs_nested_terms(self):
        interner = KnowledgeInterner()
        k1 = interner.blackboard_update(BOTTOM_ID, 0, [BOTTOM_ID])
        k2 = interner.blackboard_update(k1, 1, [k1])
        expanded = interner.expand(k2)
        assert expanded == (
            "bb",
            ("bb", ("bottom",), 0, (("bottom",),)),
            1,
            (("bb", ("bottom",), 0, (("bottom",),)),),
        )

    def test_canonical_key_orders_by_content(self):
        interner = KnowledgeInterner()
        a = interner.intern(("z",))
        b = interner.intern(("a",))
        # allocation order a < b, but content order may differ; the key must
        # be stable under allocation order.
        other = KnowledgeInterner()
        b2 = other.intern(("a",))
        a2 = other.intern(("z",))
        assert (interner.canonical_key(a) < interner.canonical_key(b)) == (
            other.canonical_key(a2) < other.canonical_key(b2)
        )


class TestKnowledgePartition:
    def test_groups_equal_ids(self):
        assert knowledge_partition([5, 7, 5, 9]) == [
            frozenset({0, 2}),
            frozenset({1}),
            frozenset({3}),
        ]

    def test_all_equal(self):
        assert knowledge_partition([1, 1, 1]) == [frozenset({0, 1, 2})]

    def test_all_distinct(self):
        assert len(knowledge_partition([1, 2, 3])) == 3

    def test_blocks_sorted_canonically(self):
        blocks = knowledge_partition([2, 1, 2, 1])
        assert blocks == [frozenset({0, 2}), frozenset({1, 3})]
