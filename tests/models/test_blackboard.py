"""Unit tests for the blackboard knowledge evolution (Eq. 1)."""

import itertools

import pytest

from repro.models import BlackboardModel, bitstring_partition


class TestKnowledgeEvolution:
    def test_time_zero_all_bottom(self):
        model = BlackboardModel(3)
        ids = model.knowledge_ids(((), (), ()))
        assert len(set(ids)) == 1

    def test_round_one_splits_by_bit(self):
        model = BlackboardModel(2)
        ids = model.knowledge_ids(((0,), (1,)))
        assert ids[0] != ids[1]

    def test_same_bits_same_knowledge(self):
        model = BlackboardModel(3)
        ids = model.knowledge_ids(((0, 1), (0, 1), (1, 0)))
        assert ids[0] == ids[1]
        assert ids[0] != ids[2]

    def test_knowledge_is_cumulative(self):
        # Nodes split at round 1 stay split even if later bits agree.
        model = BlackboardModel(2)
        ids = model.knowledge_ids(((0, 1, 1), (1, 1, 1)))
        assert ids[0] != ids[1]

    def test_board_is_origin_free(self):
        # Swapping the *other* nodes' strings leaves a node's knowledge
        # unchanged (the board is a multiset).
        model = BlackboardModel(3)
        base = model.knowledge_ids(((0,), (1,), (0,)))
        swapped = model.knowledge_ids(((0,), (0,), (1,)))
        assert base[0] == swapped[0]

    def test_wrong_arity_rejected(self):
        model = BlackboardModel(2)
        with pytest.raises(ValueError):
            model.knowledge_ids(((0,),))

    def test_ragged_realization_rejected(self):
        model = BlackboardModel(2)
        with pytest.raises(ValueError):
            model.knowledge_ids(((0,), (0, 1)))

    def test_trace_lengths(self):
        model = BlackboardModel(2)
        trace = model.knowledge_trace(((0, 1), (1, 1)))
        assert len(trace) == 3  # times 0, 1, 2

    def test_trace_refines(self):
        model = BlackboardModel(2)
        trace = model.knowledge_trace(((0, 1), (0, 0)))
        # equal at t=0 and t=1, split at t=2
        assert trace[0][0] == trace[0][1]
        assert trace[1][0] == trace[1][1]
        assert trace[2][0] != trace[2][1]


class TestPartitionEquivalence:
    """Knowledge partition == bit-string partition (used in Theorem 4.1)."""

    def test_exhaustive_small(self):
        model = BlackboardModel(3)
        for t in (1, 2):
            for bits in itertools.product(
                list(itertools.product((0, 1), repeat=t)), repeat=3
            ):
                assert model.partition(bits) == bitstring_partition(bits)

    def test_partition_blocks_cover_nodes(self):
        model = BlackboardModel(4)
        rho = ((0, 0), (0, 0), (1, 0), (0, 1))
        blocks = model.partition(rho)
        assert sorted(n for b in blocks for n in b) == [0, 1, 2, 3]

    def test_bitstring_partition_direct(self):
        assert bitstring_partition(((0,), (0,), (1,))) == [
            frozenset({0, 1}),
            frozenset({2}),
        ]
