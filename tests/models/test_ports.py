"""Unit tests for port assignments, incl. the Lemma 4.3 construction."""

import math

import pytest

from repro.models import (
    PortAssignment,
    adversarial_assignment,
    is_equivariant,
    random_assignment,
    round_robin_assignment,
    shift_symmetry,
)


class TestPortAssignment:
    def test_validates_bijection(self):
        with pytest.raises(ValueError):
            PortAssignment([[1, 1], [0, 2], [0, 1]])

    def test_validates_no_self_loop(self):
        with pytest.raises(ValueError):
            PortAssignment([[0, 1], [0, 2], [0, 1]])

    def test_validates_row_length(self):
        with pytest.raises(ValueError):
            PortAssignment([[1], [0], [0]])

    def test_neighbour_one_based_ports(self):
        ports = round_robin_assignment(4)
        assert ports.neighbour(0, 1) == 1
        assert ports.neighbour(0, 3) == 3
        with pytest.raises(ValueError):
            ports.neighbour(0, 0)
        with pytest.raises(ValueError):
            ports.neighbour(0, 4)

    def test_port_to_inverts_neighbour(self):
        ports = random_assignment(5, 3)
        for node in range(5):
            for port in range(1, 5):
                target = ports.neighbour(node, port)
                assert ports.port_to(node, target) == port

    def test_single_node(self):
        ports = PortAssignment([[]])
        assert ports.n == 1
        assert ports.neighbours(0) == ()


class TestRoundRobin:
    def test_formula(self):
        ports = round_robin_assignment(5)
        for i in range(5):
            assert ports.neighbours(i) == tuple(
                (i + j) % 5 for j in range(1, 5)
            )


class TestRandomAssignment:
    def test_seeded_reproducible(self):
        assert random_assignment(6, 11) == random_assignment(6, 11)

    def test_valid_for_various_n(self):
        for n in (2, 3, 5, 8):
            random_assignment(n, n)  # constructor validates


class TestAdversarialAssignment:
    def test_invalid_sizes_rejected(self):
        with pytest.raises(ValueError):
            adversarial_assignment([0, 2])
        with pytest.raises(ValueError):
            adversarial_assignment([])

    def test_valid_assignment_for_many_shapes(self):
        for sizes in [(2, 2), (2, 4), (3, 3), (2, 2, 2), (4, 6), (3, 6, 9)]:
            adversarial_assignment(sizes)  # constructor validates

    def test_single_node(self):
        assert adversarial_assignment([1]).n == 1

    def test_equivariance_under_shift(self):
        """The heart of Lemma 4.3: f preserves ports."""
        for sizes in [(2, 2), (2, 4), (3, 3), (2, 2, 2), (4, 2), (3, 6)]:
            g = math.gcd(*sizes)
            n = sum(sizes)
            ports = adversarial_assignment(sizes)
            f = shift_symmetry(n, g)
            assert is_equivariant(ports, f), sizes

    def test_shift_preserves_sources(self):
        # Orbits of f lie inside blocks of g consecutive nodes, which are
        # single-source under the from_group_sizes layout.
        sizes = (2, 4)
        g = math.gcd(*sizes)
        f = shift_symmetry(sum(sizes), g)
        boundaries = []
        start = 0
        for size in sizes:
            boundaries.append(range(start, start + size))
            start += size
        for node, image in f.items():
            same_group = any(
                node in block and image in block for block in boundaries
            )
            assert same_group

    def test_shift_symmetry_is_permutation_of_order_g(self):
        f = shift_symmetry(6, 3)
        assert sorted(f.values()) == list(range(6))
        composed = {i: i for i in range(6)}
        for _ in range(3):
            composed = {i: f[composed[i]] for i in range(6)}
        assert composed == {i: i for i in range(6)}

    def test_shift_requires_divisibility(self):
        with pytest.raises(ValueError):
            shift_symmetry(5, 2)

    def test_g1_shift_is_identity(self):
        assert shift_symmetry(4, 1) == {i: i for i in range(4)}

    def test_equivariance_detects_violations(self):
        ports = round_robin_assignment(4)
        f = shift_symmetry(4, 2)
        # round-robin is equivariant under the full rotation but generally
        # not under the 2-block shift with source semantics; just check the
        # function returns a boolean and agrees with manual inspection.
        result = is_equivariant(ports, f)
        manual = all(
            ports.neighbour(f[i], j) == f[ports.neighbour(i, j)]
            for i in range(4)
            for j in range(1, 4)
        )
        assert result == manual
