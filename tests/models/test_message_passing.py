"""Unit tests for the message-passing knowledge evolution (Eq. 2)."""

import itertools

import pytest

from repro.models import (
    BlackboardModel,
    MessagePassingModel,
    PortAssignment,
    adversarial_assignment,
    random_assignment,
    round_robin_assignment,
    shift_symmetry,
)


class TestKnowledgeEvolution:
    def test_time_zero_all_bottom(self):
        model = MessagePassingModel(round_robin_assignment(3))
        assert len(set(model.knowledge_ids(((), (), ())))) == 1

    def test_round_one_splits_by_bit_only(self):
        # At t=1 every received tuple is all-bottom, so knowledge equality
        # is exactly bit equality, like the blackboard.
        model = MessagePassingModel(round_robin_assignment(3))
        ids = model.knowledge_ids(((0,), (1,), (0,)))
        assert ids[0] == ids[2] != ids[1]

    def test_ports_can_split_equal_bit_nodes(self):
        """Footnote 5: same randomness, different knowledge via ports."""
        # n=3: nodes 0,1 get identical bits, node 2 differs.  At t=2 the
        # received tuples of 0 and 1 order node 2's distinct knowledge at
        # different port positions for some assignment.
        table = [
            [1, 2],  # node 0: port1 -> 1, port2 -> 2
            [2, 0],  # node 1: port1 -> 2, port2 -> 0
            [0, 1],
        ]
        model = MessagePassingModel(PortAssignment(table))
        rho = ((0, 0), (0, 0), (1, 0))
        ids = model.knowledge_ids(rho)
        # node 0 sees node 2 on port 2; node 1 sees node 2 on port 1.
        assert ids[0] != ids[1]

    def test_blackboard_refines_less_than_ports(self):
        # The MP partition always refines the bitstring partition.
        ports = random_assignment(4, 5)
        mp = MessagePassingModel(ports)
        bb = BlackboardModel(4)
        for bits in itertools.product(
            list(itertools.product((0, 1), repeat=2)), repeat=4
        ):
            mp_blocks = mp.partition(bits)
            bb_blocks = bb.partition(bits)
            for block in mp_blocks:
                assert any(block <= b for b in bb_blocks)

    def test_wrong_arity_rejected(self):
        model = MessagePassingModel(round_robin_assignment(3))
        with pytest.raises(ValueError):
            model.knowledge_ids(((0,), (1,)))


class TestAdversarialSymmetry:
    def test_orbits_stay_consistent(self):
        """Lemma 4.3's induction, checked directly on knowledge ids."""
        for sizes in [(2, 2), (2, 4), (3, 3)]:
            import math

            g = math.gcd(*sizes)
            n = sum(sizes)
            model = MessagePassingModel(adversarial_assignment(sizes))
            f = shift_symmetry(n, g)
            # source-consistent realization: same string within each group
            strings = {}
            start = 0
            for index, size in enumerate(sizes):
                value = tuple((index >> b) & 1 for b in range(2))
                for node in range(start, start + size):
                    strings[node] = value
                start += size
            rho = tuple(strings[i] for i in range(n))
            ids = model.knowledge_ids(rho)
            for node in range(n):
                assert ids[node] == ids[f[node]]

    def test_class_sizes_divisible_by_g(self):
        import math

        sizes = (2, 4)
        g = math.gcd(*sizes)
        model = MessagePassingModel(adversarial_assignment(sizes))
        # all consistent realizations at t=2
        from repro.randomness import (
            RandomnessConfiguration,
            iter_consistent_realizations,
        )

        alpha = RandomnessConfiguration.from_group_sizes(sizes)
        for rho in iter_consistent_realizations(alpha, 2):
            for block in model.partition(rho):
                assert len(block) % g == 0
