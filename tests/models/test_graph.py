"""Unit tests for anonymous graph topologies and their knowledge model."""

import pytest

from repro.models import (
    GraphMessagePassingModel,
    GraphTopology,
    MessagePassingModel,
    round_robin_assignment,
)


class TestConstruction:
    def test_validates_symmetry(self):
        with pytest.raises(ValueError, match="symmetric"):
            GraphTopology([(1,), ()])

    def test_validates_self_loop(self):
        with pytest.raises(ValueError, match="self-loop"):
            GraphTopology([(0, 1), (0,)])

    def test_validates_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            GraphTopology([(1, 1), (0, 0)])

    def test_validates_connectivity(self):
        with pytest.raises(ValueError, match="connected"):
            GraphTopology([(1,), (0,), (3,), (2,)])

    def test_single_node(self):
        assert GraphTopology([()]).n == 1


class TestFamilies:
    def test_ring(self):
        ring = GraphTopology.ring(5)
        assert all(ring.degree(i) == 2 for i in range(5))
        assert len(ring.edges()) == 5

    def test_ring_minimum_size(self):
        with pytest.raises(ValueError):
            GraphTopology.ring(2)

    def test_path(self):
        path = GraphTopology.path(4)
        assert path.degree(0) == path.degree(3) == 1
        assert path.degree(1) == path.degree(2) == 2
        assert len(path.edges()) == 3

    def test_star(self):
        star = GraphTopology.star(5)
        assert star.degree(0) == 4
        assert all(star.degree(i) == 1 for i in range(1, 5))

    def test_complete(self):
        complete = GraphTopology.complete(4)
        assert len(complete.edges()) == 6
        assert all(complete.degree(i) == 3 for i in range(4))

    def test_complete_bipartite(self):
        k23 = GraphTopology.complete_bipartite(2, 3)
        assert k23.n == 5
        assert len(k23.edges()) == 6
        assert k23.degree(0) == 3 and k23.degree(2) == 2

    def test_from_networkx_roundtrip(self):
        import networkx as nx

        original = GraphTopology.ring(6)
        rebuilt = GraphTopology.from_networkx(original.to_networkx())
        assert rebuilt.edges() == original.edges()

    def test_from_networkx_cycle(self):
        import networkx as nx

        topology = GraphTopology.from_networkx(nx.cycle_graph(4))
        assert len(topology.edges()) == 4


class TestPortsAndLabelings:
    def test_port_to_inverts_neighbour(self):
        k23 = GraphTopology.complete_bipartite(2, 3)
        for node in range(k23.n):
            for port in range(1, k23.degree(node) + 1):
                target = k23.neighbour(node, port)
                assert k23.port_to(node, target) == port

    def test_port_bounds(self):
        ring = GraphTopology.ring(3)
        with pytest.raises(ValueError):
            ring.neighbour(0, 3)

    def test_labeling_count(self):
        assert GraphTopology.ring(4).labeling_count() == 16  # (2!)^4
        assert GraphTopology.complete_bipartite(2, 2).labeling_count() == 16

    def test_iter_labelings_exhaustive(self):
        ring = GraphTopology.ring(3)
        labelings = list(ring.iter_labelings())
        assert len(labelings) == 8
        assert len(set(labelings)) == 8
        assert all(lab.edges() == ring.edges() for lab in labelings)

    def test_iter_labelings_guard(self):
        with pytest.raises(ValueError):
            list(GraphTopology.complete(6).iter_labelings(limit=10))

    def test_relabel_validation(self):
        ring = GraphTopology.ring(3)
        with pytest.raises(ValueError):
            ring.relabel([(0, 0), (0, 1), (0, 1)])


class TestGraphKnowledge:
    def test_matches_clique_model_without_back_ports(self):
        """On K_n the graph model must agree with the paper's clique model."""
        n = 4
        ports = round_robin_assignment(n)
        clique = MessagePassingModel(ports)
        graph = GraphMessagePassingModel(
            GraphTopology.complete(n), include_back_ports=False
        )
        import itertools

        for rho in itertools.product(
            list(itertools.product((0, 1), repeat=2)), repeat=n
        ):
            assert clique.partition(rho) == graph.partition(rho)

    def test_degree_splits_immediately(self):
        """Nodes of different degree have different knowledge at t=1."""
        path = GraphTopology.path(3)
        model = GraphMessagePassingModel(path)
        ids = model.knowledge_ids(((0,), (0,), (0,)))
        assert ids[0] == ids[2] != ids[1]

    def test_back_ports_refine_more(self):
        """K_{2,2} with an asymmetric labeling: back ports split nodes the
        plain Eq. (2) semantics cannot."""
        base = GraphTopology.complete_bipartite(2, 2)
        # find a labeling where the two semantics disagree at some time
        rho = ((0, 0), (0, 0), (0, 0), (0, 0))
        disagreement = False
        for labeled in base.iter_labelings():
            plain = GraphMessagePassingModel(
                labeled, include_back_ports=False
            ).partition(rho)
            classical = GraphMessagePassingModel(
                labeled, include_back_ports=True
            ).partition(rho)
            for block in classical:
                assert any(block <= b for b in plain)  # refinement
            if plain != classical:
                disagreement = True
        assert disagreement

    def test_projection_structure_on_graphs(self):
        from repro.core import knowledge_projection
        from repro.topology import is_disjoint_union_of_simplices

        model = GraphMessagePassingModel(GraphTopology.ring(4))
        projected = knowledge_projection(model, ((0,), (1,), (0,), (1,)))
        assert is_disjoint_union_of_simplices(projected)
