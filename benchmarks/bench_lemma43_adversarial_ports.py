"""Lemma 4.3: adversarial ports force g | (class size) at all times.

Exhaustively checks the divisibility invariant over all positive-
probability realizations for several gcd>1 shapes, and times the full
knowledge-partition sweep for one shape.
"""

from repro.analysis import lemma43_divisibility
from repro.models import MessagePassingModel, adversarial_assignment
from repro.randomness import RandomnessConfiguration, iter_consistent_realizations


def bench_lemma43_experiment(run_experiment):
    run_experiment(
        lemma43_divisibility,
        shapes=((2, 2), (2, 4), (3, 3), (2, 2, 2), (4, 2), (3, 6)),
        t=2,
    )


def bench_lemma43_partition_sweep(benchmark):
    """All knowledge partitions of the (3,3) adversarial clique at t=3."""
    shape = (3, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)

    def kernel():
        model = MessagePassingModel(adversarial_assignment(shape))
        return [
            model.partition(rho)
            for rho in iter_consistent_realizations(alpha, 3)
        ]

    partitions = benchmark(kernel)
    assert all(
        len(block) % 3 == 0 for blocks in partitions for block in blocks
    )
