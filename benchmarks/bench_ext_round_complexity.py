"""Extension: protocol round complexity vs the exact chain expectation.

Ties the executable layer to the analysis layer quantitatively: the mean
decision round of the real protocols must match the chain's ``E[T] + 1``
on the blackboard and stay bounded on the clique.
"""

from repro.analysis import protocol_round_complexity
from repro.analysis.round_complexity import _protocol_mean_rounds


def bench_round_complexity_experiment(run_experiment):
    run_experiment(protocol_round_complexity, runs=300, rounds=1)


def bench_protocol_batch_kernel(benchmark):
    """100 blackboard election runs on sizes (1,2,2)."""

    def kernel():
        return _protocol_mean_rounds((1, 2, 2), clique=False, runs=100)

    mean, _ = benchmark(kernel)
    assert 2.0 <= mean <= 6.0
