"""Batched query layer vs the PR 2 scalar per-query path (ISSUE 3).

The PR 2 engine answers one ``(task, horizon)`` question per call: under
the float backend every ``solving_probability(task, t)`` evolves the
state distribution from scratch (``t`` scatter-add rounds), so a sweep
over ``Q`` tasks and ``H`` horizons pays ``Q * H`` evolutions; the exact
backend shares its cached distributions but still runs one absorption
sweep per limit call.  The batched query layer
(:mod:`repro.chain.batch`) answers the whole sweep in shared passes --
one distribution evolution to the deepest horizon (dense matrix-vector
recurrences on small chains) plus one vectorized reverse-topological
level sweep for all the limits at once.

This benchmark times the canonical multi-task, multi-horizon sweep both
ways and asserts

* the batched float path beats the scalar float path by at least the
  acceptance floor (5x; far more in practice), and
* the batched exact results are byte-identical to the scalar exact ones.

Runs standalone (``python benchmarks/bench_batch_queries.py``) or under
pytest-benchmark (``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import os
import time

from repro.chain import Query, compile_chain, run_query_batch
from repro.core import (
    k_leader_election,
    leader_and_deputy,
    leader_election,
    unique_ids,
    weak_symmetry_breaking,
)
from repro.randomness import RandomnessConfiguration

#: The sweep: one configuration, several tasks, several horizons, plus
#: per-task probability series and exact limits -- the access pattern of
#: the theorem experiments and the phase-diagram sweep.  Both paths run
#: against the same warm compiled chain: PR 2 already pays compilation
#: once process-wide, so what this benchmark isolates is purely the
#: per-query evaluation the batch layer collapses into shared passes.
SHAPE = (1, 1, 1, 2, 2)
N = sum(SHAPE)
HORIZONS = tuple(range(2, 17, 2))
T_MAX = max(HORIZONS)
TASKS = (
    ("leader", leader_election(N)),
    ("k-leader:2", k_leader_election(N, 2)),
    ("k-leader:3", k_leader_election(N, 3)),
    ("unique-ids", unique_ids(N)),
    ("deputy", leader_and_deputy(N)),
    ("weak-sb", weak_symmetry_breaking(N)),
)
#: Acceptance floor from the ISSUE; CI smoke runs on noisy shared
#: runners relax it via BATCH_BENCH_MIN_SPEEDUP (exact byte-identity is
#: asserted regardless).
REQUIRED_SPEEDUP = float(os.environ.get("BATCH_BENCH_MIN_SPEEDUP", "5.0"))


def _queries() -> list[Query]:
    queries = []
    for _, task in TASKS:
        for t in HORIZONS:
            queries.append(Query.probability(task, t))
        queries.append(Query.series(task, T_MAX))
        queries.append(Query.limit(task))
    return queries


def scalar_sweep(backend: str) -> list:
    """The PR 2 pattern: one scalar engine call per query."""
    chain = compile_chain(RandomnessConfiguration.from_group_sizes(SHAPE))
    results = []
    for _, task in TASKS:
        for t in HORIZONS:
            results.append(
                chain.solving_probability(task, t, backend=backend)
            )
        results.append(
            chain.solving_probability_series(task, T_MAX, backend=backend)
        )
        results.append(
            chain.limit_solving_probability(task, backend=backend)
        )
    return results


def batched_sweep(backend: str) -> list:
    """The same sweep as one query batch."""
    chain = compile_chain(RandomnessConfiguration.from_group_sizes(SHAPE))
    return run_query_batch(chain, _queries(), backend=backend)


def _float_scalar() -> list:
    return scalar_sweep("float")


def _float_batched() -> list:
    return batched_sweep("float")


def _best_of(fn, rounds: int = 5) -> tuple[float, list]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def measure() -> dict:
    """Timings plus the byte-identity and speedup verdicts."""
    # Warm the shared chain (and its COO/dense caches) for both paths.
    _float_scalar()
    _float_batched()
    scalar_seconds, scalar_float = _best_of(_float_scalar)
    batch_seconds, batch_float = _best_of(_float_batched)
    # Exact byte-identity: same values AND same types, query for query.
    scalar_exact = scalar_sweep("exact")
    batch_exact = batched_sweep("exact")
    assert batch_exact == scalar_exact, (
        "batched exact results must be byte-identical to scalar"
    )
    for got, want in zip(batch_exact, scalar_exact):
        inner_got = got if isinstance(got, list) else [got]
        inner_want = want if isinstance(want, list) else [want]
        assert [type(x) for x in inner_got] == [type(x) for x in inner_want]
    # Float agreement to 1e-12 between the paths.
    for got, want in zip(batch_float, scalar_float):
        inner_got = got if isinstance(got, list) else [got]
        inner_want = want if isinstance(want, list) else [want]
        for g, w in zip(inner_got, inner_want):
            assert abs(g - w) < 1e-12, (g, w)
    return {
        "scalar_float_seconds": scalar_seconds,
        "batched_float_seconds": batch_seconds,
        "speedup_float": scalar_seconds / batch_seconds,
        "queries": len(_queries()),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_batch_scalar_float_baseline(benchmark):
    """Per-query scalar float path (the PR 2 pattern)."""
    values = benchmark(_float_scalar)
    benchmark.extra_info["queries"] = len(_queries())
    assert len(values) == len(_queries())


def bench_batch_batched_float(benchmark):
    """Same sweep through one QueryPlan."""
    values = benchmark(_float_batched)
    benchmark.extra_info["queries"] = len(_queries())
    assert len(values) == len(_queries())


def bench_batch_speedup_verdict(benchmark):
    """The acceptance check: >= 5x float speedup, exact byte-identity."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(value, 6)
    assert report["speedup_float"] >= REQUIRED_SPEEDUP, report


def main() -> int:
    report = measure()
    print(
        f"multi-task multi-horizon sweep: shape {SHAPE}, "
        f"{len(TASKS)} tasks, horizons {HORIZONS}, "
        f"{report['queries']} queries"
    )
    print(
        f"  scalar float (per-query) : "
        f"{report['scalar_float_seconds'] * 1e3:8.2f} ms"
    )
    print(
        f"  batched float (QueryPlan): "
        f"{report['batched_float_seconds'] * 1e3:8.2f} ms "
        f"({report['speedup_float']:.1f}x)"
    )
    ok = report["speedup_float"] >= REQUIRED_SPEEDUP
    print(
        f"exact results byte-identical to scalar: yes; "
        f">= {REQUIRED_SPEEDUP:.0f}x float speedup required: "
        f"{'PASS' if ok else 'FAIL'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
