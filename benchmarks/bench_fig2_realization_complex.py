"""Figure 2: the realization complexes R(0) and R(1) for three processes.

Checks the closed forms |V| = n*2^t and #facets = 2^(nt) (the paper draws
6 vertices / 8 triangles at t=1) and times the materialization of R(t).
"""

from repro.analysis import figure2_realization_complex
from repro.core import realization_complex


def bench_figure2_experiment(run_experiment):
    run_experiment(figure2_realization_complex, n=3, t_max=2)


def bench_figure2_build_kernel(benchmark):
    """Materialize R(2) for n=3 (64 facets, 12 vertices)."""
    complex_ = benchmark(lambda: realization_complex(3, 2))
    assert complex_.facet_count() == 64
    assert len(complex_.vertices()) == 12
