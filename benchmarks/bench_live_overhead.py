"""Live-telemetry overhead on a pooled sweep, and the byte-identity law.

``repro.obs.live`` adds an in-flight side channel to ``run_sweep``:
worker heartbeats, a monitor thread folding them into ``progress.jsonl``,
and a stall watchdog.  This benchmark puts a number on the acceptance
claim that all of it is free where it matters: it runs a 2-worker
pooled Monte-Carlo sweep (the ``--n 4`` grid, sampled so each sweep is
long enough for pool-fork jitter to wash out) with live telemetry
**off** and **on**, interleaved in alternating order per round, and
asserts

* the ratio of total on-time to total off-time across all rounds
  (``overhead_live``) stays within the acceptance ceiling (2%;
  noise-relaxable via ``LIVE_BENCH_MAX_OVERHEAD``), and
* ``records.jsonl`` is byte-identical in both directions (modulo the
  per-record ``elapsed`` timing field) -- the side channel never
  touches the record path.

The ratio of sums is the gate (it pools the whole measurement, so a
single noisy fork does not swing the verdict); the per-round median
paired ratio is reported alongside as ``median_paired``.

Writes ``BENCH_live.json`` (override with ``LIVE_BENCH_OUT``) when run
standalone.  Runs standalone (``python benchmarks/bench_live_overhead.py``)
or under pytest-benchmark (``pytest benchmarks/ -o
python_files='bench_*.py' -o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import statistics
import tempfile
import time

from repro.chain import clear_memo
from repro.obs.live import read_progress
from repro.runner import ProcessPoolEngine, SweepSpec, run_sweep

#: Every size shape of 4 by both models -- the ``repro sweep --n 4``
#: grid, but run through the Monte-Carlo sampler so each sweep lasts
#: ~1s and pool-fork jitter (tens of ms) stays below the 2% gate.
TOTAL_SIZE = 4
WORKERS = 2
SAMPLES = int(os.environ.get("LIVE_BENCH_SAMPLES", "80000"))

#: Acceptance ceiling from the ISSUE (live-enabled time ratio vs live
#: off, same pooled sweep); CI smoke runs relax it via
#: LIVE_BENCH_MAX_OVERHEAD.
MAX_OVERHEAD = float(os.environ.get("LIVE_BENCH_MAX_OVERHEAD", "1.02"))

OUT_PATH = os.environ.get("LIVE_BENCH_OUT", "BENCH_live.json")

#: Paired rounds (off, on) per measurement; each round is two full
#: pooled sweeps, run in alternating order so neither direction
#: systematically inherits a warmer machine.  The default keeps
#: standalone runtime under half a minute while pooling enough work
#: for a stable ratio of sums.
ROUNDS = int(os.environ.get("LIVE_BENCH_ROUNDS", "9"))

#: Live knobs under test: the defaults a plain ``--progress`` run gets.
LIVE_PAYLOAD = {"interval": 1.0, "poll": 1.0, "deadline": 30.0}


def _sweep() -> SweepSpec:
    return SweepSpec(
        shapes=SweepSpec.for_total_size(TOTAL_SIZE).shapes,
        models=("blackboard", "clique"),
        kind="sample",
        t=4,
        samples=SAMPLES,
    )


def _stripped(run_dir: pathlib.Path) -> list[dict]:
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in (run_dir / "records.jsonl").read_text().splitlines()
    ]


def _run(root: pathlib.Path, name: str, live) -> tuple[float, pathlib.Path]:
    """One pooled sweep into a fresh run dir; returns (seconds, dir)."""
    run_dir = root / name
    engine = ProcessPoolEngine(workers=WORKERS, chunksize=1)
    started = time.perf_counter()
    run_sweep(_sweep(), engine=engine, run_dir=run_dir,
              warehouse=False, live=live)
    return time.perf_counter() - started, run_dir


def measure() -> dict:
    """Paired timings, the overhead verdict, and the identity checks."""
    root = pathlib.Path(tempfile.mkdtemp(prefix="bench-live-"))
    try:
        # Warm the compile memo (pool workers fork from this process,
        # so both paths inherit the same warm state every round).
        clear_memo()
        _run(root / "warm", "off", None)
        _run(root / "warm", "on", LIVE_PAYLOAD)
        offs: list[float] = []
        ons: list[float] = []
        identical_rounds = 0
        progress_events = 0
        for index in range(ROUNDS):
            round_dir = root / f"round-{index}"
            # Alternate which direction runs first: back-to-back pairs
            # cancel slow machine drift, and flipping the order cancels
            # any residual second-run advantage.
            if index % 2 == 0:
                off_round, off_dir = _run(round_dir, "off", None)
                on_round, on_dir = _run(round_dir, "on", LIVE_PAYLOAD)
            else:
                on_round, on_dir = _run(round_dir, "on", LIVE_PAYLOAD)
                off_round, off_dir = _run(round_dir, "off", None)
            offs.append(off_round)
            ons.append(on_round)
            assert _stripped(off_dir) == _stripped(on_dir), (
                "live telemetry changed record bytes"
            )
            assert not (off_dir / "progress.jsonl").exists()
            events, _ = read_progress(on_dir / "progress.jsonl")
            assert events[0]["event"] == "start"
            assert events[-1]["event"] == "end"
            assert events[-1]["completed"] == events[-1]["total"]
            progress_events += len(events)
            identical_rounds += 1
            shutil.rmtree(round_dir, ignore_errors=True)
        # The gate pools every round: total on-time over total
        # off-time.  A single noisy fork moves one term out of
        # 2*ROUNDS instead of deciding the verdict.
        overhead_live = sum(ons) / sum(offs)
        median_paired = statistics.median(
            on / off for on, off in zip(ons, offs)
        )
    finally:
        shutil.rmtree(root, ignore_errors=True)
    return {
        "off_seconds": min(offs),
        "on_seconds": min(ons),
        "overhead_live": overhead_live,
        "median_paired": median_paired,
        "max_overhead": MAX_OVERHEAD,
        "rounds": ROUNDS,
        "workers": WORKERS,
        "jobs": len(_sweep().expand()),
        "samples": SAMPLES,
        "identical_rounds": identical_rounds,
        "progress_events": progress_events,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_live_off_pooled_sweep(benchmark, tmp_path):
    """The pooled sweep with live telemetry off (the baseline side)."""
    clear_memo()
    counter = iter(range(1_000_000))

    def once():
        return _run(tmp_path, f"off-{next(counter)}", None)[0]

    benchmark(once)


def bench_live_on_pooled_sweep(benchmark, tmp_path):
    """The same sweep with heartbeats, monitor, and watchdog active."""
    clear_memo()
    counter = iter(range(1_000_000))

    def once():
        return _run(tmp_path, f"on-{next(counter)}", LIVE_PAYLOAD)[0]

    benchmark(once)


def bench_live_overhead_verdict(benchmark):
    """The acceptance check: live overhead within the ceiling, records
    byte-identical both directions."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(float(value), 6)
    assert report["identical_rounds"] == report["rounds"], report
    assert report["overhead_live"] <= MAX_OVERHEAD, report


def main() -> int:
    report = measure()
    print(
        f"pooled sampled sweep: n={TOTAL_SIZE} grid ({report['jobs']} jobs, "
        f"{SAMPLES} samples), {WORKERS} workers, "
        f"{report['rounds']} paired rounds"
    )
    print(f"  live off: {report['off_seconds'] * 1e3:8.1f} ms (best round)")
    print(
        f"  live on : {report['on_seconds'] * 1e3:8.1f} ms "
        f"({(report['overhead_live'] - 1) * 100:+.2f}% total-time ratio, "
        f"{(report['median_paired'] - 1) * 100:+.2f}% median paired)"
    )
    print(
        f"  records byte-identical in {report['identical_rounds']}/"
        f"{report['rounds']} rounds; "
        f"{report['progress_events']} progress events validated"
    )
    ok = report["overhead_live"] <= MAX_OVERHEAD
    print(
        f"live-mode overhead <= {(MAX_OVERHEAD - 1) * 100:.0f}% "
        f"required: {'PASS' if ok else 'FAIL'}"
    )
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
