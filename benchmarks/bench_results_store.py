"""Warehouse warm-rerun speedup and byte-identity (ISSUE 5).

The chain stack (PRs 2-4) makes a *single* sweep fast; the results
warehouse (:mod:`repro.results`) makes the *next* one fast: every exact
cell a sweep answers lands in a content-addressed cross-run memo keyed
on (chain structural digest, task, horizon, quantity, backend), and a
later sweep -- same grid or merely overlapping -- skips compilation and
evolution for every cell it hits.

This benchmark runs one exact sweep twice against a shared warehouse:

* **cold** -- fresh run directory, empty memo: every chain compiles,
  every cell pays its evolution pass;
* **warm** -- a *different* fresh run directory (so run-directory resume
  cannot short-circuit anything), same warehouse, process-wide chain
  memo cleared: every cell must come back through the cross-run memo.

It asserts the warm rerun is at least the acceptance floor (5x; more in
practice) faster end to end, that the warm run compiled **zero** chains,
and that the two run directories' records are byte-identical modulo the
timing field.  It also checks the warehouse serving path: records
rebuilt from column pages equal the JSONL scan, and the sweep aggregate
built from either source matches exactly.

A machine-readable report is written to ``BENCH_store.json`` (override
with ``BENCH_STORE_JSON``).  Runs standalone
(``python benchmarks/bench_results_store.py``) or under pytest-benchmark
(``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import tempfile
import time

from repro.chain import clear_memo
from repro.results import ResultsStore
from repro.runner import RunDirectory, SweepSpec, aggregate_records, run_sweep

#: The sweep: every shape of three totals x both models x three tasks
#: -- large enough that cold compilation and evolution dominate, small
#: enough for the CI smoke job.
TOTALS = (5, 6, 7)
TASKS = ("leader", "k-leader:2", "weak-sb")

#: Acceptance floor from the ISSUE; CI smoke runs on noisy shared
#: runners relax it via STORE_BENCH_MIN_SPEEDUP (byte-identity is
#: asserted regardless).
REQUIRED_SPEEDUP = float(os.environ.get("STORE_BENCH_MIN_SPEEDUP", "5.0"))
REPORT_PATH = os.environ.get("BENCH_STORE_JSON", "BENCH_store.json")


def _sweep() -> SweepSpec:
    shapes = tuple(
        shape
        for n in TOTALS
        for shape in SweepSpec.for_total_size(n).shapes
    )
    return SweepSpec(
        shapes=shapes, models=("blackboard", "clique"), tasks=TASKS
    )


def _stripped(path: pathlib.Path) -> list[dict]:
    return [
        {k: v for k, v in json.loads(line).items() if k != "elapsed"}
        for line in path.read_text().splitlines()
    ]


def measure() -> dict:
    """Cold vs warm wall clock plus the identity verdicts."""
    sweep = _sweep()
    scratch = pathlib.Path(tempfile.mkdtemp(prefix="bench-store-"))
    try:
        warehouse = scratch / "warehouse"
        clear_memo()
        started = time.perf_counter()
        cold = run_sweep(sweep, run_dir=scratch / "cold",
                         warehouse=warehouse)
        cold_seconds = time.perf_counter() - started
        # Drop the process-wide compiled-chain memo: the warm run may
        # win only through the warehouse, not through live objects.
        clear_memo()
        started = time.perf_counter()
        warm = run_sweep(sweep, run_dir=scratch / "warm",
                         warehouse=warehouse)
        warm_seconds = time.perf_counter() - started

        # Every warm cell came from the memo; no chain was compiled.
        memo_hits = sum(g["memo_hits"] for g in warm.group_stats)
        assert memo_hits == warm.total, (memo_hits, warm.total)
        assert all(g["chains"] == 0 for g in warm.group_stats)
        # Byte-identity of the run directories (modulo timing).
        assert _stripped(scratch / "cold" / "records.jsonl") == _stripped(
            scratch / "warm" / "records.jsonl"
        ), "warm records must be byte-identical to cold"
        # The serving path: column pages == JSONL scan == aggregate.
        store = ResultsStore(warehouse)
        directory = RunDirectory(scratch / "cold")
        rebuilt = store.run_directory_records(directory)
        assert rebuilt == directory.load_records()
        assert (
            aggregate_records(sweep, rebuilt).rows == cold.result().rows
        ), "warehouse-built report must match the JSONL-scan report"
        return {
            "jobs": cold.total,
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "speedup": cold_seconds / warm_seconds,
            "memo_entries": len(store.table("records")),
        }
    finally:
        shutil.rmtree(scratch, ignore_errors=True)


def _write_report(report: dict) -> None:
    try:
        with open(REPORT_PATH, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    except OSError:
        pass  # read-only checkout: the printed report still stands


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_store_warm_rerun_verdict(benchmark):
    """The acceptance check: >= 5x warm-over-cold, byte-identity."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(value, 6)
    _write_report(report)
    assert report["speedup"] >= REQUIRED_SPEEDUP, report


def main() -> int:
    report = measure()
    _write_report(report)
    print(
        f"exact sweep, totals {TOTALS}, tasks {TASKS}: "
        f"{report['jobs']} jobs"
    )
    print(f"  cold (empty warehouse)  : {report['cold_seconds'] * 1e3:8.2f} ms")
    print(f"  warm (memo-served)      : {report['warm_seconds'] * 1e3:8.2f} ms")
    print(
        f"  speedup {report['speedup']:.1f}x "
        f"(floor {REQUIRED_SPEEDUP:.1f}x); records byte-identical, "
        f"warehouse report == JSONL report"
    )
    if report["speedup"] < REQUIRED_SPEEDUP:
        print("SPEEDUP BELOW FLOOR")
        return 1
    print(f"report written to {REPORT_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
