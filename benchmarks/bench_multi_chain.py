"""Block-diagonal multi-chain groups vs the per-chain batched path (ISSUE 4).

The PR 3 batched query layer answers a whole set of ``(task, horizon)``
questions against *one* chain in shared passes -- but a phase-diagram
sweep still runs one such pass per grid point, so the sweep's wall clock
is dominated by fixed per-chain numpy dispatch rather than arithmetic.
The multi-chain group engine (:mod:`repro.chain.multi`) stacks the whole
shape axis block-diagonally and answers every ``(chain, task, horizon,
quantity)`` cell in single vectorized evolution and reverse-level
passes.

This benchmark times the canonical phase-diagram shape axis -- every
size shape of several totals, under the blackboard and both standard
clique port assignments, with probability/series/limit/expected queries
per task -- both ways and asserts

* the grouped float path beats the per-chain batched float path by at
  least the acceptance floor (3x; more in practice), and
* the grouped exact results are byte-identical to the per-chain ones.

A machine-readable report is written to ``BENCH_multi.json`` (override
with ``BENCH_MULTI_JSON``) so CI can archive the perf trajectory.

Runs standalone (``python benchmarks/bench_multi_chain.py``) or under
pytest-benchmark (``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import time

from repro.chain import (
    MultiQueryPlan,
    Query,
    compile_chain,
    run_query_batch,
)
from repro.core import k_leader_election, leader_election
from repro.models import adversarial_assignment, round_robin_assignment
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes

#: The sweep: the full shape axis of several totals x both models (the
#: clique under adversarial and round-robin ports), with the
#: phase-diagram access pattern per chain -- probabilities at several
#: horizons, a series, a limit, and an expected time for each task.
TOTALS = (4, 5, 6)
HORIZONS = tuple(range(2, 13, 2))
T_MAX = max(HORIZONS)
#: Acceptance floor from the ISSUE; CI smoke runs on noisy shared
#: runners relax it via MULTI_BENCH_MIN_SPEEDUP (exact byte-identity is
#: asserted regardless).
REQUIRED_SPEEDUP = float(os.environ.get("MULTI_BENCH_MIN_SPEEDUP", "3.0"))
REPORT_PATH = os.environ.get("BENCH_MULTI_JSON", "BENCH_multi.json")


def _items() -> list[tuple]:
    items = []
    for n in TOTALS:
        tasks = (leader_election(n), k_leader_election(n, 2))
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            ports_axis = (
                None,
                adversarial_assignment(shape),
                round_robin_assignment(n),
            )
            for ports in ports_axis:
                queries = []
                for task in tasks:
                    queries.extend(
                        Query.probability(task, t) for t in HORIZONS
                    )
                    queries.append(Query.series(task, T_MAX))
                    queries.append(Query.limit(task))
                    queries.append(Query.expected_time(task))
                items.append((compile_chain(alpha, ports), queries))
    return items


def per_chain_sweep(items: list[tuple], backend: str) -> list[list]:
    """The PR 3 pattern: one batched pass per chain of the axis."""
    return [
        run_query_batch(chain, queries, backend=backend)
        for chain, queries in items
    ]


def grouped_sweep(items: list[tuple], backend: str) -> list[list]:
    """The same axis through one multi-chain plan (stacked passes)."""
    return MultiQueryPlan(items).execute(backend=backend)


def _best_of(fn, rounds: int = 5) -> tuple[float, list]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def measure() -> dict:
    """Timings plus the byte-identity and speedup verdicts."""
    items = _items()
    # Warm both paths (compilation, COO/dense caches, the group cache).
    per_chain_sweep(items, "float")
    grouped_sweep(items, "float")
    chain_seconds, chain_float = _best_of(
        lambda: per_chain_sweep(items, "float")
    )
    group_seconds, group_float = _best_of(
        lambda: grouped_sweep(items, "float")
    )
    # Exact byte-identity: same values AND same types, cell for cell.
    chain_exact = per_chain_sweep(items, "exact")
    group_exact = grouped_sweep(items, "exact")
    assert group_exact == chain_exact, (
        "grouped exact results must be byte-identical to per-chain"
    )
    for got_row, want_row in zip(group_exact, chain_exact):
        for got, want in zip(got_row, want_row):
            inner_got = got if isinstance(got, list) else [got]
            inner_want = want if isinstance(want, list) else [want]
            assert (
                [type(x) for x in inner_got]
                == [type(x) for x in inner_want]
            )
    # Float agreement to 1e-12 between the paths.
    for got_row, want_row in zip(group_float, chain_float):
        for got, want in zip(got_row, want_row):
            inner_got = got if isinstance(got, list) else [got]
            inner_want = want if isinstance(want, list) else [want]
            for g, w in zip(inner_got, inner_want):
                if g is None or w is None:
                    assert g == w, (g, w)
                else:
                    assert abs(g - w) < 1e-12, (g, w)
    return {
        "chains": len(items),
        "queries": sum(len(queries) for _, queries in items),
        "per_chain_float_seconds": chain_seconds,
        "grouped_float_seconds": group_seconds,
        "speedup_float": chain_seconds / group_seconds,
    }


def _write_report(report: dict) -> None:
    try:
        with open(REPORT_PATH, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    except OSError:
        pass  # read-only checkout: the printed report still stands


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_multi_per_chain_float_baseline(benchmark):
    """Per-chain batched float passes over the shape axis (PR 3)."""
    items = _items()
    per_chain_sweep(items, "float")
    values = benchmark(lambda: per_chain_sweep(items, "float"))
    benchmark.extra_info["chains"] = len(items)
    assert len(values) == len(items)


def bench_multi_grouped_float(benchmark):
    """Same axis through one block-diagonal MultiQueryPlan."""
    items = _items()
    grouped_sweep(items, "float")
    values = benchmark(lambda: grouped_sweep(items, "float"))
    benchmark.extra_info["chains"] = len(items)
    assert len(values) == len(items)


def bench_multi_speedup_verdict(benchmark):
    """The acceptance check: >= 3x float speedup, exact byte-identity."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(value, 6)
    _write_report(report)
    assert report["speedup_float"] >= REQUIRED_SPEEDUP, report


def main() -> int:
    report = measure()
    _write_report(report)
    print(
        f"phase-diagram shape axis: totals {TOTALS}, "
        f"{report['chains']} chains, {report['queries']} query cells"
    )
    print(
        f"  per-chain float (QueryBatch each) : "
        f"{report['per_chain_float_seconds'] * 1e3:8.2f} ms"
    )
    print(
        f"  grouped float (MultiQueryPlan)    : "
        f"{report['grouped_float_seconds'] * 1e3:8.2f} ms "
        f"({report['speedup_float']:.1f}x)"
    )
    ok = report["speedup_float"] >= REQUIRED_SPEEDUP
    print(
        f"grouped exact byte-identical to per-chain: yes; "
        f">= {REQUIRED_SPEEDUP:.0f}x float speedup required: "
        f"{'PASS' if ok else 'FAIL'}"
    )
    print(f"report written to {REPORT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
