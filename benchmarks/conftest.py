"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one figure/theorem of the paper: it times the
experiment generator (pytest-benchmark), prints the measured table, and
asserts the verdict (the reproduction must match the paper's prediction).
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment generator, print it, and assert PASS."""

    def runner(generator, *args, rounds: int = 2, **kwargs):
        result = benchmark.pedantic(
            lambda: generator(*args, **kwargs),
            rounds=rounds,
            iterations=1,
            warmup_rounds=0,
        )
        print()
        print(result.render())
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["verdict"] = "PASS" if result.passed else "FAIL"
        assert result.passed, result.render()
        return result

    return runner
