"""Shared helpers for the reproduction benchmarks.

Every benchmark regenerates one figure/theorem of the paper: it times the
experiment generator (pytest-benchmark), prints the measured table, and
asserts the verdict (the reproduction must match the paper's prediction).
Run with ``pytest benchmarks/ --benchmark-only``; add ``-s`` to see the
tables inline.
"""

from __future__ import annotations

import pytest


def pytest_addoption(parser):
    """Engine selection for runner-aware benchmarks.

    ``--bench-engine process --bench-workers 4`` points the ``engine``
    fixture at a process pool; the default serial engine reproduces the
    single-core numbers.  (Only in effect when pytest is invoked on the
    ``benchmarks/`` directory, where this conftest is an initial one.)
    """
    from repro.runner import ENGINE_NAMES

    parser.addoption(
        "--bench-engine",
        default="serial",
        choices=ENGINE_NAMES,
        help="execution engine for runner-aware benchmarks",
    )
    parser.addoption(
        "--bench-workers",
        type=int,
        default=None,
        help="worker processes for --bench-engine process",
    )


@pytest.fixture
def engine(request):
    """The engine selected by ``--bench-engine``/``--bench-workers``."""
    from repro.runner import make_engine

    return make_engine(
        request.config.getoption("--bench-engine"),
        workers=request.config.getoption("--bench-workers"),
    )


@pytest.fixture
def run_experiment(benchmark):
    """Benchmark an experiment generator, print it, and assert PASS."""

    def runner(generator, *args, rounds: int = 2, **kwargs):
        result = benchmark.pedantic(
            lambda: generator(*args, **kwargs),
            rounds=rounds,
            iterations=1,
            warmup_rounds=0,
        )
        print()
        print(result.render())
        benchmark.extra_info["experiment"] = result.experiment_id
        benchmark.extra_info["rows"] = len(result.rows)
        benchmark.extra_info["verdict"] = "PASS" if result.passed else "FAIL"
        assert result.passed, result.render()
        return result

    return runner
