"""Algorithm 1 / Lemma 4.8: CreateMatching matches all of V1 in <= |V1|
iterations.

Runs the literal protocol over (n1, n2) pairs and seeds; the kernel times
one full matching run on a 12-node clique.
"""

from repro.algorithms import (
    OBSERVER,
    V1,
    V2,
    CliqueNetwork,
    CreateMatchingNode,
    matching_summary,
)
from repro.analysis import algorithm1_matching
from repro.models import random_assignment
from repro.randomness import RandomnessConfiguration


def bench_algorithm1_experiment(run_experiment):
    run_experiment(
        algorithm1_matching,
        pairs=((1, 2), (2, 3), (2, 5), (3, 4), (4, 4), (3, 8)),
        seeds=(0, 1, 2),
    )


def bench_matching_run_kernel(benchmark):
    """One CreateMatching run with |V1|=4, |V2|=7, one observer."""
    alpha = RandomnessConfiguration.independent(12)
    ports = random_assignment(12, 3)

    def kernel():
        roles = iter([V1] * 4 + [V2] * 7 + [OBSERVER])
        network = CliqueNetwork(
            alpha, ports, lambda: CreateMatchingNode(next(roles)), seed=5
        )
        return network.run(max_rounds=30)

    result = benchmark(kernel)
    assert matching_summary(result.outputs)["matched"] == 8
