"""Vectorized MC kernel vs the scalar oracle, and warm memo merges (ISSUE 8).

The sampling tier answers ``Pr[S(t) | alpha]`` where the exact chain
cannot reach.  The scalar baseline walks one trajectory at a time
through ``realization_solves``; the vectorized kernel
(:mod:`repro.sampling.kernel`) decides whole 1000-trial substream blocks
in numpy passes over the same counter-based Philox words, so the two
paths are bit-identical trial by trial -- the speedup is pure batching.

This benchmark times both paths on blackboard and port-numbered-clique
cells and asserts

* the vectorized kernel beats the scalar oracle by at least the
  acceptance floor (10x; ~25-35x in practice),
* fast and slow paths agree bit for bit on every timed block, and
* a warm, memoized cell extended to a doubled budget (the merge the
  memo exists for) beats recomputing the doubled budget from scratch.

A machine-readable report is written to ``BENCH_mc.json`` (override
with ``BENCH_MC_JSON``) so CI can archive the perf trajectory.

Runs standalone (``python benchmarks/bench_mc_sampling.py``) or under
pytest-benchmark (``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import tempfile
import time

import numpy as np

from repro.core import leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration
from repro.results.memo import configure_query_memo
from repro.sampling import block_indicators, sample_cell, scalar_block_indicators

#: The timed cells: one blackboard, one clique, both at a horizon where
#: the knowledge partition does real per-round work.
CELLS = (
    ("blackboard", (1, 2, 2), None, 6),
    ("clique", (1, 2, 2), "adversarial", 6),
)
#: Blocks per timing pass (1000 trials each).
BLOCKS = 4
#: Acceptance floors from the ISSUE; CI smoke runs on noisy shared
#: runners relax them via the environment (bit-identity is asserted
#: regardless).
REQUIRED_SPEEDUP = float(os.environ.get("MC_BENCH_MIN_SPEEDUP", "10.0"))
REQUIRED_WARM_SPEEDUP = float(os.environ.get("MC_BENCH_MIN_WARM", "1.5"))
REPORT_PATH = os.environ.get("BENCH_MC_JSON", "BENCH_mc.json")


def _cell(sizes, port_kind):
    alpha = RandomnessConfiguration.from_group_sizes(sizes)
    ports = adversarial_assignment(sizes) if port_kind else None
    return alpha, leader_election(alpha.n), ports


def _run_blocks(fast: bool, sizes, port_kind, t: int) -> np.ndarray:
    alpha, task, ports = _cell(sizes, port_kind)
    solver = block_indicators if fast else scalar_block_indicators
    outputs = [
        solver(alpha, task, t, ports, stream_seed=0, block=block)
        for block in range(BLOCKS)
    ]
    return np.concatenate(outputs)


def _best_of(fn, rounds: int = 3) -> tuple[float, object]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _warm_merge_timings() -> dict:
    """Cold 10k cell, then the doubled-budget rerun: memoized blocks plus
    a fresh increment vs recomputing all 20k samples."""
    alpha, task, ports = _cell((1, 2, 2), None)
    with tempfile.TemporaryDirectory() as root:
        configure_query_memo(os.path.join(root, "memo"))
        try:
            cold_seconds, cold = _best_of(
                lambda: sample_cell(
                    alpha, task, 6, ports, stream_seed=3, samples=10000
                ),
                rounds=1,
            )
            warm_seconds, warm = _best_of(
                lambda: sample_cell(
                    alpha, task, 6, ports, stream_seed=3, samples=20000
                ),
                rounds=1,
            )
        finally:
            configure_query_memo(None)
    fresh_seconds, fresh = _best_of(
        lambda: sample_cell(
            alpha, task, 6, ports, stream_seed=3, samples=20000,
            use_memo=False,
        ),
        rounds=1,
    )
    assert warm == fresh, "memo merge must not change the estimate"
    assert warm.merge(cold) != warm  # sanity: cold is a real sub-estimate
    return {
        "cold_10k_seconds": cold_seconds,
        "warm_20k_seconds": warm_seconds,
        "fresh_20k_seconds": fresh_seconds,
        "warm_speedup": fresh_seconds / warm_seconds,
    }


def measure() -> dict:
    """Timings plus bit-identity and warm-merge verdicts."""
    report = {"cells": {}, "blocks": BLOCKS}
    speedups = []
    for name, sizes, port_kind, t in CELLS:
        _run_blocks(True, sizes, port_kind, t)  # warm caches
        fast_seconds, fast = _best_of(
            lambda: _run_blocks(True, sizes, port_kind, t)
        )
        slow_seconds, slow = _best_of(
            lambda: _run_blocks(False, sizes, port_kind, t), rounds=1
        )
        assert np.array_equal(fast, slow), (
            f"{name}: vectorized and scalar verdicts must be bit-identical"
        )
        speedup = slow_seconds / fast_seconds
        speedups.append(speedup)
        report["cells"][name] = {
            "sizes": list(sizes),
            "t": t,
            "scalar_seconds": slow_seconds,
            "vectorized_seconds": fast_seconds,
            "speedup": speedup,
        }
    report["min_speedup"] = min(speedups)
    report["warm_merge"] = _warm_merge_timings()
    return report


def _write_report(report: dict) -> None:
    try:
        with open(REPORT_PATH, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    except OSError:
        pass  # read-only checkout: the printed report still stands


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_mc_scalar_baseline(benchmark):
    """The per-trajectory oracle loop on the blackboard cell."""
    name, sizes, port_kind, t = CELLS[0]
    result = benchmark(lambda: _run_blocks(False, sizes, port_kind, t))
    assert result.shape == (BLOCKS * 1000,)


def bench_mc_vectorized_kernel(benchmark):
    """The same blocks through the vectorized knowledge-partition passes."""
    name, sizes, port_kind, t = CELLS[0]
    _run_blocks(True, sizes, port_kind, t)
    result = benchmark(lambda: _run_blocks(True, sizes, port_kind, t))
    assert result.shape == (BLOCKS * 1000,)


def bench_mc_speedup_verdict(benchmark):
    """Acceptance: >= 10x vs scalar, warm merge wins, bit-identity."""
    report = benchmark(measure)
    benchmark.extra_info["min_speedup"] = round(report["min_speedup"], 3)
    benchmark.extra_info["warm_speedup"] = round(
        report["warm_merge"]["warm_speedup"], 3
    )
    _write_report(report)
    assert report["min_speedup"] >= REQUIRED_SPEEDUP, report
    assert (
        report["warm_merge"]["warm_speedup"] >= REQUIRED_WARM_SPEEDUP
    ), report


def main() -> int:
    report = measure()
    _write_report(report)
    print(
        f"vectorized substream kernel vs scalar oracle "
        f"({BLOCKS} blocks x 1000 trials, bit-identical verdicts)"
    )
    for name, cell in report["cells"].items():
        print(
            f"  {name:<11} sizes={tuple(cell['sizes'])} t={cell['t']}: "
            f"{cell['scalar_seconds'] * 1e3:8.2f} ms -> "
            f"{cell['vectorized_seconds'] * 1e3:7.2f} ms "
            f"({cell['speedup']:.1f}x)"
        )
    warm = report["warm_merge"]
    print(
        f"  warm 20k (10k memoized + 10k fresh): "
        f"{warm['fresh_20k_seconds'] * 1e3:.2f} ms cold -> "
        f"{warm['warm_20k_seconds'] * 1e3:.2f} ms warm "
        f"({warm['warm_speedup']:.1f}x)"
    )
    ok = (
        report["min_speedup"] >= REQUIRED_SPEEDUP
        and warm["warm_speedup"] >= REQUIRED_WARM_SPEEDUP
    )
    print(
        f">= {REQUIRED_SPEEDUP:.0f}x kernel speedup and >= "
        f"{REQUIRED_WARM_SPEEDUP:.1f}x warm merge required: "
        f"{'PASS' if ok else 'FAIL'}"
    )
    print(f"report written to {REPORT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
