"""Runner scaling: SerialEngine vs ProcessPoolEngine on a medium sweep.

The sweep grammar guarantees engine-independent results, so the only
question a pool answers is wall-clock: this benchmark times the same
medium sweep (every shape of n=5, both models, two replicates of a
sampling job) on the serial engine and on process pools of width 2 and
4, and asserts along the way that the aggregated tables stay identical.
On a single-core container the pool shows its dispatch overhead rather
than a speedup; the extra_info fields record worker count and job count
so the JSON output compares across machines.
"""

from __future__ import annotations

import json

from repro.analysis.report import result_to_dict
from repro.runner import ProcessPoolEngine, SerialEngine, SweepSpec, run_sweep

SWEEP = SweepSpec.for_total_size(
    5,
    models=("blackboard", "clique"),
    ports=("adversarial",),
    kind="sample",
    t=4,
    samples=400,
    replicates=(0, 1),
    master_seed=0,
)
N_JOBS = len(SWEEP.expand())


def _aggregate_bytes(outcome) -> str:
    return json.dumps(result_to_dict(outcome.result()), sort_keys=True)


_SERIAL_BYTES = None


def _serial_bytes() -> str:
    global _SERIAL_BYTES
    if _SERIAL_BYTES is None:
        _SERIAL_BYTES = _aggregate_bytes(run_sweep(SWEEP, engine=SerialEngine()))
    return _SERIAL_BYTES


def bench_runner_serial(benchmark):
    """Baseline: the whole sweep in-process."""
    outcome = benchmark(lambda: run_sweep(SWEEP, engine=SerialEngine()))
    benchmark.extra_info["engine"] = "serial"
    benchmark.extra_info["workers"] = 1
    benchmark.extra_info["jobs"] = N_JOBS
    assert _aggregate_bytes(outcome) == _serial_bytes()


def bench_runner_process_2(benchmark):
    """Process pool, 2 workers, chunked dispatch."""
    outcome = benchmark(
        lambda: run_sweep(SWEEP, engine=ProcessPoolEngine(workers=2))
    )
    benchmark.extra_info["engine"] = "process"
    benchmark.extra_info["workers"] = 2
    benchmark.extra_info["jobs"] = N_JOBS
    assert _aggregate_bytes(outcome) == _serial_bytes()


def bench_runner_process_4(benchmark):
    """Process pool, 4 workers, chunked dispatch."""
    outcome = benchmark(
        lambda: run_sweep(SWEEP, engine=ProcessPoolEngine(workers=4))
    )
    benchmark.extra_info["engine"] = "process"
    benchmark.extra_info["workers"] = 4
    benchmark.extra_info["jobs"] = N_JOBS
    assert _aggregate_bytes(outcome) == _serial_bytes()


def bench_runner_selected_engine(benchmark, engine):
    """The sweep on the engine chosen via ``--bench-engine``/``--bench-workers``.

    This is the knob for measuring other machines: compare this entry's
    JSON across invocations with different engine options.
    """
    outcome = benchmark(lambda: run_sweep(SWEEP, engine=engine))
    benchmark.extra_info["engine"] = engine.name
    benchmark.extra_info["workers"] = getattr(engine, "workers", 1)
    benchmark.extra_info["jobs"] = N_JOBS
    assert _aggregate_bytes(outcome) == _serial_bytes()
