"""Theorem 4.2: worst-case clique leader election solvable iff gcd = 1.

Sweeps every shape up to n=6 with the Lemma 4.3 adversarial ports (the
worst case) and benign round-robin ports (footnote 5), comparing exact
chain limits against the gcd characterization.  The kernel times a full
limit computation on a 6-node chain.
"""

from repro.analysis import theorem42_message_passing
from repro.core import ConsistencyChain, leader_election
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


def bench_theorem42_experiment(run_experiment):
    run_experiment(theorem42_message_passing, n_max=6, t_max=4, rounds=1)


def bench_theorem42_limit_kernel(benchmark):
    """Exact eventual-solvability limit for sizes (2,3) w/ adversarial ports."""
    shape = (2, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    chain = ConsistencyChain(alpha, adversarial_assignment(shape))
    task = leader_election(5)

    def kernel():
        return ConsistencyChain(
            alpha, adversarial_assignment(shape)
        ).limit_solving_probability(task)

    limit = benchmark(kernel)
    assert limit == 1
