"""Extension: Theorem 4.2's worst-case quantifier, brute-forced.

Enumerates every port assignment of small cliques and checks that the
minimum eventual-solvability limit is 1 iff gcd = 1, and that the
Lemma 4.3 construction attains the exact minimum (the paper's adversary
is optimal).  The kernel times the full 1296-assignment sweep for one
shape.
"""

from repro.analysis import exhaustive_worst_case, worst_case_port_search


def bench_worst_case_search_experiment(run_experiment):
    run_experiment(
        worst_case_port_search,
        shapes=((1, 2), (3,), (2, 2), (1, 3), (4,)),
        rounds=1,
    )


def bench_exhaustive_sweep_kernel(benchmark):
    """All 1296 assignments of the (2,2) clique, exact limit each."""

    def kernel():
        return exhaustive_worst_case((2, 2))

    lowest, highest, solvable, total = benchmark(kernel)
    assert (lowest, highest, total) == (0, 1, 1296)
    assert solvable == 1152
