"""Extension: the symmetry census (generalized Lemma 4.3 and its limits).

Exhaustively verifies, over every port assignment of the 4-clique, that a
non-trivial source-preserving automorphism always defeats leader election
-- and that the converse fails (the knowledge obstruction is finer than
global symmetry).
"""

from repro.analysis import has_nontrivial_automorphism, symmetry_census
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


def bench_symmetry_census_experiment(run_experiment):
    run_experiment(symmetry_census, shapes=((2, 2), (1, 3)), rounds=1)


def bench_automorphism_search_kernel(benchmark):
    """Full n! automorphism scan for the (3,3) adversarial clique."""
    shape = (3, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    ports = adversarial_assignment(shape)

    def kernel():
        return has_nontrivial_automorphism(ports, alpha)

    assert benchmark(kernel) is True
