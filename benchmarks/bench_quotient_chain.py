"""Symmetry-quotient compilation vs the full Bell-number chain (ISSUE 7).

Exact chain compilation enumerates every reachable consistency
partition, and for the fully symmetric configurations (``n`` i.i.d.
singleton groups) that reachable set is the Bell number of ``n`` -- the
wall that caps exact sweeps at small ``n``.  The quotient backend
(:mod:`repro.chain.quotient`) folds states into orbits of the
configuration's automorphism group during the BFS, so only orbit
representatives are ever expanded: at ``n = 7`` the 877 reachable
partitions collapse to 15 integer partitions.

This benchmark runs the symmetric exact workload -- compile from scratch
plus the record-path queries (limit, expected time, series) for the
leader and 2-leader tasks at ``n = 6, 7`` -- both ways and asserts

* the quotient path beats the full path end to end by at least the
  acceptance floor (3x; ~10x in practice),
* the ``n = 7`` state count shrinks by at least 5x, and
* quotient exact results are byte-identical to the full chain across
  the whole n <= 5 registry (blackboard and both deterministic port
  kinds, with and without back ports).

A machine-readable report is written to ``BENCH_quotient.json``
(override with ``BENCH_QUOTIENT_JSON``) so CI can archive the perf
trajectory.

Runs standalone (``python benchmarks/bench_quotient_chain.py``) or under
pytest-benchmark (``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import time

from repro.chain import Query, compile_chain, run_queries
from repro.core import k_leader_election, leader_election
from repro.randomness import RandomnessConfiguration, enumerate_size_shapes
from repro.runner import spec as runner_spec

#: The symmetric exact workload: the Bell-number worst case.
TOTALS = (6, 7)
T_MAX = 8
#: Acceptance floors from the ISSUE; CI smoke runs on noisy shared
#: runners relax the speedup via QUOTIENT_BENCH_MIN_SPEEDUP (exact
#: byte-identity and the state-count reduction are asserted regardless).
REQUIRED_SPEEDUP = float(os.environ.get("QUOTIENT_BENCH_MIN_SPEEDUP", "3.0"))
REQUIRED_REDUCTION = float(
    os.environ.get("QUOTIENT_BENCH_MIN_REDUCTION", "5.0")
)
REPORT_PATH = os.environ.get("BENCH_QUOTIENT_JSON", "BENCH_quotient.json")


def symmetric_workload(quotient: bool) -> list:
    """Compile the (1,)*n chains from scratch and answer the record-path
    queries -- the exact end-to-end cost a sweep job pays per cell."""
    results = []
    for n in TOTALS:
        alpha = RandomnessConfiguration.from_group_sizes((1,) * n)
        chain = compile_chain(alpha, use_memo=False, quotient=quotient)
        for task in (leader_election(n), k_leader_election(n, 2)):
            results.append(
                run_queries(
                    chain,
                    [
                        Query.limit(task),
                        Query.expected_time(task),
                        Query.series(task, T_MAX),
                    ],
                )
            )
    return results


def _best_of(fn, rounds: int = 3) -> tuple[float, list]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def _registry_byte_identity() -> int:
    """Quotient == full on every registry chain at n <= 5; returns the
    number of configurations checked."""
    checked = 0
    for n in range(1, 6):
        tasks = [runner_spec.make_task("leader", n)]
        if n >= 2:
            tasks.append(runner_spec.make_task("k-leader:2", n))
        for shape in enumerate_size_shapes(n):
            alpha = RandomnessConfiguration.from_group_sizes(shape)
            configurations = [(None, False)]
            if n >= 2:
                for kind in ("adversarial", "round-robin"):
                    ports = runner_spec.make_ports(kind, shape, 0)
                    configurations.append((ports, False))
                    configurations.append((ports, True))
            for ports, back in configurations:
                full = compile_chain(
                    alpha, ports, include_back_ports=back,
                    use_memo=False, quotient=False,
                )
                quot = compile_chain(
                    alpha, ports, include_back_ports=back,
                    use_memo=False, quotient=True,
                )
                assert sum(quot.orbit_sizes) == full.num_states
                for task in tasks:
                    queries = [
                        Query.limit(task),
                        Query.expected_time(task),
                        Query.series(task, 6),
                    ]
                    want = run_queries(full, queries)
                    got = run_queries(quot, queries)
                    assert got == want, (shape, ports, back, task)
                    assert type(got[0]) is type(want[0])
                checked += 1
    return checked


def measure() -> dict:
    """Timings plus the reduction and byte-identity verdicts."""
    # Warm the generator cache (part of both paths' steady state).
    symmetric_workload(quotient=True)
    full_seconds, full_results = _best_of(
        lambda: symmetric_workload(quotient=False)
    )
    quot_seconds, quot_results = _best_of(
        lambda: symmetric_workload(quotient=True)
    )
    assert quot_results == full_results, (
        "quotient exact results must be byte-identical to the full chain"
    )
    counts = {}
    for n in TOTALS:
        alpha = RandomnessConfiguration.from_group_sizes((1,) * n)
        full = compile_chain(alpha, use_memo=False, quotient=False)
        quot = compile_chain(alpha, use_memo=False, quotient=True)
        counts[n] = {
            "full_states": full.num_states,
            "quotient_states": quot.num_states,
            "reduction": full.num_states / quot.num_states,
            "group_order": quot.group_order,
        }
    return {
        "totals": list(TOTALS),
        "registry_configurations_byte_identical": _registry_byte_identity(),
        "full_seconds": full_seconds,
        "quotient_seconds": quot_seconds,
        "speedup": full_seconds / quot_seconds,
        "states": counts,
        "reduction_at_7": counts[7]["reduction"],
    }


def _write_report(report: dict) -> None:
    try:
        with open(REPORT_PATH, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    except OSError:
        pass  # read-only checkout: the printed report still stands


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_quotient_full_baseline(benchmark):
    """Full Bell-number compilation + record queries at n = 6, 7."""
    symmetric_workload(quotient=False)
    results = benchmark(lambda: symmetric_workload(quotient=False))
    assert len(results) == 2 * len(TOTALS)


def bench_quotient_orbit_path(benchmark):
    """The same workload through the quotient backend."""
    symmetric_workload(quotient=True)
    results = benchmark(lambda: symmetric_workload(quotient=True))
    assert len(results) == 2 * len(TOTALS)


def bench_quotient_speedup_verdict(benchmark):
    """Acceptance: >= 3x end-to-end, >= 5x states at n = 7, exactness."""
    report = benchmark(measure)
    benchmark.extra_info["speedup"] = round(report["speedup"], 3)
    benchmark.extra_info["reduction_at_7"] = round(
        report["reduction_at_7"], 3
    )
    benchmark.extra_info["registry_configurations"] = report[
        "registry_configurations_byte_identical"
    ]
    _write_report(report)
    assert report["speedup"] >= REQUIRED_SPEEDUP, report
    assert report["reduction_at_7"] >= REQUIRED_REDUCTION, report


def main() -> int:
    report = measure()
    _write_report(report)
    print(
        f"symmetric exact workload: shapes (1,)*n for n in "
        f"{report['totals']} (compile + limit/expected/series x 2 tasks)"
    )
    for n in TOTALS:
        states = report["states"][n]
        print(
            f"  n={n}: {states['full_states']} states -> "
            f"{states['quotient_states']} orbits "
            f"({states['reduction']:.2f}x, group order "
            f"{states['group_order']})"
        )
    print(
        f"  full chain    : {report['full_seconds'] * 1e3:8.2f} ms\n"
        f"  quotient chain: {report['quotient_seconds'] * 1e3:8.2f} ms "
        f"({report['speedup']:.1f}x)"
    )
    print(
        f"byte-identical on {report['registry_configurations_byte_identical']}"
        f" registry configurations (n <= 5)"
    )
    ok = (
        report["speedup"] >= REQUIRED_SPEEDUP
        and report["reduction_at_7"] >= REQUIRED_REDUCTION
    )
    print(
        f">= {REQUIRED_SPEEDUP:.0f}x speedup and >= "
        f"{REQUIRED_REDUCTION:.0f}x states at n=7 required: "
        f"{'PASS' if ok else 'FAIL'}"
    )
    print(f"report written to {REPORT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
