"""Extension: geometric decay rates of the failure probability.

Verifies that the failure probability halves each round on blackboard
configurations with a unique source (the rate implied by the paper's
1-(k-1)/2^t bound), with both a numpy regression fit and the exact tail
ratio from the chain.
"""

from repro.analysis import convergence_rates, exact_tail_ratio
from repro.core import ConsistencyChain, leader_election
from repro.randomness import RandomnessConfiguration


def bench_convergence_rate_experiment(run_experiment):
    run_experiment(convergence_rates, horizon=20, rounds=1)


def bench_tail_ratio_kernel(benchmark):
    """Exact 30-round series + tail ratio for sizes (1,2,2,2)."""
    alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2, 2))
    task = leader_election(7)

    def kernel():
        return exact_tail_ratio(
            ConsistencyChain(alpha), task, horizon=30
        )

    ratio = benchmark(kernel)
    assert abs(float(ratio) - 0.5) < 1e-6
