"""Figure 1: evolution of the protocol complex P(t) for two parties.

Regenerates the drawing's combinatorics -- P(0): 2 vertices / 1 edge,
P(1): 4 / 4, P(2): 16 / 16 -- and checks the facet isomorphism h with
R(t).  The timed kernel is the full P(t) construction (4^t knowledge
evaluations plus complex assembly).
"""

from repro.analysis import figure1_protocol_complex
from repro.core import build_protocol_complex
from repro.models import BlackboardModel


def bench_figure1_experiment(run_experiment):
    run_experiment(figure1_protocol_complex, t_max=3)


def bench_figure1_build_kernel(benchmark):
    """Raw P(3) construction for n=2 (64 realizations)."""
    result = benchmark(lambda: build_protocol_complex(BlackboardModel(2), 3))
    assert result.facet_count() == 64
