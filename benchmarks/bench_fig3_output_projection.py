"""Figure 3: O_LE and its consistency projection pi(O_LE).

Checks the projection's structure -- n isolated leader vertices plus n
follower simplices -- for n = 3 (the figure) and larger n, and times the
projection computation.
"""

from repro.analysis import figure3_output_projection
from repro.core import leader_election_complex, project_complex


def bench_figure3_experiment(run_experiment):
    run_experiment(figure3_output_projection, n=3)


def bench_figure3_larger_n(run_experiment):
    run_experiment(figure3_output_projection, n=6)


def bench_figure3_projection_kernel(benchmark):
    """pi(O_LE) for n=7."""
    complex_ = leader_election_complex(7)
    projected = benchmark(lambda: project_complex(complex_))
    assert len(projected.isolated_vertices()) == 7
