"""Compiled chain engine vs the seed ``ConsistencyChain`` (ISSUE 2).

The seed implementation re-explored the reachable partition space from
scratch at every call site -- per task, per sweep point, per worker --
over tuple-of-frozenset states.  The compiled engine explores once per
``(alpha, ports)`` into interned integer states and answers every
further query as a pass over sparse transition arrays.

This benchmark times the canonical multi-task sweep (one configuration
queried for several tasks: exact series + exact limit each) on

* a faithful copy of the seed implementation (``SeedConsistencyChain``,
  kept verbatim below as the baseline), and
* the compiled engine, cold (including compilation) and warm.

It asserts (a) the exact backend reproduces the seed's ``Fraction``
results digit for digit, and (b) the compiled engine wins the sweep by
at least the 3x the acceptance criteria demand (in practice far more).

Runs standalone (``python benchmarks/bench_chain_engine.py``) or under
pytest-benchmark (``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import itertools
import os
import time
from fractions import Fraction

from repro.chain import clear_memo, compile_chain
from repro.core import k_leader_election, leader_election, unique_ids
from repro.core.markov import canonical_state, single_block_state
from repro.randomness import RandomnessConfiguration

#: The multi-task sweep: one alpha, >= 3 tasks, series + limit each.
SHAPE = (1, 1, 1, 2, 2)
N = sum(SHAPE)
T_MAX = 10
TASKS = (
    ("leader", leader_election(N)),
    ("k-leader:2", k_leader_election(N, 2)),
    ("k-leader:3", k_leader_election(N, 3)),
    ("unique-ids", unique_ids(N)),
)
#: Acceptance floor from the ISSUE; the measured ratio is far higher on
#: quiet hardware.  CI smoke runs on noisy shared runners relax it via
#: CHAIN_BENCH_MIN_SPEEDUP (exactness is always asserted regardless).
REQUIRED_SPEEDUP = float(os.environ.get("CHAIN_BENCH_MIN_SPEEDUP", "3.0"))


class SeedConsistencyChain:
    """The seed implementation, kept verbatim as the baseline.

    (Blackboard slice only -- the sweep below needs no ports; the full
    seed class lives in git history at ``src/repro/core/markov.py``.)
    """

    def __init__(self, alpha: RandomnessConfiguration):
        self.alpha = alpha
        self._transition_cache: dict = {}

    def refine(self, state, source_bits):
        n = self.alpha.n
        label = {}
        for index, block in enumerate(state):
            for node in block:
                label[node] = index
        bits = [source_bits[self.alpha.source_of(i)] for i in range(n)]
        keys = [(label[i], bits[i]) for i in range(n)]
        blocks: dict = {}
        for node in range(n):
            blocks.setdefault(keys[node], []).append(node)
        return canonical_state(
            [frozenset(block) for block in blocks.values()]
        )

    def transitions(self, state):
        cached = self._transition_cache.get(state)
        if cached is not None:
            return cached
        k = self.alpha.k
        out: dict = {}
        weight = Fraction(1, 2 ** (k - 1)) if k > 1 else Fraction(1)
        for rest in itertools.product((0, 1), repeat=k - 1):
            nxt = self.refine(state, (0, *rest))
            out[nxt] = out.get(nxt, Fraction(0)) + weight
        self._transition_cache[state] = out
        return out

    def solving_probability_series(self, task, t_max):
        dist = {single_block_state(self.alpha.n): Fraction(1)}
        series = []
        for _ in range(t_max):
            nxt: dict = {}
            for state, prob in dist.items():
                for new_state, step in self.transitions(state).items():
                    nxt[new_state] = nxt.get(new_state, Fraction(0)) + prob * step
            dist = nxt
            series.append(
                sum(
                    (
                        prob
                        for state, prob in dist.items()
                        if task.solvable_from_partition(
                            [frozenset(b) for b in state]
                        )
                    ),
                    Fraction(0),
                )
            )
        return series

    def reachable_states(self):
        start = single_block_state(self.alpha.n)
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for nxt in self.transitions(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def limit_solving_probability(self, task):
        states = sorted(self.reachable_states(), key=len, reverse=True)
        prob: dict = {}
        for state in states:
            if task.solvable_from_partition([frozenset(b) for b in state]):
                prob[state] = Fraction(1)
                continue
            moves = self.transitions(state)
            self_loop = moves.get(state, Fraction(0))
            if self_loop == 1:
                prob[state] = Fraction(0)
                continue
            total = Fraction(0)
            for nxt, step in moves.items():
                if nxt != state:
                    total += step * prob[nxt]
            prob[state] = total / (1 - self_loop)
        return prob[single_block_state(self.alpha.n)]


def seed_sweep() -> list:
    """The seed call-site pattern: a fresh chain per task query."""
    alpha = RandomnessConfiguration.from_group_sizes(SHAPE)
    results = []
    for _, task in TASKS:
        chain = SeedConsistencyChain(alpha)
        results.append(chain.solving_probability_series(task, T_MAX))
        results.append(chain.limit_solving_probability(task))
    return results


def compiled_sweep(*, cold: bool) -> list:
    """The compiled pattern: one compilation, then pure queries."""
    if cold:
        clear_memo()
    alpha = RandomnessConfiguration.from_group_sizes(SHAPE)
    chain = compile_chain(alpha)
    results = []
    for _, task in TASKS:
        results.append(chain.solving_probability_series(task, T_MAX))
        results.append(chain.limit_solving_probability(task))
    return results


def _best_of(fn, rounds: int = 3) -> tuple[float, list]:
    best = float("inf")
    value = None
    for _ in range(rounds):
        started = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - started)
    return best, value


def measure() -> dict:
    """Best-of-three timings plus the exactness/speedup verdicts."""
    seed_seconds, seed_values = _best_of(seed_sweep)
    cold_seconds, cold_values = _best_of(lambda: compiled_sweep(cold=True))
    warm_seconds, warm_values = _best_of(lambda: compiled_sweep(cold=False))
    assert seed_values == cold_values == warm_values, (
        "exact backend must reproduce the seed Fractions digit for digit"
    )
    return {
        "seed_seconds": seed_seconds,
        "cold_seconds": cold_seconds,
        "warm_seconds": warm_seconds,
        "speedup_cold": seed_seconds / cold_seconds,
        "speedup_warm": seed_seconds / warm_seconds,
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_chain_seed_baseline(benchmark):
    """Multi-task sweep on the seed implementation."""
    values = benchmark(seed_sweep)
    benchmark.extra_info["tasks"] = len(TASKS)
    assert values[1] == Fraction(1)  # leader on (1,1,1,2,2) solves


def bench_chain_compiled_cold(benchmark):
    """Same sweep, compiled engine, memo cleared every round."""
    values = benchmark(lambda: compiled_sweep(cold=True))
    benchmark.extra_info["tasks"] = len(TASKS)
    assert values == seed_sweep()


def bench_chain_compiled_warm(benchmark):
    """Same sweep on a warm memo (the steady-state sweep cost)."""
    compiled_sweep(cold=True)
    values = benchmark(lambda: compiled_sweep(cold=False))
    assert values == seed_sweep()


def bench_chain_speedup_verdict(benchmark):
    """The acceptance check: >= 3x over the seed on the multi-task sweep."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(value, 6)
    assert report["speedup_cold"] >= REQUIRED_SPEEDUP, report
    assert report["speedup_warm"] >= REQUIRED_SPEEDUP, report


def main() -> int:
    report = measure()
    print(f"multi-task sweep: shape {SHAPE}, {len(TASKS)} tasks, "
          f"series t<={T_MAX} + exact limit each")
    print(f"  seed ConsistencyChain : {report['seed_seconds'] * 1e3:8.2f} ms")
    print(f"  compiled (cold memo)  : {report['cold_seconds'] * 1e3:8.2f} ms "
          f"({report['speedup_cold']:.1f}x)")
    print(f"  compiled (warm memo)  : {report['warm_seconds'] * 1e3:8.2f} ms "
          f"({report['speedup_warm']:.1f}x)")
    ok = (
        report["speedup_cold"] >= REQUIRED_SPEEDUP
        and report["speedup_warm"] >= REQUIRED_SPEEDUP
    )
    print(f"exact results identical to seed: yes; "
          f">= {REQUIRED_SPEEDUP:.0f}x required: {'PASS' if ok else 'FAIL'}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
