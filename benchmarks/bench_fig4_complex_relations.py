"""Figure 4 / Lemma 3.5: the solvability notions coincide.

Exhaustively verifies that Definition 3.1 (simplicial map sigma -> tau),
Definition 3.4 (simplicial map pi~(rho) -> pi(tau)), the forced-map
variant, and the partition-refinement criterion agree on every global
state, in both communication models.  The timed kernel is the full
agreement sweep.
"""

from repro.analysis import figure4_solvability_equivalence


def bench_figure4_t1(run_experiment):
    run_experiment(figure4_solvability_equivalence, n=3, t=1)


def bench_figure4_t2_two_nodes(run_experiment):
    run_experiment(figure4_solvability_equivalence, n=2, t=2)
