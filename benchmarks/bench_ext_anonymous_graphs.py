"""Extension: anonymous networks of arbitrary structure (conclusion's
open direction).

Reproduces the classical results the paper cites -- Angluin's ring
impossibility and the Codenotti et al. gcd condition on K_{m,n} -- as the
k=1 (deterministic) slice of the framework, plus the ring labeling census.
Kernels time the color-refinement fixpoint and a full worst-case labeling
sweep.
"""

from repro.analysis import extension_anonymous_graphs, ring_labeling_census
from repro.core import (
    color_refinement_fixpoint,
    leader_election,
    worst_case_deterministic_solvable,
)
from repro.models import GraphTopology


def bench_anonymous_graphs_experiment(run_experiment):
    run_experiment(extension_anonymous_graphs, rounds=1)


def bench_ring_census_experiment(run_experiment):
    run_experiment(ring_labeling_census, n=4)


def bench_color_refinement_kernel(benchmark):
    """Fixpoint computation on K_{3,4} (7 nodes)."""
    topology = GraphTopology.complete_bipartite(3, 4)
    fixpoint = benchmark(lambda: color_refinement_fixpoint(topology))
    assert len(fixpoint) >= 2  # the two sides separate by degree


def bench_worst_case_sweep_kernel(benchmark):
    """All 288 labelings of K_{2,3}, each color-refined to fixpoint."""
    base = GraphTopology.complete_bipartite(2, 3)
    task = leader_election(5)

    def kernel():
        return worst_case_deterministic_solvable(
            base, task, include_back_ports=True
        )

    assert benchmark(kernel) is True
