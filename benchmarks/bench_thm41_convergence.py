"""Section 4.1 convergence rate: Pr[S(t)] >= 1 - (k-1)/2^t when n_1 = 1.

Compares the exact series against both forms of the paper's lower bound
for k = 2..4 over t = 1..8, and times the exact-series computation at a
larger horizon.
"""

from repro.analysis import theorem41_convergence
from repro.core import ConsistencyChain, leader_election
from repro.randomness import RandomnessConfiguration


def bench_convergence_experiment(run_experiment):
    run_experiment(theorem41_convergence, k_values=(2, 3, 4), t_max=8)


def bench_long_horizon_series(benchmark):
    """Exact series out to t=24 -- far beyond enumeration's reach."""
    alpha = RandomnessConfiguration.from_group_sizes((1, 2, 2))
    task = leader_election(5)

    def kernel():
        return ConsistencyChain(alpha).solving_probability_series(task, 24)

    series = benchmark(kernel)
    assert float(series[-1]) > 0.999999
