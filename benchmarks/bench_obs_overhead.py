"""Disabled-mode observability overhead on the batched query path.

``repro.obs`` instruments the hot tiers (compile, batch, group, memo,
warehouse) behind a single ``if OBS.enabled:`` attribute-load-and-branch
per site.  This benchmark puts a number on that claim: it times the
canonical multi-task, multi-horizon float sweep of
``bench_batch_queries`` through

* a replica of ``run_queries`` exactly as it was before the
  instrumentation landed (same memo scan, plan, execute, record -- no
  OBS sites), and
* the instrumented front door (``run_queries`` with tracing **off**),

and asserts the instrumented-disabled path stays within the acceptance
ceiling (2%; noise-relaxable in CI via ``OBS_BENCH_MAX_OVERHEAD``).
The tracing-**on** ratio is reported informationally -- enabled-mode
cost is a feature decision, not a regression gate.

Writes ``BENCH_obs.json`` (override the path with ``OBS_BENCH_OUT``)
when run standalone.  Runs standalone
(``python benchmarks/bench_obs_overhead.py``) or under pytest-benchmark
(``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import statistics
import time

from repro.chain import Query, compile_chain, run_queries
from repro.chain.batch import (
    QueryPlan,
    memoized_answers,
    record_answers,
    validate_backend,
)
from repro.core import (
    k_leader_election,
    leader_and_deputy,
    leader_election,
    unique_ids,
    weak_symmetry_breaking,
)
from repro.obs import configure_tracing, reset_telemetry
from repro.randomness import RandomnessConfiguration

#: Same workload as ``bench_batch_queries``: what the overhead is
#: measured *against* is exactly the sweep access pattern the batch
#: layer was built for.
SHAPE = (1, 1, 1, 2, 2)
N = sum(SHAPE)
HORIZONS = tuple(range(2, 17, 2))
T_MAX = max(HORIZONS)
TASKS = (
    ("leader", leader_election(N)),
    ("k-leader:2", k_leader_election(N, 2)),
    ("k-leader:3", k_leader_election(N, 3)),
    ("unique-ids", unique_ids(N)),
    ("deputy", leader_and_deputy(N)),
    ("weak-sb", weak_symmetry_breaking(N)),
)
#: Acceptance ceiling from the ISSUE (disabled-mode time ratio vs the
#: raw path); CI smoke runs on noisy shared runners relax it via
#: OBS_BENCH_MAX_OVERHEAD.
MAX_OVERHEAD = float(os.environ.get("OBS_BENCH_MAX_OVERHEAD", "1.02"))

OUT_PATH = os.environ.get("OBS_BENCH_OUT", "BENCH_obs.json")


def _queries() -> list[Query]:
    queries = []
    for _, task in TASKS:
        for t in HORIZONS:
            queries.append(Query.probability(task, t))
        queries.append(Query.series(task, T_MAX))
        queries.append(Query.limit(task))
    return queries


def _chain():
    return compile_chain(RandomnessConfiguration.from_group_sizes(SHAPE))


def raw_sweep() -> list:
    """``run_queries`` exactly as it was before instrumentation.

    Replicates the front door's pre-observability body (memo scan,
    plan, execute, record) with no OBS sites, so the only difference
    the paired timings see is what the instrumentation added.
    """
    chain = _chain()
    queries = _queries()
    validate_backend("float")
    results, tokens, misses = memoized_answers(chain, queries, "float")
    if misses:
        subset = [queries[i] for i in misses]
        answers = QueryPlan(chain, subset).execute(backend="float")
        for i, value in zip(misses, answers):
            results[i] = value
        record_answers(tokens, misses, results)
    return results


def instrumented_sweep() -> list:
    """The instrumented front door every caller actually uses."""
    return run_queries(_chain(), _queries(), backend="float")


#: Each timing sample runs the sweep this many times back to back (the
#: per-call cost is well under a millisecond, so single calls drown in
#: scheduler noise), and paths are sampled interleaved so CPU frequency
#: drift hits them equally.
INNER_ITERATIONS = int(os.environ.get("OBS_BENCH_INNER", "10"))
ROUNDS = int(os.environ.get("OBS_BENCH_ROUNDS", "12"))


def _sample(fn) -> tuple[float, list]:
    started = time.perf_counter()
    for _ in range(INNER_ITERATIONS):
        value = fn()
    return time.perf_counter() - started, value


def measure() -> dict:
    """Timings plus the overhead verdicts (and float agreement)."""
    previous = configure_tracing(False)
    reset_telemetry()
    try:
        # Warm the shared chain and its dense caches for every path.
        raw_sweep()
        instrumented_sweep()
        raw_seconds = off_seconds = on_seconds = float("inf")
        ratios_off: list[float] = []
        ratios_on: list[float] = []
        raw_values = off_values = on_values = []
        for _ in range(ROUNDS):
            configure_tracing(False)
            raw_round, raw_values = _sample(raw_sweep)
            off_round, off_values = _sample(instrumented_sweep)
            configure_tracing(True)
            on_round, on_values = _sample(instrumented_sweep)
            reset_telemetry()
            raw_seconds = min(raw_seconds, raw_round)
            off_seconds = min(off_seconds, off_round)
            on_seconds = min(on_seconds, on_round)
            # Paired ratios: raw and instrumented are sampled back to
            # back in the same round, so CPU frequency drift and
            # scheduler spikes cancel instead of landing on whichever
            # path ran second.
            ratios_off.append(off_round / raw_round)
            ratios_on.append(on_round / raw_round)
        # The gate statistic is the *median* paired ratio -- robust to
        # spike rounds in either direction.
        overhead_disabled = statistics.median(ratios_off)
        overhead_enabled = statistics.median(ratios_on)
    finally:
        configure_tracing(previous)
        reset_telemetry()
    for got in (off_values, on_values):
        for g, w in zip(got, raw_values):
            inner_g = g if isinstance(g, list) else [g]
            inner_w = w if isinstance(w, list) else [w]
            for a, b in zip(inner_g, inner_w):
                assert abs(a - b) < 1e-12, (a, b)
    return {
        "raw_seconds": raw_seconds,
        "disabled_seconds": off_seconds,
        "enabled_seconds": on_seconds,
        "overhead_disabled": overhead_disabled,
        "overhead_enabled": overhead_enabled,
        "max_overhead": MAX_OVERHEAD,
        "queries": len(_queries()),
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def bench_obs_raw_baseline(benchmark):
    """The pre-instrumentation front-door replica (no OBS sites)."""
    configure_tracing(False)
    values = benchmark(raw_sweep)
    benchmark.extra_info["queries"] = len(_queries())
    assert len(values) == len(_queries())


def bench_obs_disabled_instrumented(benchmark):
    """The instrumented front door with tracing off."""
    configure_tracing(False)
    values = benchmark(instrumented_sweep)
    benchmark.extra_info["queries"] = len(_queries())
    assert len(values) == len(_queries())


def bench_obs_overhead_verdict(benchmark):
    """The acceptance check: disabled overhead within the ceiling."""
    report = benchmark(measure)
    for key, value in report.items():
        benchmark.extra_info[key] = round(value, 6)
    assert report["overhead_disabled"] <= MAX_OVERHEAD, report


def main() -> int:
    report = measure()
    print(
        f"batched float sweep: shape {SHAPE}, {len(TASKS)} tasks, "
        f"horizons {HORIZONS}, {report['queries']} queries"
    )
    print(f"  raw batch path           : {report['raw_seconds'] * 1e3:8.2f} ms")
    print(
        f"  instrumented, tracing off: "
        f"{report['disabled_seconds'] * 1e3:8.2f} ms "
        f"({(report['overhead_disabled'] - 1) * 100:+.2f}%)"
    )
    print(
        f"  instrumented, tracing on : "
        f"{report['enabled_seconds'] * 1e3:8.2f} ms "
        f"({(report['overhead_enabled'] - 1) * 100:+.2f}%, informational)"
    )
    ok = report["overhead_disabled"] <= MAX_OVERHEAD
    print(
        f"disabled-mode overhead <= {(MAX_OVERHEAD - 1) * 100:.0f}% "
        f"required: {'PASS' if ok else 'FAIL'}"
    )
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
