"""Perf-regression sentinel over the ``BENCH_*.json`` reports.

Every scaling-sensitive benchmark writes a machine-readable report
(``BENCH_multi.json``, ``BENCH_quotient.json``, ``BENCH_store.json``,
``BENCH_mc.json``, ``BENCH_obs.json``, ``BENCH_policy.json``).  This
script closes the loop CI-side: it compares the fresh reports against
the committed baselines in ``benchmarks/baselines/`` and fails when a
gated metric regresses beyond tolerance, so a perf regression breaks
the build instead of silently eroding the archived trajectory.

What is gated -- only the machine-normalized *ratio* metrics, by key
pattern:

* keys containing ``speedup`` are higher-better (regression when the
  fresh value drops below ``baseline * (1 - tolerance)``);
* keys containing ``overhead`` are lower-better (regression when the
  fresh value rises above ``baseline * (1 + tolerance)``);
* configured floors/ceilings (``min_*`` / ``max_*``) and everything
  else -- raw ``*_seconds`` wall clock, counts, verdict lists -- are
  reported informationally but never gated: absolute timings do not
  transfer between a laptop baseline and a shared CI runner, while the
  paired ratios do.

Tolerance is the relative slack ``BENCH_HISTORY_TOLERANCE`` (default
0.25: a committed 5x speedup gates at 3.75x).  CI runs with a wider
slack than quiet hardware, same convention as the per-benchmark
``*_MIN_SPEEDUP`` floors.

Usage::

    python benchmarks/check_bench_history.py              # check cwd reports
    python benchmarks/check_bench_history.py BENCH_obs.json
    python benchmarks/check_bench_history.py --update     # rebless baselines

A report without a committed baseline (or a baseline whose benchmark
did not run) is skipped with a note, never failed: new benchmarks land
first, their baselines are blessed with ``--update`` once the numbers
settle.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import shutil
import sys

BASELINE_DIR = os.path.join(os.path.dirname(__file__), "baselines")

#: Relative slack on gated ratios; relaxable on noisy runners.
TOLERANCE = float(os.environ.get("BENCH_HISTORY_TOLERANCE", "0.25"))


def gated_direction(key: str) -> "str | None":
    """``"higher"``/``"lower"`` for gated keys, ``None`` otherwise."""
    lowered = key.lower().rsplit(".", 1)[-1]
    if lowered.startswith(("min_", "max_")):
        return None  # configured floors/ceilings, not measurements
    if "speedup" in lowered:
        return "higher"
    if "overhead" in lowered:
        return "lower"
    return None


def flatten(report: dict, prefix: str = "") -> dict:
    """Numeric leaves of a (possibly nested) report, dotted keys."""
    flat: dict = {}
    for key, value in report.items():
        dotted = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(flatten(value, f"{dotted}."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[dotted] = value
    return flat


def compare_report(name: str, fresh: dict, baseline: dict, tolerance: float):
    """``(gated, regressions, notes)`` for one report pair."""
    gated = []
    regressions = []
    notes = []
    fresh = flatten(fresh)
    baseline = flatten(baseline)
    for key in sorted(fresh):
        value = fresh[key]
        if key not in baseline:
            continue
        base = baseline[key]
        direction = gated_direction(key)
        if direction is None:
            if key.endswith("_seconds") and base > 0:
                notes.append(
                    f"  info  {name}:{key}: {value:.6g} vs baseline "
                    f"{base:.6g} ({value / base:.2f}x, not gated)"
                )
            continue
        if direction == "higher":
            floor = base * (1.0 - tolerance)
            ok = value >= floor
            bound = f">= {floor:.3f}"
        else:
            ceiling = base * (1.0 + tolerance)
            ok = value <= ceiling
            bound = f"<= {ceiling:.3f}"
        line = (
            f"  {'ok   ' if ok else 'FAIL '}{name}:{key}: {value:.3f} "
            f"vs baseline {base:.3f} (gate {bound})"
        )
        gated.append(line)
        if not ok:
            regressions.append(line)
    return gated, regressions, notes


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "reports",
        nargs="*",
        help="BENCH_*.json files to check (default: BENCH_*.json in cwd)",
    )
    parser.add_argument(
        "--baseline-dir",
        default=BASELINE_DIR,
        help="directory of committed baseline reports",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=TOLERANCE,
        help="relative slack on gated ratios (default from "
        "BENCH_HISTORY_TOLERANCE, else 0.25)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="bless the fresh reports as the new baselines",
    )
    args = parser.parse_args(argv)

    reports = args.reports or sorted(glob.glob("BENCH_*.json"))
    if not reports:
        print("no BENCH_*.json reports found; nothing to check")
        return 0

    if args.update:
        os.makedirs(args.baseline_dir, exist_ok=True)
        for path in reports:
            target = os.path.join(args.baseline_dir, os.path.basename(path))
            shutil.copyfile(path, target)
            print(f"blessed {path} -> {target}")
        return 0

    failures = 0
    checked = 0
    for path in reports:
        name = os.path.basename(path)
        baseline_path = os.path.join(args.baseline_dir, name)
        if not os.path.exists(path):
            print(f"skip  {name}: report not written this run")
            continue
        if not os.path.exists(baseline_path):
            print(
                f"skip  {name}: no committed baseline "
                f"(bless with --update once the numbers settle)"
            )
            continue
        with open(path, encoding="utf-8") as handle:
            fresh = json.load(handle)
        with open(baseline_path, encoding="utf-8") as handle:
            baseline = json.load(handle)
        gated, regressions, notes = compare_report(
            name, fresh, baseline, args.tolerance
        )
        print(f"{name}: {len(gated)} gated metric(s)")
        for line in gated + notes:
            print(line)
        if gated:
            checked += 1
        failures += len(regressions)

    verdict = "PASS" if failures == 0 else "FAIL"
    print(
        f"perf sentinel: {checked} report(s) gated at tolerance "
        f"{args.tolerance:.0%}, {failures} regression(s): {verdict}"
    )
    return 0 if failures == 0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
