"""Ablation: the three probability engines on the same instance.

DESIGN.md calls out the partition Markov chain as the key algorithmic
choice over literal 2^(tk) enumeration; this benchmark quantifies it and
checks the Monte-Carlo engine's accuracy against the exact value.
"""

from repro.core import (
    ConsistencyChain,
    leader_election,
    solving_probability_enumerated,
    solving_probability_sampled,
)
from repro.randomness import RandomnessConfiguration

SHAPE = (1, 2, 2)
T = 4
ALPHA = RandomnessConfiguration.from_group_sizes(SHAPE)
TASK = leader_election(sum(SHAPE))


def bench_engine_enumeration(benchmark):
    """Literal enumeration: 2^(tk) = 4096 realizations."""
    exact = benchmark(lambda: solving_probability_enumerated(ALPHA, TASK, T))
    assert 0 < exact < 1


def bench_engine_chain(benchmark):
    """Partition chain: polynomial in reachable partitions."""

    def kernel():
        return ConsistencyChain(ALPHA).solving_probability(TASK, T)

    chain = benchmark(kernel)
    assert chain == solving_probability_enumerated(ALPHA, TASK, T)


def bench_engine_montecarlo(benchmark):
    """Monte Carlo with 2000 samples; must land near the exact value."""
    estimate = benchmark(
        lambda: solving_probability_sampled(ALPHA, TASK, T, samples=2000, seed=1)
    )
    exact = float(ConsistencyChain(ALPHA).solving_probability(TASK, T))
    assert abs(estimate - exact) < 0.05
