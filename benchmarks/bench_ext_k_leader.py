"""Extension: k-leader election characterizations (incl. the Section 1.2
2-leader exercise).

Blackboard: solvable iff a sub-multiset of the n_i sums to k.
Worst-case clique: solvable iff gcd(n_i) | k, validated three ways
(matching-closure oracle, closed form, exact chain limits).  The kernel
times the closure computation on a larger instance.
"""

from repro.analysis import extension_k_leader
from repro.core import reachable_multisets, worst_case_k_leader_solvable


def bench_k_leader_experiment(run_experiment):
    run_experiment(extension_k_leader, n_max=6, rounds=1)


def bench_matching_closure_kernel(benchmark):
    """Reachability closure of sizes (4, 6, 9, 10) -- n = 29."""

    def kernel():
        reachable_multisets.cache_clear()
        return reachable_multisets((4, 6, 9, 10))

    closure = benchmark(kernel)
    assert (1,) * 29 in closure  # gcd 1: fully separable


def bench_k_leader_oracle_kernel(benchmark):
    """All k for sizes (4, 6, 8) (gcd 2)."""

    def kernel():
        return [
            worst_case_k_leader_solvable((4, 6, 8), k) for k in range(1, 19)
        ]

    answers = benchmark(kernel)
    assert answers == [k % 2 == 0 for k in range(1, 19)]
