"""Measured cost-model policy vs a mis-set static heuristic.

The ``--policy measured`` opt-in exists for exactly one failure mode:
the static evolution heuristics encode constants
(:data:`~repro.chain.backends.DENSE_DENSITY_FLOOR`,
:data:`~repro.chain.backends.DENSE_ALWAYS_STATES`) that were tuned on
one machine and can be wrong on another.  This benchmark manufactures
that situation and shows the telemetry loop closing it:

* **calibrate** -- probe both evolution kernels (the dense densify +
  ``dist @ dense`` matvec and the COO ``bincount`` scatter-add, replicas
  of the group path in :mod:`repro.chain.multi`) over a small
  states x nnz grid, shape the timings like warehouse ``groups``
  forensics, and fit real :class:`~repro.obs.policy.CostModel` rows with
  :func:`repro.obs.calibrate.fit_cost_models`;
* **mis-set static arm** -- run a sparse-dominated workload with
  ``DENSE_DENSITY_FLOOR`` forced to ``0.0`` (every structure under the
  hard memory cap goes dense), the deliberate mis-configuration;
* **measured arm** -- same workload, same ``evolution_strategy()``
  front door, but ``configure_policy("measured", fitted)`` lets the
  fitted models out-vote the broken constant.

Both arms evolve identical distributions (asserted to 1e-12 -- policy
changes how fast, never what) and the measured arm must recover at
least :data:`MIN_SPEEDUP` (1.2x; CI smoke relaxes via
``POLICY_BENCH_MIN_SPEEDUP``).  Writes ``BENCH_policy.json`` (override
with ``POLICY_BENCH_OUT``) including the fitted model dicts -- the
calibration artifact CI uploads.  Runs standalone
(``python benchmarks/bench_cost_models.py``) or under pytest-benchmark
(``pytest benchmarks/ -o python_files='bench_*.py'
-o python_functions='bench_*'``).
"""

from __future__ import annotations

import json
import os
import statistics
import time

import numpy as np

from repro.chain import backends
from repro.chain.backends import evolution_strategy, transition_density
from repro.chain.engine import DENSE_STATE_LIMIT
from repro.obs import configure_policy
from repro.obs.calibrate import fit_cost_models

#: Acceptance floor from the ISSUE: the measured policy must claw back
#: at least this much of what the mis-set static threshold throws away.
MIN_SPEEDUP = float(os.environ.get("POLICY_BENCH_MIN_SPEEDUP", "1.2"))

OUT_PATH = os.environ.get("POLICY_BENCH_OUT", "BENCH_policy.json")

#: The workload: mostly sparse structures (density ~1%, where the
#: scatter-add wins decisively) plus one genuinely dense structure (the
#: measured policy must keep sending *it* dense -- per-structure
#: verdicts, not a blanket flip).  All states stay under
#: DENSE_STATE_LIMIT: above the hard memory cap the policy is never
#: consulted and there is nothing to recover.
WORKLOAD = tuple(
    [(384, 4 * 384, seed) for seed in range(4)] + [(128, 128 * 128 // 8, 99)]
)

#: Probe grid for calibration: both kernels timed at every point, so
#: the fitted power laws describe *this* machine.  Spans the workload
#: sizes and varies nnz independently of states (full-rank design).
PROBE_GRID = tuple(
    (states, states * factor) for states in (96, 192, 384) for factor in (4, 16)
)

#: Synchronous rounds each structure is evolved for per timing sample.
EVOLVE_ROUNDS = int(os.environ.get("POLICY_BENCH_ROUNDS_PER_CHAIN", "16"))
#: Paired samples of the two arms (median ratio is the gate statistic).
ROUNDS = int(os.environ.get("POLICY_BENCH_ROUNDS", "9"))
#: Kernel repetitions per calibration probe (lifts tiny timings above
#: timer resolution).
PROBE_REPEATS = int(os.environ.get("POLICY_BENCH_PROBE_REPEATS", "5"))


def make_structure(num_states: int, nnz: int, seed: int):
    """A deterministic random COO transition structure (rows sum to 1)."""
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_states, size=nnz)
    dst = rng.integers(0, num_states, size=nnz)
    # Normalize per source state so the structure is stochastic like a
    # real compiled chain's (keeps the evolved mass comparable).
    raw = rng.random(nnz) + 0.1
    totals = np.bincount(src, weights=raw, minlength=num_states)
    weight = raw / totals[src]
    dist = np.zeros(num_states)
    dist[int(rng.integers(0, num_states))] = 1.0
    return src, dst, weight, dist


def evolve_dense(structure, rounds: int = EVOLVE_ROUNDS):
    """The dense path as a fresh group pays for it: densify + matvecs."""
    src, dst, weight, dist = structure
    num_states = len(dist)
    dense = np.zeros((num_states, num_states))
    np.add.at(dense, (src, dst), weight)
    for _ in range(rounds):
        dist = dist @ dense
    return dist


def evolve_scatter(structure, rounds: int = EVOLVE_ROUNDS):
    """The COO scatter-add path (``np.bincount``, as in chain.multi)."""
    src, dst, weight, dist = structure
    num_states = len(dist)
    for _ in range(rounds):
        dist = np.bincount(
            dst, weights=dist[src] * weight, minlength=num_states
        )
    return dist


KERNELS = {"dense": evolve_dense, "scatter": evolve_scatter}


def probe_rows() -> list[dict]:
    """Measured ``groups``-forensics-shaped rows for both kernels."""
    rows = []
    for states, nnz in PROBE_GRID:
        structure = make_structure(states, nnz, seed=states + nnz)
        for strategy, kernel in KERNELS.items():
            kernel(structure)  # warm
            started = time.perf_counter()
            for _ in range(PROBE_REPEATS):
                kernel(structure)
            elapsed = (time.perf_counter() - started) / PROBE_REPEATS
            rows.append(
                {
                    "master_seed": 0,
                    "jobs": 1,
                    "chains": 1,
                    "states": states,
                    "transitions": nnz,
                    "density": transition_density(states, nnz),
                    "evolution": strategy,
                    "memo_hits": 0,
                    "elapsed": elapsed,
                }
            )
    return rows


def run_workload(structures) -> tuple[float, list, list]:
    """One pass over the workload through the real ``evolution_strategy``
    front door; returns ``(seconds, verdicts, distributions)``."""
    verdicts = []
    distributions = []
    started = time.perf_counter()
    for (states, nnz, _), structure in structures:
        strategy = evolution_strategy(states, nnz)
        verdicts.append(strategy)
        distributions.append(KERNELS[strategy](structure))
    return time.perf_counter() - started, verdicts, distributions


def measure() -> dict:
    """Calibrate, run both arms paired, and return the verdict report."""
    structures = [
        ((states, nnz, seed), make_structure(states, nnz, seed))
        for states, nnz, seed in WORKLOAD
    ]
    assert all(states <= DENSE_STATE_LIMIT for states, _, _ in WORKLOAD)

    fitted = fit_cost_models(probe_rows())
    timing = {m.target for m in fitted}
    assert {"evolve.dense", "evolve.scatter"} <= timing, timing

    saved_floor = backends.DENSE_DENSITY_FLOOR
    saved_always = backends.DENSE_ALWAYS_STATES
    try:
        # The deliberate mis-configuration: with the density floor at
        # zero every structure under the hard cap looks "dense enough".
        backends.DENSE_DENSITY_FLOOR = 0.0

        configure_policy()  # static
        static_seconds = float("inf")
        ratios = []
        _, static_verdicts, static_dists = run_workload(structures)
        measured_seconds = float("inf")
        for _ in range(ROUNDS):
            configure_policy()
            static_round, static_verdicts, static_dists = run_workload(
                structures
            )
            configure_policy("measured", fitted)
            measured_round, measured_verdicts, measured_dists = run_workload(
                structures
            )
            static_seconds = min(static_seconds, static_round)
            measured_seconds = min(measured_seconds, measured_round)
            # Paired ratios sampled back to back, so frequency drift
            # and scheduler spikes cancel (same gate statistic as
            # bench_obs_overhead).
            ratios.append(static_round / measured_round)
        speedup = statistics.median(ratios)
    finally:
        backends.DENSE_DENSITY_FLOOR = saved_floor
        backends.DENSE_ALWAYS_STATES = saved_always
        configure_policy()

    # The mis-set static arm sent everything dense; the measured arm
    # must disagree per structure, not blanket-flip.
    assert static_verdicts == ["dense"] * len(WORKLOAD), static_verdicts
    assert "scatter" in measured_verdicts, measured_verdicts

    # How-fast-never-what: both arms evolved identical distributions.
    for a, b in zip(static_dists, measured_dists):
        assert np.allclose(a, b, rtol=0.0, atol=1e-12)

    return {
        "static_seconds": static_seconds,
        "measured_seconds": measured_seconds,
        "speedup": speedup,
        "min_speedup": MIN_SPEEDUP,
        "workload": [
            {"states": s, "nnz": n, "seed": seed} for s, n, seed in WORKLOAD
        ],
        "static_verdicts": static_verdicts,
        "measured_verdicts": measured_verdicts,
        "models": [model.to_dict() for model in fitted],
    }


# ----------------------------------------------------------------------
# pytest-benchmark entry points
# ----------------------------------------------------------------------
def _structures():
    return [
        ((states, nnz, seed), make_structure(states, nnz, seed))
        for states, nnz, seed in WORKLOAD
    ]


def bench_policy_static_misconfigured(benchmark):
    """The workload under the mis-set static threshold (all dense)."""
    structures = _structures()
    saved = backends.DENSE_DENSITY_FLOOR
    try:
        backends.DENSE_DENSITY_FLOOR = 0.0
        configure_policy()
        seconds, verdicts, _ = benchmark(lambda: run_workload(structures))
    finally:
        backends.DENSE_DENSITY_FLOOR = saved
    benchmark.extra_info["verdicts"] = ",".join(verdicts)
    assert verdicts == ["dense"] * len(WORKLOAD)


def bench_policy_measured(benchmark):
    """The same workload under fitted measured-policy verdicts."""
    structures = _structures()
    fitted = fit_cost_models(probe_rows())
    saved = backends.DENSE_DENSITY_FLOOR
    try:
        backends.DENSE_DENSITY_FLOOR = 0.0
        configure_policy("measured", fitted)
        seconds, verdicts, _ = benchmark(lambda: run_workload(structures))
    finally:
        backends.DENSE_DENSITY_FLOOR = saved
        configure_policy()
    benchmark.extra_info["verdicts"] = ",".join(verdicts)
    assert "scatter" in verdicts


def bench_policy_speedup_verdict(benchmark):
    """The acceptance check: measured recovers >= MIN_SPEEDUP."""
    report = benchmark(measure)
    for key in ("static_seconds", "measured_seconds", "speedup"):
        benchmark.extra_info[key] = round(report[key], 6)
    assert report["speedup"] >= MIN_SPEEDUP, report


def main() -> int:
    report = measure()
    sparse = sum(1 for v in report["measured_verdicts"] if v == "scatter")
    print(
        f"policy workload: {len(WORKLOAD)} structures "
        f"(states <= {DENSE_STATE_LIMIT}), {EVOLVE_ROUNDS} rounds each"
    )
    print(
        f"  mis-set static (floor=0): "
        f"{report['static_seconds'] * 1e3:8.2f} ms  "
        f"verdicts {report['static_verdicts']}"
    )
    print(
        f"  measured policy          : "
        f"{report['measured_seconds'] * 1e3:8.2f} ms  "
        f"verdicts {report['measured_verdicts']}"
    )
    print(
        f"  fitted models            : "
        + ", ".join(
            f"{m['target']} (rows {m['rows']}, residual {m['residual']:.3f})"
            for m in report["models"]
        )
    )
    ok = report["speedup"] >= MIN_SPEEDUP
    print(
        f"measured policy speedup {report['speedup']:.2f}x "
        f"({sparse}/{len(WORKLOAD)} structures re-routed to scatter); "
        f">= {MIN_SPEEDUP:.2f}x required: {'PASS' if ok else 'FAIL'}"
    )
    with open(OUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {OUT_PATH}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
