"""Theorem 4.1: blackboard leader election solvable iff some n_i = 1.

Sweeps every group-size shape up to n=5, computes the exact Pr[S(t)]
series and the exact 0/1 limit via the partition chain, and compares
against the paper's characterization.  Kernels time the two exact
probability engines.
"""

from repro.analysis import theorem41_blackboard
from repro.core import (
    ConsistencyChain,
    leader_election,
    solving_probability_enumerated,
)
from repro.randomness import RandomnessConfiguration


def bench_theorem41_experiment(run_experiment):
    run_experiment(theorem41_blackboard, n_max=5, t_max=6)


def bench_theorem41_chain_kernel(benchmark):
    """Exact Pr[S(t)] series t=1..8 for sizes (1,2,3) via the chain."""
    alpha = RandomnessConfiguration.from_group_sizes((1, 2, 3))
    task = leader_election(6)

    def kernel():
        return ConsistencyChain(alpha).solving_probability_series(task, 8)

    series = benchmark(kernel)
    assert series[-1] > series[0]


def bench_theorem41_enumeration_kernel(benchmark):
    """The same probability at t=4 by literal 2^(tk) enumeration."""
    alpha = RandomnessConfiguration.from_group_sizes((1, 2, 3))
    task = leader_election(6)

    def kernel():
        return solving_probability_enumerated(alpha, task, 4)

    exact = benchmark(kernel)
    chain = ConsistencyChain(alpha).solving_probability(task, 4)
    assert exact == chain
