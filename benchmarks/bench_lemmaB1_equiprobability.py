"""Lemma B.1: every positive-probability realization has mass 2^-tk.

Verifies equiprobability and unit total mass across all shapes up to n=4,
and times the realization enumeration kernel.
"""

from repro.analysis import lemma_b1_equiprobability
from repro.randomness import (
    RandomnessConfiguration,
    iter_consistent_realizations,
    realization_probability,
)


def bench_lemma_b1_experiment(run_experiment):
    run_experiment(lemma_b1_equiprobability, n_max=4, t_max=3)


def bench_realization_enumeration_kernel(benchmark):
    """Enumerate + weigh all 2^(tk) realizations for k=3, t=4."""
    alpha = RandomnessConfiguration.from_group_sizes((1, 2, 3))

    def kernel():
        total = 0
        for rho in iter_consistent_realizations(alpha, 4):
            total += realization_probability(rho, alpha)
        return total

    assert benchmark(kernel) == 1
