"""Extension: the task zoo and exact expected election times.

Validates the derived closed forms (unique ids, leader+deputy, threshold
election) against exact chain limits, and regenerates the expected-time
table.  Kernels time a single expected-time solve and a zoo solvability
sweep.
"""

from repro.analysis import extension_expected_times, extension_task_zoo
from repro.core import (
    ConsistencyChain,
    expected_solving_time,
    leader_election,
    unique_ids,
)
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


def bench_task_zoo_experiment(run_experiment):
    run_experiment(extension_task_zoo, n_max=5, rounds=1)


def bench_expected_time_experiment(run_experiment):
    run_experiment(extension_expected_times, n_max=6, rounds=1)


def bench_expected_time_kernel(benchmark):
    """E[T] for leader election on sizes (1,2,3), clique adversarial."""
    shape = (1, 2, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    task = leader_election(6)

    def kernel():
        chain = ConsistencyChain(alpha, adversarial_assignment(shape))
        return expected_solving_time(chain, task)

    expected = benchmark(kernel)
    assert expected is not None and expected >= 1


def bench_unique_ids_limit_kernel(benchmark):
    """Eventual solvability of unique-ids on sizes (2,3), adversarial."""
    shape = (2, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    task = unique_ids(5)

    def kernel():
        chain = ConsistencyChain(alpha, adversarial_assignment(shape))
        return chain.limit_solving_probability(task)

    assert benchmark(kernel) == 1
