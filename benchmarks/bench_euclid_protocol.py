"""Theorem 4.2's algorithmic side: the Euclid-style election protocol.

Sweeps shapes under adversarial ports (elects iff gcd = 1, never a wrong
election) and times a single election run on the co-prime shape (3, 4).
"""

from repro.algorithms import CliqueNetwork, EuclidLeaderNode
from repro.analysis import euclid_protocol
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


def bench_euclid_experiment(run_experiment):
    run_experiment(
        euclid_protocol, n_max=6, seeds=(0, 1, 2), max_rounds=96, rounds=1
    )


def bench_euclid_run_kernel(benchmark):
    """One full election on sizes (3,4) with adversarial ports."""
    shape = (3, 4)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    ports = adversarial_assignment(shape)

    def kernel():
        network = CliqueNetwork(alpha, ports, EuclidLeaderNode, seed=2)
        return network.run(max_rounds=96)

    result = benchmark(kernel)
    assert result.all_decided and len(result.leaders()) == 1
