"""Theorem C.1: name-independent input-output tasks reduce to leader
election.

Runs the collect-compute-distribute reduction on both fabrics and times
the end-to-end pipeline (election + reduction) on the clique.
"""

from repro.algorithms import consensus_on_max, solve_name_independent_task
from repro.analysis import theoremC1_reduction
from repro.models import adversarial_assignment
from repro.randomness import RandomnessConfiguration


def bench_reduction_experiment(run_experiment):
    run_experiment(theoremC1_reduction, seeds=(0, 1))


def bench_reduction_pipeline_kernel(benchmark):
    """Election + reduction for consensus-on-max on sizes (2,3)."""
    shape = (2, 3)
    alpha = RandomnessConfiguration.from_group_sizes(shape)
    ports = adversarial_assignment(shape)
    inputs = (4, 1, 2, 2, 4)

    def kernel():
        return solve_name_independent_task(
            alpha, inputs, consensus_on_max, ports=ports, seed=1
        )

    outputs, election = benchmark(kernel)
    assert outputs == (4, 4, 4, 4, 4)
    assert election.all_decided
