"""Randomness sources, configurations ``alpha``, and realizations.

Implements Section 2.1's randomness model: ``k`` independent per-round bit
sources shared among ``n`` nodes, the assignment complex ``A`` of all
configurations, and the exact realization probabilities of Lemma B.1.
"""

from .assignment_complex import assignment_complex, bell_number, configuration_facet
from .configuration import (
    RandomnessConfiguration,
    enumerate_configurations,
    enumerate_size_shapes,
)
from .realizations import (
    Bits,
    NodeRealization,
    all_bit_strings,
    count_consistent_realizations,
    is_consistent,
    iter_consistent_realizations,
    iter_source_realizations,
    node_realization,
    realization_probability,
)
from .source import BitSource, FixedBitSource

__all__ = [
    "BitSource",
    "Bits",
    "FixedBitSource",
    "NodeRealization",
    "RandomnessConfiguration",
    "all_bit_strings",
    "assignment_complex",
    "bell_number",
    "configuration_facet",
    "count_consistent_realizations",
    "enumerate_configurations",
    "enumerate_size_shapes",
    "is_consistent",
    "iter_consistent_realizations",
    "iter_source_realizations",
    "node_realization",
    "realization_probability",
]
