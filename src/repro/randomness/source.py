"""Randomness sources.

Section 2.1: the system has ``k`` independent sources ``R_1..R_k``; each
source emits one uniform bit per round, and every node is wired to exactly
one source.  Nodes wired to the same source receive *identical* bits -- the
paper's model of correlated randomness (duplicated SSH keys, shared PRNG
seeds, ...).

:class:`BitSource` is a deterministic, seeded stream so that experiments are
reproducible; :class:`SourceBank` materializes one stream per source and
serves per-node bits through a configuration.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence


class BitSource:
    """An infinite stream of i.i.d. uniform bits with history.

    The stream is generated lazily from a seed.  ``bit(t)`` is 1-indexed to
    match the paper's round numbering: round ``t`` happens between time
    ``t-1`` and time ``t``, and ``prefix(t)`` is the ``t``-bit string a node
    wired to this source has received by time ``t``.
    """

    __slots__ = ("_rng", "_history")

    def __init__(self, seed: int | None = None):
        self._rng = random.Random(seed)
        self._history: list[int] = []

    def bit(self, t: int) -> int:
        """The bit emitted during round ``t`` (``t >= 1``)."""
        if t < 1:
            raise ValueError(f"rounds are 1-indexed; got {t}")
        while len(self._history) < t:
            self._history.append(self._rng.getrandbits(1))
        return self._history[t - 1]

    def prefix(self, t: int) -> tuple[int, ...]:
        """Bits of rounds ``1..t`` as a tuple (the realization ``x(1..t)``)."""
        if t == 0:
            return ()
        self.bit(t)
        return tuple(self._history[:t])

    def prefix_string(self, t: int) -> str:
        """``prefix(t)`` rendered as a bit string, e.g. ``'0110'``."""
        return "".join(str(b) for b in self.prefix(t))

    def __iter__(self) -> Iterator[int]:
        t = 1
        while True:
            yield self.bit(t)
            t += 1


class FixedBitSource(BitSource):
    """A source that replays a predetermined bit string.

    Used by exact-enumeration engines and by failure-injection tests, where
    the realization is chosen, not sampled.  Reading past the end of the
    script raises, which catches protocols that consume more randomness than
    an experiment accounted for.
    """

    __slots__ = ("_script",)

    def __init__(self, bits: Sequence[int] | str):
        super().__init__(seed=0)
        if isinstance(bits, str):
            script = tuple(int(c) for c in bits)
        else:
            script = tuple(int(b) for b in bits)
        if any(b not in (0, 1) for b in script):
            raise ValueError(f"bits must be 0/1, got {script!r}")
        self._script = script

    def bit(self, t: int) -> int:
        if t < 1:
            raise ValueError(f"rounds are 1-indexed; got {t}")
        if t > len(self._script):
            raise IndexError(
                f"scripted source exhausted: round {t} of {len(self._script)}"
            )
        return self._script[t - 1]

    def prefix(self, t: int) -> tuple[int, ...]:
        if t > len(self._script):
            raise IndexError(
                f"scripted source exhausted: prefix({t}) of {len(self._script)}"
            )
        return self._script[:t]


__all__ = ["BitSource", "FixedBitSource"]
