"""Randomness configurations (the facets ``alpha`` of the assignment complex ``A``).

A configuration assigns every node ``i in [n]`` to a source ``R_j``; the
paper normalizes source indices to be contiguous ``1..k``.  Internally we
use 0-based node indices ``0..n-1`` and 0-based source indices ``0..k-1``;
presentation helpers restore the paper's 1-based convention.

The derived quantities driving both characterizations live here:
``group_sizes`` (the ``n_i``), ``gcd`` (Theorem 4.2), and
``has_singleton_source`` (Theorem 4.1).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from .source import BitSource


class RandomnessConfiguration:
    """An assignment ``alpha`` of nodes to randomness sources.

    ``assignment[i]`` is the 0-based source index of node ``i``.  The
    constructor normalizes source indices to first-appearance order, which
    makes configurations canonical: two assignments that differ only in the
    naming of sources compare equal.
    """

    __slots__ = ("_assignment",)

    def __init__(self, assignment: Sequence[int]):
        if not assignment:
            raise ValueError("a configuration needs at least one node")
        relabel: dict[int, int] = {}
        normalized = []
        for source in assignment:
            if source not in relabel:
                relabel[source] = len(relabel)
            normalized.append(relabel[source])
        self._assignment = tuple(normalized)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def independent(cls, n: int) -> "RandomnessConfiguration":
        """Every node has its own private source (``k = n``)."""
        return cls(tuple(range(n)))

    @classmethod
    def shared(cls, n: int) -> "RandomnessConfiguration":
        """All nodes share one source (``k = 1``)."""
        return cls((0,) * n)

    @classmethod
    def from_group_sizes(cls, sizes: Iterable[int]) -> "RandomnessConfiguration":
        """Nodes ``0..n_1-1`` on source 0, next ``n_2`` on source 1, etc."""
        assignment: list[int] = []
        for index, size in enumerate(sizes):
            if size < 1:
                raise ValueError(f"group sizes must be positive, got {size}")
            assignment.extend([index] * size)
        return cls(assignment)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> tuple[int, ...]:
        return self._assignment

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self._assignment)

    @property
    def k(self) -> int:
        """Number of distinct sources actually used (``k(alpha)``)."""
        return len(set(self._assignment))

    def source_of(self, node: int) -> int:
        return self._assignment[node]

    def groups(self) -> list[tuple[int, ...]]:
        """Nodes per source, indexed by 0-based source id."""
        out: list[list[int]] = [[] for _ in range(self.k)]
        for node, source in enumerate(self._assignment):
            out[source].append(node)
        return [tuple(group) for group in out]

    @property
    def group_sizes(self) -> tuple[int, ...]:
        """The paper's ``(n_1, ..., n_k)`` in source order."""
        return tuple(len(group) for group in self.groups())

    @property
    def sorted_group_sizes(self) -> tuple[int, ...]:
        """Sizes sorted ascending -- the shape of the configuration."""
        return tuple(sorted(self.group_sizes))

    @property
    def gcd(self) -> int:
        """``gcd(n_1, ..., n_k)`` -- the Theorem 4.2 quantity."""
        return math.gcd(*self.group_sizes)

    @property
    def has_singleton_source(self) -> bool:
        """``exists i: n_i = 1`` -- the Theorem 4.1 condition."""
        return 1 in self.group_sizes

    def source_partition(self) -> list[frozenset[int]]:
        """The partition of nodes induced by shared sources."""
        return [frozenset(group) for group in self.groups()]

    # ------------------------------------------------------------------
    # Sampling support
    # ------------------------------------------------------------------
    def make_sources(self, seed: int | None = None) -> list[BitSource]:
        """One independent :class:`BitSource` per source id."""
        rng_seeds = (
            [None] * self.k
            if seed is None
            else [seed * 1_000_003 + j for j in range(self.k)]
        )
        return [BitSource(s) for s in rng_seeds]

    def node_bits(
        self, sources: Sequence[BitSource], t: int
    ) -> tuple[tuple[int, ...], ...]:
        """Per-node bit prefixes at time ``t`` given per-source streams."""
        prefixes = [source.prefix(t) for source in sources]
        return tuple(prefixes[self._assignment[i]] for i in range(self.n))

    # ------------------------------------------------------------------
    # Value-object protocol
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if isinstance(other, RandomnessConfiguration):
            return self._assignment == other._assignment
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._assignment)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RandomnessConfiguration(sizes={self.group_sizes})"


def enumerate_configurations(n: int) -> Iterator[RandomnessConfiguration]:
    """All configurations of ``n`` nodes -- the facets of the complex ``A``.

    Configurations are in bijection with set partitions of ``[n]`` (a Bell
    number of them), generated via restricted-growth strings, which is
    exactly the normalized-assignment encoding.
    """
    if n < 1:
        raise ValueError("need n >= 1")

    def grow(prefix: list[int], used: int) -> Iterator[RandomnessConfiguration]:
        if len(prefix) == n:
            yield RandomnessConfiguration(tuple(prefix))
            return
        for source in range(used + 1):
            prefix.append(source)
            yield from grow(prefix, max(used, source + 1))
            prefix.pop()

    yield from grow([], 0)


def enumerate_size_shapes(n: int) -> Iterator[tuple[int, ...]]:
    """All multisets of group sizes (integer partitions of ``n``), sorted.

    Two configurations with the same shape behave identically for every
    input-free symmetry-breaking task (anonymity), so sweeps iterate shapes
    rather than all Bell(n) configurations.
    """

    def parts(remaining: int, minimum: int) -> Iterator[tuple[int, ...]]:
        if remaining == 0:
            yield ()
            return
        for first in range(minimum, remaining + 1):
            for rest in parts(remaining - first, first):
                yield (first, *rest)

    yield from parts(n, 1)


__all__ = [
    "RandomnessConfiguration",
    "enumerate_configurations",
    "enumerate_size_shapes",
]
