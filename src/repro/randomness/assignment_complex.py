"""The assignment complex ``A`` (Section 3.1).

``A`` is the pure ``(n-1)``-dimensional chromatic complex whose facets are
the randomness configurations: a facet ``alpha = {(1, j_1), ..., (n, j_n)}``
records that node ``i`` is wired to source ``R_{j_i}``, with source indices
normalized to be contiguous.  The number of facets is the Bell number
``B(n)`` once source-renamings are quotiented out, which is exactly the
normalization performed by :class:`RandomnessConfiguration`.
"""

from __future__ import annotations

from ..topology import Simplex, SimplicialComplex, Vertex
from .configuration import RandomnessConfiguration, enumerate_configurations


def configuration_facet(alpha: RandomnessConfiguration) -> Simplex:
    """The facet of ``A`` corresponding to ``alpha``.

    Vertices are ``(i, j)`` pairs with the paper's 1-based numbering of both
    nodes and sources.
    """
    return Simplex(
        Vertex(node + 1, alpha.source_of(node) + 1) for node in range(alpha.n)
    )


def assignment_complex(n: int) -> SimplicialComplex:
    """The full complex ``A`` on ``n`` nodes.

    Only practical for small ``n`` (Bell numbers grow fast); used by the
    tests and the illustrative figures.
    """
    return SimplicialComplex(
        configuration_facet(alpha) for alpha in enumerate_configurations(n)
    )


def bell_number(n: int) -> int:
    """The Bell number ``B(n)`` via the Bell triangle (facet count of ``A``)."""
    if n < 0:
        raise ValueError("need n >= 0")
    if n == 0:
        return 1
    row = [1]
    for _ in range(n - 1):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[-1]


__all__ = ["assignment_complex", "bell_number", "configuration_facet"]
