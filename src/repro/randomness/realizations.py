"""Realizations of the randomness and their probabilities (Lemma B.1).

A *realization* at time ``t`` is the tuple ``(x_1, ..., x_n)`` of ``t``-bit
strings received by the nodes -- a facet of the realization complex
``R(t)``.  Given a configuration ``alpha``:

* a realization is *consistent* with ``alpha`` when nodes sharing a source
  hold identical strings (otherwise it lies in the bad set ``B_alpha`` and
  has probability zero);
* every consistent realization has probability exactly ``2^{-tk}``
  (Lemma B.1), because it is determined by the ``k`` source strings.

Exact probability engines therefore enumerate the ``2^{tk}`` *source*
realizations instead of the ``2^{tn}`` node realizations.
"""

from __future__ import annotations

import itertools
from fractions import Fraction
from typing import Iterator, Sequence

from .configuration import RandomnessConfiguration

Bits = tuple[int, ...]
NodeRealization = tuple[Bits, ...]


def all_bit_strings(t: int) -> Iterator[Bits]:
    """All ``2^t`` bit strings of length ``t`` in lexicographic order."""
    yield from itertools.product((0, 1), repeat=t)


def iter_source_realizations(k: int, t: int) -> Iterator[tuple[Bits, ...]]:
    """All ``2^{tk}`` assignments of ``t``-bit strings to ``k`` sources."""
    yield from itertools.product(all_bit_strings(t), repeat=k)


def node_realization(
    alpha: RandomnessConfiguration, source_bits: Sequence[Bits]
) -> NodeRealization:
    """Expand per-source strings into the per-node realization."""
    if len(source_bits) != alpha.k:
        raise ValueError(
            f"expected {alpha.k} source strings, got {len(source_bits)}"
        )
    return tuple(source_bits[alpha.source_of(i)] for i in range(alpha.n))


def iter_consistent_realizations(
    alpha: RandomnessConfiguration, t: int
) -> Iterator[NodeRealization]:
    """All positive-probability realizations at time ``t`` given ``alpha``.

    Note that *distinct* sources are allowed to emit identical strings; only
    same-source nodes are forced to agree.  The iterator therefore has
    exactly ``2^{tk}`` elements, possibly with repeated node realizations
    when two sources happen to coincide -- repetitions are kept because each
    corresponds to a distinct elementary event of probability ``2^{-tk}``.
    """
    for source_bits in iter_source_realizations(alpha.k, t):
        yield node_realization(alpha, source_bits)


def is_consistent(
    realization: NodeRealization, alpha: RandomnessConfiguration
) -> bool:
    """True when the realization is outside the bad set ``B_alpha``."""
    if len(realization) != alpha.n:
        raise ValueError(
            f"realization has {len(realization)} nodes, alpha has {alpha.n}"
        )
    first_of_source: dict[int, Bits] = {}
    for node, bits in enumerate(realization):
        source = alpha.source_of(node)
        if source in first_of_source:
            if first_of_source[source] != bits:
                return False
        else:
            first_of_source[source] = bits
    return True


def realization_probability(
    realization: NodeRealization, alpha: RandomnessConfiguration
) -> Fraction:
    """``Pr[rho | alpha]`` per Lemma B.1: ``0`` or ``2^{-tk}`` exactly.

    All strings in the realization must have equal length ``t``; ``t`` is
    inferred from the realization itself.
    """
    lengths = {len(bits) for bits in realization}
    if len(lengths) != 1:
        raise ValueError(f"ragged realization lengths: {sorted(lengths)}")
    t = lengths.pop()
    if not is_consistent(realization, alpha):
        return Fraction(0)
    return Fraction(1, 2 ** (t * alpha.k))


def count_consistent_realizations(alpha: RandomnessConfiguration, t: int) -> int:
    """``2^{tk}`` -- closed form, used to cross-check the enumerators."""
    return 2 ** (t * alpha.k)


__all__ = [
    "Bits",
    "NodeRealization",
    "all_bit_strings",
    "count_consistent_realizations",
    "is_consistent",
    "iter_consistent_realizations",
    "iter_source_realizations",
    "node_realization",
    "realization_probability",
]
