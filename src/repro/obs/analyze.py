"""Cross-run analytics over the warehouse ``telemetry`` table.

A traced sweep persists its folded telemetry (counters, gauges,
histogram totals, span aggregates) as rows stamped with the append
time and the sweep's ``master_seed`` (see ``runner/sweep.py`` and
:data:`repro.results.store.TELEMETRY_COLUMNS`).  One sweep's rows are
a profile; *several* sweeps' rows are a history, and this module is
the API that reads it back:

* :func:`metrics_history` -- the long view: every persisted telemetry
  row across stamps, filterable by kind/name/master_seed, ordered for
  trend reading (``repro metrics history``);
* :func:`diff_sweeps` -- two sweeps compared tier by tier: per metric
  name, both values, the delta, and the ratio (``repro obs diff``);
* :func:`tier_attribution` -- where one sweep's wall-clock went: span
  *self*-time shares per tier (``repro obs tiers``).

Everything here is read-only over the store's vectorized
:class:`~repro.results.query.Table` pages; nothing imports the chain
or runner tiers.  Stamps are compared exactly: the float written by
:func:`repro.obs.clock.now` round-trips bit-identically through the
npz segment, so a stamp returned by :func:`sweep_stamps` always
selects precisely its own rows.

Merge-law caveat (see OBS.md): persisted histogram rows carry the
*totals* (sum and count), not the 64 buckets, so histories and diffs
of ``hist`` rows compare means, not percentiles; percentiles live in
the in-process snapshot and ``--profile-out`` documents.
"""

from __future__ import annotations

#: Telemetry kinds in display order (the persisted ``kind`` column).
TELEMETRY_KINDS = ("counter", "gauge", "hist", "span", "span.self")


def _telemetry_table(store):
    if "telemetry" not in store.tables():
        return None
    return store.table("telemetry")


def sweep_stamps(store) -> list:
    """Distinct persisted sweeps, oldest first.

    Returns ``(stamp, master_seed)`` pairs -- one per traced sweep that
    landed telemetry in this warehouse.  The stamp (append wall-clock)
    is the sweep's identity for :func:`diff_sweeps` /
    :func:`tier_attribution`; the master seed says which sweep spec it
    was.
    """
    table = _telemetry_table(store)
    if table is None or not len(table):
        return []
    pairs = {
        (float(row["stamp"]), int(row["master_seed"]))
        for row in table.project(["stamp", "master_seed"]).to_rows()
    }
    return sorted(pairs)


def metrics_history(
    store,
    *,
    kind: "str | None" = None,
    name: "str | None" = None,
    master_seed: "int | None" = None,
) -> list:
    """Every telemetry row across stamps, ordered for trend reading.

    Rows come back sorted by ``(name, kind, stamp)`` so consecutive
    lines show one metric evolving across sweeps.  ``kind`` filters to
    one of :data:`TELEMETRY_KINDS`; ``name`` is a substring match;
    ``master_seed`` restricts to one sweep spec's runs.
    """
    from ..results.query import col

    table = _telemetry_table(store)
    if table is None or not len(table):
        return []
    if kind is not None:
        table = table.filter(col("kind") == kind)
    if master_seed is not None:
        table = table.filter(col("master_seed") == int(master_seed))
    rows = table.sort_by(["name", "kind", "stamp"]).to_rows()
    if name is not None:
        rows = [row for row in rows if name in str(row["name"])]
    return rows


def _stamp_values(store, stamp: float) -> dict:
    """``{(kind, name): (value, count)}`` for one sweep's rows."""
    from ..results.query import col

    table = _telemetry_table(store)
    if table is None:
        return {}
    rows = table.filter(col("stamp") == float(stamp)).to_rows()
    return {
        (str(row["kind"]), str(row["name"])): (
            float(row["value"]),
            int(row["count"]),
        )
        for row in rows
    }


def diff_sweeps(
    store,
    stamp_a: "float | None" = None,
    stamp_b: "float | None" = None,
) -> list:
    """Tier-by-tier comparison of two persisted sweeps.

    Defaults to the two most recent stamps (older as side ``a``); any
    two persisted sweeps can be compared by passing their stamps
    explicitly (``repro obs diff --stamps A B``).  Explicit stamps must
    match a persisted sweep exactly (stamps round-trip bit-identically
    through the warehouse, so equality is the right test); an unknown
    stamp raises a :class:`ValueError` that lists every available
    stamp.  One output row per metric name present in either sweep:
    ``{kind, name, a, b, delta, ratio}`` with absent sides reported as
    ``0.0`` and ``ratio`` of ``b/a`` (``None`` when ``a`` is zero).
    Rows are ordered by kind (:data:`TELEMETRY_KINDS`) then name, so
    all counters diff together, then gauges, then span timings.
    """
    stamps = [stamp for stamp, _ in sweep_stamps(store)]
    available = ", ".join(f"{stamp!r}" for stamp in stamps) or "none"
    for explicit in (stamp_a, stamp_b):
        if explicit is not None and float(explicit) not in stamps:
            raise ValueError(
                f"no persisted sweep has stamp {explicit!r}; "
                f"available stamps: {available}"
            )
    if stamp_b is None:
        if len(stamps) < 2 and stamp_a is None:
            raise ValueError(
                "diff needs two persisted sweeps; this warehouse has "
                f"{len(stamps)} (available stamps: {available})"
            )
        stamp_b = stamps[-1]
    if stamp_a is None:
        earlier = [stamp for stamp in stamps if stamp < stamp_b]
        if not earlier:
            raise ValueError(
                "no sweep earlier than the diff target "
                f"(available stamps: {available})"
            )
        stamp_a = earlier[-1]
    side_a = _stamp_values(store, stamp_a)
    side_b = _stamp_values(store, stamp_b)
    kind_order = {kind: i for i, kind in enumerate(TELEMETRY_KINDS)}
    diff = []
    for key in sorted(
        set(side_a) | set(side_b),
        key=lambda key: (kind_order.get(key[0], len(kind_order)), key[1]),
    ):
        kind, name = key
        value_a = side_a.get(key, (0.0, 0))[0]
        value_b = side_b.get(key, (0.0, 0))[0]
        diff.append(
            {
                "kind": kind,
                "name": name,
                "a": value_a,
                "b": value_b,
                "delta": value_b - value_a,
                "ratio": (value_b / value_a) if value_a else None,
            }
        )
    return diff


def tier_attribution(store, stamp: "float | None" = None) -> list:
    """Where one sweep's wall-clock went, by span self-time.

    Reads the ``span.self`` rows (time inside each span minus its
    children -- the exclusive cost of that tier) for ``stamp``
    (default: the most recent sweep) and returns ``{name, seconds,
    calls, share}`` rows sorted by descending seconds, ``share``
    normalized over the sweep's total self-time.
    """
    if stamp is None:
        stamps = sweep_stamps(store)
        if not stamps:
            return []
        stamp = stamps[-1][0]
    values = _stamp_values(store, stamp)
    selves = {
        name: (value, count)
        for (kind, name), (value, count) in values.items()
        if kind == "span.self"
    }
    total = sum(value for value, _ in selves.values())
    rows = [
        {
            "name": name,
            "seconds": value,
            "calls": count,
            "share": (value / total) if total > 0.0 else 0.0,
        }
        for name, (value, count) in selves.items()
    ]
    rows.sort(key=lambda row: (-row["seconds"], row["name"]))
    return rows


__all__ = [
    "TELEMETRY_KINDS",
    "diff_sweeps",
    "metrics_history",
    "sweep_stamps",
    "tier_attribution",
]
