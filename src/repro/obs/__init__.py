"""Observability: span tracing and metrics across the whole stack.

``repro.obs`` is the telemetry substrate for the five-tier compute-and-
cache system (compile -> batch -> group -> memo -> warehouse): a
low-overhead **span tracer** (:mod:`repro.obs.trace`), a mergeable
**metrics registry** (:mod:`repro.obs.metrics`), the cross-process
**fold protocol** and profile/rendering helpers
(:mod:`repro.obs.profile`), a freezable **wall clock** for persisted
stamps (:mod:`repro.obs.clock`), and the dependency-free schema
validator for ``--profile-out`` documents (:mod:`repro.obs.schema`).
On top of the collection substrate sits the read-back loop: cross-run
analytics over persisted telemetry (:mod:`repro.obs.analyze`), cost-
model fitting from measured group forensics
(:mod:`repro.obs.calibrate`), and the opt-in
:class:`~repro.obs.policy.CostModelPolicy` the chain/runner planners
consult (:mod:`repro.obs.policy`) -- see OBS.md, "From telemetry to
decisions".  Alongside the after-the-fact profile sits the *in-flight*
layer (:mod:`repro.obs.live`, OBS.md "Live operation"): worker
heartbeats with resource gauges (:mod:`repro.obs.resources`), a
streaming ``progress.jsonl`` event log, and a stall watchdog.

The contract with the hot paths
-------------------------------
Everything hangs off the process-wide :data:`OBS` facade.  Tracing and
metric collection are **off by default**; every instrumentation site in
the chain/runner/results tiers is guarded by a single attribute load
and branch::

    from ..obs import OBS

    if OBS.enabled:
        OBS.metrics.inc("chain.compile.hit.memo")

so a disabled process pays one predictable branch per site (asserted
at <= 2% on the batch-query benchmark by
``benchmarks/bench_obs_overhead.py``).  Enable with
:func:`configure_tracing`, the ``REPRO_TRACE`` environment variable, or
the CLI (``repro trace <command ...>``, ``--trace``,
``--profile-out``).

Telemetry never enters job records: workers attach their drained
snapshot *next to* the record payload, the sweep orchestrator pops and
folds it before records are persisted, and record bytes are identical
with tracing on or off.  This package imports nothing from the rest of
``repro`` at module level, so any tier can instrument itself without
import cycles.  See ``OBS.md`` for the instrumentation map.
"""

from __future__ import annotations

import os

from .clock import now
from .live import (
    LIVE,
    HeartbeatEmitter,
    LiveConfig,
    SweepMonitor,
    configure_heartbeat,
    monitored_map,
)
from .metrics import (
    MetricsRegistry,
    bin_edges,
    bin_index,
    histogram_percentiles,
)
from .policy import (
    CostModel,
    CostModelPolicy,
    configure_policy,
    configure_policy_payload,
    policy_mode,
    policy_payload,
)
from .profile import (
    PROFILE_SCHEMA_VERSION,
    build_profile,
    drain_telemetry,
    merge_telemetry,
    render_span_tree,
    span_aggregates,
    telemetry_rows,
)
from . import trace as _trace_module
from .trace import Span, TRACER, Tracer, trace


class Observability:
    """The process-wide observability facade (see :data:`OBS`).

    ``enabled`` is a plain attribute -- hot paths read it with one
    attribute load and branch, never a function call.  It is flipped
    only by :func:`configure_tracing`, which keeps the tracer module's
    own fast-path flag in sync.
    """

    __slots__ = ("enabled", "tracer", "metrics")

    def __init__(self, tracer: Tracer, metrics: MetricsRegistry):
        self.enabled = False
        self.tracer = tracer
        self.metrics = metrics

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Observability(enabled={self.enabled})"


#: The process-wide facade every instrumentation site reads.
OBS = Observability(TRACER, MetricsRegistry())


def _count_dropped_spans(count: int) -> None:
    """Ring-eviction hook: a full span ring evicting ``count`` finished
    roots increments ``obs.spans.dropped``, so ``repro metrics show``
    flags truncated profiles instead of leaving them silent."""
    OBS.metrics.inc("obs.spans.dropped", count)


TRACER.on_evict = _count_dropped_spans


def _reset_in_forked_child() -> None:
    """Start forked children with clean telemetry state.

    A fork-started pool worker inherits the parent's ring, counters,
    and -- crucially -- the parent's *open* span stack (the sweep forks
    workers while ``sweep.execute`` is in flight).  Left alone, worker
    spans would nest under that ghost copy of the parent's open span
    (never reaching the ring, so never shipped home) and a drain would
    re-report parent-side counters.  The enabled flag is deliberately
    inherited; worker payloads re-sync it anyway.
    """
    OBS.tracer.reset()
    OBS.metrics.reset()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_in_forked_child)


def configure_tracing(enabled: bool = True) -> bool:
    """Turn span tracing and metric collection on or off, process-wide.

    Returns the previous state.  The runner mirrors this flag through
    worker payloads (like the batching/grouping toggles), so pool
    workers always match the parent.  Off is the default; the
    ``REPRO_TRACE`` environment variable (any non-empty value except
    ``0``) enables it at import time.
    """
    previous = OBS.enabled
    OBS.enabled = bool(enabled)
    _trace_module._ENABLED = OBS.enabled
    return previous


def tracing_enabled() -> bool:
    """Whether tracing/metrics collection is currently on."""
    return OBS.enabled


def reset_telemetry() -> None:
    """Drop all collected spans and metrics (tests, fresh profiles)."""
    OBS.tracer.reset()
    OBS.metrics.reset()


if os.environ.get("REPRO_TRACE", "0") not in ("", "0"):
    configure_tracing(True)


__all__ = [
    "LIVE",
    "OBS",
    "CostModel",
    "CostModelPolicy",
    "HeartbeatEmitter",
    "LiveConfig",
    "Observability",
    "Span",
    "SweepMonitor",
    "Tracer",
    "MetricsRegistry",
    "PROFILE_SCHEMA_VERSION",
    "bin_edges",
    "bin_index",
    "build_profile",
    "configure_heartbeat",
    "configure_policy",
    "configure_policy_payload",
    "configure_tracing",
    "drain_telemetry",
    "histogram_percentiles",
    "merge_telemetry",
    "monitored_map",
    "now",
    "policy_mode",
    "policy_payload",
    "render_span_tree",
    "reset_telemetry",
    "span_aggregates",
    "telemetry_rows",
    "trace",
    "tracing_enabled",
]
