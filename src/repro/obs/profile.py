"""Folding and serving telemetry: drain/merge, aggregates, profiles.

The cross-process protocol is deliberately dumb: a worker calls
:func:`drain_telemetry` after a job and attaches the JSON-safe dict to
its result payload; the orchestrator pops it off the record (telemetry
never stays in job records -- their bytes are identical with tracing on
or off) and calls :func:`merge_telemetry`.  Counters sum, gauges max,
histogram buckets sum, and drained spans nest under whatever span the
orchestrator currently has open -- so a traced sweep's tree shows the
workers' job spans inside the sweep's execute phase.

In a serial engine the "worker" *is* the parent process, so each
drain-and-merge round trip nets to the unchanged registry: the same
engine-invariant totals come out of a serial run and a pool run.

:func:`span_aggregates` / :func:`render_span_tree` serve the ``repro
trace`` CLI; :func:`telemetry_rows` flattens the live registry and span
aggregates into the warehouse's ``telemetry`` table rows; and
:func:`build_profile` assembles the ``--profile-out`` JSON document
(validated by the checked-in ``profile.schema.json``).
"""

from __future__ import annotations

from . import clock
from .trace import Span, TRACER, trace  # noqa: F401  (re-export convenience)
from .metrics import MetricsRegistry  # noqa: F401


def drain_telemetry(registry=None, tracer=None) -> dict:
    """Snapshot-and-reset this process's metrics and finished spans.

    Returns a JSON-safe ``{"metrics": ..., "spans": [...]}`` payload for
    the worker return path.  Open spans are untouched (they finish on
    their own thread); the ring is emptied, so successive drains ship
    disjoint deltas.
    """
    from . import OBS

    registry = OBS.metrics if registry is None else registry
    tracer = OBS.tracer if tracer is None else tracer
    return {
        "metrics": registry.drain(),
        "spans": [span.to_dict() for span in tracer.drain()],
    }


def merge_telemetry(payload: dict, registry=None, tracer=None) -> None:
    """Fold one :func:`drain_telemetry` payload into this process.

    Spans nest under the caller's innermost open span (or the ring);
    metrics fold per the registry's merge rules.  Tolerant of partial
    payloads -- a worker that shipped nothing costs nothing.
    """
    from . import OBS

    if not isinstance(payload, dict):
        return
    registry = OBS.metrics if registry is None else registry
    tracer = OBS.tracer if tracer is None else tracer
    metrics = payload.get("metrics")
    if metrics:
        registry.merge(metrics)
    spans = payload.get("spans")
    if spans:
        tracer.adopt([Span.from_dict(span) for span in spans])


# ----------------------------------------------------------------------
# Aggregation and rendering
# ----------------------------------------------------------------------
def _walk(span: Span, depth: int, visit) -> float:
    child_total = 0.0
    for child in span.children:
        child_total += _walk(child, depth + 1, visit)
    visit(span, depth, max(0.0, span.duration - child_total))
    return span.duration


def span_aggregates(spans: "list[Span] | None" = None) -> dict:
    """Per-name call counts and total/self seconds over span trees.

    ``self`` time is a span's duration minus its children's -- the time
    spent *at* that tier rather than below it.  Defaults to every
    finished span the process-wide tracer can see (ring plus completed
    children of the calling thread's open spans).
    """
    if spans is None:
        spans = TRACER.finished()
    totals: dict[str, dict] = {}

    def visit(span: Span, depth: int, self_seconds: float) -> None:
        entry = totals.get(span.name)
        if entry is None:
            entry = totals[span.name] = {
                "calls": 0, "total": 0.0, "self": 0.0
            }
        entry["calls"] += 1
        entry["total"] += span.duration
        entry["self"] += self_seconds

    for span in spans:
        _walk(span, 0, visit)
    return totals


def render_span_tree(spans: "list[Span] | None" = None) -> str:
    """The span forest as an indented text tree with total/self times.

    Sibling spans with the same name aggregate into one line (calls,
    summed total, summed self), so a sweep over 100 jobs renders as one
    ``runner.job`` line, not 100.
    """
    if spans is None:
        spans = TRACER.finished()
    if not spans:
        return "no spans recorded (tracing off or nothing traced)"
    lines = [
        f"{'span':<44} {'calls':>6} {'total':>12} {'self':>12}"
    ]

    def render_level(spans: "list[Span]", depth: int) -> None:
        groups: dict[str, list[Span]] = {}
        for span in spans:
            groups.setdefault(span.name, []).append(span)
        for name, members in groups.items():
            total = sum(span.duration for span in members)
            children = [c for span in members for c in span.children]
            child_total = sum(child.duration for child in children)
            self_seconds = max(0.0, total - child_total)
            label = "  " * depth + name
            lines.append(
                f"{label:<44} {len(members):>6} "
                f"{total * 1e3:>10.3f}ms {self_seconds * 1e3:>10.3f}ms"
            )
            if children:
                render_level(children, depth + 1)

    render_level(list(spans), 0)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Warehouse rows and profile documents
# ----------------------------------------------------------------------
def telemetry_rows(registry=None, spans: "list[Span] | None" = None) -> list:
    """The live telemetry flattened into ``telemetry``-table rows.

    One row per instrument: counters (``value`` = ``count`` = total),
    gauges (``value``, count 1), histograms (``value`` = observation
    sum, ``count`` = observation count), and span aggregates (``kind``
    ``span``: ``value`` = total seconds, ``count`` = calls; ``kind``
    ``span.self``: the self-time split).  Values are process-cumulative
    at flatten time.  The caller supplies run-scoped columns (``stamp``,
    ``master_seed``).
    """
    from . import OBS

    registry = OBS.metrics if registry is None else registry
    snap = registry.snapshot()
    rows = []
    for name, value in sorted(snap["counters"].items()):
        rows.append(
            {"kind": "counter", "name": name, "value": float(value),
             "count": int(value)}
        )
    for name, value in sorted(snap["gauges"].items()):
        rows.append(
            {"kind": "gauge", "name": name, "value": float(value),
             "count": 1}
        )
    for name, hist in sorted(snap["histograms"].items()):
        rows.append(
            {"kind": "hist", "name": name, "value": float(hist["sum"]),
             "count": int(hist["count"])}
        )
    for name, entry in sorted(span_aggregates(spans).items()):
        rows.append(
            {"kind": "span", "name": name, "value": float(entry["total"]),
             "count": int(entry["calls"])}
        )
        rows.append(
            {"kind": "span.self", "name": name,
             "value": float(entry["self"]), "count": int(entry["calls"])}
        )
    return rows


#: Version of the ``--profile-out`` document layout.  2 added per-
#: histogram ``percentiles`` (p50/p90/p99 derived from the log2
#: buckets) and this version marker itself.
PROFILE_SCHEMA_VERSION = 2


def build_profile(command: str = "", argv=()) -> dict:
    """The ``--profile-out`` JSON document for the current process.

    Contains the metrics snapshot (histograms augmented with
    p50/p90/p99 estimates -- see
    :func:`repro.obs.metrics.histogram_percentiles`), the finished span
    forest, and the per-name aggregates; validates against
    ``src/repro/obs/profile.schema.json`` (see :mod:`repro.obs.schema`).
    """
    from . import OBS
    from .metrics import histogram_percentiles

    spans = TRACER.finished()
    snapshot = OBS.metrics.snapshot()
    for hist in snapshot["histograms"].values():
        hist["percentiles"] = histogram_percentiles(hist)
    return {
        "meta": {
            "command": str(command),
            "argv": [str(arg) for arg in argv],
            "stamp": clock.now(),
            "schema_version": PROFILE_SCHEMA_VERSION,
        },
        "metrics": snapshot,
        "spans": [span.to_dict() for span in spans],
        "aggregates": span_aggregates(spans),
    }


__all__ = [
    "PROFILE_SCHEMA_VERSION",
    "build_profile",
    "drain_telemetry",
    "merge_telemetry",
    "render_span_tree",
    "span_aggregates",
    "telemetry_rows",
]
