"""Low-overhead span tracer: nested timed spans in a per-process ring.

A **span** is one named, timed region with attributes and child spans.
The :class:`trace` context manager / decorator opens one; nesting is
tracked per thread (a span opened while another is open becomes its
child), and finished *root* spans land in the tracer's bounded ring
buffer so a long-lived process cannot grow without bound.

Tracing is **off by default** and costs one module-global check plus
two ``perf_counter`` reads per :class:`trace` block when disabled --
:class:`trace` always measures its duration (the runner reuses it for
the ``elapsed`` record field, which must not depend on whether tracing
is on), it just builds no span objects.  Hot paths with their own
``if OBS.enabled:`` guard pay a single attribute load and branch.

Enable with :func:`repro.obs.configure_tracing`, the ``REPRO_TRACE``
environment variable, or the CLI's ``repro trace <command ...>`` /
``--trace`` surface.  Durations come from ``time.perf_counter`` --
monotonic, never the freezable wall clock of :mod:`repro.obs.clock`.
"""

from __future__ import annotations

import functools
import threading
from collections import deque
from time import perf_counter
from typing import Callable

#: Maximum finished *root* spans the ring retains (children hang off
#: their root and are not counted separately).
DEFAULT_RING_CAPACITY = 1024

#: Module-global enabled flag; flipped only by
#: :func:`repro.obs.configure_tracing` so the facade's ``OBS.enabled``
#: attribute and this flag can never disagree.
_ENABLED = False


class Span:
    """One finished or in-flight traced region."""

    __slots__ = ("name", "attrs", "started", "duration", "children")

    def __init__(self, name: str, attrs: "dict | None" = None):
        self.name = name
        self.attrs = attrs or {}
        #: ``perf_counter`` at entry -- an ordering key within one
        #: process, not a wall-clock time.
        self.started = 0.0
        self.duration = 0.0
        self.children: list[Span] = []

    def to_dict(self) -> dict:
        """JSON-safe form (the cross-process and profile wire format)."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "started": self.started,
            "duration": self.duration,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Span":
        """Inverse of :meth:`to_dict`."""
        span = cls(str(payload.get("name", "")), dict(payload.get("attrs")
                                                      or {}))
        span.started = float(payload.get("started", 0.0))
        span.duration = float(payload.get("duration", 0.0))
        span.children = [
            cls.from_dict(child) for child in payload.get("children") or ()
        ]
        return span

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.name!r}, duration={self.duration:.6f}, "
            f"children={len(self.children)})"
        )


class Tracer:
    """Per-thread open-span stacks over one locked ring of finished roots."""

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY):
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: deque[Span] = deque(maxlen=capacity)
        self._local = threading.local()
        #: Called once per finished root span the full ring evicts
        #: (:mod:`repro.obs` wires it to the ``obs.spans.dropped``
        #: counter), so a truncated profile is detectable instead of
        #: silent.  Invoked outside the ring lock.
        self.on_evict: "Callable[[int], None] | None" = None

    def _notify_evicted(self, count: int) -> None:
        if count > 0 and self.on_evict is not None:
            self.on_evict(count)

    def _stack(self) -> "list[Span]":
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Span lifecycle (driven by the ``trace`` context manager)
    # ------------------------------------------------------------------
    def begin(self, span: Span) -> None:
        """Push ``span`` onto this thread's open stack."""
        self._stack().append(span)

    def finish(self, span: Span) -> None:
        """Pop ``span``; attach to its parent or, for roots, the ring."""
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        else:  # unbalanced exit (an exception skipped a frame): recover
            try:
                stack.remove(span)
            except ValueError:
                pass
        if stack:
            stack[-1].children.append(span)
        else:
            with self._lock:
                evicted = len(self._ring) == self._ring.maxlen
                self._ring.append(span)
            self._notify_evicted(int(evicted))

    def current(self) -> "Span | None":
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # Reading, draining, folding
    # ------------------------------------------------------------------
    def roots(self) -> "list[Span]":
        """Finished root spans currently in the ring (oldest first)."""
        with self._lock:
            return list(self._ring)

    def finished(self) -> "list[Span]":
        """Every *finished* span tree visible right now.

        The ring's roots plus the finished children of any span still
        open on the calling thread -- so a profile built mid-command
        (while the CLI's root span is still open) sees the completed
        phases, not an empty ring.
        """
        found = self.roots()
        for open_span in self._stack():
            found.extend(open_span.children)
        return found

    def drain(self) -> "list[Span]":
        """Atomically empty the ring and return what it held.

        The worker-side half of cross-process folding (open spans stay
        on their thread stacks and are never shipped mid-flight).
        """
        with self._lock:
            roots = list(self._ring)
            self._ring.clear()
        return roots

    def adopt(self, spans: "list[Span]") -> None:
        """Fold drained spans in: under the current open span, if any.

        The parent-side half of cross-process folding -- worker spans
        merged during a traced sweep become children of the sweep's
        in-flight phase span; with no span open they join the ring.
        """
        if not spans:
            return
        current = self.current()
        if current is not None:
            current.children.extend(spans)
            return
        with self._lock:
            evicted = max(
                0, len(self._ring) + len(spans) - (self._ring.maxlen or 0)
            )
            self._ring.extend(spans)
        self._notify_evicted(evicted)

    def reset(self) -> None:
        """Drop the ring and this thread's open stack (tests)."""
        with self._lock:
            self._ring.clear()
        self._local.stack = []


#: The process-wide tracer (re-exported as ``repro.obs.OBS.tracer``).
TRACER = Tracer()


class trace:
    """Context manager / decorator timing one span.

    ``with trace("runner.job", key=...) as timer:`` always measures
    ``timer.duration`` (two ``perf_counter`` reads); a :class:`Span` is
    built, nested, and retained only while tracing is enabled.  As a
    decorator, ``@trace("name")`` wraps the function body in a span per
    call.
    """

    __slots__ = ("name", "attrs", "duration", "_t0", "_span")

    def __init__(self, name: str, **attrs):
        self.name = name
        self.attrs = attrs
        self.duration = 0.0
        self._t0 = 0.0
        self._span: "Span | None" = None

    def __enter__(self) -> "trace":
        if _ENABLED:
            span = self._span = Span(self.name, self.attrs)
            span.started = perf_counter()
            TRACER.begin(span)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = perf_counter() - self._t0
        span = self._span
        if span is not None:
            span.duration = self.duration
            self._span = None
            TRACER.finish(span)
        return False

    def __call__(self, fn):
        """Decorator form: one span (same name/attrs) per call."""

        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with trace(self.name, **self.attrs):
                return fn(*args, **kwargs)

        return wrapper


__all__ = ["DEFAULT_RING_CAPACITY", "Span", "TRACER", "Tracer", "trace"]
