"""In-flight telemetry: worker heartbeats, progress events, stall watchdog.

The collection substrate (:mod:`repro.obs.metrics`, the cross-process
fold in :mod:`repro.obs.profile`) answers "what happened" *after* a
sweep drains.  This module answers "what is happening" while it runs,
without touching a single record byte:

* **Heartbeats** -- each worker appends small JSON events to its own
  ``heartbeats/<worker>.log`` in the run directory, through the same
  atomic :class:`~repro.results.log.AppendLog` primitive the query memo
  uses (one event = one ``O_APPEND`` write; concurrent writers never
  tear).  A beat carries a freezable wall stamp, a monotonic stamp,
  the worker's phase, jobs started/finished, a **counter delta** since
  its previous beat (folding deltas sums to the worker's counters --
  the counter merge law), and a resource reading
  (:mod:`repro.obs.resources`).  Beats are emitted at job boundaries,
  throttled to one per ``interval`` seconds -- a worker hung inside a
  job stops beating, which is exactly the signal the watchdog needs.
  Job *finish* beats are always written so the completed-work ledger
  is exact.
* **Progress** -- the sweep parent runs a :class:`SweepMonitor` (a
  daemon thread plus a synchronous :meth:`~SweepMonitor.tick` for
  deterministic tests) that folds the heartbeat logs into
  ``progress.jsonl``: schema-validated events (see
  ``progress.schema.json`` and :func:`repro.obs.schema.validate_progress`)
  with completed/total counts, throughput, ETA, and per-worker rows.
* **Stall watchdog** -- a worker whose newest heartbeat is older than
  the configured deadline *while it has a job in flight* is flagged:
  a ``stall`` event, a stderr warning, and the ``obs.stall.detected``
  counter.  With ``action="cancel"`` the monitor asks the engine to
  reap its pool; :func:`monitored_map` then resubmits every job not
  yet yielded -- deterministic, because job seeds derive from payload
  keys, never from which worker or attempt ran them.

The invariants inherited from the PR-6 substrate hold throughout:
heartbeat counter deltas are **never** merged into the process
registry (the record-path ``drain_telemetry`` fold remains the sole
source of engine-invariant counters, so the heartbeat fold nets to a
no-op against the end-of-run fold), and nothing here writes into
``records.jsonl`` -- records stay byte-identical with progress on or
off.

Like every ``repro.obs`` module this one imports nothing from the rest
of ``repro`` at module level (the :class:`~repro.results.log.AppendLog`
import is deferred), so any tier can use it without cycles.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time
from dataclasses import dataclass

from . import resources
from .clock import now as _wall_now

#: Run-directory file/dir names the live layer owns.  Both are run-dir
#: *metadata*: the warehouse never ingests them and ``repro results
#: vacuum`` does not require them to be covered (see STORE.md).
PROGRESS_NAME = "progress.jsonl"
HEARTBEAT_DIR = "heartbeats"

#: Event types a progress log may contain, in lifecycle order.
PROGRESS_EVENTS = ("start", "progress", "stall", "end")


@dataclass(frozen=True)
class LiveConfig:
    """Knobs for the heartbeat/monitor/watchdog loop.

    ``interval`` throttles worker beats; ``poll`` paces the monitor
    thread; ``deadline`` is the heartbeat age past which an in-flight
    worker counts as stalled; ``action`` is ``"warn"`` (flag only) or
    ``"cancel"`` (reap the pool and resubmit unfinished jobs, at most
    ``max_reaps`` times).  ``poll`` should not exceed ``deadline`` --
    the monitor then observes every stall within one deadline interval.
    """

    interval: float = 1.0
    poll: float = 1.0
    deadline: float = 30.0
    action: str = "warn"
    max_reaps: int = 1

    @classmethod
    def from_payload(cls, payload) -> "LiveConfig":
        """Build from a ``LiveConfig``, a plain dict, or ``None``."""
        if payload is None:
            return cls()
        if isinstance(payload, LiveConfig):
            return payload
        known = {
            key: payload[key]
            for key in (
                "interval", "poll", "deadline", "action", "max_reaps"
            )
            if key in payload
        }
        return cls(**known)


# ----------------------------------------------------------------------
# Worker side: the heartbeat emitter
# ----------------------------------------------------------------------
class HeartbeatEmitter:
    """Appends this process's heartbeat events to its own log file.

    One emitter per (worker process, heartbeat directory); the log file
    is ``<directory>/worker-<pid>.log`` so pool workers never share a
    file (and the atomic append makes even that safe).  All emission is
    throttled through :meth:`beat` except job-finish beats, which are
    forced: the jobs-finished ledger must be exact for progress counts
    and so an idle worker is never mistaken for a stalled one.
    """

    def __init__(
        self,
        directory: "str | os.PathLike[str]",
        interval: float = 1.0,
        worker: "str | None" = None,
    ):
        from ..results.log import AppendLog

        self.directory = str(directory)
        self.interval = float(interval)
        self.pid = os.getpid()
        self.worker = worker or f"worker-{self.pid}"
        self.log = AppendLog(directory, self.worker)
        self.seq = 0
        self.phase = "idle"
        self.jobs_started = 0
        self.jobs_finished = 0
        self._last_beat = -float("inf")
        self._last_counters: dict[str, int] = {}
        # Announce liveness immediately: the monitor sees every worker
        # from its first payload, not its first finished job.
        self.beat(force=True)

    # -- emission ------------------------------------------------------
    def beat(self, force: bool = False) -> bool:
        """Maybe append one heartbeat event; ``True`` if written.

        Throttled to one event per ``interval`` seconds unless
        ``force``.  The counter payload is the *delta* since this
        emitter's previous beat (a drained/reset registry restarts the
        baseline), so summing a worker's deltas reproduces its counter
        totals -- same merge law as everything else.  The deltas are a
        live view only; they are never folded back into the process
        registry, which keeps the end-of-run telemetry fold untouched.
        """
        mono = time.monotonic()
        if not force and mono - self._last_beat < self.interval:
            return False
        self._last_beat = mono
        self.seq += 1
        event = {
            "worker": self.worker,
            "pid": self.pid,
            "seq": self.seq,
            "stamp": _wall_now(),
            "monotonic": mono,
            "phase": self.phase,
            "jobs_started": self.jobs_started,
            "jobs_finished": self.jobs_finished,
            "counters": self._counter_delta(),
            "resources": resources.sample(),
        }
        return self.log.append(event)

    def _counter_delta(self) -> dict:
        """Counter movement since the previous beat (always >= 0)."""
        from . import OBS

        current = (
            OBS.metrics.snapshot()["counters"] if OBS.enabled else {}
        )
        delta = {}
        for name, value in current.items():
            previous = self._last_counters.get(name, 0)
            # A drain (the record-path fold) resets the registry mid-
            # stream; the whole new accumulation is then the delta.
            moved = value - previous if value >= previous else value
            if moved:
                delta[name] = moved
        self._last_counters = current
        return delta

    # -- job lifecycle hooks (called by the runner's worker functions) --
    def job_started(self, phase: str = "job", count: int = 1) -> None:
        """Record ``count`` jobs entering execution; maybe beat."""
        self.jobs_started += count
        self.phase = phase
        self.beat()

    def job_finished(self, count: int = 1) -> None:
        """Record ``count`` jobs completed; always beats."""
        self.jobs_finished += count
        self.phase = "idle"
        self.beat(force=True)

    def pulse(self, phase: "str | None" = None) -> None:
        """Cheap mid-job liveness: update the phase, maybe beat."""
        if phase is not None:
            self.phase = phase
        self.beat()


class _LiveFacade:
    """Process-wide slot for the active emitter (``None`` = off).

    Mirrors the ``OBS`` facade contract: hot sites pay one attribute
    load and branch (``if LIVE.emitter is not None:``) when live
    telemetry is off.
    """

    __slots__ = ("emitter",)

    def __init__(self) -> None:
        self.emitter: "HeartbeatEmitter | None" = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LIVE(emitter={self.emitter and self.emitter.worker})"


#: The process-wide live-telemetry facade the worker functions check.
LIVE = _LiveFacade()


def configure_heartbeat(payload: "dict | None") -> None:
    """Install (or uninstall) the heartbeat emitter from a job payload.

    ``payload`` is the sweep's ``"live"`` context field:
    ``{"dir": <heartbeat directory>, "interval": seconds}``.  Workers
    apply it unconditionally per payload (like every other context
    field), so a live sweep's emitter never bleeds into the next
    sweep's jobs.  An emitter already pointed at the same directory is
    kept -- its seq/job counters must span the whole sweep, not one
    payload.
    """
    if not payload:
        LIVE.emitter = None
        return
    directory = str(payload.get("dir", ""))
    if not directory:
        LIVE.emitter = None
        return
    emitter = LIVE.emitter
    if (
        emitter is not None
        and emitter.directory == directory
        and emitter.pid == os.getpid()
    ):
        emitter.interval = float(payload.get("interval", emitter.interval))
        return
    LIVE.emitter = HeartbeatEmitter(
        directory, interval=float(payload.get("interval", 1.0))
    )


def _drop_emitter_in_forked_child() -> None:
    """A forked child must not inherit the parent's emitter identity."""
    LIVE.emitter = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_drop_emitter_in_forked_child)


# ----------------------------------------------------------------------
# Read-back: folding heartbeat logs into per-worker state
# ----------------------------------------------------------------------
def read_heartbeats(directory: "str | os.PathLike[str]") -> dict:
    """Fold every worker's heartbeat log into its latest state.

    Returns ``{worker: state}`` where ``state`` is the newest event's
    scalar fields plus ``counters`` summed over *all* of that worker's
    deltas (the fold half of the delta law).  Unreadable or torn lines
    are skipped, exactly like every append-log reader.
    """
    from ..results.log import AppendLog

    root = pathlib.Path(directory)
    if not root.is_dir():
        return {}
    folded: dict[str, dict] = {}
    for path in sorted(root.glob("*.log")):
        events = AppendLog._read_events(path)
        if not events:
            continue
        latest: "dict | None" = None
        totals: dict[str, int] = {}
        for event in events:
            for name, value in (event.get("counters") or {}).items():
                totals[name] = totals.get(name, 0) + int(value)
            if latest is None or event.get("seq", 0) >= latest.get(
                "seq", 0
            ):
                latest = event
        if latest is None:
            continue
        worker = str(latest.get("worker", path.stem))
        folded[worker] = {**latest, "counters": totals}
    return folded


def worker_status(
    directory: "str | os.PathLike[str]", now: "float | None" = None
) -> "list[dict]":
    """Per-worker live status rows, sorted by worker name.

    Each row is the folded heartbeat state plus ``age`` (seconds since
    the worker's newest beat, by the freezable wall clock) and
    ``in_flight`` (jobs started minus finished as of that beat).
    """
    now = _wall_now() if now is None else float(now)
    rows = []
    folded = read_heartbeats(directory)
    for worker in sorted(folded):
        state = folded[worker]
        rows.append(
            {
                **state,
                "age": max(0.0, now - float(state.get("stamp", now))),
                "in_flight": int(state.get("jobs_started", 0))
                - int(state.get("jobs_finished", 0)),
            }
        )
    return rows


# ----------------------------------------------------------------------
# Progress log
# ----------------------------------------------------------------------
def append_progress(
    path: "str | os.PathLike[str]", event: dict
) -> bool:
    """Append one progress event: a single ``O_APPEND`` write.

    Same atomicity contract as :class:`~repro.results.log.AppendLog`
    (whole lines, never torn), without the fold/compact machinery a
    single-writer event stream does not need.  Best-effort: a full
    disk degrades to ``False``, never an exception.
    """
    line = json.dumps(event, sort_keys=True) + "\n"
    try:
        fd = os.open(
            path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
    except OSError:
        return False
    try:
        os.write(fd, line.encode("utf-8"))
    except OSError:
        return False
    finally:
        os.close(fd)
    return True


def read_progress(
    path: "str | os.PathLike[str]", offset: int = 0
) -> "tuple[list[dict], int]":
    """Parsed events from byte ``offset`` on, plus the new offset.

    Only complete lines are consumed -- a torn tail (a writer mid-
    append) stays unread until its newline lands, so followers
    (``repro obs tail --follow``) can poll with the returned offset
    and never see a half event.
    """
    try:
        with open(path, "rb") as handle:
            handle.seek(offset)
            data = handle.read()
    except OSError:
        return [], offset
    end = data.rfind(b"\n")
    if end < 0:
        return [], offset
    events = []
    for raw in data[: end + 1].splitlines():
        raw = raw.strip()
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except ValueError:
            continue
        if isinstance(event, dict):
            events.append(event)
    return events, offset + end + 1


def format_progress_event(event: dict) -> str:
    """One human line per progress event (``repro obs tail``)."""
    kind = str(event.get("event", "?"))
    completed = event.get("completed", 0)
    total = event.get("total", 0)
    if kind == "start":
        resumed = event.get("resumed", 0)
        note = f" ({resumed} resumed)" if resumed else ""
        return f"[start] {completed}/{total} jobs{note}"
    if kind == "stall":
        return (
            f"[stall] {event.get('worker', '?')}: heartbeat age "
            f"{float(event.get('age', 0.0)):.1f}s > deadline "
            f"{float(event.get('deadline', 0.0)):.1f}s "
            f"({event.get('action', 'warn')})"
        )
    if kind == "end":
        return (
            f"[end] {completed}/{total} jobs in "
            f"{float(event.get('elapsed', 0.0)):.2f}s"
        )
    parts = [f"[progress] {completed}/{total} jobs"]
    if "throughput" in event:
        parts.append(f"{float(event['throughput']):.2f}/s")
    if "eta" in event:
        parts.append(f"eta {float(event['eta']):.1f}s")
    workers = event.get("workers")
    if workers:
        parts.append(f"workers {len(workers)}")
    return "  ".join(parts)


# ----------------------------------------------------------------------
# Parent side: the sweep monitor and stall watchdog
# ----------------------------------------------------------------------
#: Heartbeat fields a progress event's per-worker rows carry (the
#: progress schema's ``worker`` shape; resource fields are hoisted out
#: of the nested reading).
_WORKER_ROW_FIELDS = (
    "worker", "phase", "jobs_started", "jobs_finished", "seq"
)


class SweepMonitor:
    """Folds heartbeats into progress events and watches for stalls.

    The sweep parent constructs one per live run, calls :meth:`start`
    (which writes the ``start`` event and launches a daemon thread
    ticking every ``config.poll`` seconds), feeds it each fresh record
    via :meth:`note_record`, and calls :meth:`stop` in its ``finally``
    (final tick + ``end`` event).  :meth:`tick` is public and
    synchronous so tests can drive the monitor deterministically under
    a frozen clock, without the thread.

    The watchdog flags a worker when its newest heartbeat is older
    than ``config.deadline`` *and* that beat shows a job in flight --
    an idle worker's silence is not a stall.  Each stalled beat is
    flagged once (keyed by its seq); with ``action="cancel"`` the
    monitor also calls ``engine.terminate()`` (at most
    ``config.max_reaps`` times) and :func:`monitored_map` resubmits.
    """

    def __init__(
        self,
        run_dir: "str | os.PathLike[str]",
        total: int,
        config: "LiveConfig | None" = None,
        engine=None,
        resumed: int = 0,
    ):
        root = pathlib.Path(run_dir)
        self.progress_path = root / PROGRESS_NAME
        self.heartbeat_dir = root / HEARTBEAT_DIR
        self.total = int(total)
        self.config = config or LiveConfig()
        self.engine = engine
        self.resumed = int(resumed)
        self.reaped = 0
        self._completed = int(resumed)
        self._lock = threading.Lock()
        self._flagged: dict[str, int] = {}
        self._reap_requested = False
        self._stop = threading.Event()
        self._thread: "threading.Thread | None" = None
        self._started_mono = time.monotonic()

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Write the ``start`` event and launch the poll thread."""
        self.heartbeat_dir.mkdir(parents=True, exist_ok=True)
        append_progress(
            self.progress_path,
            {
                "event": "start",
                "stamp": _wall_now(),
                "completed": self._completed,
                "total": self.total,
                "resumed": self.resumed,
            },
        )
        self._thread = threading.Thread(
            target=self._run, name="sweep-monitor", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.config.poll):
            try:
                self.tick()
            except Exception:  # pragma: no cover - monitor never kills
                pass  # a sweep; next tick retries

    def stop(self) -> None:
        """Final tick, ``end`` event, and thread join."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=max(1.0, self.config.poll * 2))
            self._thread = None
        try:
            self.tick()
        except Exception:  # pragma: no cover - same contract as _run
            pass
        append_progress(
            self.progress_path,
            {
                "event": "end",
                "stamp": _wall_now(),
                "completed": self._completed,
                "total": self.total,
                "elapsed": time.monotonic() - self._started_mono,
            },
        )

    # -- record accounting --------------------------------------------
    def note_record(self, record: dict) -> None:
        """Count one persisted record toward completed/total."""
        with self._lock:
            self._completed += 1

    @property
    def completed(self) -> int:
        with self._lock:
            return self._completed

    def consume_reap(self) -> bool:
        """Whether the watchdog just reaped the pool (clears the flag)."""
        with self._lock:
            requested = self._reap_requested
            self._reap_requested = False
        return requested

    # -- the monitor pass ---------------------------------------------
    def tick(self, now: "float | None" = None) -> dict:
        """One monitor pass: fold, watchdog, append; returns the event."""
        now = _wall_now() if now is None else float(now)
        statuses = worker_status(self.heartbeat_dir, now=now)
        self._watchdog(statuses, now)
        completed = self.completed
        event: dict = {
            "event": "progress",
            "stamp": now,
            "completed": completed,
            "total": self.total,
            "elapsed": time.monotonic() - self._started_mono,
            "workers": [self._worker_row(s) for s in statuses],
        }
        done_here = completed - self.resumed
        if done_here > 0 and event["elapsed"] > 0.0:
            throughput = done_here / event["elapsed"]
            event["throughput"] = throughput
            if completed < self.total and throughput > 0.0:
                event["eta"] = (self.total - completed) / throughput
        append_progress(self.progress_path, event)
        self._publish_worker_gauges(statuses)
        return event

    @staticmethod
    def _worker_row(status: dict) -> dict:
        row = {
            key: status[key]
            for key in _WORKER_ROW_FIELDS
            if key in status
        }
        row["age"] = float(status.get("age", 0.0))
        reading = status.get("resources") or {}
        for key in ("rss_peak", "cpu_seconds", "gc_collections"):
            if key in reading:
                row[key] = reading[key]
        return row

    def _publish_worker_gauges(self, statuses: "list[dict]") -> None:
        """Per-worker labeled resource gauges for the telemetry fold."""
        from . import OBS

        if not OBS.enabled:
            return
        for status in statuses:
            reading = status.get("resources") or {}
            source = str(status.get("worker", "?"))
            for key in ("rss_peak", "cpu_seconds"):
                if key in reading:
                    OBS.metrics.gauge(
                        f"worker.{key}", reading[key], source=source
                    )

    def _watchdog(self, statuses: "list[dict]", now: float) -> None:
        from . import OBS

        for status in statuses:
            age = float(status.get("age", 0.0))
            seq = int(status.get("seq", 0))
            worker = str(status.get("worker", "?"))
            if (
                age <= self.config.deadline
                or status.get("in_flight", 0) <= 0
                or self._flagged.get(worker) == seq
            ):
                continue
            self._flagged[worker] = seq
            OBS.metrics.inc("obs.stall.detected")
            append_progress(
                self.progress_path,
                {
                    "event": "stall",
                    "stamp": now,
                    "completed": self.completed,
                    "total": self.total,
                    "worker": worker,
                    "age": age,
                    "deadline": self.config.deadline,
                    "action": self.config.action,
                },
            )
            print(
                f"sweep: worker {worker} stalled (heartbeat age "
                f"{age:.1f}s > deadline {self.config.deadline:.1f}s; "
                f"{self.config.action})",
                file=sys.stderr,
            )
            if (
                self.config.action == "cancel"
                and self.reaped < self.config.max_reaps
                and callable(getattr(self.engine, "terminate", None))
            ):
                if self.engine.terminate():
                    self.reaped += 1
                    OBS.metrics.inc("obs.stall.reaped")
                    with self._lock:
                        self._reap_requested = True


def monitored_map(engine, fn, payloads: "list[dict]", monitor):
    """``engine.map`` with deterministic reap-and-resubmit on stalls.

    Engines yield results in payload order, so the yielded count is
    exactly the prefix of ``payloads`` that is done; when the watchdog
    reaps a stalled pool (``action="cancel"``), the broken-pool error
    surfaces here and every payload not yet yielded is resubmitted on
    a fresh pool.  Results are identical to an unreaped run because
    every job's seed derives from ``(master_seed, job_key)`` -- never
    from which worker, pool, or attempt executed it.  A pool that
    breaks for any *other* reason (a worker segfault, say) re-raises
    unchanged.
    """
    from concurrent.futures.process import BrokenProcessPool

    done = 0
    while True:
        try:
            for result in engine.map(fn, payloads[done:]):
                done += 1
                yield result
            return
        except BrokenProcessPool:
            if monitor is None or not monitor.consume_reap():
                raise
            # Reaped by the watchdog: everything yielded is persisted;
            # resubmit the rest (including the hung job) deterministically.


__all__ = [
    "HEARTBEAT_DIR",
    "HeartbeatEmitter",
    "LIVE",
    "LiveConfig",
    "PROGRESS_EVENTS",
    "PROGRESS_NAME",
    "SweepMonitor",
    "append_progress",
    "configure_heartbeat",
    "format_progress_event",
    "monitored_map",
    "read_heartbeats",
    "read_progress",
    "worker_status",
]
