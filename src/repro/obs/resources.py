"""Stdlib-only process resource sampling: RSS peak, CPU time, GC work.

Heartbeats (:mod:`repro.obs.live`) need a cheap "how is this worker
doing" probe that works inside a forked pool worker without any
third-party dependency.  :func:`sample` reads three families of state:

* **peak RSS** from ``resource.getrusage`` -- ``ru_maxrss`` is the
  process high-water mark, in KiB on Linux and bytes on macOS;
  :data:`RSS_SCALE` normalizes both to bytes.  A high-water mark is
  monotone, which is exactly what the max-merge gauge law wants.
* **CPU seconds** -- user plus system time, also from ``getrusage``.
  Monotone again.
* **GC collections** -- the summed collection count across generations
  from ``gc.get_stats()``; a worker churning allocation shows up here
  long before it shows up in RSS.

On platforms without the ``resource`` module (Windows), the rusage
fields degrade to zero and the GC count still works -- callers never
need a platform guard.  Like the rest of ``repro.obs``, this module
imports nothing from the rest of ``repro``.
"""

from __future__ import annotations

import gc
import sys

try:  # pragma: no branch - POSIX always has it
    import resource as _resource
except ImportError:  # pragma: no cover - Windows
    _resource = None

#: ``ru_maxrss`` unit: KiB everywhere POSIX except macOS, which
#: reports bytes.
RSS_SCALE = 1 if sys.platform == "darwin" else 1024


def sample() -> dict:
    """One JSON-safe reading of this process's resource state.

    Returns ``{"rss_peak": bytes, "cpu_seconds": float,
    "gc_collections": int}``.  Every field is monotone non-decreasing
    over the life of the process, so two samples always satisfy
    ``later >= earlier`` field-wise and the gauge max-merge law keeps
    the newest reading.
    """
    rss_peak = 0
    cpu_seconds = 0.0
    if _resource is not None:
        usage = _resource.getrusage(_resource.RUSAGE_SELF)
        rss_peak = int(usage.ru_maxrss) * RSS_SCALE
        cpu_seconds = float(usage.ru_utime + usage.ru_stime)
    collections = sum(
        int(generation.get("collections", 0))
        for generation in gc.get_stats()
    )
    return {
        "rss_peak": rss_peak,
        "cpu_seconds": cpu_seconds,
        "gc_collections": collections,
    }


def publish_gauges(metrics, source: "str | None" = None) -> dict:
    """Sample and publish the reading as gauges on ``metrics``.

    With ``source`` (e.g. a worker name) the gauges are labeled
    per-source (``process.rss_peak[w123]``), so a monitor folding many
    workers' readings keeps each worker's state separately -- see the
    labeled-gauge law in :mod:`repro.obs.metrics`.  Returns the sample
    it published.
    """
    reading = sample()
    metrics.gauge("process.rss_peak", reading["rss_peak"], source=source)
    metrics.gauge(
        "process.cpu_seconds", reading["cpu_seconds"], source=source
    )
    metrics.gauge(
        "process.gc_collections", reading["gc_collections"], source=source
    )
    return reading


__all__ = ["RSS_SCALE", "publish_gauges", "sample"]
