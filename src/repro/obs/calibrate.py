"""Fit cost models from measured group forensics (``repro chains calibrate``).

The warehouse ``groups`` table records, for every grouped evolution
pass a sweep executed, the features that drove its planning (stacked
``states``, ``transitions``, ``density``, the ``evolution`` strategy
picked) and the measured outcome (``elapsed`` seconds).  This module
turns that history into the :class:`~repro.obs.policy.CostModel` rows
the measured policy predicts from:

* ``evolve.dense`` / ``evolve.scatter`` -- per-strategy power laws,
  ordinary least squares in log2 space (``log2(elapsed) ~ c0 +
  c1*log2(states) + c2*log2(nnz)``) over the rows that strategy
  actually ran.  Density is *not* a third regressor: ``log2(density) =
  log2(nnz) - 2*log2(states)`` exactly, so it is already in the column
  span and would only make the design matrix singular.
* ``group.budget`` -- a fitted scalar: rows are bucketed by
  ``floor(log2(states))``, per-bucket state throughput (states/second)
  is compared, and the budget is the upper edge of the best measured
  bucket.  It narrows the static ``MAX_GROUP_STATES`` cap, never
  widens it.

Fits are persisted to a versioned, content-addressed ``models`` table
(:data:`repro.results.store.MODEL_COLUMNS`): each row carries the
model's sha256 digest, so re-calibrating over unchanged history is a
no-op, and the fitting-recipe ``version`` lets a newer policy ignore
rows an older recipe produced.  The documented prediction tolerance is
the fit's RMS log2 residual: held-out timings land within
``2**residual`` of the prediction on average, and
``tests/obs/test_calibrate.py`` holds a synthetic workload to factor-2.

Deliberately *not* imported by the hot path: the policy consumes
already-fitted models; only the CLI (and tests/benchmarks) call in
here, so numpy's ``lstsq`` and the warehouse never load during
planning.
"""

from __future__ import annotations

import json
import math

import numpy as np

from . import clock
from .policy import MODEL_VERSION, CostModel

#: Minimum observations before a target is fitted at all; below this a
#: power law is numerology and the policy should stay on static
#: heuristics (the deterministic-fallback contract).
MIN_FIT_ROWS = 4

#: Regressors of the per-strategy timing models, in coefficient order.
TIMING_FEATURES = ("log2_states", "log2_nnz")


def _timing_rows(rows, strategy: str):
    """``(log2_states, log2_nnz, log2_elapsed)`` points for one strategy."""
    points = []
    for row in rows:
        if str(row.get("evolution", "")) != strategy:
            continue
        states = int(row.get("states", 0))
        nnz = int(row.get("transitions", 0))
        elapsed = float(row.get("elapsed", 0.0))
        if states <= 0 or nnz <= 0 or not elapsed > 0.0:
            continue
        points.append(
            (math.log2(states), math.log2(nnz), math.log2(elapsed))
        )
    return points


def fit_timing_model(rows, strategy: str) -> "CostModel | None":
    """Least-squares ``evolve.<strategy>`` power law, or ``None``.

    ``None`` when fewer than :data:`MIN_FIT_ROWS` usable observations
    exist -- the caller simply fits fewer models and the policy falls
    back to static heuristics for the missing target.
    """
    points = _timing_rows(rows, strategy)
    if len(points) < MIN_FIT_ROWS:
        return None
    data = np.asarray(points, dtype=np.float64)
    design = np.column_stack([np.ones(len(data)), data[:, 0], data[:, 1]])
    response = data[:, 2]
    coef, *_ = np.linalg.lstsq(design, response, rcond=None)
    residual = float(
        np.sqrt(np.mean((design @ coef - response) ** 2))
    )
    return CostModel(
        target=f"evolve.{strategy}",
        features=TIMING_FEATURES,
        coef=tuple(float(c) for c in coef),
        rows=len(points),
        residual=residual,
    )


def fit_budget_model(rows, cap: int) -> "CostModel | None":
    """Fitted ``group.budget`` scalar from measured throughput.

    Buckets rows by ``floor(log2(states))``, compares mean state
    throughput (states/second) across buckets with at least
    :data:`MIN_FIT_ROWS` observations, and returns the upper state edge
    of the best bucket (clamped to ``cap``).  Needs two qualifying
    buckets -- with only one there is nothing to compare and the static
    budget stands.
    """
    buckets: dict[int, list[float]] = {}
    for row in rows:
        states = int(row.get("states", 0))
        elapsed = float(row.get("elapsed", 0.0))
        if states <= 0 or not elapsed > 0.0:
            continue
        buckets.setdefault(int(math.log2(states)), []).append(
            states / elapsed
        )
    qualified = {
        bucket: values
        for bucket, values in buckets.items()
        if len(values) >= MIN_FIT_ROWS
    }
    if len(qualified) < 2:
        return None
    best = max(
        sorted(qualified),
        key=lambda bucket: float(np.mean(qualified[bucket])),
    )
    budget = min(int(cap), 2 ** (best + 1))
    spread = float(np.std(np.log2(np.asarray(qualified[best]))))
    return CostModel(
        target="group.budget",
        features=(),
        coef=(float(budget),),
        rows=sum(len(values) for values in qualified.values()),
        residual=spread,
    )


def fit_cost_models(rows, cap: "int | None" = None) -> list:
    """Every model the ``groups`` history supports, possibly empty.

    ``rows`` are dicts shaped like the warehouse ``groups`` table
    (:data:`repro.results.store.GROUP_COLUMNS`); ``cap`` bounds the
    fitted group budget (defaults to
    :data:`repro.chain.multi.MAX_GROUP_STATES`).
    """
    if cap is None:
        from ..chain.multi import MAX_GROUP_STATES

        cap = MAX_GROUP_STATES
    rows = list(rows)
    models = [
        fit_timing_model(rows, "dense"),
        fit_timing_model(rows, "scatter"),
        fit_budget_model(rows, cap),
    ]
    return [model for model in models if model is not None]


# ----------------------------------------------------------------------
# Warehouse persistence (the ``models`` table)
# ----------------------------------------------------------------------
def model_row(model: CostModel, stamp: "float | None" = None) -> dict:
    """One ``models``-table row for ``model`` (columns only)."""
    return {
        "stamp": clock.now() if stamp is None else float(stamp),
        "digest": model.digest(),
        "version": int(model.version),
        "target": model.target,
        "features": json.dumps(list(model.features)),
        "coef": json.dumps([float(c) for c in model.coef]),
        "rows": int(model.rows),
        "residual": float(model.residual),
    }


def model_from_row(row: dict) -> CostModel:
    """Inverse of :func:`model_row` (digest-stable)."""
    return CostModel(
        target=str(row["target"]),
        features=tuple(json.loads(str(row["features"]) or "[]")),
        coef=tuple(json.loads(str(row["coef"]))),
        rows=int(row["rows"]),
        residual=float(row["residual"]),
        version=int(row["version"]),
    )


def load_cost_models(store) -> dict:
    """Latest fitted model per target from ``store``'s ``models`` table.

    Rows are scanned in segment append order, so for each target the
    most recently persisted model wins; rows from a different fitting
    recipe (``version != MODEL_VERSION``) are skipped.
    """
    if "models" not in store.tables():
        return {}
    table = store.table("models")
    models: dict[str, CostModel] = {}
    for row in table.to_rows():
        if int(row.get("version", -1)) != MODEL_VERSION:
            continue
        try:
            model = model_from_row(row)
        except (KeyError, TypeError, ValueError):
            continue
        models[model.target] = model
    return models


def calibrate_store(store, cap: "int | None" = None) -> tuple:
    """Fit from ``store``'s ``groups`` history and persist what changed.

    Returns ``(models, appended)``: every model fitted this pass, and
    how many of them were actually new -- a model whose content digest
    already heads the table for its target is skipped, so repeated
    calibration over unchanged history appends nothing.
    """
    if "groups" not in store.tables():
        return [], 0
    rows = store.table("groups").to_rows()
    models = fit_cost_models(rows, cap)
    if not models:
        return [], 0
    latest = {
        target: model.digest()
        for target, model in load_cost_models(store).items()
    }
    fresh = [
        model for model in models
        if latest.get(model.target) != model.digest()
    ]
    if fresh:
        from ..results.store import MODEL_COLUMNS

        stamp = clock.now()
        store.append_rows(
            "models",
            [model_row(model, stamp) for model in fresh],
            MODEL_COLUMNS,
        )
    return models, len(fresh)


__all__ = [
    "MIN_FIT_ROWS",
    "TIMING_FEATURES",
    "calibrate_store",
    "fit_budget_model",
    "fit_cost_models",
    "fit_timing_model",
    "load_cost_models",
    "model_from_row",
    "model_row",
]
