"""Freezable wall clock for persisted timestamp fields.

Every *wall-clock* stamp the package persists -- the ``stamp`` column of
the warehouse's ``experiments`` and ``telemetry`` tables -- is read
through :func:`now` instead of calling :func:`time.time` at the call
site.  The indirection exists for tests and golden outputs:
:func:`freeze` pins the clock to a fixed value so stamped rows are
deterministic, and :func:`unfreeze` (or the :func:`frozen` context
manager) restores the real clock.

A ``stamp`` is always seconds since the Unix epoch as a float.  It means
"when was this row appended" -- an audit/retention field for humans and
cross-run bookkeeping, never an input to any computation: record bytes,
aggregates, and query answers are stamp-independent by construction.
Durations, by contrast, come from ``time.perf_counter`` via the span
tracer (:mod:`repro.obs.trace`) and are never frozen.
"""

from __future__ import annotations

import contextlib
import time
from typing import Iterator

_FROZEN: "float | None" = None


def now() -> float:
    """Seconds since the epoch, honouring a frozen test clock."""
    return time.time() if _FROZEN is None else _FROZEN


def freeze(value: float) -> None:
    """Pin :func:`now` to ``value`` until :func:`unfreeze` is called."""
    global _FROZEN
    _FROZEN = float(value)


def unfreeze() -> None:
    """Restore the real wall clock."""
    global _FROZEN
    _FROZEN = None


@contextlib.contextmanager
def frozen(value: float) -> Iterator[None]:
    """Freeze the clock for the duration of a ``with`` block."""
    global _FROZEN
    previous = _FROZEN
    freeze(value)
    try:
        yield
    finally:
        _FROZEN = previous


__all__ = ["freeze", "frozen", "now", "unfreeze"]
