"""Measured cost models and the execution-strategy policy they drive.

The chain/runner tiers make three recurring planning decisions from
hand-tuned constants: dense-vs-scatter distribution evolution
(:func:`repro.chain.backends.evolution_strategy`), the stacked-state
budget that chunks multi-chain groups
(:func:`repro.chain.multi.plan_chunks`), and the sweep dispatcher's
bin-packing budget (:func:`repro.runner.sweep._group_job_payloads`).
This module closes the telemetry loop: a :class:`CostModel` is a tiny
fitted predictor (least squares in log2 space over the warehouse's
measured ``groups`` forensics -- see :mod:`repro.obs.calibrate`), and
the process-wide :class:`CostModelPolicy` consults those models -- the
borg-portfolio pattern of *selecting* a strategy from measured
outcomes instead of a static threshold.

The contract every consumer relies on:

* **Opt-in.**  The default mode is ``"static"``; the policy then
  renders no verdicts and every decision falls through to today's
  static heuristics unchanged.  ``configure_policy("measured",
  models)`` (the CLI's ``--policy measured``) turns it on.
* **Deterministic fallback.**  A measured policy missing the models a
  decision needs returns ``None`` and the caller's static heuristic
  decides -- never an error, never a different answer shape.
* **How fast, never what.**  Policy verdicts only pick between
  execution strategies whose results are byte-identical by
  construction (dense and scatter evolve the same distribution; chunk
  budgets only re-partition the same stacked passes).  Hard resource
  caps (``DENSE_STATE_LIMIT``, ``MAX_GROUP_STATES``) bound every
  verdict and are never overridden.

Like the rest of ``repro.obs``, nothing here imports from the rest of
``repro`` at module level, so the chain tier can consult the policy
without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass

#: Recognized policy modes (the ``--policy`` flag).
POLICY_MODES = ("static", "measured")

#: Version stamp persisted with every fitted model; bump when the
#: feature vector or the fitting recipe changes incompatibly, so a
#: policy never predicts from rows an older recipe produced.
MODEL_VERSION = 1

#: Model targets the policy understands.  ``evolve.dense`` /
#: ``evolve.scatter`` predict one grouped evolution pass's seconds from
#: ``(states, nnz)``; ``group.budget`` is a fitted scalar -- the
#: stacked-state budget whose measured throughput was best.
KNOWN_TARGETS = ("evolve.dense", "evolve.scatter", "group.budget")

#: Floor for any fitted group budget: chunking below this would shred
#: groups into per-chain passes and throw away the stacking win.
MIN_GROUP_BUDGET = 64


@dataclass(frozen=True)
class CostModel:
    """One fitted predictor: a power law in log2 space.

    ``log2(seconds) = coef[0] + sum_i coef[1 + i] * features_i`` where
    the features are ``log2(states)`` and ``log2(nnz)`` (density is
    determined by those two in log space: ``log2(density) = log2(nnz)
    - 2 log2(states)``, so adding it would only make the design matrix
    singular).  Scalar models (``features == ()``) carry their value in
    ``coef[0]`` directly.
    """

    target: str
    features: tuple[str, ...]
    coef: tuple[float, ...]
    #: Observations the fit consumed (0 marks a hand-built model).
    rows: int = 0
    #: RMS log2-space residual of the fit -- the documented prediction
    #: tolerance: held-out timings land within ``2**residual`` of the
    #: prediction on average (see ``tests/obs/test_calibrate.py``).
    residual: float = 0.0
    version: int = MODEL_VERSION

    def predict_log2(self, values: "dict[str, float]") -> float:
        """``log2(predicted seconds)`` at one feature point."""
        total = self.coef[0]
        for name, weight in zip(self.features, self.coef[1:]):
            total += weight * values[name]
        return total

    def predict_seconds(self, states: int, nnz: int) -> float:
        """Predicted seconds for one pass over ``states`` / ``nnz``."""
        values = {
            "log2_states": math.log2(max(1, states)),
            "log2_nnz": math.log2(max(1, nnz)),
        }
        return 2.0 ** self.predict_log2(values)

    # ------------------------------------------------------------------
    # Serialization (payload forwarding and the warehouse models table)
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-safe form (the worker-payload wire format)."""
        return {
            "target": self.target,
            "features": list(self.features),
            "coef": [float(c) for c in self.coef],
            "rows": int(self.rows),
            "residual": float(self.residual),
            "version": int(self.version),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostModel":
        """Inverse of :meth:`to_dict`."""
        return cls(
            target=str(payload["target"]),
            features=tuple(str(f) for f in payload.get("features", ())),
            coef=tuple(float(c) for c in payload["coef"]),
            rows=int(payload.get("rows", 0)),
            residual=float(payload.get("residual", 0.0)),
            version=int(payload.get("version", MODEL_VERSION)),
        )

    def digest(self) -> str:
        """Content address: sha256 over the canonical JSON form.

        Two calibration passes that fit identical models produce
        identical digests, so the warehouse ``models`` table can skip
        re-appending a model it already holds (idempotent calibrate).
        """
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __post_init__(self):
        if len(self.coef) != len(self.features) + 1:
            raise ValueError(
                f"model {self.target!r} needs {len(self.features) + 1} "
                f"coefficients, got {len(self.coef)}"
            )


class CostModelPolicy:
    """The process-wide strategy selector (see :data:`POLICY`).

    Every verdict method returns ``None`` -- "no opinion, use the
    static heuristic" -- unless the mode is ``"measured"`` AND the
    models the decision needs are present and current
    (:data:`MODEL_VERSION`).  Callers keep their hard caps and static
    fallbacks, so a policy can only ever re-rank strategies with
    identical results, never change an answer.
    """

    __slots__ = ("mode", "models")

    def __init__(self, mode: str = "static",
                 models: "dict[str, CostModel] | None" = None):
        if mode not in POLICY_MODES:
            raise ValueError(
                f"unknown policy mode {mode!r}; expected one of "
                f"{POLICY_MODES}"
            )
        self.mode = mode
        self.models = dict(models or {})

    def _model(self, target: str) -> "CostModel | None":
        model = self.models.get(target)
        if model is None or model.version != MODEL_VERSION:
            return None
        return model

    def evolution_strategy(self, num_states: int,
                           nnz: int) -> "str | None":
        """``"dense"`` / ``"scatter"`` from predicted costs, or ``None``.

        The caller (:func:`repro.chain.backends.evolution_strategy`)
        applies the ``DENSE_STATE_LIMIT`` memory cap *before* asking,
        so a verdict here only ever picks between two strategies that
        both fit in memory and produce identical distributions.
        """
        if self.mode != "measured":
            return None
        dense = self._model("evolve.dense")
        scatter = self._model("evolve.scatter")
        if dense is None or scatter is None:
            return None
        if dense.predict_seconds(num_states, nnz) <= scatter.predict_seconds(
            num_states, nnz
        ):
            return "dense"
        return "scatter"

    def group_state_budget(self, cap: int) -> "int | None":
        """A measured stacked-state budget clamped to ``[64, cap]``.

        ``cap`` is the caller's hard budget
        (:data:`repro.chain.multi.MAX_GROUP_STATES`) -- the fitted
        budget narrows it, never widens it.  ``None`` when the policy
        has no ``group.budget`` model.
        """
        if self.mode != "measured":
            return None
        model = self._model("group.budget")
        if model is None or model.features:
            return None
        budget = int(round(model.coef[0]))
        return max(MIN_GROUP_BUDGET, min(int(cap), budget))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CostModelPolicy(mode={self.mode!r}, "
            f"models={sorted(self.models)})"
        )


#: The process-wide policy every decision point consults.  Mutated only
#: through :func:`configure_policy` (mirrored into pool workers via the
#: runner's chain-context payloads, like the batching/quotient toggles).
POLICY = CostModelPolicy()


def configure_policy(
    mode: str = "static",
    models: "dict[str, CostModel] | list[CostModel] | None" = None,
) -> dict:
    """Install the process-wide policy; returns the previous payload.

    ``models`` may be a ``{target: CostModel}`` mapping or a plain list
    (keyed by each model's ``target``).  ``configure_policy()`` resets
    to the static default.
    """
    previous = policy_payload()
    if isinstance(models, dict):
        table = dict(models)
    else:
        table = {model.target: model for model in models or ()}
    fresh = CostModelPolicy(mode, table)
    POLICY.mode = fresh.mode
    POLICY.models = fresh.models
    return previous


def policy_payload() -> dict:
    """The active policy as a JSON-safe payload (worker forwarding)."""
    return {
        "mode": POLICY.mode,
        "models": [model.to_dict() for _, model in
                   sorted(POLICY.models.items())],
    }


def configure_policy_payload(payload: "dict | None") -> None:
    """Install a :func:`policy_payload` dict (worker side).

    ``None`` or a malformed payload resets to the static default --
    the same unconditional-configure contract every other chain-context
    field follows, so one sweep's policy never bleeds into the next
    job's planning.
    """
    if not isinstance(payload, dict):
        configure_policy()
        return
    try:
        models = [
            CostModel.from_dict(entry)
            for entry in payload.get("models") or ()
        ]
        configure_policy(str(payload.get("mode", "static")), models)
    except (KeyError, TypeError, ValueError):
        configure_policy()


def policy_mode() -> str:
    """The active policy mode (``"static"`` or ``"measured"``)."""
    return POLICY.mode


__all__ = [
    "KNOWN_TARGETS",
    "MIN_GROUP_BUDGET",
    "MODEL_VERSION",
    "POLICY",
    "POLICY_MODES",
    "CostModel",
    "CostModelPolicy",
    "configure_policy",
    "configure_policy_payload",
    "policy_mode",
    "policy_payload",
]
