"""Thread-safe metrics registry: counters, gauges, log-scale histograms.

Three instrument kinds, chosen for mergeability across processes (pool
workers snapshot their registry into the payload return path and the
sweep orchestrator folds the snapshots into one profile):

* **counters** are monotone integers; merging sums them, so any
  partition of the work over workers folds to the same totals.
* **gauges** are last-written floats describing a *state* (cache entry
  counts, per-digest load counts); merging takes the max, which is
  order-independent and right for monotone state like load counts.
  A gauge may carry a **source label** (``gauge(name, value,
  source="worker-3")``), stored under the key ``name[source]`` -- each
  source then has its own max-merged slot, so per-worker state like
  "current RSS on worker 3" is representable while unlabeled gauges
  keep the plain max law unchanged.
* **histograms** bucket observations into fixed power-of-two bins
  (:func:`bin_index`); merging sums the buckets.  Fixed bins mean two
  histograms built anywhere, over any data, always merge exactly --
  there is no re-binning and no information loss beyond the bucket
  resolution (one octave).

Nothing here is wired to the rest of the package: the registry is a
stdlib-only leaf (see :data:`repro.obs.OBS` for the process-wide
instance and the ``enabled`` guard the hot paths check before touching
it).
"""

from __future__ import annotations

import math
import threading

#: Number of histogram buckets, including the two open-ended ones.
NBINS = 64

#: Exponent of the first finite bucket boundary: bucket 1 starts at
#: ``2**MIN_EXP`` (~1 ns when observing seconds); everything below --
#: including zero and negatives -- lands in bucket 0.
MIN_EXP = -30


def bin_index(value: float) -> int:
    """The histogram bucket of ``value`` (power-of-two log scale).

    Bucket 0 holds ``value < 2**MIN_EXP`` (and all non-positives);
    bucket ``i`` (``1 <= i < NBINS - 1``) holds
    ``2**(MIN_EXP + i - 1) <= value < 2**(MIN_EXP + i)``; the last
    bucket is open above.
    """
    if value <= 0.0:
        return 0
    exponent = math.floor(math.log2(value))
    return max(0, min(NBINS - 1, exponent - MIN_EXP + 1))


def bin_edges() -> "list[float]":
    """The ``NBINS - 1`` finite bucket boundaries, ascending.

    ``bin_edges()[i]`` separates bucket ``i`` from bucket ``i + 1``;
    the outermost buckets are open below/above.  Pinned by tests so the
    binning can never silently drift between writers and readers.
    """
    return [2.0 ** (MIN_EXP + i) for i in range(NBINS - 1)]


#: Quantiles :func:`histogram_percentiles` reports, as ``p<N>`` keys.
PERCENTILES = (0.5, 0.9, 0.99)


def histogram_percentiles(hist: dict) -> "dict[str, float]":
    """p50/p90/p99 estimates from a histogram's log2 buckets.

    The 64 fixed buckets localize each observation to one octave, so a
    quantile is recovered by walking the cumulative bucket counts and
    reporting the geometric midpoint of the bucket the target rank
    falls in -- exact to within the bucket's octave, which is the
    resolution the histogram stores.  Estimates are clamped to the
    recorded ``[min, max]`` (the open-ended outer buckets have no
    midpoint of their own), so a single-valued histogram reports that
    value for every percentile.  Empty histograms return ``{}``.
    """
    count = int(hist.get("count", 0))
    bins = hist.get("bins") or {}
    if count <= 0 or not bins:
        return {}
    low = float(hist.get("min", 0.0))
    high = float(hist.get("max", 0.0))
    buckets = sorted((int(key), int(n)) for key, n in bins.items())
    result: dict[str, float] = {}
    for quantile in PERCENTILES:
        target = quantile * count
        seen = 0
        estimate = high
        for bucket, n in buckets:
            seen += n
            if seen >= target:
                if 1 <= bucket < NBINS - 1:
                    # Bucket spans [2**(MIN_EXP+b-1), 2**(MIN_EXP+b));
                    # its geometric midpoint is the half-octave point.
                    estimate = 2.0 ** (MIN_EXP + bucket - 0.5)
                elif bucket == 0:
                    estimate = low
                else:
                    estimate = high
                break
        key = f"p{int(round(quantile * 100))}"
        result[key] = max(low, min(high, estimate))
    return result


def _new_histogram() -> dict:
    return {
        "count": 0,
        "sum": 0.0,
        "min": math.inf,
        "max": -math.inf,
        "bins": {},
    }


class MetricsRegistry:
    """Counters, gauges, and histograms behind one lock.

    All mutation and snapshotting is thread-safe; snapshots are
    JSON-safe deep copies (histogram bucket keys become strings), so a
    snapshot can cross a process boundary and :meth:`merge` into
    another registry without any further translation.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, dict] = {}

    # ------------------------------------------------------------------
    # Instruments
    # ------------------------------------------------------------------
    def inc(self, name: str, by: int = 1) -> None:
        """Add ``by`` to counter ``name`` (created at zero)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + int(by)

    @staticmethod
    def _gauge_key(name: str, source: "str | None") -> str:
        return name if source is None else f"{name}[{source}]"

    def gauge(
        self, name: str, value: float, source: "str | None" = None
    ) -> None:
        """Set gauge ``name`` to ``value`` (last write wins locally).

        With ``source``, the value lands in that source's own labeled
        slot (key ``name[source]``): merging still takes the max, but
        per *labeled* slot, so many workers' states coexist instead of
        collapsing to one global max.
        """
        with self._lock:
            self._gauges[self._gauge_key(name, source)] = float(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        value = float(value)
        bucket = bin_index(value)
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                hist = self._histograms[name] = _new_histogram()
            hist["count"] += 1
            hist["sum"] += value
            hist["min"] = min(hist["min"], value)
            hist["max"] = max(hist["max"], value)
            key = str(bucket)
            hist["bins"][key] = hist["bins"].get(key, 0) + 1

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(
        self, name: str, source: "str | None" = None
    ) -> "float | None":
        """Current value of gauge ``name`` (optionally labeled), or
        ``None``."""
        with self._lock:
            return self._gauges.get(self._gauge_key(name, source))

    def labeled_gauges(self, name: str) -> "dict[str, float]":
        """Every labeled slot of gauge ``name``: ``{source: value}``."""
        prefix = name + "["
        with self._lock:
            return {
                key[len(prefix):-1]: value
                for key, value in self._gauges.items()
                if key.startswith(prefix) and key.endswith("]")
            }

    def histogram(self, name: str) -> "dict | None":
        """A copy of histogram ``name``, or ``None``."""
        with self._lock:
            hist = self._histograms.get(name)
            if hist is None:
                return None
            return {**hist, "bins": dict(hist["bins"])}

    def snapshot(self) -> dict:
        """JSON-safe deep copy of everything, mergeable elsewhere."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {**hist, "bins": dict(hist["bins"])}
                    for name, hist in self._histograms.items()
                },
            }

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------
    def merge(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters sum, gauges take the max (order-independent, right for
        monotone state), histogram buckets sum -- so merging worker
        snapshots in any order yields the same registry.
        """
        if not isinstance(snapshot, dict):
            return
        counters = snapshot.get("counters") or {}
        gauges = snapshot.get("gauges") or {}
        histograms = snapshot.get("histograms") or {}
        with self._lock:
            for name, value in counters.items():
                self._counters[name] = self._counters.get(name, 0) + int(
                    value
                )
            for name, value in gauges.items():
                value = float(value)
                current = self._gauges.get(name)
                if current is None or value > current:
                    self._gauges[name] = value
            for name, theirs in histograms.items():
                hist = self._histograms.get(name)
                if hist is None:
                    hist = self._histograms[name] = _new_histogram()
                hist["count"] += int(theirs.get("count", 0))
                hist["sum"] += float(theirs.get("sum", 0.0))
                hist["min"] = min(hist["min"], float(theirs.get("min",
                                                                math.inf)))
                hist["max"] = max(hist["max"], float(theirs.get("max",
                                                                -math.inf)))
                for key, count in (theirs.get("bins") or {}).items():
                    key = str(key)
                    hist["bins"][key] = hist["bins"].get(key, 0) + int(count)

    def reset(self) -> None:
        """Drop every instrument (tests; worker drain-and-ship)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    def drain(self) -> dict:
        """Atomically :meth:`snapshot` and :meth:`reset`.

        The worker-side half of cross-process folding: a pool worker
        drains after each job so successive payloads ship disjoint
        deltas; in a serial engine the parent merges each drain
        straight back, netting to the unchanged totals.
        """
        with self._lock:
            snap = {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "histograms": {
                    name: {**hist, "bins": dict(hist["bins"])}
                    for name, hist in self._histograms.items()
                },
            }
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
        return snap

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return (
                f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})"
            )


__all__ = [
    "MIN_EXP",
    "MetricsRegistry",
    "NBINS",
    "PERCENTILES",
    "bin_edges",
    "bin_index",
    "histogram_percentiles",
]
