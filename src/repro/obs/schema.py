"""A miniature JSON-Schema validator for profile documents.

The container deliberately carries no third-party validator, so the
checked-in ``profile.schema.json`` is enforced by this dependency-free
subset implementation.  Supported keywords -- the ones the profile
schema actually uses -- are ``type``, ``required``, ``properties``,
``additionalProperties`` (boolean or schema), ``items``, ``enum``
(which pins ``meta.schema_version``), ``$ref`` into ``#/$defs/...``,
and ``$defs``.  Anything else in a schema is ignored,
so tightening the schema with unsupported keywords degrades to "not
checked", never to a false failure.

Runnable as a module (the CI profile-validation step)::

    python -m repro.obs.schema profile.json
    python -m repro.obs.schema runs/demo/progress.jsonl

exits 0 when every document validates, 1 with one error per line
otherwise.  A ``.jsonl`` argument is validated line by line against the
packaged *progress-event* schema (``progress.schema.json`` -- the wire
format of :mod:`repro.obs.live`); anything else validates against the
profile schema.
"""

from __future__ import annotations

import json
import pathlib

#: Where the packaged profile schema lives (checked into the tree).
SCHEMA_PATH = pathlib.Path(__file__).parent / "profile.schema.json"

#: The packaged progress-event schema (one event per ``progress.jsonl``
#: line; see :mod:`repro.obs.live`).
PROGRESS_SCHEMA_PATH = (
    pathlib.Path(__file__).parent / "progress.schema.json"
)

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "null": type(None),
}


def profile_schema() -> dict:
    """The packaged ``--profile-out`` schema document."""
    return json.loads(SCHEMA_PATH.read_text())


def _check_type(value, expected: str) -> bool:
    if expected == "number":
        return isinstance(value, (int, float)) and not isinstance(
            value, bool
        )
    if expected == "integer":
        return isinstance(value, int) and not isinstance(value, bool)
    kind = _TYPES.get(expected)
    return kind is not None and isinstance(value, kind)


def _resolve(ref: str, root: dict) -> dict:
    node = root
    for part in ref.removeprefix("#/").split("/"):
        node = node[part]
    return node


def validate(instance, schema: dict, *, root: "dict | None" = None,
             path: str = "$") -> "list[str]":
    """Every violation of ``schema`` by ``instance`` (empty = valid)."""
    root = schema if root is None else root
    if "$ref" in schema:
        try:
            schema = _resolve(schema["$ref"], root)
        except (KeyError, TypeError):
            return [f"{path}: unresolvable $ref {schema['$ref']!r}"]
    errors: list[str] = []
    expected = schema.get("type")
    if expected is not None and not _check_type(instance, expected):
        return [
            f"{path}: expected {expected}, got "
            f"{type(instance).__name__}"
        ]
    allowed = schema.get("enum")
    if allowed is not None and instance not in allowed:
        return [f"{path}: {instance!r} not in {allowed!r}"]
    if isinstance(instance, dict):
        for name in schema.get("required", ()):
            if name not in instance:
                errors.append(f"{path}: missing required key {name!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for name, value in instance.items():
            if name in properties:
                errors.extend(
                    validate(value, properties[name], root=root,
                             path=f"{path}.{name}")
                )
            elif isinstance(additional, dict):
                errors.extend(
                    validate(value, additional, root=root,
                             path=f"{path}.{name}")
                )
            elif additional is False:
                errors.append(f"{path}: unexpected key {name!r}")
    elif isinstance(instance, list):
        items = schema.get("items")
        if isinstance(items, dict):
            for i, value in enumerate(instance):
                errors.extend(
                    validate(value, items, root=root, path=f"{path}[{i}]")
                )
    return errors


def validate_profile(document) -> "list[str]":
    """Violations of the packaged profile schema (empty = valid)."""
    return validate(document, profile_schema())


def progress_schema() -> dict:
    """The packaged progress-event schema document."""
    return json.loads(PROGRESS_SCHEMA_PATH.read_text())


def validate_progress(event) -> "list[str]":
    """Violations of the progress-event schema (empty = valid)."""
    return validate(event, progress_schema())


def _validate_event_log(path: pathlib.Path) -> "list[str]":
    """Violations across one ``progress.jsonl`` file, line-numbered."""
    errors: list[str] = []
    schema = progress_schema()
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
        except ValueError as exc:
            errors.append(f"line {lineno}: unparsable ({exc})")
            continue
        errors.extend(
            f"line {lineno}: {error}"
            for error in validate(event, schema)
        )
    return errors


def main(argv: "list[str] | None" = None) -> int:
    """CLI entry point: validate profile JSON / progress JSONL files."""
    import sys

    argv = sys.argv[1:] if argv is None else list(argv)
    if not argv:
        print(
            "usage: python -m repro.obs.schema "
            "(profile.json | progress.jsonl) [...]",
            file=sys.stderr,
        )
        return 2
    failed = False
    for name in argv:
        path = pathlib.Path(name)
        try:
            if path.suffix == ".jsonl":
                errors = _validate_event_log(path)
            else:
                errors = validate_profile(json.loads(path.read_text()))
        except (OSError, ValueError) as exc:
            print(f"{name}: unreadable ({exc})")
            failed = True
            continue
        if errors:
            failed = True
            for error in errors:
                print(f"{name}: {error}")
        else:
            print(f"{name}: valid")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via CI
    raise SystemExit(main())


__all__ = [
    "PROGRESS_SCHEMA_PATH",
    "SCHEMA_PATH",
    "main",
    "profile_schema",
    "progress_schema",
    "validate",
    "validate_profile",
    "validate_progress",
]
