"""Euclid-style leader election on the port-numbered clique (Theorem 4.2).

The protocol drives the consistency partition towards a state that solves
``k``-leader election, using the two mechanisms the paper combines:

1. **Knowledge refinement.**  Every round each node broadcasts its class
   tag (a content-addressed encoding of its full-information knowledge) and
   folds its fresh random bit and the received tag tuple into a new tag.
   This is exactly Eq. (2): tags of two nodes are equal iff their knowledge
   is equal, so the tag classes *are* the consistency partition, and they
   refine over time as randomness and port asymmetries surface.

2. **Matching pressure.**  When the partition (which is common knowledge
   with a one-round lag) has no electing sub-multiset but has two classes
   of distinct sizes, every node of the smallest class ``A`` sends a
   matching request through one of its ports facing the next-smallest
   larger class ``B`` (the port is selected by the node's accumulated
   random bits, so same-source nodes choose the same *index* but generally
   different *targets*).  Because ``|A| < |B|``, at most ``|A|`` members of
   ``B`` receive requests, so at least one does and at least one does not:
   the request pattern strictly refines the partition.  This is the
   one-round distillation of ``CreateMatching`` (Algorithm 1): the paper
   matches then discards; here the matched/unmatched distinction itself is
   the knowledge split of Lemma 4.7, sizes ``(<=|A|, >=|B|-|A|)``.

**Election rule** (common knowledge, evaluated identically everywhere):
as soon as some sub-multiset of classes has total size ``k``, the
canonically-least such set is elected and members output 1.

Guarantees (tested):

* *safety* -- unconditionally, either nobody decides or exactly ``k`` nodes
  output 1, all in the same round;
* *liveness* -- if ``gcd(n_1..n_k') | k`` then for **every** port
  assignment the election terminates with probability 1 (each matching
  round strictly refines; terminal all-equal class sizes divide the gcd);
* *impossibility witness* -- under the Lemma 4.3 adversarial assignment
  with ``g > 1`` and ``g`` not dividing ``k``, no node ever decides, and
  every class size stays divisible by ``g`` throughout.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .blackboard_leader import choose_classes
from .network import NodeProtocol, Payload


class EuclidLeaderNode(NodeProtocol):
    """Clique node electing ``k`` leaders under any port assignment."""

    def __init__(self, k: int = 1):
        if k < 1:
            raise ValueError("need k >= 1")
        self.k = k
        self._bits: list[int] = []
        self._tag: int | None = None  # interned; set in on_start
        self._prev_tag: int | None = None
        #: Port chosen for this round's matching request (None = no request).
        self._request_port: int | None = None
        self._output: int | None = None

    # ------------------------------------------------------------------
    def on_start(self, ctx) -> None:
        super().on_start(ctx)
        self._tag = self.ctx.interner.intern(("euclid-start",))
        self._prev_tag = self._tag

    def compose(self) -> Mapping[int, Payload]:
        n = self.ctx.n
        return {
            port: (self._tag, 1 if port == self._request_port else 0)
            for port in range(1, n)
        }

    def absorb(self, bit: int, inbox: Sequence[Payload]) -> None:
        self._bits.append(bit)
        received = tuple(inbox)  # ((tag, req_flag), ...) indexed by port
        tag_before = self._tag
        self._tag = self.ctx.interner.intern(
            ("euclid", tag_before, bit, received)
        )
        if self._output is not None:
            self._prev_tag = tag_before
            return
        # The partition at the *previous* time is now common knowledge:
        # everyone sees the same multiset of previous tags.
        neighbour_tags = [tag for tag, _ in received]
        counts: dict[int, int] = {}
        for tag in [tag_before, *neighbour_tags]:
            counts[tag] = counts.get(tag, 0) + 1
        chosen = choose_classes(sorted(counts.items()), self.k)
        if chosen is not None:
            self._output = 1 if tag_before in chosen else 0
            self._request_port = None
            self._prev_tag = tag_before
            return
        self._request_port = self._pick_request_port(
            tag_before, neighbour_tags, counts
        )
        self._prev_tag = tag_before

    def output(self) -> int | None:
        return self._output

    # ------------------------------------------------------------------
    def _pick_request_port(
        self,
        my_tag: int,
        neighbour_tags: list[int],
        counts: dict[int, int],
    ) -> int | None:
        """The matching move: a member of the smallest class requests into
        the next-larger class through a bit-selected port."""
        sizes = sorted(set(counts.values()))
        if len(sizes) < 2:
            return None  # all classes equal -- wait for refinement
        smallest = sizes[0]
        class_a = min(tag for tag, c in counts.items() if c == smallest)
        if my_tag != class_a:
            return None
        larger = min(c for c in counts.values() if c > smallest)
        class_b = min(tag for tag, c in counts.items() if c == larger)
        b_ports = [
            port
            for port, tag in enumerate(neighbour_tags, start=1)
            if tag == class_b
        ]
        index = 0
        for bit in self._bits:
            index = (index << 1) | bit
        return b_ports[index % len(b_ports)]


__all__ = ["EuclidLeaderNode"]
