"""Theorem C.1: name-independent tasks reduce to leader election.

A (input-output) task is *name-independent* when nodes holding the same
input value must produce the same output value.  Once a leader exists, the
reduction is one collect-compute-distribute round trip:

1. every node sends its input to the leader (directly, or by posting it);
2. the leader computes a single input-to-output mapping for the whole
   multiset of inputs (name-obliviously, so equal inputs get equal
   outputs);
3. the leader distributes the mapping; each node applies it to its input.

The leader-election phase uses the runnable protocols of this package; the
collect/distribute phases are simulated at the harness level (they are
trivial one-round broadcasts in both fabrics and carry no symmetry-breaking
content).  The function refuses non-name-independent specifications.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Sequence

from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration
from .blackboard_leader import BlackboardLeaderNode
from .euclid_leader import EuclidLeaderNode
from .network import BlackboardNetwork, CliqueNetwork, RunResult

#: A name-independent specification: multiset of inputs -> value mapping.
Specification = Callable[[Sequence[Hashable]], Mapping[Hashable, Hashable]]


def consensus_on_max(inputs: Sequence[Hashable]) -> Mapping[Hashable, Hashable]:
    """Everybody outputs the maximum input (a name-independent consensus)."""
    top = max(inputs)
    return {value: top for value in set(inputs)}


def parity_of_sum(inputs: Sequence[int]) -> Mapping[int, int]:
    """Everybody outputs the parity of the sum of all inputs."""
    parity = sum(inputs) % 2
    return {value: parity for value in set(inputs)}


def frequency_rank(inputs: Sequence[Hashable]) -> Mapping[Hashable, int]:
    """Each node outputs the popularity rank of its own input value."""
    counts: dict[Hashable, int] = {}
    for value in inputs:
        counts[value] = counts.get(value, 0) + 1
    ranked = sorted(counts, key=lambda v: (-counts[v], repr(v)))
    return {value: rank for rank, value in enumerate(ranked)}


def solve_name_independent_task(
    alpha: RandomnessConfiguration,
    inputs: Sequence[Hashable],
    specification: Specification,
    *,
    ports: PortAssignment | None = None,
    seed: int | None = 0,
    max_rounds: int = 128,
) -> tuple[tuple[Hashable, ...] | None, RunResult]:
    """Run the Theorem C.1 reduction end to end.

    Returns ``(outputs, election_result)``; ``outputs`` is ``None`` when
    leader election did not terminate within ``max_rounds`` (which the
    theorems predict exactly when the configuration forbids election).
    """
    if len(inputs) != alpha.n:
        raise ValueError(f"need {alpha.n} inputs, got {len(inputs)}")
    if ports is None:
        network = BlackboardNetwork(
            alpha, BlackboardLeaderNode, seed=seed
        )
    else:
        network = CliqueNetwork(
            alpha, ports, EuclidLeaderNode, seed=seed
        )
    election = network.run(max_rounds=max_rounds)
    if not election.all_decided or len(election.leaders()) != 1:
        return None, election

    # Collect/compute/distribute, performed by the elected leader.
    mapping = specification(tuple(inputs))
    missing = {value for value in inputs if value not in mapping}
    if missing:
        raise ValueError(f"specification left inputs unmapped: {missing}")
    outputs = tuple(mapping[value] for value in inputs)
    return outputs, election


def is_name_independent(
    inputs: Sequence[Hashable], outputs: Sequence[Hashable]
) -> bool:
    """Check the defining property: equal inputs imply equal outputs."""
    seen: dict[Hashable, Hashable] = {}
    for value, out in zip(inputs, outputs):
        if value in seen and seen[value] != out:
            return False
        seen[value] = out
    return True


__all__ = [
    "Specification",
    "consensus_on_max",
    "frequency_rank",
    "is_name_independent",
    "parity_of_sum",
    "solve_name_independent_task",
]
