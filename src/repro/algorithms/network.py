"""Synchronous anonymous network simulator.

Runs concrete protocols (node state machines) on the paper's two
communication fabrics:

* :class:`BlackboardNetwork` -- every round each node appends one message
  to the board; at the end of the round everyone sees the multiset of the
  *other* nodes' messages (origin-free, lexicographically ordered);
* :class:`CliqueNetwork` -- every round each node sends one message per
  port; a message sent on ``u``'s port towards ``v`` is delivered into the
  port of ``v`` that faces ``u``.

Per the model (Section 2.1): rounds are synchronous and fault-free, node
``i`` receives one fresh random bit from its source each round (nodes on
the same source receive identical bits), and nodes are anonymous -- a node
never learns global indices, only its own port numbers.

Timing convention: at round ``r`` each node first *composes* its outgoing
messages from its state at time ``r-1``, then *absorbs* the round's random
bit together with the messages the other nodes composed, producing its
state at time ``r``.  This matches Eqs. (1)/(2), where ``K_i(t)`` contains
the other nodes' time-``t-1`` knowledge.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Callable, Hashable, Mapping, Sequence

from ..models.knowledge import KnowledgeInterner
from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration
from ..randomness.source import BitSource

Payload = Hashable


@dataclass
class NodeContext:
    """What a node is allowed to know at start: only local facts."""

    n: int
    #: Shared structural interner.  Semantically this is a content-addressed
    #: encoding of the unbounded full-information messages: equal ids <=>
    #: equal message contents, and the id order is an arbitrary total order
    #: on contents that all nodes share.  It carries no identity information.
    interner: KnowledgeInterner


class NodeProtocol(abc.ABC):
    """A synchronous protocol node (anonymous state machine)."""

    def on_start(self, ctx: NodeContext) -> None:
        """Called once before round 1."""
        self.ctx = ctx

    @abc.abstractmethod
    def compose(self) -> Payload | Mapping[int, Payload]:
        """Message(s) for this round, from the state at time ``r-1``.

        Blackboard nodes return one payload.  Clique nodes return either a
        single payload (sent on every port) or a mapping ``port -> payload``
        covering all ports ``1..n-1``.
        """

    @abc.abstractmethod
    def absorb(self, bit: int, inbox: Sequence[Payload]) -> None:
        """End of round: the fresh random bit plus the delivered messages.

        Blackboard: ``inbox`` is the sorted tuple of the other nodes'
        payloads.  Clique: ``inbox[p-1]`` is the payload that arrived on
        port ``p``.
        """

    def output(self) -> Hashable | None:
        """The decided output, or ``None`` while undecided."""
        return None


@dataclass
class RunResult:
    """Outcome of a protocol run."""

    outputs: tuple[Hashable | None, ...]
    rounds: int
    all_decided: bool
    #: Round at which each node decided (None if it never did).
    decision_rounds: tuple[int | None, ...] = ()
    #: Optional per-round traces recorded by the network (tests/benches).
    trace: list = field(default_factory=list)

    def leaders(self) -> tuple[int, ...]:
        """Indices of nodes that output 1 (election conventions)."""
        return tuple(i for i, out in enumerate(self.outputs) if out == 1)


class _BaseNetwork(abc.ABC):
    """Round loop shared by both fabrics."""

    def __init__(
        self,
        alpha: RandomnessConfiguration,
        node_factory: Callable[[], NodeProtocol],
        *,
        seed: int | None = 0,
        sources: Sequence[BitSource] | None = None,
    ):
        self.alpha = alpha
        self.n = alpha.n
        self.interner = KnowledgeInterner()
        self.sources = (
            list(sources) if sources is not None else alpha.make_sources(seed)
        )
        if len(self.sources) != alpha.k:
            raise ValueError(
                f"need {alpha.k} sources, got {len(self.sources)}"
            )
        self.nodes = [node_factory() for _ in range(self.n)]
        ctx = NodeContext(n=self.n, interner=self.interner)
        for node in self.nodes:
            node.on_start(ctx)
        self._round = 0
        self._decision_rounds: list[int | None] = [None] * self.n

    @abc.abstractmethod
    def _deliver(
        self, outbox: Sequence[Payload | Mapping[int, Payload]]
    ) -> list[tuple[Payload, ...]]:
        """Fabric-specific delivery: per-node inboxes from the outboxes."""

    def run(self, max_rounds: int = 64) -> RunResult:
        """Run until all nodes decided or ``max_rounds`` more rounds passed.

        Calling ``run`` again *resumes* the execution: the round counter and
        the random streams continue where the previous call stopped, so the
        reported ``rounds`` is cumulative across calls.
        """
        deadline = self._round + max_rounds
        while self._round < deadline:
            r = self._round + 1
            outbox = [node.compose() for node in self.nodes]
            inboxes = self._deliver(outbox)
            for i, node in enumerate(self.nodes):
                bit = self.sources[self.alpha.source_of(i)].bit(r)
                node.absorb(bit, inboxes[i])
                if (
                    self._decision_rounds[i] is None
                    and node.output() is not None
                ):
                    self._decision_rounds[i] = r
            self._round = r
            if all(node.output() is not None for node in self.nodes):
                break
        outputs = tuple(node.output() for node in self.nodes)
        return RunResult(
            outputs=outputs,
            rounds=self._round,
            all_decided=all(out is not None for out in outputs),
            decision_rounds=tuple(self._decision_rounds),
        )


class BlackboardNetwork(_BaseNetwork):
    """The shared-blackboard fabric."""

    def _deliver(
        self, outbox: Sequence[Payload | Mapping[int, Payload]]
    ) -> list[tuple[Payload, ...]]:
        for payload in outbox:
            if isinstance(payload, Mapping):
                raise TypeError(
                    "blackboard nodes must post a single payload"
                )
        return [
            tuple(
                sorted(
                    (p for j, p in enumerate(outbox) if j != i),
                    key=repr,
                )
            )
            for i in range(self.n)
        ]


class CliqueNetwork(_BaseNetwork):
    """The port-numbered clique fabric."""

    def __init__(
        self,
        alpha: RandomnessConfiguration,
        ports: PortAssignment,
        node_factory: Callable[[], NodeProtocol],
        *,
        seed: int | None = 0,
        sources: Sequence[BitSource] | None = None,
    ):
        if ports.n != alpha.n:
            raise ValueError("ports and alpha disagree on n")
        self.ports = ports
        super().__init__(alpha, node_factory, seed=seed, sources=sources)

    def _deliver(
        self, outbox: Sequence[Payload | Mapping[int, Payload]]
    ) -> list[tuple[Payload, ...]]:
        n = self.n
        inboxes: list[tuple[Payload, ...]] = []
        for i in range(n):
            received = []
            for port in range(1, n):
                sender = self.ports.neighbour(i, port)
                sent = outbox[sender]
                if isinstance(sent, Mapping):
                    sender_port = self.ports.port_to(sender, i)
                    if sender_port not in sent:
                        raise ValueError(
                            f"node {sender} composed no payload for its "
                            f"port {sender_port}"
                        )
                    received.append(sent[sender_port])
                else:
                    received.append(sent)
            inboxes.append(tuple(received))
        return inboxes


__all__ = [
    "BlackboardNetwork",
    "CliqueNetwork",
    "NodeContext",
    "NodeProtocol",
    "Payload",
    "RunResult",
]
