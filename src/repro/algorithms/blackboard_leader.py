"""Leader election on the blackboard (Theorem 4.1's algorithmic side).

Every round each node posts its full random-bit history.  After round
``r``, every node knows the multiset of all ``n`` bit histories up to round
``r-1`` (the ``n-1`` posted ones plus its own prefix), and on a blackboard
this multiset determines the consistency partition exactly (knowledge
equality = bit-string equality).  The election rule is common knowledge:

    as soon as some sub-multiset of history classes has total size ``k``,
    the canonically-least such set of classes is elected; a node outputs 1
    iff its history lies in a chosen class.

With ``k = 1`` this is the paper's algorithm: elect once one node's
history is unique (its class is a singleton).  The generalized rule solves
``k``-leader election exactly when a sub-multiset of the group sizes
``n_i`` sums to ``k`` -- the blackboard characterization this library
derives and benchmarks.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from .network import NodeProtocol, Payload

Bits = tuple[int, ...]


def choose_classes(
    class_sizes: Sequence[tuple[Hashable, int]], k: int
) -> tuple[Hashable, ...] | None:
    """Canonically choose classes whose sizes sum exactly to ``k``.

    ``class_sizes`` is a list of ``(class key, size)`` with distinct,
    totally-ordered keys; the choice must be a pure function of the multiset
    so that all nodes agree.  Returns the chosen keys (the first achieving
    subset in key-sorted bitmask order) or ``None`` when impossible.
    """
    ordered = sorted(class_sizes, key=lambda kv: repr(kv[0]))
    m = len(ordered)
    for mask in range(1, 1 << m):
        total = 0
        for index in range(m):
            if mask >> index & 1:
                total += ordered[index][1]
        if total == k:
            return tuple(
                ordered[index][0] for index in range(m) if mask >> index & 1
            )
    return None


class BlackboardLeaderNode(NodeProtocol):
    """Blackboard node electing ``k`` leaders (default 1)."""

    def __init__(self, k: int = 1):
        if k < 1:
            raise ValueError("need k >= 1")
        self.k = k
        self._bits: list[int] = []
        self._output: int | None = None

    def compose(self) -> Payload:
        return tuple(self._bits)

    def absorb(self, bit: int, inbox: Sequence[Payload]) -> None:
        my_prefix: Bits = tuple(self._bits)
        self._bits.append(bit)
        if self._output is not None:
            return
        histories: list[Bits] = [my_prefix] + [tuple(p) for p in inbox]
        counts: dict[Bits, int] = {}
        for history in histories:
            counts[history] = counts.get(history, 0) + 1
        if self.k > len(histories):
            return
        chosen = choose_classes(sorted(counts.items()), self.k)
        if chosen is None:
            return
        self._output = 1 if my_prefix in chosen else 0

    def output(self) -> int | None:
        return self._output


__all__ = ["BlackboardLeaderNode", "choose_classes"]
