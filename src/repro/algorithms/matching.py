"""``CreateMatching`` -- Algorithm 1 of the paper, runnable.

Creates a matching between two distinguishable sets of nodes ``V1`` and
``V2`` (``|V1| <= |V2|``) on the anonymous clique:

    repeat
      each active ``V1`` node picks an active ``V2`` neighbour at random
      and sends it a request;
      each active ``V2`` node that received requests ACKs the minimal port
      and both endpoints become *done*;
    until all of ``V1`` is done.

Every iteration matches at least one pair (some active ``V2`` node receives
at least one request), so the procedure terminates within ``|V1|``
iterations and matches all of ``V1`` (Lemma 4.8).  Each iteration takes
three synchronous rounds here: a status round (who is still active), a
request round, and an ACK round.

Roles are injected at construction: in the full Euclid protocol the roles
derive from knowledge classes; for unit-testing the lemma they are chosen
by the harness.  Node outputs are ``('matched', iteration)``,
``('unmatched',)`` or ``('observer',)``.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .network import NodeProtocol, Payload

V1 = "v1"
V2 = "v2"
OBSERVER = "obs"

_STATUS, _REQUEST, _ACK = 0, 1, 2


class CreateMatchingNode(NodeProtocol):
    """One participant of ``CreateMatching`` with a fixed role."""

    def __init__(self, role: str):
        if role not in (V1, V2, OBSERVER):
            raise ValueError(f"unknown role {role!r}")
        self.role = role
        self._bits: list[int] = []
        self._round = 0
        self._active = role in (V1, V2)
        self._iteration = 0
        self._matched_at: int | None = None
        #: port -> (role, active) as of the last status round.
        self._port_view: dict[int, tuple[str, bool]] = {}
        self._request_port: int | None = None
        self._ack_port: int | None = None
        self._pending_requests: list[int] = []
        self._output: tuple | None = None

    # ------------------------------------------------------------------
    def compose(self) -> Payload | Mapping[int, Payload]:
        phase = self._round % 3
        n = self.ctx.n
        if phase == _STATUS:
            return ("status", self.role, self._active)
        if phase == _REQUEST:
            if self._request_port is None:
                return ("noop",)
            return {
                port: ("req",) if port == self._request_port else ("noop",)
                for port in range(1, n)
            }
        if self._ack_port is None:
            return ("noop",)
        return {
            port: ("ack",) if port == self._ack_port else ("noop",)
            for port in range(1, n)
        }

    def absorb(self, bit: int, inbox: Sequence[Payload]) -> None:
        self._bits.append(bit)
        phase = self._round % 3
        if phase == _STATUS:
            self._absorb_status(inbox)
        elif phase == _REQUEST:
            self._absorb_request(inbox)
        else:
            self._absorb_ack(inbox)
        self._round += 1

    def output(self) -> tuple | None:
        return self._output

    # ------------------------------------------------------------------
    def _absorb_status(self, inbox: Sequence[Payload]) -> None:
        self._port_view = {
            port: (payload[1], payload[2])
            for port, payload in enumerate(inbox, start=1)
        }
        active_v1 = sum(
            1 for role, active in self._port_view.values() if role == V1 and active
        ) + (1 if self.role == V1 and self._active else 0)
        active_v2 = sum(
            1 for role, active in self._port_view.values() if role == V2 and active
        ) + (1 if self.role == V2 and self._active else 0)
        if active_v1 == 0 or active_v2 == 0:
            self._decide()
            self._request_port = None
            return
        self._iteration += 1
        self._request_port = None
        if self.role == V1 and self._active:
            targets = sorted(
                port
                for port, (role, active) in self._port_view.items()
                if role == V2 and active
            )
            index = 0
            for b in self._bits:
                index = (index << 1) | b
            self._request_port = targets[index % len(targets)]

    def _absorb_request(self, inbox: Sequence[Payload]) -> None:
        self._ack_port = None
        if self.role == V2 and self._active:
            self._pending_requests = [
                port
                for port, payload in enumerate(inbox, start=1)
                if payload[0] == "req"
            ]
            if self._pending_requests:
                self._ack_port = min(self._pending_requests)

    def _absorb_ack(self, inbox: Sequence[Payload]) -> None:
        if self.role == V2 and self._ack_port is not None:
            self._active = False
            self._matched_at = self._iteration
        self._ack_port = None
        if self.role == V1 and self._active:
            if any(payload[0] == "ack" for payload in inbox):
                self._active = False
                self._matched_at = self._iteration

    def _decide(self) -> None:
        if self._output is not None:
            return
        if self.role == OBSERVER:
            self._output = ("observer",)
        elif self._matched_at is not None:
            self._output = ("matched", self._matched_at)
        else:
            self._output = ("unmatched",)


def matching_summary(outputs: Sequence[tuple | None]) -> dict:
    """Aggregate a run's outputs: counts and the iteration profile."""
    matched = [out for out in outputs if out and out[0] == "matched"]
    return {
        "matched": len(matched),
        "unmatched": sum(1 for out in outputs if out == ("unmatched",)),
        "observers": sum(1 for out in outputs if out == ("observer",)),
        "undecided": sum(1 for out in outputs if out is None),
        "iterations": max((out[1] for out in matched), default=0),
    }


__all__ = [
    "OBSERVER",
    "V1",
    "V2",
    "CreateMatchingNode",
    "matching_summary",
]
