"""Runnable protocols on the simulated anonymous networks.

The framework of :mod:`repro.core` decides *whether* a task is solvable;
this package contains the protocols that *solve* it: leader election on
the blackboard (Theorem 4.1), the Euclid-style election on the clique
(Theorem 4.2), the literal ``CreateMatching`` of Algorithm 1, and the
Theorem C.1 reduction of name-independent tasks to leader election.
"""

from .blackboard_leader import BlackboardLeaderNode, choose_classes
from .euclid_leader import EuclidLeaderNode
from .matching import (
    OBSERVER,
    V1,
    V2,
    CreateMatchingNode,
    matching_summary,
)
from .network import (
    BlackboardNetwork,
    CliqueNetwork,
    NodeContext,
    NodeProtocol,
    RunResult,
)
from .reductions import (
    Specification,
    consensus_on_max,
    frequency_rank,
    is_name_independent,
    parity_of_sum,
    solve_name_independent_task,
)

__all__ = [
    "BlackboardLeaderNode",
    "BlackboardNetwork",
    "CliqueNetwork",
    "CreateMatchingNode",
    "EuclidLeaderNode",
    "NodeContext",
    "NodeProtocol",
    "OBSERVER",
    "RunResult",
    "Specification",
    "V1",
    "V2",
    "choose_classes",
    "consensus_on_max",
    "frequency_rank",
    "is_name_independent",
    "matching_summary",
    "parity_of_sum",
    "solve_name_independent_task",
]
