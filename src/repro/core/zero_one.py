"""Zero-one behaviour of the solving probability (Lemma 3.2).

``Pr[S(t) | alpha]`` is monotone non-decreasing in ``t`` (knowledge is
cumulative: a solving state keeps solving) and its limit is 0 or 1
(Kolmogorov's zero-one law).  The exact limit is computable through the
partition Markov chain; this module adds series-level diagnostics used by
the benchmarks: monotonicity checks, limit classification, and convergence
rates against the paper's explicit blackboard bound.

The diagnostics accept whatever a probability series realistically looks
like by the time it reaches them: exact ``Fraction`` values from the
exact backend, ``float``/numpy scalars from the float backend, any mix
of the two, any iterable (including generators and numpy arrays), and
the empty series.  Mixed comparisons go through exact rational
conversion, so a ``Fraction`` and the float that approximates it are
ordered by value, never by type quirks.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Union

Probability = Union[Fraction, float, int]


def _exact(value: Probability) -> Fraction | None:
    """Exact rational value, or ``None`` for non-finite floats (NaN/inf).

    ``Fraction(float)`` is exact, so comparing a converted float against
    a true ``Fraction`` cannot misorder values that genuinely differ.
    """
    if isinstance(value, Fraction):
        return value
    as_float = float(value)
    if not math.isfinite(as_float):
        return None
    if isinstance(value, int):
        return Fraction(value)
    return Fraction(as_float)


def is_monotone_non_decreasing(series: Iterable[Probability]) -> bool:
    """Check the cumulative-knowledge monotonicity of ``Pr[S(t)]``.

    Empty and singleton series are vacuously monotone.  A series
    containing a non-finite value (NaN/inf) cannot be certified and
    reports ``False`` rather than raising.
    """
    items = [_exact(value) for value in series]
    if any(value is None for value in items):
        return False
    return all(a <= b for a, b in zip(items, items[1:]))


def classify_limit(
    series: Iterable[Probability], *, tolerance: float = 0.05
) -> int | None:
    """Classify the apparent limit of a probability series.

    Returns 1 when the tail is within ``tolerance`` of 1, 0 when the series
    is identically 0, and ``None`` when undetermined (empty, too short,
    non-finite, or stuck in between -- which Lemma 3.2 says cannot persist
    as ``t`` grows).
    """
    items = [_exact(value) for value in series]
    if not items or any(value is None for value in items):
        return None
    if all(value == 0 for value in items):
        return 0
    if items[-1] >= 1 - Fraction(tolerance):
        return 1
    return None


def blackboard_unique_source_lower_bound(k: int, t: int) -> Fraction:
    """The paper's explicit bound for ``n_1 = 1``:
    ``Pr[S(t)] >= ((2^t - 1) / 2^t)^(k-1) >= 1 - (k-1)/2^t``."""
    if k < 1 or t < 0:
        raise ValueError("need k >= 1 and t >= 0")
    return Fraction((2**t - 1) ** (k - 1), 2 ** (t * (k - 1)))


def blackboard_unique_source_linear_bound(k: int, t: int) -> Fraction:
    """The weaker linear form ``1 - (k-1)/2^t`` of the same bound."""
    return 1 - Fraction(k - 1, 2**t)


__all__ = [
    "blackboard_unique_source_linear_bound",
    "blackboard_unique_source_lower_bound",
    "classify_limit",
    "is_monotone_non_decreasing",
]
