"""Zero-one behaviour of the solving probability (Lemma 3.2).

``Pr[S(t) | alpha]`` is monotone non-decreasing in ``t`` (knowledge is
cumulative: a solving state keeps solving) and its limit is 0 or 1
(Kolmogorov's zero-one law).  The exact limit is computable through the
partition Markov chain; this module adds series-level diagnostics used by
the benchmarks: monotonicity checks, limit classification, and convergence
rates against the paper's explicit blackboard bound.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Sequence


def is_monotone_non_decreasing(series: Sequence[Fraction | float]) -> bool:
    """Check the cumulative-knowledge monotonicity of ``Pr[S(t)]``."""
    return all(a <= b for a, b in zip(series, series[1:]))


def classify_limit(
    series: Sequence[Fraction | float], *, tolerance: float = 0.05
) -> int | None:
    """Classify the apparent limit of a probability series.

    Returns 1 when the tail is within ``tolerance`` of 1, 0 when the series
    is identically 0, and ``None`` when undetermined (too short or stuck in
    between -- which Lemma 3.2 says cannot persist as ``t`` grows).
    """
    if not series:
        return None
    tail = float(series[-1])
    if all(float(p) == 0.0 for p in series):
        return 0
    if tail >= 1.0 - tolerance:
        return 1
    return None


def blackboard_unique_source_lower_bound(k: int, t: int) -> Fraction:
    """The paper's explicit bound for ``n_1 = 1``:
    ``Pr[S(t)] >= ((2^t - 1) / 2^t)^(k-1) >= 1 - (k-1)/2^t``."""
    if k < 1 or t < 0:
        raise ValueError("need k >= 1 and t >= 0")
    return Fraction((2**t - 1) ** (k - 1), 2 ** (t * (k - 1)))


def blackboard_unique_source_linear_bound(k: int, t: int) -> Fraction:
    """The weaker linear form ``1 - (k-1)/2^t`` of the same bound."""
    return 1 - Fraction(k - 1, 2**t)


__all__ = [
    "blackboard_unique_source_linear_bound",
    "blackboard_unique_source_lower_bound",
    "classify_limit",
    "is_monotone_non_decreasing",
]
