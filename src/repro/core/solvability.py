"""Solvability of a task by a single global state (Definitions 3.1 and 3.4).

Three equivalent checkers are implemented, in decreasing order of cost:

1. :func:`solves_by_definition_31` -- a name-preserving *and*
   name-independent simplicial map ``delta : sigma -> tau`` from the
   ``P(t)`` facet to an output facet (Definition 3.1), found by exhaustive
   search.
2. :func:`solves_by_definition_34` -- a name-preserving simplicial map
   ``delta : pi~(rho) -> pi(tau)`` between the projections
   (Definition 3.4), found by exhaustive search.
3. :func:`realization_solves` -- the partition-refinement criterion: the
   knowledge partition refines the value partition of some output facet.

The equivalence of (1) and (2) is Lemma 3.5; the equivalence with (3)
follows because a name-preserving map into ``pi(tau)`` is forced (every
name appears on exactly one vertex of ``pi(tau)``), and such a forced map
is simplicial iff every knowledge class lands inside a single value class.
The test suite checks all three agree on exhaustive small instances, which
is this library's machine-checked version of Lemma 3.5.
"""

from __future__ import annotations

from ..models.base import CommunicationModel
from ..randomness.realizations import NodeRealization
from ..topology import (
    SimplicialComplex,
    exists_simplicial_map,
    unique_name_preserving_map,
)
from .projection import knowledge_projection, project_facet
from .protocol_complex import protocol_facet
from .tasks import SymmetryBreakingTask


def realization_solves(
    model: CommunicationModel,
    realization: NodeRealization,
    task: SymmetryBreakingTask,
) -> bool:
    """Fast solvability: knowledge partition refines some facet's values."""
    return task.solvable_from_partition(model.partition(realization))


def solves_by_definition_34(
    model: CommunicationModel,
    realization: NodeRealization,
    task: SymmetryBreakingTask,
) -> bool:
    """Literal Definition 3.4 via simplicial-map search (small ``n`` only)."""
    source = knowledge_projection(model, realization)
    for tau in task.output_complex().facets:
        target = project_facet(tau)
        if exists_simplicial_map(source, target, name_preserving=True):
            return True
    return False


def solves_by_forced_map(
    model: CommunicationModel,
    realization: NodeRealization,
    task: SymmetryBreakingTask,
) -> bool:
    """Definition 3.4 via the forced name-preserving map.

    ``pi(tau)`` contains exactly one vertex per name, so the only candidate
    name-preserving vertex map sends ``(i, x_i)`` to ``(i, tau(i))``; the
    realization solves the task iff that map is simplicial for some ``tau``.
    """
    source = knowledge_projection(model, realization)
    for tau in task.output_complex().facets:
        target = project_facet(tau)
        forced = unique_name_preserving_map(source, target)
        if forced is not None and forced.is_simplicial():
            return True
    return False


def solves_by_definition_31(
    model: CommunicationModel,
    realization: NodeRealization,
    task: SymmetryBreakingTask,
) -> bool:
    """Literal Definition 3.1: name-preserving, name-independent
    ``delta : sigma -> tau`` on the un-projected facets."""
    sigma = SimplicialComplex([protocol_facet(model, realization)])
    for tau in task.output_complex().facets:
        target = SimplicialComplex([tau])
        if exists_simplicial_map(
            sigma, target, name_preserving=True, name_independent=True
        ):
            return True
    return False


__all__ = [
    "realization_solves",
    "solves_by_definition_31",
    "solves_by_definition_34",
    "solves_by_forced_map",
]
