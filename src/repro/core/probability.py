"""Exact and sampled computation of ``Pr[S(t) | alpha]`` (Section 3.4).

``S(t)`` is the set of realizations at time ``t`` that solve the task; its
probability given a configuration ``alpha`` is the number of solving
*source* realizations times ``2^{-tk}`` (Lemma B.1).  Three engines:

* :func:`solving_probability_enumerated` -- literal enumeration of the
  ``2^{tk}`` source realizations; the ground truth for everything else.
* :class:`~repro.core.markov.ConsistencyChain` -- exact via the partition
  Markov chain (polynomial in the number of reachable partitions rather
  than exponential in ``tk``); see :mod:`repro.core.markov`.
* :func:`solving_probability_sampled` -- Monte-Carlo estimate, for
  parameters where exactness is out of reach.

The test suite cross-validates all three.
"""

from __future__ import annotations

import os
from fractions import Fraction
from typing import Callable, Iterator

from ..models.base import CommunicationModel
from ..models.blackboard import BlackboardModel
from ..models.message_passing import MessagePassingModel
from ..models.ports import PortAssignment
from ..randomness.configuration import RandomnessConfiguration
from ..randomness.realizations import (
    NodeRealization,
    iter_consistent_realizations,
)
from .solvability import realization_solves
from .tasks import SymmetryBreakingTask

#: Guard for the literal enumerator (2^(t*k) source realizations).
ENUMERATION_LIMIT = 1 << 22


def model_for(
    alpha: RandomnessConfiguration, ports: PortAssignment | None = None
) -> CommunicationModel:
    """The communication model implied by ``ports`` (None = blackboard)."""
    if ports is None:
        return BlackboardModel(alpha.n)
    if ports.n != alpha.n:
        raise ValueError("port assignment size does not match alpha")
    return MessagePassingModel(ports)


def solving_realizations(
    model: CommunicationModel,
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
) -> Iterator[NodeRealization]:
    """The positive-probability members of ``S(t)`` (with multiplicity per
    source realization, matching the measure of Lemma B.1)."""
    for realization in iter_consistent_realizations(alpha, t):
        if realization_solves(model, realization, task):
            yield realization


def solving_probability_enumerated(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    solver: Callable[[CommunicationModel, NodeRealization, SymmetryBreakingTask], bool]
    | None = None,
) -> Fraction:
    """Exact ``Pr[S(t) | alpha]`` by enumerating source realizations.

    ``solver`` defaults to the fast partition-refinement criterion; tests
    inject the literal Definition 3.1/3.4 map searches here to check
    Lemma 3.5 end to end.
    """
    total = 2 ** (t * alpha.k)
    if total > ENUMERATION_LIMIT:
        raise ValueError(
            f"enumeration would visit {total} realizations; use the "
            "ConsistencyChain or sampling instead"
        )
    solver = solver or realization_solves
    model = model_for(alpha, ports)
    solving = sum(
        1
        for realization in iter_consistent_realizations(alpha, t)
        if solver(model, realization, task)
    )
    return Fraction(solving, total)


def solving_probability_exact(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    backend: str = "exact",
) -> "Fraction | float":
    """``Pr[S(t) | alpha]`` via the compiled partition Markov chain.

    ``backend="exact"`` (default) returns a ``Fraction``;
    ``backend="float"`` the numpy ``float64`` value.  Routed through the
    batched query layer (:mod:`repro.chain.batch`), which shares the
    chain's cached distributions across calls and batches.
    """
    from ..chain import Query, compile_chain, run_queries

    return run_queries(
        compile_chain(alpha, ports),
        [Query.probability(task, t)],
        backend=backend,
    )[0]


def solving_probability_series(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t_max: int,
    ports: PortAssignment | None = None,
    *,
    backend: str = "exact",
) -> "list[Fraction] | list[float]":
    """``Pr[S(t) | alpha]`` for ``t = 1..t_max`` (batched-query-based)."""
    from ..chain import Query, compile_chain, run_queries

    return run_queries(
        compile_chain(alpha, ports),
        [Query.series(task, t_max)],
        backend=backend,
    )[0]


def solving_probability_sampled(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    t: int,
    ports: PortAssignment | None = None,
    *,
    samples: int = 2000,
    seed: int | None = 0,
    method: str = "auto",
) -> float:
    """Monte-Carlo estimate of ``Pr[S(t) | alpha]``.

    Routed through the vectorized substream kernel
    (:mod:`repro.sampling`): the estimate is the first ``samples``
    trials of the counter-based stream keyed by ``seed``, so it is a
    pure function of its arguments, independent of execution order, and
    extends bit-exactly under a larger budget.  ``seed=None`` draws a
    fresh stream.  ``method`` selects the batch solver (``"bits"``
    knowledge-partition passes, ``"chain"`` compiled-chain trajectories,
    ``"scalar"`` the legacy per-trajectory oracle loop).
    """
    if samples < 1:
        raise ValueError("need samples >= 1")
    from ..sampling import sample_cell

    if seed is None:
        seed = int.from_bytes(os.urandom(8), "big") >> 1
    return sample_cell(
        alpha, task, t, ports, stream_seed=seed, samples=samples,
        method=method,
    ).probability


def eventually_solvable(
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    ports: PortAssignment | None = None,
) -> bool:
    """Exact Definition 3.3 decision via the chain's absorption analysis."""
    from ..chain import Query, compile_chain, run_queries

    return run_queries(
        compile_chain(alpha, ports), [Query.solvable(task)]
    )[0]


__all__ = [
    "ENUMERATION_LIMIT",
    "eventually_solvable",
    "model_for",
    "solving_probability_enumerated",
    "solving_probability_exact",
    "solving_probability_sampled",
    "solving_probability_series",
    "solving_realizations",
]
