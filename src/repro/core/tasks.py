"""Input-free symmetry-breaking tasks (Section 3.1).

A task is defined solely by a *symmetric* chromatic output complex ``O``:
the input complex is the single facet ``{(i, bottom) : i in [n]}`` and the
specification maps it to every output simplex.  Symmetry (stability under
name permutation) is what makes per-facet solvability name-independent.

Two representations are provided:

* :class:`OutputComplexTask` -- an explicit output complex; solvability is
  the partition-refinement criterion derived from Definition 3.4 (see
  :mod:`repro.core.solvability` for the derivation and the equivalence
  tests against literal simplicial-map search);
* :class:`CountTask` -- the common special case where legality depends only
  on *how many* nodes output each value (leader election: one ``1`` and
  ``n-1`` ``0``s).  Such tasks admit a fast solvability check via a
  bin-packing of knowledge-class sizes into value counts, and their output
  complexes can be generated on demand.

All node names are 0-based internally; renderers restore the paper's
1-based numbering.
"""

from __future__ import annotations

import abc
import itertools
from functools import lru_cache
from typing import Hashable, Iterable, Mapping, Sequence

from ..topology import Simplex, SimplicialComplex, Vertex

Partition = Sequence[frozenset[int]]


def _validate_partition(partition: Partition, n: int) -> None:
    seen: set[int] = set()
    for block in partition:
        if not block:
            raise ValueError("partition blocks must be non-empty")
        if seen & block:
            raise ValueError(f"partition blocks overlap: {sorted(seen & block)}")
        seen |= block
    if seen != set(range(n)):
        raise ValueError(
            f"partition covers {sorted(seen)}, expected all of 0..{n - 1}"
        )


class SymmetryBreakingTask(abc.ABC):
    """An input-free task given by a symmetric output complex."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need n >= 1")
        self.n = n

    # ------------------------------------------------------------------
    # Complexes
    # ------------------------------------------------------------------
    def input_complex(self) -> SimplicialComplex:
        """The trivial input complex ``I = {(i, bottom)}`` (input-free)."""
        return SimplicialComplex(
            [Simplex(Vertex(i, None) for i in range(self.n))]
        )

    @abc.abstractmethod
    def output_complex(self) -> SimplicialComplex:
        """The output complex ``O``."""

    def projected_output(self) -> SimplicialComplex:
        """``pi(O)`` -- the union of consistency projections of all facets."""
        from .projection import project_complex

        return project_complex(self.output_complex())

    # ------------------------------------------------------------------
    # Solvability
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def solvable_from_partition(self, partition: Partition) -> bool:
        """Does a global state with this consistency partition solve the task?

        ``partition`` is the partition of ``{0..n-1}`` into knowledge
        classes (the facets of ``pi~(rho)``).  The criterion is Definition
        3.4 reduced to combinatorics: the task is solved iff the knowledge
        partition *refines* the value partition of some output facet.
        """

    def solvable_from_sizes(self, sizes: Iterable[int]) -> bool:
        """Solvability from knowledge-class sizes alone.

        Correct for every *symmetric* output complex: symmetry means facet
        value-partitions are closed under renaming, so only the multiset of
        block sizes matters.  The default implementation materializes an
        arbitrary partition with the given sizes.
        """
        sizes = list(sizes)
        if sum(sizes) != self.n:
            raise ValueError(f"sizes {sizes} do not sum to n={self.n}")
        partition: list[frozenset[int]] = []
        next_node = 0
        for size in sizes:
            partition.append(frozenset(range(next_node, next_node + size)))
            next_node += size
        return self.solvable_from_partition(partition)


class OutputComplexTask(SymmetryBreakingTask):
    """A task given by an explicit output complex."""

    def __init__(self, complex_: SimplicialComplex, *, validate: bool = True):
        names = complex_.names()
        if not names:
            raise ValueError("output complex must be non-empty")
        n = max(names) + 1
        super().__init__(n)
        if validate:
            if names != frozenset(range(n)):
                raise ValueError(
                    f"output complex names {sorted(names)} must be 0..{n - 1}"
                )
            if not complex_.is_chromatic():
                raise ValueError("output complex must be chromatic")
            if not complex_.is_pure() or complex_.dimension != n - 1:
                raise ValueError(
                    "output complex facets must involve all n nodes"
                )
            if not complex_.is_symmetric():
                raise ValueError(
                    "symmetry-breaking tasks need a symmetric output complex"
                )
        self._complex = complex_

    def output_complex(self) -> SimplicialComplex:
        return self._complex

    def solvable_from_partition(self, partition: Partition) -> bool:
        _validate_partition(partition, self.n)
        for facet in self._complex.facets:
            value_blocks = facet.value_partition()
            if _refines(partition, value_blocks):
                return True
        return False


def _refines(fine: Partition, coarse: Sequence[frozenset[int]]) -> bool:
    """Every block of ``fine`` is contained in some block of ``coarse``."""
    return all(
        any(block <= coarse_block for coarse_block in coarse)
        for block in fine
    )


class CountTask(SymmetryBreakingTask):
    """A symmetric task whose legality depends only on output-value counts.

    ``profiles`` is a collection of legal count profiles, each a mapping
    ``value -> count`` with counts summing to ``n``.  A facet is legal iff
    the multiset of its output values matches some profile.  Leader election
    is ``{leader: 1, follower: n-1}``.
    """

    def __init__(
        self,
        n: int,
        profiles: Iterable[Mapping[Hashable, int]],
        *,
        name: str = "count-task",
    ):
        super().__init__(n)
        normalized: list[tuple[tuple[Hashable, int], ...]] = []
        for profile in profiles:
            items = tuple(sorted(profile.items(), key=lambda kv: repr(kv[0])))
            if any(count < 1 for _, count in items):
                raise ValueError(f"profile {profile} has non-positive counts")
            if sum(count for _, count in items) != n:
                raise ValueError(f"profile {profile} does not cover n={n} nodes")
            normalized.append(items)
        if not normalized:
            raise ValueError("need at least one profile")
        self.profiles = tuple(sorted(set(normalized)))
        self.name = name

    # ------------------------------------------------------------------
    def count_multisets(self) -> tuple[tuple[int, ...], ...]:
        """For each profile, the sorted multiset of value counts."""
        return tuple(
            tuple(sorted(count for _, count in profile))
            for profile in self.profiles
        )

    def output_complex(self) -> SimplicialComplex:
        """Generate ``O`` explicitly (exponential in ``n``; small ``n`` only)."""
        facets: list[Simplex] = []
        for profile in self.profiles:
            values: list[Hashable] = []
            for value, count in profile:
                values.extend([value] * count)
            for arrangement in set(itertools.permutations(values)):
                facets.append(
                    Simplex(
                        Vertex(i, value) for i, value in enumerate(arrangement)
                    )
                )
        return SimplicialComplex(facets)

    def solvable_from_partition(self, partition: Partition) -> bool:
        _validate_partition(partition, self.n)
        sizes = tuple(sorted(len(block) for block in partition))
        return any(
            _can_pack(sizes, targets) for targets in self.count_multisets()
        )

    def solvable_from_sizes(self, sizes: Iterable[int]) -> bool:
        sizes = tuple(sorted(sizes))
        if sum(sizes) != self.n:
            raise ValueError(f"sizes {sizes} do not sum to n={self.n}")
        return any(
            _can_pack(sizes, targets) for targets in self.count_multisets()
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CountTask({self.name!r}, n={self.n})"


@lru_cache(maxsize=65536)
def _can_pack(sizes: tuple[int, ...], targets: tuple[int, ...]) -> bool:
    """Can ``sizes`` be split into groups summing exactly to each target?

    Both arguments are sorted tuples.  Standard backtracking with
    memoization; the instance sizes here are tiny (``n <= 12``).
    """
    if not sizes:
        return not targets
    if not targets:
        return False
    if sum(sizes) != sum(targets):
        return False
    largest = sizes[-1]
    rest = sizes[:-1]
    tried: set[int] = set()
    for index, target in enumerate(targets):
        if target < largest or target in tried:
            continue
        tried.add(target)
        remaining = target - largest
        new_targets = list(targets[:index]) + list(targets[index + 1 :])
        if remaining:
            new_targets.append(remaining)
        if _can_pack(rest, tuple(sorted(new_targets))):
            return True
    return False


__all__ = [
    "CountTask",
    "OutputComplexTask",
    "Partition",
    "SymmetryBreakingTask",
]
