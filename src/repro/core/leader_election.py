"""Leader election and its relatives as tasks.

``O_LE`` has one facet ``tau_i`` per node ``i``: node ``i`` outputs 1 and
everyone else outputs 0 (Section 4).  The projection ``pi(O_LE)`` has, for
each ``i``, an isolated vertex ``(i, 1)`` and the simplex
``{(j, 0) : j != i}`` -- Figure 3.

The module also provides the natural generalizations studied in the paper's
discussion: electing exactly ``k`` leaders (the "2-leader election"
challenge of Section 1.2) and weak symmetry breaking (not all nodes output
the same value).
"""

from __future__ import annotations

from ..topology import Simplex, SimplicialComplex, Vertex
from .tasks import CountTask

#: Output values used by the election tasks.
LEADER = 1
FOLLOWER = 0


def leader_election(n: int) -> CountTask:
    """The task ``O_LE``: exactly one node outputs :data:`LEADER`."""
    if n < 1:
        raise ValueError("need n >= 1")
    if n == 1:
        profile = {LEADER: 1}
    else:
        profile = {LEADER: 1, FOLLOWER: n - 1}
    return CountTask(n, [profile], name="leader-election")


def k_leader_election(n: int, k: int) -> CountTask:
    """Exactly ``k`` nodes output :data:`LEADER`."""
    if not 1 <= k <= n:
        raise ValueError(f"need 1 <= k <= n, got k={k}, n={n}")
    if k == n:
        profile = {LEADER: n}
    else:
        profile = {LEADER: k, FOLLOWER: n - k}
    return CountTask(n, [profile], name=f"{k}-leader-election")


def weak_symmetry_breaking(n: int) -> CountTask:
    """Not all nodes output the same value (any non-trivial 0/1 split)."""
    if n < 2:
        raise ValueError("weak symmetry breaking needs n >= 2")
    profiles = [{LEADER: m, FOLLOWER: n - m} for m in range(1, n)]
    return CountTask(n, profiles, name="weak-symmetry-breaking")


def leader_election_complex(n: int) -> SimplicialComplex:
    """``O_LE`` built explicitly: facets ``tau_i`` for ``i in 0..n-1``."""
    facets = []
    for leader in range(n):
        facets.append(
            Simplex(
                Vertex(i, LEADER if i == leader else FOLLOWER)
                for i in range(n)
            )
        )
    return SimplicialComplex(facets)


def leader_election_facet(n: int, leader: int) -> Simplex:
    """The facet ``tau_leader`` of ``O_LE``."""
    if not 0 <= leader < n:
        raise ValueError(f"leader must be in 0..{n - 1}")
    return Simplex(
        Vertex(i, LEADER if i == leader else FOLLOWER) for i in range(n)
    )


__all__ = [
    "FOLLOWER",
    "LEADER",
    "k_leader_election",
    "leader_election",
    "leader_election_complex",
    "leader_election_facet",
    "weak_symmetry_breaking",
]
