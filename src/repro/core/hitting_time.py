"""Exact expected time-to-solve, via the consistency chain.

The paper characterizes *whether* ``lim Pr[S(t)|alpha] = 1``; the partition
Markov chain also yields *how fast*: the expected number of rounds until
the consistency partition first solves the task (the expected hitting time
of the solving set).  Because transitions only refine the partition, the
chain is acyclic up to self-loops and the standard first-step equations
solve in one topological pass, exactly, over ``Fraction``:

    E[s] = 0                                   if s solves the task
    E[s] = (1 + sum_{s' != s} P(s->s') E[s']) / (1 - P(s->s))   otherwise

The expectation is finite iff eventual solvability holds from every
reachable non-solving state that matters; when the task is not eventually
solvable the function returns ``None`` (infinite expectation).

This quantifies, e.g., how much harder leader election gets as sources are
shared: independent pairs solve in expected 2 rounds, while configuration
``(1, 2, 2)`` needs 8/3 rounds of knowledge exchange before some node's
knowledge is unique.
"""

from __future__ import annotations

from fractions import Fraction

from .markov import ConsistencyChain, single_block_state
from .tasks import SymmetryBreakingTask


def expected_solving_time(
    chain: ConsistencyChain, task: SymmetryBreakingTask
) -> Fraction | None:
    """Exact expected rounds until the partition first solves ``task``.

    Returns ``None`` when the task is not eventually solvable under the
    chain's configuration (the expectation is infinite).  Note this counts
    rounds until the *global state* solves the task (Definition 3.4); real
    protocols need one extra round to turn the state into outputs, since
    the partition becomes common knowledge with a one-round lag.
    """
    if chain.limit_solving_probability(task) != 1:
        return None
    states = sorted(chain.reachable_states(), key=len, reverse=True)
    expected: dict = {}
    for state in states:
        if task.solvable_from_partition([frozenset(b) for b in state]):
            expected[state] = Fraction(0)
            continue
        moves = chain.transitions(state)
        self_loop = moves.get(state, Fraction(0))
        if self_loop == 1:
            # Unreachable here: limit 1 guarantees escape from every
            # reachable non-solving state, but guard for safety.
            return None
        total = Fraction(1)
        for nxt, step in moves.items():
            if nxt != state:
                sub = expected.get(nxt)
                if sub is None:
                    return None
                total += step * sub
        expected[state] = total / (1 - self_loop)
    return expected[single_block_state(chain.alpha.n)]


def expected_time_table(
    chain: ConsistencyChain, task: SymmetryBreakingTask
) -> dict:
    """Expected remaining time from every reachable state (diagnostics).

    States from which the task is unreachable map to ``None``.
    """
    out: dict = {}
    states = sorted(chain.reachable_states(), key=len, reverse=True)
    for state in states:
        if task.solvable_from_partition([frozenset(b) for b in state]):
            out[state] = Fraction(0)
            continue
        moves = chain.transitions(state)
        self_loop = moves.get(state, Fraction(0))
        if self_loop == 1:
            out[state] = None
            continue
        total = Fraction(1)
        feasible = True
        for nxt, step in moves.items():
            if nxt == state:
                continue
            sub = out.get(nxt)
            if sub is None:
                feasible = False
                break
            total += step * sub
        out[state] = total / (1 - self_loop) if feasible else None
    return out


def solving_time_distribution(
    chain: ConsistencyChain,
    task: SymmetryBreakingTask,
    t_max: int,
) -> list[Fraction]:
    """Exact ``Pr[T = t]`` for ``t = 1..t_max``.

    ``T`` is the first time the global state solves the task; by
    monotonicity ``Pr[T = t] = Pr[S(t)] - Pr[S(t-1)]``.  The remaining mass
    ``1 - Pr[S(t_max)]`` covers both later solves and (for non-eventually-
    solvable configurations) the never-solving event.
    """
    series = chain.solving_probability_series(task, t_max)
    previous = Fraction(0)
    distribution = []
    for prob in series:
        distribution.append(prob - previous)
        previous = prob
    return distribution


def solving_time_quantile(
    chain: ConsistencyChain,
    task: SymmetryBreakingTask,
    q: Fraction | float,
    *,
    t_cap: int = 512,
) -> int | None:
    """Smallest ``t`` with ``Pr[S(t)] >= q`` (None if not reached by cap)."""
    if not 0 < float(q) <= 1:
        raise ValueError("quantile must be in (0, 1]")
    dist = {single_block_state(chain.alpha.n): Fraction(1)}
    cumulative = Fraction(0)
    for t in range(1, t_cap + 1):
        nxt: dict = {}
        for state, prob in dist.items():
            for new_state, step in chain.transitions(state).items():
                nxt[new_state] = nxt.get(new_state, Fraction(0)) + prob * step
        dist = nxt
        cumulative = sum(
            (
                prob
                for state, prob in dist.items()
                if task.solvable_from_partition([frozenset(b) for b in state])
            ),
            Fraction(0),
        )
        if cumulative >= q:
            return t
    return None


__all__ = [
    "expected_solving_time",
    "expected_time_table",
    "solving_time_distribution",
    "solving_time_quantile",
]
