"""Exact expected time-to-solve, via the compiled consistency chain.

The paper characterizes *whether* ``lim Pr[S(t)|alpha] = 1``; the partition
Markov chain also yields *how fast*: the expected number of rounds until
the consistency partition first solves the task (the expected hitting time
of the solving set).  Because transitions only refine the partition, the
chain is acyclic up to self-loops and the standard first-step equations
solve in one reverse-topological pass over the compiled chain's sparse
transition arrays, exactly, over ``Fraction``:

    E[s] = 0                                   if s solves the task
    E[s] = (1 + sum_{s' != s} P(s->s') E[s']) / (1 - P(s->s))   otherwise

The expectation is finite iff eventual solvability holds from every
reachable non-solving state that matters; when the task is not eventually
solvable the function returns ``None`` (infinite expectation).

This quantifies, e.g., how much harder leader election gets as sources are
shared: independent pairs solve in expected 2 rounds, while configuration
``(1, 2, 2)`` needs 8/3 rounds of knowledge exchange before some node's
knowledge is unique.

Every function accepts either the :class:`ConsistencyChain` facade or a
raw :class:`~repro.chain.engine.CompiledChain`.
"""

from __future__ import annotations

from fractions import Fraction

from ..chain import CompiledChain, Query, run_queries
from .markov import ConsistencyChain
from .tasks import SymmetryBreakingTask


def _compiled(chain: "ConsistencyChain | CompiledChain") -> CompiledChain:
    """Accept the facade or the engine object alike."""
    if isinstance(chain, ConsistencyChain):
        return chain.compiled
    return chain


def expected_solving_time(
    chain: "ConsistencyChain | CompiledChain", task: SymmetryBreakingTask
) -> Fraction | None:
    """Exact expected rounds until the partition first solves ``task``.

    Returns ``None`` when the task is not eventually solvable under the
    chain's configuration (the expectation is infinite).  Note this counts
    rounds until the *global state* solves the task (Definition 3.4); real
    protocols need one extra round to turn the state into outputs, since
    the partition becomes common knowledge with a one-round lag.
    """
    return run_queries(_compiled(chain), [Query.expected_time(task)])[0]


def expected_time_table(
    chain: "ConsistencyChain | CompiledChain", task: SymmetryBreakingTask
) -> dict:
    """Expected remaining time from every reachable state (diagnostics).

    States from which the task is unreachable map to ``None``.
    """
    compiled = _compiled(chain)
    times = compiled.expected_times(task)
    return {
        compiled.partition_of(sid): times[sid]
        for sid in range(compiled.num_states)
    }


def solving_time_distribution(
    chain: "ConsistencyChain | CompiledChain",
    task: SymmetryBreakingTask,
    t_max: int,
) -> list[Fraction]:
    """Exact ``Pr[T = t]`` for ``t = 1..t_max``.

    ``T`` is the first time the global state solves the task; by
    monotonicity ``Pr[T = t] = Pr[S(t)] - Pr[S(t-1)]``.  The remaining mass
    ``1 - Pr[S(t_max)]`` covers both later solves and (for non-eventually-
    solvable configurations) the never-solving event.
    """
    series = run_queries(_compiled(chain), [Query.series(task, t_max)])[0]
    previous = Fraction(0)
    distribution = []
    for prob in series:
        distribution.append(prob - previous)
        previous = prob
    return distribution


def solving_time_quantile(
    chain: "ConsistencyChain | CompiledChain",
    task: SymmetryBreakingTask,
    q: Fraction | float,
    *,
    t_cap: int = 512,
) -> int | None:
    """Smallest ``t`` with ``Pr[S(t)] >= q`` (None if not reached by cap)."""
    return _compiled(chain).solving_time_quantile(task, q, t_cap=t_cap)


__all__ = [
    "expected_solving_time",
    "expected_time_table",
    "solving_time_distribution",
    "solving_time_quantile",
]
