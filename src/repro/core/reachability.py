"""Worst-case reachability of knowledge-class size multisets.

Under an *adversarial* port assignment the only splits a protocol can force
are the ones Lemma 4.7 guarantees: matching a smaller class ``a`` into a
larger class ``b`` splits the larger into matched/unmatched parts of sizes
exactly ``(a, b - a)`` (Algorithm 1 matches every member of the smaller
class).  Closing the initial multiset ``{n_1, ..., n_k}`` under the
operation

    pick classes of sizes ``x <= y``; replace ``y`` by ``x`` and ``y - x``

yields every class-size multiset reachable in the worst case.  This module
computes that closure and uses it as a *computed oracle* for worst-case
solvability of count tasks:

* leader election is worst-case solvable iff some reachable multiset
  contains a ``1`` -- which the closure shows happens iff
  ``gcd(n_1..n_k) = 1`` (this is Euclid's algorithm; Theorem 4.2);
* ``k``-leader election is worst-case solvable iff some reachable multiset
  has a sub-multiset summing to ``k`` -- the closure shows this is exactly
  ``gcd(n_1..n_k) | k``, generalizing the theorem.

Necessity is Lemma 4.3's invariant: under the adversarial assignment every
knowledge class keeps a size divisible by ``g``, so any union of classes
(in particular the set of leaders) has size divisible by ``g``.
"""

from __future__ import annotations

import math
from functools import lru_cache
from typing import Iterable

SizeMultiset = tuple[int, ...]


def _canonical(sizes: Iterable[int]) -> SizeMultiset:
    sizes = tuple(sorted(int(s) for s in sizes))
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"invalid size multiset {sizes}")
    return sizes


def matching_moves(sizes: SizeMultiset) -> set[SizeMultiset]:
    """All multisets reachable in one guaranteed matching step."""
    out: set[SizeMultiset] = set()
    distinct = sorted(set(sizes))
    for i, x in enumerate(distinct):
        for y in distinct[i:]:
            if x == y:
                if sizes.count(x) < 2:
                    continue
                # Matching two equal-size classes matches everyone:
                # no split, nothing new.
                continue
            remaining = list(sizes)
            remaining.remove(y)
            remaining.append(x)
            if y - x:
                remaining.append(y - x)
            out.add(tuple(sorted(remaining)))
    return out


@lru_cache(maxsize=4096)
def reachable_multisets(sizes: SizeMultiset) -> frozenset[SizeMultiset]:
    """Closure of ``sizes`` under guaranteed matching steps (BFS)."""
    start = _canonical(sizes)
    seen = {start}
    frontier = [start]
    while frontier:
        current = frontier.pop()
        for nxt in matching_moves(current):
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return frozenset(seen)


def has_submultiset_sum(sizes: SizeMultiset, target: int) -> bool:
    """Subset-sum over a multiset of class sizes."""
    reachable = {0}
    for size in sizes:
        reachable |= {r + size for r in reachable if r + size <= target}
    return target in reachable


def worst_case_k_leader_solvable(sizes: Iterable[int], k: int) -> bool:
    """Computed oracle: some reachable multiset selects exactly ``k`` nodes."""
    start = _canonical(sizes)
    if not 1 <= k <= sum(start):
        raise ValueError(f"need 1 <= k <= n, got k={k}")
    return any(
        has_submultiset_sum(multiset, k)
        for multiset in reachable_multisets(start)
    )


def worst_case_leader_election_solvable(sizes: Iterable[int]) -> bool:
    """Leader election (``k = 1``) via the computed oracle."""
    return worst_case_k_leader_solvable(sizes, 1)


def gcd_divides_k(sizes: Iterable[int], k: int) -> bool:
    """The closed-form prediction ``gcd(n_1..n_k) | k``.

    The test suite checks this agrees with
    :func:`worst_case_k_leader_solvable` on exhaustive sweeps; for ``k = 1``
    it specializes to Theorem 4.2's ``gcd = 1``.
    """
    return k % math.gcd(*_canonical(sizes)) == 0


def minimum_reachable_class(sizes: Iterable[int]) -> int:
    """The smallest class size achievable in the worst case.

    Equals ``gcd(n_1..n_k)`` (Euclid); validated by tests against the
    closure.
    """
    return min(
        min(multiset) for multiset in reachable_multisets(_canonical(sizes))
    )


__all__ = [
    "SizeMultiset",
    "gcd_divides_k",
    "has_submultiset_sum",
    "matching_moves",
    "minimum_reachable_class",
    "reachable_multisets",
    "worst_case_k_leader_solvable",
    "worst_case_leader_election_solvable",
]
