"""Exact analysis of the consistency partition as a Markov chain.

The consistency relation ``~t`` (knowledge equality) induces a partition of
the nodes at every time, and the partition at time ``t+1`` is a
*deterministic* function of the partition at time ``t`` and the round's
source bits:

* blackboard (Eq. 1): ``i ~' j  iff  i ~ j  and  bit_i == bit_j``;
* message passing (Eq. 2): additionally ``pi_i(p) ~ pi_j(p)`` for every
  port ``p`` (received tuples are compared port-wise).

Only bit *equalities* matter, never bit values, so the partition evolves as
a Markov chain whose per-round input is one of the ``2^k`` equally-likely
source-bit vectors.  The chain is monotone: partitions only refine.  This
yields

* :meth:`ConsistencyChain.state_distribution` -- the exact distribution of
  the partition at any time ``t`` (Fractions, no enumeration of ``2^{tk}``
  realizations);
* :meth:`ConsistencyChain.solving_probability` -- the exact
  ``Pr[S(t) | alpha]`` for any symmetric task;
* :meth:`ConsistencyChain.limit_solving_probability` -- the exact limit
  ``lim_t Pr[S(t) | alpha]``, computed by absorption analysis over the
  (finite, acyclic-up-to-self-loops) refinement lattice.  Lemma 3.2 says
  the limit must be 0 or 1; the test suite asserts that on sweeps, making
  the zero-one law machine-checked rather than assumed.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..randomness.configuration import RandomnessConfiguration
from .tasks import SymmetryBreakingTask

#: Canonical partition state: sorted tuple of sorted node tuples.
PartitionState = tuple[tuple[int, ...], ...]

#: Refuse chains that would be astronomically large.
MAX_NODES = 10


def canonical_state(blocks: "list[frozenset[int]] | PartitionState") -> PartitionState:
    """Canonicalize a partition into a hashable, ordered state."""
    return tuple(sorted(tuple(sorted(block)) for block in blocks))


def single_block_state(n: int) -> PartitionState:
    """The time-0 partition: every node holds ``bottom``."""
    return (tuple(range(n)),)


def is_refinement(fine: PartitionState, coarse: PartitionState) -> bool:
    """True when every block of ``fine`` lies inside a block of ``coarse``."""
    membership = {}
    for index, block in enumerate(coarse):
        for node in block:
            membership[node] = index
    return all(
        len({membership[node] for node in block}) == 1 for block in fine
    )


class ConsistencyChain:
    """The Markov chain of consistency partitions for one configuration.

    ``ports=None`` selects the blackboard model; a
    :class:`~repro.models.ports.PortAssignment` (clique) or a
    :class:`~repro.models.graph.GraphTopology` (arbitrary connected graph)
    selects message passing on that labeling.  With
    ``include_back_ports=True`` the refinement additionally uses the
    sender-side port of each received message (the classical
    anonymous-network semantics; see
    :mod:`repro.models.graph_model`).
    """

    def __init__(
        self,
        alpha: RandomnessConfiguration,
        ports=None,
        *,
        include_back_ports: bool = False,
    ):
        if alpha.n > MAX_NODES:
            raise ValueError(
                f"exact chain supports n <= {MAX_NODES}, got {alpha.n}"
            )
        if ports is not None and ports.n != alpha.n:
            raise ValueError("port assignment size does not match alpha")
        if ports is None and include_back_ports:
            raise ValueError("back ports are meaningless on a blackboard")
        self.alpha = alpha
        self.ports = ports
        self.include_back_ports = include_back_ports
        if ports is not None and include_back_ports:
            self._back = tuple(
                tuple(
                    ports.port_to(nbr, node)
                    for nbr in ports.neighbours(node)
                )
                for node in range(alpha.n)
            )
        else:
            self._back = None
        self._transition_cache: dict[
            PartitionState, dict[PartitionState, Fraction]
        ] = {}

    # ------------------------------------------------------------------
    # One-round refinement
    # ------------------------------------------------------------------
    def refine(
        self, state: PartitionState, source_bits: tuple[int, ...]
    ) -> PartitionState:
        """Apply one synchronous round with the given per-source bits."""
        n = self.alpha.n
        label = {}
        for index, block in enumerate(state):
            for node in block:
                label[node] = index
        bits = [source_bits[self.alpha.source_of(i)] for i in range(n)]
        if self.ports is None:
            keys = [(label[i], bits[i]) for i in range(n)]
        elif self._back is None:
            keys = [
                (
                    label[i],
                    bits[i],
                    tuple(label[j] for j in self.ports.neighbours(i)),
                )
                for i in range(n)
            ]
        else:
            keys = [
                (
                    label[i],
                    bits[i],
                    tuple(
                        (label[j], back)
                        for j, back in zip(
                            self.ports.neighbours(i), self._back[i]
                        )
                    ),
                )
                for i in range(n)
            ]
        blocks: dict[tuple, list[int]] = {}
        for node in range(n):
            blocks.setdefault(keys[node], []).append(node)
        return canonical_state(
            [frozenset(block) for block in blocks.values()]
        )

    def transitions(
        self, state: PartitionState
    ) -> dict[PartitionState, Fraction]:
        """Next-state distribution from ``state`` (one round)."""
        cached = self._transition_cache.get(state)
        if cached is not None:
            return cached
        k = self.alpha.k
        out: dict[PartitionState, Fraction] = {}
        weight = Fraction(1, 2 ** (k - 1)) if k > 1 else Fraction(1)
        # Bit vectors and their complements refine identically; fix the
        # first source's bit to halve the enumeration.
        for rest in itertools.product((0, 1), repeat=k - 1):
            source_bits = (0, *rest)
            nxt = self.refine(state, source_bits)
            out[nxt] = out.get(nxt, Fraction(0)) + weight
        self._transition_cache[state] = out
        return out

    # ------------------------------------------------------------------
    # Exact finite-time distribution
    # ------------------------------------------------------------------
    def state_distribution(
        self, t: int
    ) -> dict[PartitionState, Fraction]:
        """Exact distribution of the consistency partition at time ``t``."""
        if t < 0:
            raise ValueError("need t >= 0")
        dist = {single_block_state(self.alpha.n): Fraction(1)}
        for _ in range(t):
            nxt: dict[PartitionState, Fraction] = {}
            for state, prob in dist.items():
                for new_state, step in self.transitions(state).items():
                    nxt[new_state] = nxt.get(new_state, Fraction(0)) + prob * step
            dist = nxt
        return dist

    def solving_probability(
        self, task: SymmetryBreakingTask, t: int
    ) -> Fraction:
        """Exact ``Pr[S(t) | alpha]`` for a symmetric task."""
        total = Fraction(0)
        for state, prob in self.state_distribution(t).items():
            if task.solvable_from_partition([frozenset(b) for b in state]):
                total += prob
        return total

    def solving_probability_series(
        self, task: SymmetryBreakingTask, t_max: int
    ) -> list[Fraction]:
        """``[Pr[S(1)], ..., Pr[S(t_max)]]`` sharing work across times."""
        dist = {single_block_state(self.alpha.n): Fraction(1)}
        series: list[Fraction] = []
        for _ in range(t_max):
            nxt: dict[PartitionState, Fraction] = {}
            for state, prob in dist.items():
                for new_state, step in self.transitions(state).items():
                    nxt[new_state] = nxt.get(new_state, Fraction(0)) + prob * step
            dist = nxt
            series.append(
                sum(
                    (
                        prob
                        for state, prob in dist.items()
                        if task.solvable_from_partition(
                            [frozenset(b) for b in state]
                        )
                    ),
                    Fraction(0),
                )
            )
        return series

    # ------------------------------------------------------------------
    # Exact limits (eventual solvability)
    # ------------------------------------------------------------------
    def reachable_states(self) -> set[PartitionState]:
        """All partition states reachable from the initial state."""
        start = single_block_state(self.alpha.n)
        seen = {start}
        frontier = [start]
        while frontier:
            state = frontier.pop()
            for nxt in self.transitions(state):
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)
        return seen

    def limit_solving_probability(
        self, task: SymmetryBreakingTask
    ) -> Fraction:
        """Exact ``lim_{t->inf} Pr[S(t) | alpha]``.

        Solvability is monotone under refinement (a finer partition refines
        everything a coarser one does), so the limit equals the probability
        of ever reaching a solving state.  Transitions strictly increase the
        block count except for self-loops, so states can be processed in
        decreasing block count: ``p(s) = 1`` for solving states, and
        otherwise ``p(s) = sum_{s' != s} P(s -> s') p(s') / (1 - P(s -> s))``
        with ``p(s) = 0`` when the state is absorbing and non-solving.
        """
        states = sorted(self.reachable_states(), key=len, reverse=True)
        prob: dict[PartitionState, Fraction] = {}
        for state in states:
            if task.solvable_from_partition([frozenset(b) for b in state]):
                prob[state] = Fraction(1)
                continue
            moves = self.transitions(state)
            self_loop = moves.get(state, Fraction(0))
            if self_loop == 1:
                prob[state] = Fraction(0)
                continue
            total = Fraction(0)
            for nxt, step in moves.items():
                if nxt != state:
                    total += step * prob[nxt]
            prob[state] = total / (1 - self_loop)
        return prob[single_block_state(self.alpha.n)]

    def to_networkx(self):
        """The reachable transition graph as a networkx DiGraph.

        Nodes are partition states; edge weights carry the transition
        probabilities (as ``Fraction``).  Useful for external analysis and
        cross-validated against the internal absorption solver in tests.
        """
        import networkx as nx

        graph = nx.DiGraph()
        for state in self.reachable_states():
            graph.add_node(state, blocks=len(state))
            for nxt, prob in self.transitions(state).items():
                graph.add_edge(state, nxt, weight=prob)
        return graph

    def eventually_solvable(self, task: SymmetryBreakingTask) -> bool:
        """Definition 3.3 decided exactly; asserts the zero-one law."""
        limit = self.limit_solving_probability(task)
        if limit not in (Fraction(0), Fraction(1)):
            raise AssertionError(
                f"zero-one law violated: limit {limit} for {self.alpha!r}"
            )
        return limit == 1


__all__ = [
    "ConsistencyChain",
    "MAX_NODES",
    "PartitionState",
    "canonical_state",
    "is_refinement",
    "single_block_state",
]
