"""Exact analysis of the consistency partition as a Markov chain.

The consistency relation ``~t`` (knowledge equality) induces a partition of
the nodes at every time, and the partition at time ``t+1`` is a
*deterministic* function of the partition at time ``t`` and the round's
source bits:

* blackboard (Eq. 1): ``i ~' j  iff  i ~ j  and  bit_i == bit_j``;
* message passing (Eq. 2): additionally ``pi_i(p) ~ pi_j(p)`` for every
  port ``p`` (received tuples are compared port-wise).

Only bit *equalities* matter, never bit values, so the partition evolves as
a Markov chain whose per-round input is one of the ``2^k`` equally-likely
source-bit vectors.  The chain is monotone: partitions only refine.  This
yields

* :meth:`ConsistencyChain.state_distribution` -- the exact distribution of
  the partition at any time ``t`` (Fractions, no enumeration of ``2^{tk}``
  realizations);
* :meth:`ConsistencyChain.solving_probability` -- the exact
  ``Pr[S(t) | alpha]`` for any symmetric task;
* :meth:`ConsistencyChain.limit_solving_probability` -- the exact limit
  ``lim_t Pr[S(t) | alpha]``, computed by absorption analysis over the
  (finite, acyclic-up-to-self-loops) refinement lattice.  Lemma 3.2 says
  the limit must be 0 or 1; the test suite asserts that on sweeps, making
  the zero-one law machine-checked rather than assumed.

Since the compiled-engine refactor this module is a thin *facade* over
:mod:`repro.chain`: the reachable state space is explored exactly once
per ``(alpha, ports)`` across the whole process (hash-consed label
vectors, sparse integer transition arrays), and every query here is a
pass over the compiled chain.  ``backend="exact"`` (default) returns the
same ``Fraction`` values the seed implementation produced;
``backend="float"`` switches the probability queries to numpy
``float64`` for long horizons and large state spaces.
"""

from __future__ import annotations

import itertools
from fractions import Fraction

from ..chain import (
    MAX_NODES,
    CompiledChain,
    back_port_tables,
    blocks_from_labels,
    compile_chain,
    labels_from_blocks,
    neighbour_tables,
    refine_labels,
    validate_backend,
)
from ..randomness.configuration import RandomnessConfiguration
from .tasks import SymmetryBreakingTask

#: Canonical partition state: sorted tuple of sorted node tuples.
PartitionState = tuple[tuple[int, ...], ...]


def canonical_state(blocks: "list[frozenset[int]] | PartitionState") -> PartitionState:
    """Canonicalize a partition into a hashable, ordered state."""
    return tuple(sorted(tuple(sorted(block)) for block in blocks))


def single_block_state(n: int) -> PartitionState:
    """The time-0 partition: every node holds ``bottom``."""
    return (tuple(range(n)),)


def is_refinement(fine: PartitionState, coarse: PartitionState) -> bool:
    """True when every block of ``fine`` lies inside a block of ``coarse``."""
    membership = {}
    for index, block in enumerate(coarse):
        for node in block:
            membership[node] = index
    return all(
        len({membership[node] for node in block}) == 1 for block in fine
    )


class ConsistencyChain:
    """The Markov chain of consistency partitions for one configuration.

    ``ports=None`` selects the blackboard model; a
    :class:`~repro.models.ports.PortAssignment` (clique) or a
    :class:`~repro.models.graph.GraphTopology` (arbitrary connected graph)
    selects message passing on that labeling.  With
    ``include_back_ports=True`` the refinement additionally uses the
    sender-side port of each received message (the classical
    anonymous-network semantics; see
    :mod:`repro.models.graph_model`).

    ``backend`` selects the arithmetic of the probability queries:
    ``"exact"`` (Fraction, the default and the seed semantics) or
    ``"float"`` (numpy float64).  Structural queries --
    :meth:`reachable_states`, :meth:`transitions`,
    :meth:`state_distribution`, :meth:`eventually_solvable` -- stay
    exact under either backend.
    """

    def __init__(
        self,
        alpha: RandomnessConfiguration,
        ports=None,
        *,
        include_back_ports: bool = False,
        backend: str = "exact",
    ):
        if alpha.n > MAX_NODES:
            raise ValueError(
                f"exact chain supports n <= {MAX_NODES}, got {alpha.n}"
            )
        if ports is not None and ports.n != alpha.n:
            raise ValueError("port assignment size does not match alpha")
        if ports is None and include_back_ports:
            raise ValueError("back ports are meaningless on a blackboard")
        self.alpha = alpha
        self.ports = ports
        self.include_back_ports = include_back_ports
        self.backend = validate_backend(backend)
        self._neigh = None if ports is None else neighbour_tables(ports)
        self._back = (
            back_port_tables(ports)
            if ports is not None and include_back_ports
            else None
        )
        self._compiled: CompiledChain | None = None
        self._transition_cache: dict[
            PartitionState, dict[PartitionState, Fraction]
        ] = {}

    @property
    def compiled(self) -> CompiledChain:
        """The underlying compiled chain (shared process-wide)."""
        if self._compiled is None:
            self._compiled = compile_chain(
                self.alpha,
                self.ports,
                include_back_ports=self.include_back_ports,
            )
        return self._compiled

    # ------------------------------------------------------------------
    # One-round refinement
    # ------------------------------------------------------------------
    def refine(
        self, state: PartitionState, source_bits: tuple[int, ...]
    ) -> PartitionState:
        """Apply one synchronous round with the given per-source bits."""
        n = self.alpha.n
        labels = labels_from_blocks(state)
        node_bits = tuple(
            source_bits[self.alpha.source_of(i)] for i in range(n)
        )
        nxt = refine_labels(labels, node_bits, self._neigh, self._back)
        return blocks_from_labels(nxt)

    def transitions(
        self, state: PartitionState
    ) -> dict[PartitionState, Fraction]:
        """Next-state distribution from ``state`` (one round)."""
        cached = self._transition_cache.get(state)
        if cached is not None:
            return cached
        compiled = self.compiled
        sid = compiled.state_id(labels_from_blocks(state))
        if sid is not None:
            out = {
                compiled.partition_of(dst): Fraction(cnt, compiled.denom)
                for dst, cnt in compiled.out_edges(sid)
            }
        else:
            # Unreachable (hence uncompiled) states still answer: the same
            # halved enumeration the compiler uses, on this one state.
            k = self.alpha.k
            out = {}
            weight = Fraction(1, 2 ** (k - 1)) if k > 1 else Fraction(1)
            for rest in itertools.product((0, 1), repeat=k - 1):
                nxt = self.refine(state, (0, *rest))
                out[nxt] = out.get(nxt, Fraction(0)) + weight
        self._transition_cache[state] = out
        return out

    # ------------------------------------------------------------------
    # Exact finite-time distribution
    # ------------------------------------------------------------------
    def state_distribution(
        self, t: int
    ) -> dict[PartitionState, Fraction]:
        """Exact distribution of the consistency partition at time ``t``."""
        compiled = self.compiled
        return {
            compiled.partition_of(sid): prob
            for sid, prob in compiled.state_distribution(t).items()
        }

    def solving_probability(
        self, task: SymmetryBreakingTask, t: int
    ) -> "Fraction | float":
        """``Pr[S(t) | alpha]`` for a symmetric task (exact by default)."""
        return self.compiled.solving_probability(
            task, t, backend=self.backend
        )

    def solving_probability_series(
        self, task: SymmetryBreakingTask, t_max: int
    ) -> "list[Fraction] | list[float]":
        """``[Pr[S(1)], ..., Pr[S(t_max)]]`` sharing work across times."""
        return self.compiled.solving_probability_series(
            task, t_max, backend=self.backend
        )

    # ------------------------------------------------------------------
    # Exact limits (eventual solvability)
    # ------------------------------------------------------------------
    def reachable_states(self) -> set[PartitionState]:
        """All partition states reachable from the initial state."""
        compiled = self.compiled
        return {
            compiled.partition_of(sid)
            for sid in range(compiled.num_states)
        }

    def limit_solving_probability(
        self, task: SymmetryBreakingTask
    ) -> "Fraction | float":
        """``lim_{t->inf} Pr[S(t) | alpha]`` (exact by default).

        Solvability is monotone under refinement, so the limit equals the
        probability of ever reaching a solving state; the compiled chain
        solves the first-step equations in one reverse-topological pass.
        """
        return self.compiled.limit_solving_probability(
            task, backend=self.backend
        )

    def to_networkx(self):
        """The reachable transition graph as a networkx DiGraph.

        Nodes are partition states; edge weights carry the transition
        probabilities (as ``Fraction``).  Useful for external analysis and
        cross-validated against the internal absorption solver in tests.
        """
        import networkx as nx

        compiled = self.compiled
        graph = nx.DiGraph()
        for sid in range(compiled.num_states):
            state = compiled.partition_of(sid)
            graph.add_node(state, blocks=len(state))
            for dst, prob in compiled.transitions_exact(sid).items():
                graph.add_edge(state, compiled.partition_of(dst), weight=prob)
        return graph

    def eventually_solvable(self, task: SymmetryBreakingTask) -> bool:
        """Definition 3.3 decided exactly; asserts the zero-one law."""
        limit = self.compiled.limit_solving_probability(task)
        if limit not in (Fraction(0), Fraction(1)):
            raise AssertionError(
                f"zero-one law violated: limit {limit} for {self.alpha!r}"
            )
        return limit == 1


__all__ = [
    "ConsistencyChain",
    "MAX_NODES",
    "PartitionState",
    "canonical_state",
    "is_refinement",
    "single_block_state",
]
