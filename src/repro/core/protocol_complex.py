"""The protocol complex ``P(t)`` and the facet isomorphism ``h`` (Section 3.3).

``P(t)`` has vertices ``(i, K_i(t))`` and one facet per reachable global
state.  In the anonymous fault-free models of the paper, the global state
at time ``t`` is a deterministic function of the realization, so facets of
``P(t)`` correspond one-to-one to facets of ``R(t)`` -- the simplicial map
``h : P(t) -> R(t)`` that forgets everything but one's own random bits
restricts to an isomorphism on facets (distinct realizations can, however,
share ``P(t)``-vertices, which is why ``h`` is many-to-one on vertices).

Materializing ``P(t)`` costs ``2^{nt}`` knowledge evaluations and is only
done for the figure-sized parameters; the dataclass returned keeps the
facet correspondence so the tests can check the isomorphism claims of
Lemma 3.5 directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..models.base import CommunicationModel
from ..randomness.realizations import NodeRealization
from ..topology import Simplex, SimplicialComplex, Vertex
from .projection import realization_facet
from .realization_complex import MATERIALIZE_LIMIT, facet_count, iter_realizations


def protocol_facet(
    model: CommunicationModel, realization: NodeRealization
) -> Simplex:
    """The facet ``{(i, K_i(t))}`` of ``P(t)`` for one realization."""
    knowledge = model.knowledge_ids(realization)
    return Simplex(Vertex(i, kid) for i, kid in enumerate(knowledge))


@dataclass(frozen=True)
class ProtocolComplexBuild:
    """``P(t)`` together with its facet correspondence to ``R(t)``."""

    complex: SimplicialComplex
    #: (P(t) facet, R(t) facet) pairs -- the graph of ``h`` on facets.
    facet_pairs: tuple[tuple[Simplex, Simplex], ...]

    def vertex_count(self) -> int:
        return len(self.complex.vertices())

    def facet_count(self) -> int:
        return self.complex.facet_count()

    def h_vertex_map(self) -> dict[Vertex, Vertex]:
        """The vertex map ``h: (i, K_i) -> (i, x_i)``.

        Well-definedness (a knowledge vertex always projects to the same
        bits) holds because ``K_i(t)`` contains ``x_i(t)``; the constructor
        of this map asserts it.
        """
        mapping: dict[Vertex, Vertex] = {}
        for p_facet, r_facet in self.facet_pairs:
            for p_vertex in p_facet.vertices:
                r_vertex = Vertex(
                    p_vertex.name, r_facet.value_of(p_vertex.name)
                )
                existing = mapping.get(p_vertex)
                if existing is None:
                    mapping[p_vertex] = r_vertex
                elif existing != r_vertex:
                    raise AssertionError(
                        "h is not well-defined: knowledge vertex "
                        f"{p_vertex} maps to both {existing} and {r_vertex}"
                    )
        return mapping


def build_protocol_complex(
    model: CommunicationModel, t: int
) -> ProtocolComplexBuild:
    """Materialize ``P(t)`` for the model's ``n`` (guarded by size)."""
    n = model.n
    count = facet_count(n, t)
    if count > MATERIALIZE_LIMIT:
        raise ValueError(
            f"P(t) would need {count} realizations; too large to materialize"
        )
    pairs: list[tuple[Simplex, Simplex]] = []
    if t == 0:
        realizations: list[NodeRealization] = [tuple(() for _ in range(n))]
    else:
        realizations = list(iter_realizations(n, t))
    for rho in realizations:
        pairs.append((protocol_facet(model, rho), realization_facet(rho)))
    complex_ = SimplicialComplex(p for p, _ in pairs)
    return ProtocolComplexBuild(complex_, tuple(pairs))


def facet_correspondence_is_bijective(build: ProtocolComplexBuild) -> bool:
    """Check that ``h`` restricts to a bijection on facets.

    Distinct realizations must give distinct global states (the knowledge of
    the system determines the randomness and vice versa -- Section 3.3).
    """
    p_facets = {p for p, _ in build.facet_pairs}
    r_facets = {r for _, r in build.facet_pairs}
    return (
        len(p_facets) == len(build.facet_pairs)
        and len(r_facets) == len(build.facet_pairs)
    )


__all__ = [
    "ProtocolComplexBuild",
    "build_protocol_complex",
    "facet_correspondence_is_bijective",
    "protocol_facet",
]
