"""The synchronous round operator on protocol complexes.

Figure 1 depicts ``P(t)`` evolving into ``P(t+1)``: every facet (global
state) branches into ``2^n`` facets, one per vector of fresh random bits,
with knowledge updated by Eq. (1)/(2).  This module implements that arrow
*directly on the complex* -- no realizations involved -- which makes the
evolution a bona-fide operator on chromatic complexes:

    P(t+1) = R(P(t)),    P(0) = the single bottom facet.

The test suite checks that iterating the operator reproduces the direct
construction of :func:`repro.core.protocol_complex.build_protocol_complex`
for every ``t`` it can materialize, in both models.  This is the
reproduction's executable version of "the evolution of the system with
time translates to the evolution of the complex".
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..models.base import CommunicationModel
from ..models.blackboard import BlackboardModel
from ..models.message_passing import MessagePassingModel
from ..topology import Simplex, SimplicialComplex, Vertex


def evolve_facet(
    model: CommunicationModel, facet: Simplex, bits: tuple[int, ...]
) -> Simplex:
    """One round applied to one global state with given fresh bits.

    The vertices of ``facet`` carry interned knowledge ids in the model's
    interner; the result carries the updated ids.
    """
    n = model.n
    if facet.names() != frozenset(range(n)):
        raise ValueError("facet must carry one vertex per node 0..n-1")
    if len(bits) != n:
        raise ValueError(f"need {n} bits, got {len(bits)}")
    knowledge = [facet.value_of(i) for i in range(n)]
    updated = []
    if isinstance(model, BlackboardModel):
        for i in range(n):
            others = [knowledge[j] for j in range(n) if j != i]
            updated.append(
                model.interner.blackboard_update(
                    knowledge[i], bits[i], others
                )
            )
    elif isinstance(model, MessagePassingModel):
        for i in range(n):
            received = [
                knowledge[model.ports.neighbour(i, port)]
                for port in range(1, n)
            ]
            updated.append(
                model.interner.message_passing_update(
                    knowledge[i], bits[i], received
                )
            )
    else:
        raise TypeError(f"unsupported model {type(model).__name__}")
    return Simplex(Vertex(i, kid) for i, kid in enumerate(updated))


def facet_successors(
    model: CommunicationModel, facet: Simplex
) -> Iterator[Simplex]:
    """All ``2^n`` one-round successors of a global state."""
    for bits in itertools.product((0, 1), repeat=model.n):
        yield evolve_facet(model, facet, bits)


def round_operator(
    model: CommunicationModel, complex_: SimplicialComplex
) -> SimplicialComplex:
    """``P(t) -> P(t+1)``: evolve every facet by one synchronous round."""
    facets: list[Simplex] = []
    for facet in complex_.facets:
        facets.extend(facet_successors(model, facet))
    return SimplicialComplex(facets)


def initial_protocol_complex(model: CommunicationModel) -> SimplicialComplex:
    """``P(0)``: the single facet of all-bottom knowledge."""
    from ..models.knowledge import BOTTOM_ID

    return SimplicialComplex(
        [Simplex(Vertex(i, BOTTOM_ID) for i in range(model.n))]
    )


def iterate_protocol_complex(
    model: CommunicationModel, t: int
) -> SimplicialComplex:
    """``P(t)`` by iterating the round operator from ``P(0)``."""
    if t < 0:
        raise ValueError("need t >= 0")
    complex_ = initial_protocol_complex(model)
    for _ in range(t):
        complex_ = round_operator(model, complex_)
    return complex_


__all__ = [
    "evolve_facet",
    "facet_successors",
    "initial_protocol_complex",
    "iterate_protocol_complex",
    "round_operator",
]
