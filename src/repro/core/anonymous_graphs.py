"""Solvability on anonymous graphs (the conclusion's open direction).

With a *single* randomness source (``k = 1``) every node receives the same
bits, so bit equalities carry no information and the consistency partition
evolves deterministically: one round of refinement is exactly one round of
**port-aware color refinement** (1-WL on the port-labeled graph), and the
partition stabilizes at the coarsest equitable partition within at most
``n - 1`` rounds.  A task is then solvable iff the stable partition solves
it -- this is the deterministic-algorithm side of anonymous computing
(Angluin; Yamashita-Kameda), recovered as the ``k = 1`` slice of the
paper's framework.

For small graphs the module computes the *worst case over all port
labelings* by exhaustive enumeration, which reproduces two results the
paper cites:

* Angluin 1980: no deterministic leader election on anonymous rings;
* Codenotti et al.: leader election on ``K_{m,n}`` iff ``gcd(m, n) = 1``
  (under the classical semantics where messages carry the sender's port,
  ``include_back_ports=True``).
"""

from __future__ import annotations

from typing import Iterator

from ..chain import (
    back_port_tables,
    blocks_from_labels,
    neighbour_tables,
    refine_labels,
)
from ..models.graph import GraphTopology
from ..randomness.configuration import RandomnessConfiguration
from .markov import PartitionState
from .tasks import SymmetryBreakingTask


def color_refinement_fixpoint(
    topology: GraphTopology, *, include_back_ports: bool = True
) -> PartitionState:
    """The coarsest equitable partition of the port-labeled graph.

    This is the deterministic (``k = 1``) limit of the consistency
    partition: what an anonymous network can distinguish without usable
    randomness.  Runs directly on the engine's integer label vectors
    (one :func:`~repro.chain.refine_labels` call per round, no facade
    partition objects) and converts to the canonical
    :data:`PartitionState` only at the fixpoint.
    """
    n = topology.n
    neigh = neighbour_tables(topology)
    back = back_port_tables(topology) if include_back_ports else None
    # k = 1: every node sees the same (trivial) bit, so refinement is
    # deterministic and stabilizes within n - 1 rounds.
    bits = (0,) * n
    labels = (0,) * n
    while True:
        nxt = refine_labels(labels, bits, neigh, back)
        if nxt == labels:
            return blocks_from_labels(labels)
        labels = nxt


def deterministic_solvable(
    topology: GraphTopology,
    task: SymmetryBreakingTask,
    *,
    include_back_ports: bool = True,
) -> bool:
    """Deterministic solvability on one labeled topology."""
    state = color_refinement_fixpoint(
        topology, include_back_ports=include_back_ports
    )
    return task.solvable_from_partition([frozenset(b) for b in state])


def iter_labeling_verdicts(
    base: GraphTopology,
    task: SymmetryBreakingTask,
    *,
    include_back_ports: bool = True,
    limit: int = 1 << 16,
) -> Iterator[tuple[GraphTopology, bool]]:
    """Deterministic solvability for every port labeling of ``base``."""
    for labeled in base.iter_labelings(limit=limit):
        yield labeled, deterministic_solvable(
            labeled, task, include_back_ports=include_back_ports
        )


def worst_case_deterministic_solvable(
    base: GraphTopology,
    task: SymmetryBreakingTask,
    *,
    include_back_ports: bool = True,
    limit: int = 1 << 16,
) -> bool:
    """True when *every* port labeling solves the task deterministically."""
    return all(
        verdict
        for _, verdict in iter_labeling_verdicts(
            base, task, include_back_ports=include_back_ports, limit=limit
        )
    )


def randomized_worst_case_solvable(
    base: GraphTopology,
    alpha: RandomnessConfiguration,
    task: SymmetryBreakingTask,
    *,
    include_back_ports: bool = True,
    limit: int = 1 << 12,
) -> bool:
    """Worst case over labelings of the *randomized* eventual solvability.

    Uses the exact chain limit per labeling; only for small graphs (the
    labeling count is capped at ``limit``).
    """
    from ..chain import compile_chain

    if alpha.n != base.n:
        raise ValueError("configuration and topology sizes differ")
    for labeled in base.iter_labelings(limit=limit):
        # One-shot chains, one per labeling: bypass the process-wide
        # memo so exhaustive labeling sweeps do not pin them forever.
        chain = compile_chain(
            alpha,
            labeled,
            include_back_ports=include_back_ports,
            use_memo=False,
        )
        if not chain.eventually_solvable(task):
            return False
    return True


__all__ = [
    "color_refinement_fixpoint",
    "deterministic_solvable",
    "iter_labeling_verdicts",
    "randomized_worst_case_solvable",
    "worst_case_deterministic_solvable",
]
