"""A zoo of symmetry-breaking tasks beyond leader election.

The paper stresses that leader election is "merely a single example of our
framework" -- these builders exercise the framework on the natural
neighbours of leader election, all defined as count tasks:

* :func:`unique_ids` -- strong symmetry breaking: every node outputs a
  distinct value ("calling names on nameless networks");
* :func:`leader_and_deputy` -- the symmetric core of the conclusion's
  future-work example: one leader, one deputy, ``n-2`` followers;
* :func:`threshold_election` -- at least ``low`` and at most ``high``
  leaders, generalizing both leader election and weak symmetry breaking;
* :func:`partition_into_teams` -- split the system into teams of given
  sizes (e.g. a 2/3 split for replica placement).

Derived characterizations (validated against the exact chain limits in
tests and the ``bench_ext_task_zoo`` benchmark):

=================== =============================== =========================
task                blackboard                      clique, worst-case ports
=================== =============================== =========================
unique ids          all ``n_i = 1``                 ``gcd(n_i) = 1``
leader + deputy     two sources with ``n_i = 1``    ``gcd(n_i) = 1``
threshold [lo, hi]  subset-sum hits ``[lo, hi]``    some multiple of gcd in
                                                    ``[lo, hi]``
teams (s_1..s_m)    group sizes pack into team      reachable multiset packs
                    sizes                           into team sizes
=================== =============================== =========================
"""

from __future__ import annotations

from typing import Iterable

from ..randomness.configuration import RandomnessConfiguration
from .reachability import reachable_multisets
from .tasks import CountTask


def unique_ids(n: int) -> CountTask:
    """Every node outputs a distinct identifier (strong symmetry breaking)."""
    if n < 1:
        raise ValueError("need n >= 1")
    profile = {f"id{i}": 1 for i in range(n)}
    return CountTask(n, [profile], name="unique-ids")


def leader_and_deputy(n: int) -> CountTask:
    """One leader, one deputy, everyone else a follower."""
    if n < 2:
        raise ValueError("leader+deputy needs n >= 2")
    if n == 2:
        profile = {"leader": 1, "deputy": 1}
    else:
        profile = {"leader": 1, "deputy": 1, "follower": n - 2}
    return CountTask(n, [profile], name="leader-and-deputy")


def threshold_election(n: int, low: int, high: int) -> CountTask:
    """Between ``low`` and ``high`` leaders (inclusive)."""
    if not 1 <= low <= high <= n:
        raise ValueError(f"need 1 <= low <= high <= n, got [{low}, {high}]")
    profiles = []
    for k in range(low, high + 1):
        if k == n:
            profiles.append({1: n})
        else:
            profiles.append({1: k, 0: n - k})
    return CountTask(n, profiles, name=f"threshold-[{low},{high}]-election")


def partition_into_teams(team_sizes: Iterable[int]) -> CountTask:
    """Split the system into labeled teams of prescribed sizes."""
    sizes = tuple(int(s) for s in team_sizes)
    if not sizes or any(s < 1 for s in sizes):
        raise ValueError(f"invalid team sizes {sizes}")
    profile = {f"team{i}": size for i, size in enumerate(sizes)}
    return CountTask(sum(sizes), [profile], name=f"teams-{sizes}")


# ----------------------------------------------------------------------
# Closed-form characterizations (predictions; validated by tests/benches)
# ----------------------------------------------------------------------
def blackboard_unique_ids_solvable(alpha: RandomnessConfiguration) -> bool:
    """All sources private: the eventual partition must be discrete."""
    return all(size == 1 for size in alpha.group_sizes)


def mp_worst_case_unique_ids_solvable(alpha: RandomnessConfiguration) -> bool:
    """``gcd = 1``: Euclid separates everyone down to singletons."""
    return alpha.gcd == 1


def blackboard_leader_and_deputy_solvable(
    alpha: RandomnessConfiguration,
) -> bool:
    """Two distinct singleton sources (leader and deputy classes must be
    distinguishable singletons on a blackboard)."""
    return alpha.n >= 2 and alpha.group_sizes.count(1) >= 2


def mp_worst_case_leader_and_deputy_solvable(
    alpha: RandomnessConfiguration,
) -> bool:
    """Same condition as leader election: once one singleton exists, one
    matching against any other class yields a second singleton."""
    return alpha.n >= 2 and alpha.gcd == 1


def blackboard_threshold_solvable(
    alpha: RandomnessConfiguration, low: int, high: int
) -> bool:
    """Some sub-multiset of the group sizes sums into ``[low, high]``."""
    sums = {0}
    for size in alpha.group_sizes:
        sums |= {s + size for s in sums}
    return any(low <= s <= high for s in sums)


def mp_worst_case_threshold_solvable(
    alpha: RandomnessConfiguration, low: int, high: int
) -> bool:
    """Some multiple of the gcd lies in ``[low, high]`` (and ``<= n``)."""
    g = alpha.gcd
    k = ((low + g - 1) // g) * g  # smallest multiple of g >= low
    return k <= min(high, alpha.n)


def blackboard_teams_solvable(
    alpha: RandomnessConfiguration, team_sizes: Iterable[int]
) -> bool:
    """The source groups must pack exactly into the team sizes."""
    task = partition_into_teams(team_sizes)
    if task.n != alpha.n:
        raise ValueError("team sizes do not cover the configuration")
    return task.solvable_from_sizes(alpha.sorted_group_sizes)


def mp_worst_case_teams_solvable(
    alpha: RandomnessConfiguration, team_sizes: Iterable[int]
) -> bool:
    """Some reachable class multiset packs exactly into the team sizes."""
    task = partition_into_teams(team_sizes)
    if task.n != alpha.n:
        raise ValueError("team sizes do not cover the configuration")
    return any(
        task.solvable_from_sizes(multiset)
        for multiset in reachable_multisets(alpha.sorted_group_sizes)
    )


__all__ = [
    "blackboard_leader_and_deputy_solvable",
    "blackboard_teams_solvable",
    "blackboard_threshold_solvable",
    "blackboard_unique_ids_solvable",
    "leader_and_deputy",
    "mp_worst_case_leader_and_deputy_solvable",
    "mp_worst_case_teams_solvable",
    "mp_worst_case_threshold_solvable",
    "mp_worst_case_unique_ids_solvable",
    "partition_into_teams",
    "threshold_election",
    "unique_ids",
]
