"""Closed-form characterizations of eventual solvability (Section 4).

These are the paper's headline results, as predicates on the randomness
configuration:

* :func:`blackboard_solvable` -- Theorem 4.1: leader election on the
  blackboard is eventually solvable iff some source feeds exactly one node.
* :func:`message_passing_worst_case_solvable` -- Theorem 4.2: worst-case
  (adversarial ports) leader election on the clique is eventually solvable
  iff ``gcd(n_1, ..., n_k) = 1``.
* Generalizations for arbitrary symmetric tasks and for ``k``-leader
  election, derived from the same machinery (the eventual blackboard
  partition is the source partition; the worst-case message-passing
  reachable partitions are the matching closure).

Everything here is a *prediction*; the benchmarks and tests validate each
prediction against the exact Markov-chain limits and against protocol runs.
"""

from __future__ import annotations

from ..randomness.configuration import RandomnessConfiguration
from .reachability import (
    has_submultiset_sum,
    reachable_multisets,
    worst_case_k_leader_solvable,
)
from .tasks import SymmetryBreakingTask


def blackboard_solvable(alpha: RandomnessConfiguration) -> bool:
    """Theorem 4.1: exists ``i`` with ``n_i = 1``."""
    return alpha.has_singleton_source


def message_passing_worst_case_solvable(
    alpha: RandomnessConfiguration,
) -> bool:
    """Theorem 4.2: ``gcd(n_1, ..., n_k) = 1``."""
    return alpha.gcd == 1


def blackboard_task_solvable(
    alpha: RandomnessConfiguration, task: SymmetryBreakingTask
) -> bool:
    """Eventual solvability of any symmetric task on the blackboard.

    On a blackboard, knowledge equality is bit-string equality, so the
    consistency partition refines over time and converges almost surely to
    exactly the source partition (distinct sources eventually diverge;
    same-source nodes never do).  A task is eventually solvable iff the
    source partition solves it.
    """
    if task.n != alpha.n:
        raise ValueError("task and configuration sizes differ")
    return task.solvable_from_partition(alpha.source_partition())


def blackboard_k_leader_solvable(
    alpha: RandomnessConfiguration, k: int
) -> bool:
    """Blackboard ``k``-leader election: a sub-multiset of the ``n_i`` sums
    to ``k`` (the leaders must be a union of source groups)."""
    if not 1 <= k <= alpha.n:
        raise ValueError(f"need 1 <= k <= n, got k={k}")
    return has_submultiset_sum(alpha.sorted_group_sizes, k)


def message_passing_worst_case_k_leader_solvable(
    alpha: RandomnessConfiguration, k: int
) -> bool:
    """Worst-case ``k``-leader election via the matching-closure oracle.

    Coincides with the closed form ``gcd(n_1..n_k) | k`` (tested); for
    ``k = 1`` this is Theorem 4.2.
    """
    return worst_case_k_leader_solvable(alpha.sorted_group_sizes, k)


def message_passing_worst_case_task_solvable(
    alpha: RandomnessConfiguration, task: SymmetryBreakingTask
) -> bool:
    """Worst-case solvability of any symmetric task on the clique.

    The adversarial ports confine the protocol to the matching closure of
    the source sizes; the task is worst-case eventually solvable iff some
    reachable size multiset solves it.
    """
    if task.n != alpha.n:
        raise ValueError("task and configuration sizes differ")
    return any(
        task.solvable_from_sizes(multiset)
        for multiset in reachable_multisets(alpha.sorted_group_sizes)
    )


def two_leader_blackboard_solvable(alpha: RandomnessConfiguration) -> bool:
    """The Section 1.2 exercise, blackboard side: some ``n_i = 2`` or two
    sources with ``n_i = 1`` (i.e. a sub-multiset summing to 2)."""
    return blackboard_k_leader_solvable(alpha, 2)


def two_leader_message_passing_solvable(
    alpha: RandomnessConfiguration,
) -> bool:
    """The Section 1.2 exercise, message-passing side: ``gcd in {1, 2}``."""
    return message_passing_worst_case_k_leader_solvable(alpha, 2)


__all__ = [
    "blackboard_k_leader_solvable",
    "blackboard_solvable",
    "blackboard_task_solvable",
    "message_passing_worst_case_k_leader_solvable",
    "message_passing_worst_case_solvable",
    "message_passing_worst_case_task_solvable",
    "two_leader_blackboard_solvable",
    "two_leader_message_passing_solvable",
]
