"""The paper's framework: complexes, projections, solvability, probability.

This package is the reproduction's core contribution: per-facet solvability
of input-free symmetry-breaking tasks (Definitions 3.1/3.4), the
realization/protocol complex correspondence ``h``, the consistency
projections ``pi`` / ``pi~``, exact solving probabilities and their 0/1
limits, and the closed-form characterizations of Theorems 4.1 and 4.2 with
their ``k``-leader generalizations.
"""

from .anonymous_graphs import (
    color_refinement_fixpoint,
    deterministic_solvable,
    iter_labeling_verdicts,
    randomized_worst_case_solvable,
    worst_case_deterministic_solvable,
)
from .hitting_time import (
    expected_solving_time,
    expected_time_table,
    solving_time_distribution,
    solving_time_quantile,
)
from .task_zoo import (
    blackboard_leader_and_deputy_solvable,
    blackboard_teams_solvable,
    blackboard_threshold_solvable,
    blackboard_unique_ids_solvable,
    leader_and_deputy,
    mp_worst_case_leader_and_deputy_solvable,
    mp_worst_case_teams_solvable,
    mp_worst_case_threshold_solvable,
    mp_worst_case_unique_ids_solvable,
    partition_into_teams,
    threshold_election,
    unique_ids,
)
from .characterization import (
    blackboard_k_leader_solvable,
    blackboard_solvable,
    blackboard_task_solvable,
    message_passing_worst_case_k_leader_solvable,
    message_passing_worst_case_solvable,
    message_passing_worst_case_task_solvable,
    two_leader_blackboard_solvable,
    two_leader_message_passing_solvable,
)
from .leader_election import (
    FOLLOWER,
    LEADER,
    k_leader_election,
    leader_election,
    leader_election_complex,
    leader_election_facet,
    weak_symmetry_breaking,
)
from .markov import (
    ConsistencyChain,
    PartitionState,
    canonical_state,
    is_refinement,
    single_block_state,
)
from .probability import (
    eventually_solvable,
    model_for,
    solving_probability_enumerated,
    solving_probability_exact,
    solving_probability_sampled,
    solving_probability_series,
    solving_realizations,
)
from .projection import (
    knowledge_projection,
    project_complex,
    project_facet,
    projected_realization_complex,
    realization_facet,
)
from .protocol_complex import (
    ProtocolComplexBuild,
    build_protocol_complex,
    facet_correspondence_is_bijective,
    protocol_facet,
)
from .round_operator import (
    evolve_facet,
    facet_successors,
    initial_protocol_complex,
    iterate_protocol_complex,
    round_operator,
)
from .reachability import (
    gcd_divides_k,
    minimum_reachable_class,
    reachable_multisets,
    worst_case_k_leader_solvable,
    worst_case_leader_election_solvable,
)
from .realization_complex import (
    facet_count,
    iter_realizations,
    realization_complex,
    succeeds,
    vertex_count,
)
from .solvability import (
    realization_solves,
    solves_by_definition_31,
    solves_by_definition_34,
    solves_by_forced_map,
)
from .tasks import CountTask, OutputComplexTask, Partition, SymmetryBreakingTask
from .zero_one import (
    blackboard_unique_source_linear_bound,
    blackboard_unique_source_lower_bound,
    classify_limit,
    is_monotone_non_decreasing,
)

__all__ = [
    "ConsistencyChain",
    "CountTask",
    "FOLLOWER",
    "LEADER",
    "OutputComplexTask",
    "Partition",
    "PartitionState",
    "ProtocolComplexBuild",
    "SymmetryBreakingTask",
    "blackboard_k_leader_solvable",
    "blackboard_leader_and_deputy_solvable",
    "blackboard_solvable",
    "blackboard_task_solvable",
    "blackboard_teams_solvable",
    "blackboard_threshold_solvable",
    "blackboard_unique_ids_solvable",
    "blackboard_unique_source_linear_bound",
    "blackboard_unique_source_lower_bound",
    "build_protocol_complex",
    "canonical_state",
    "classify_limit",
    "worst_case_deterministic_solvable",
    "randomized_worst_case_solvable",
    "iter_labeling_verdicts",
    "deterministic_solvable",
    "color_refinement_fixpoint",
    "eventually_solvable",
    "expected_solving_time",
    "expected_time_table",
    "facet_correspondence_is_bijective",
    "facet_count",
    "round_operator",
    "iterate_protocol_complex",
    "initial_protocol_complex",
    "facet_successors",
    "evolve_facet",
    "gcd_divides_k",
    "is_monotone_non_decreasing",
    "is_refinement",
    "iter_realizations",
    "k_leader_election",
    "knowledge_projection",
    "leader_and_deputy",
    "leader_election",
    "leader_election_complex",
    "leader_election_facet",
    "message_passing_worst_case_k_leader_solvable",
    "message_passing_worst_case_solvable",
    "message_passing_worst_case_task_solvable",
    "minimum_reachable_class",
    "model_for",
    "mp_worst_case_leader_and_deputy_solvable",
    "mp_worst_case_teams_solvable",
    "mp_worst_case_threshold_solvable",
    "mp_worst_case_unique_ids_solvable",
    "partition_into_teams",
    "project_complex",
    "project_facet",
    "projected_realization_complex",
    "protocol_facet",
    "reachable_multisets",
    "realization_complex",
    "realization_facet",
    "realization_solves",
    "single_block_state",
    "solves_by_definition_31",
    "solves_by_definition_34",
    "solves_by_forced_map",
    "solving_probability_enumerated",
    "solving_probability_exact",
    "solving_probability_sampled",
    "solving_probability_series",
    "solving_realizations",
    "solving_time_quantile",
    "solving_time_distribution",
    "succeeds",
    "threshold_election",
    "two_leader_blackboard_solvable",
    "two_leader_message_passing_solvable",
    "unique_ids",
    "vertex_count",
    "weak_symmetry_breaking",
    "worst_case_k_leader_solvable",
    "worst_case_leader_election_solvable",
]
