"""Consistency projections ``pi`` and ``pi~`` (Section 3.3).

``pi`` applies to any facet of a chromatic complex: a set of the facet's
vertices forms a simplex of ``pi(sigma)`` iff they all carry *equal values*
(Eq. 3).  ``pi~`` applies to realizations: a set of vertices ``(i, x_i)``
forms a simplex of ``pi~(rho)`` iff the nodes have equal *knowledge*
``K_i(t)`` under the communication model (Eq. 5) -- equality of knowledge is
the consistency relation ``i ~t j``.

Because both relations are equivalences, the projections are disjoint
unions of simplices: one facet per equivalence class.  That structural fact
is what lets the library reduce solvability to partition refinement; the
test suite checks it homologically
(:func:`repro.topology.homology.is_disjoint_union_of_simplices`).
"""

from __future__ import annotations

from ..models.base import CommunicationModel
from ..randomness.realizations import NodeRealization
from ..topology import Simplex, SimplicialComplex, Vertex


def project_facet(facet: Simplex) -> SimplicialComplex:
    """``pi(sigma)`` for a single facet: group vertices by equal value."""
    blocks = facet.value_partition()
    return SimplicialComplex(
        Simplex(Vertex(name, facet.value_of(name)) for name in block)
        for block in blocks
    )


def project_complex(complex_: SimplicialComplex) -> SimplicialComplex:
    """``pi(K) = union of pi(sigma)`` over the facets of ``K``."""
    result = SimplicialComplex.empty()
    for facet in complex_.facets:
        result = result.union(project_facet(facet))
    return result


def realization_facet(realization: NodeRealization) -> Simplex:
    """The facet of ``R(t)`` for a realization: vertices ``(i, x_i)``."""
    return Simplex(
        Vertex(node, tuple(bits)) for node, bits in enumerate(realization)
    )


def knowledge_projection(
    model: CommunicationModel, realization: NodeRealization
) -> SimplicialComplex:
    """``pi~(rho)``: group the realization's vertices by equal knowledge.

    The vertices carry the random bit strings (they are vertices of
    ``R(t)``), but the grouping is by the knowledge the model derives from
    the whole realization -- in the message-passing model two nodes with
    identical strings may still be split by their ports.
    """
    partition = model.partition(realization)
    return SimplicialComplex(
        Simplex(Vertex(node, tuple(realization[node])) for node in block)
        for block in partition
    )


def projected_realization_complex(
    model: CommunicationModel, realizations: "list[NodeRealization]"
) -> SimplicialComplex:
    """``pi~`` applied to a set of realizations, united (Eq. 6).

    Pass all facets of ``R(t)`` for the full ``pi~(R(t))``, or only the
    positive-probability realizations of a configuration ``alpha`` for the
    sub-complex the solvability analysis actually inspects.
    """
    result = SimplicialComplex.empty()
    for realization in realizations:
        result = result.union(knowledge_projection(model, realization))
    return result


__all__ = [
    "knowledge_projection",
    "project_complex",
    "project_facet",
    "projected_realization_complex",
    "realization_facet",
]
