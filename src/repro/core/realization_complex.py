"""The realization complex ``R(t)`` (Section 3.3, Figure 2).

Vertices are pairs ``(i, x_i)`` with ``x_i in {0,1}^t``; every set of
vertices with pairwise-distinct names is a simplex, because the
all-independent configuration gives it positive probability.  ``R(t)``
therefore has ``n * 2^t`` vertices and ``2^{nt}`` facets; it is only
materialized for the tiny parameters of the figures, while the rest of the
library iterates over its facets (realizations) lazily.
"""

from __future__ import annotations

import itertools
from typing import Iterator

from ..randomness.realizations import NodeRealization, all_bit_strings
from ..topology import Simplex, SimplicialComplex, Vertex
from .projection import realization_facet

#: Refuse to materialize more facets than this; use the lazy iterators.
MATERIALIZE_LIMIT = 1 << 16


def iter_realizations(n: int, t: int) -> Iterator[NodeRealization]:
    """All ``2^{nt}`` realizations (facets of ``R(t)``), lazily."""
    yield from itertools.product(all_bit_strings(t), repeat=n)


def realization_complex(n: int, t: int) -> SimplicialComplex:
    """Materialize ``R(t)`` (guarded; figures use ``n, t <= 3``)."""
    count = facet_count(n, t)
    if count > MATERIALIZE_LIMIT:
        raise ValueError(
            f"R(t) would have {count} facets; iterate lazily instead"
        )
    if t == 0:
        return SimplicialComplex(
            [Simplex(Vertex(i, ()) for i in range(n))]
        )
    return SimplicialComplex(
        realization_facet(rho) for rho in iter_realizations(n, t)
    )


def vertex_count(n: int, t: int) -> int:
    """``|V(R(t))| = n * 2^t``."""
    return n * (1 << t)


def facet_count(n: int, t: int) -> int:
    """``2^{nt}`` facets -- one per realization."""
    return 1 << (n * t)


def succeeds(earlier: NodeRealization, later: NodeRealization) -> bool:
    """Definition 4.6: ``rho < rho'`` when ``rho'`` extends every string.

    ``earlier`` is at some time ``t``, ``later`` at ``t' > t``, and each
    node's string in ``later`` must have the matching ``earlier`` string as
    a prefix.
    """
    if len(earlier) != len(later):
        return False
    t = len(earlier[0]) if earlier else 0
    t_later = len(later[0]) if later else 0
    if t_later <= t:
        return False
    return all(
        tuple(late[:t]) == tuple(early)
        for early, late in zip(earlier, later)
    )


__all__ = [
    "MATERIALIZE_LIMIT",
    "facet_count",
    "iter_realizations",
    "realization_complex",
    "succeeds",
    "vertex_count",
]
