"""Text renderers for complexes, partitions, and experiment tables."""

from .ascii import (
    format_simplex,
    format_table,
    format_vertex,
    render_complex,
    render_partition,
)
from .dot import complex_to_dot
from .mermaid import chain_to_mermaid

__all__ = [
    "chain_to_mermaid",
    "complex_to_dot",
    "format_simplex",
    "format_table",
    "format_vertex",
    "render_complex",
    "render_partition",
]
