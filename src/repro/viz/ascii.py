"""ASCII rendering of complexes and of the paper's figures.

The paper's Figures 1-3 are drawings of small complexes; these renderers
regenerate their combinatorial content as text, restoring the paper's
1-based node numbering.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from ..topology import Simplex, SimplicialComplex, Vertex


def _format_value(value: Hashable) -> str:
    if value is None:
        return "⊥"
    if isinstance(value, tuple) and all(b in (0, 1) for b in value):
        return "".join(str(b) for b in value) if value else "⊥"
    return repr(value)


def format_vertex(vertex: Vertex, *, one_based: bool = True) -> str:
    """Render a vertex as ``(name,value)`` in the paper's 1-based style."""
    name = vertex.name + 1 if one_based else vertex.name
    return f"({name},{_format_value(vertex.value)})"


def format_simplex(simplex: Simplex, *, one_based: bool = True) -> str:
    """Render a simplex as ``{(1,a), (2,b)}``."""
    inner = ", ".join(
        format_vertex(v, one_based=one_based) for v in simplex.sorted_vertices()
    )
    return "{" + inner + "}"


def render_complex(
    complex_: SimplicialComplex, *, one_based: bool = True, title: str | None = None
) -> str:
    """List the facets of a complex, one per line, with summary stats."""
    lines: list[str] = []
    if title:
        lines.append(title)
    if complex_.is_empty:
        lines.append("  (empty complex)")
        return "\n".join(lines)
    for facet in complex_.sorted_facets():
        lines.append("  " + format_simplex(facet, one_based=one_based))
    lines.append(
        f"  [dim={complex_.dimension}, vertices={len(complex_.vertices())},"
        f" facets={complex_.facet_count()}, f-vector={complex_.f_vector()}]"
    )
    return "\n".join(lines)


def render_partition(
    partition: Sequence[frozenset[int]], *, one_based: bool = True
) -> str:
    """Render a consistency partition as ``{1,2} | {3}``."""
    offset = 1 if one_based else 0
    blocks = sorted(sorted(node + offset for node in block) for block in partition)
    return " | ".join("{" + ",".join(map(str, block)) + "}" for block in blocks)


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """A plain aligned text table (used by benchmarks and examples)."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


__all__ = [
    "format_simplex",
    "format_table",
    "format_vertex",
    "render_complex",
    "render_partition",
]
