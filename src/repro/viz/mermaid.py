"""Mermaid rendering of consistency chains.

Renders the reachable portion of a consistency chain as a mermaid
``stateDiagram-v2`` string: states are partitions (paper's 1-based node
numbering), edges carry transition probabilities, and solving states are
marked.  Paste the output into any mermaid renderer to *see* the
refinement lattice the proofs walk down.

The renderer works directly on the compiled chain's label vectors and
sparse transition arrays (accepting either the
:class:`~repro.core.markov.ConsistencyChain` facade or a raw
:class:`~repro.chain.engine.CompiledChain`): states stream out in the
compiled topological order (ascending block count), solvability comes
from the chain's memoized per-task bitmask, and edges from the interned
``(dst, weight)`` pairs -- no per-state facade dictionaries are built.
"""

from __future__ import annotations

from ..chain import CompiledChain
from ..core.markov import ConsistencyChain, PartitionState
from ..core.tasks import SymmetryBreakingTask


def _state_name(state: PartitionState) -> str:
    return "s" + "_".join(
        "".join(str(node) for node in block) for block in state
    )


def _state_label(state: PartitionState) -> str:
    return " | ".join(
        "{" + ",".join(str(node + 1) for node in block) + "}"
        for block in state
    )


def chain_to_mermaid(
    chain: "ConsistencyChain | CompiledChain",
    task: SymmetryBreakingTask | None = None,
    *,
    max_states: int = 64,
) -> str:
    """The chain's reachable transition diagram as mermaid text.

    With a ``task``, solving states get a ``[solves]`` suffix in their
    label.  Raises when the reachable state space exceeds ``max_states``
    (diagrams beyond that are unreadable anyway).
    """
    compiled = (
        chain.compiled if isinstance(chain, ConsistencyChain) else chain
    )
    if compiled.num_states > max_states:
        raise ValueError(
            f"{compiled.num_states} reachable states exceed "
            f"max_states={max_states}"
        )
    mask = compiled.solvable_mask(task) if task is not None else None
    names = [
        _state_name(compiled.partition_of(sid))
        for sid in range(compiled.num_states)
    ]
    lines = ["stateDiagram-v2"]
    if compiled.num_states:
        lines.append(f"    [*] --> {names[compiled.start]}")
    for sid in range(compiled.num_states):
        label = _state_label(compiled.partition_of(sid))
        if mask is not None and mask[sid]:
            label += " [solves]"
        lines.append(f"    {names[sid]} : {label}")
    for sid in range(compiled.num_states):
        for dst, prob in compiled.exact_out_edges(sid):
            if dst == sid and prob == 1:
                continue  # absorbing self-loop: implicit
            lines.append(f"    {names[sid]} --> {names[dst]} : {prob}")
    return "\n".join(lines)


__all__ = ["chain_to_mermaid"]
