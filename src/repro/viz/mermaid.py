"""Mermaid rendering of consistency chains.

Renders the reachable portion of a :class:`ConsistencyChain` as a mermaid
``stateDiagram-v2`` string: states are partitions (paper's 1-based node
numbering), edges carry transition probabilities, and solving states are
marked.  Paste the output into any mermaid renderer to *see* the
refinement lattice the proofs walk down.
"""

from __future__ import annotations

from ..core.markov import ConsistencyChain, PartitionState
from ..core.tasks import SymmetryBreakingTask


def _state_name(state: PartitionState) -> str:
    return "s" + "_".join(
        "".join(str(node) for node in block) for block in state
    )


def _state_label(state: PartitionState) -> str:
    return " | ".join(
        "{" + ",".join(str(node + 1) for node in block) + "}"
        for block in state
    )


def chain_to_mermaid(
    chain: ConsistencyChain,
    task: SymmetryBreakingTask | None = None,
    *,
    max_states: int = 64,
) -> str:
    """The chain's reachable transition diagram as mermaid text.

    With a ``task``, solving states get a ``[solves]`` suffix in their
    label.  Raises when the reachable state space exceeds ``max_states``
    (diagrams beyond that are unreadable anyway).
    """
    states = sorted(chain.reachable_states(), key=lambda s: (len(s), s))
    if len(states) > max_states:
        raise ValueError(
            f"{len(states)} reachable states exceed max_states={max_states}"
        )
    lines = ["stateDiagram-v2"]
    for state in states:
        label = _state_label(state)
        if task is not None and task.solvable_from_partition(
            [frozenset(b) for b in state]
        ):
            label += " [solves]"
        lines.append(f'    {_state_name(state)} : {label}')
    initial = states[0] if states else None
    for state in states:
        for nxt, prob in sorted(chain.transitions(state).items()):
            if nxt == state and prob == 1:
                continue  # absorbing self-loop: implicit
            lines.append(
                f"    {_state_name(state)} --> {_state_name(nxt)} : {prob}"
            )
    if initial is not None:
        lines.insert(1, f"    [*] --> {_state_name(initial)}")
    return "\n".join(lines)


__all__ = ["chain_to_mermaid"]
