"""Graphviz DOT export of small complexes.

Exports the 1-skeleton (vertices and edges) of a complex, with facets of
dimension >= 2 rendered as cliques; isolated vertices (the crux of the
paper's leader-election arguments) are highlighted.  The output is plain
DOT text -- no graphviz installation is required to generate it.
"""

from __future__ import annotations

from ..topology import SimplicialComplex, Vertex
from .ascii import _format_value


def _vertex_id(vertex: Vertex) -> str:
    return f"v_{vertex.name}_{abs(hash(vertex.value)) % 10**8}"


def complex_to_dot(
    complex_: SimplicialComplex,
    *,
    name: str = "complex",
    one_based: bool = True,
) -> str:
    """Render the complex's 1-skeleton as a DOT graph string."""
    lines = [f"graph {name} {{", "  node [shape=circle];"]
    isolated = set(complex_.isolated_vertices())
    for vertex in sorted(
        complex_.vertices(), key=lambda v: (v.name, repr(v.value))
    ):
        label = (
            f"{vertex.name + 1 if one_based else vertex.name}:"
            f"{_format_value(vertex.value)}"
        )
        style = ' style=filled fillcolor="gold"' if vertex in isolated else ""
        lines.append(f'  {_vertex_id(vertex)} [label="{label}"{style}];')
    seen: set[frozenset[Vertex]] = set()
    for facet in complex_.sorted_facets():
        verts = facet.sorted_vertices()
        for i, u in enumerate(verts):
            for v in verts[i + 1 :]:
                edge = frozenset((u, v))
                if edge not in seen:
                    seen.add(edge)
                    lines.append(
                        f"  {_vertex_id(u)} -- {_vertex_id(v)};"
                    )
    lines.append("}")
    return "\n".join(lines)


__all__ = ["complex_to_dot"]
