"""Dual numerical backends for compiled-chain queries.

Every query on a :class:`~repro.chain.engine.CompiledChain` is a pass
over the same sparse integer transition structure; what varies is the
arithmetic:

* ``exact`` -- ``fractions.Fraction`` throughout.  Transition weights are
  ``count / 2^(k-1)`` with integer counts, so every probability is the
  exact rational the seed implementation produced (sums of Fractions are
  order-independent, hence byte-identical results).
* ``float`` -- numpy ``float64``.  Distributions are dense vectors and a
  round is one scatter-add over the COO arrays; absorption and hitting
  times are one reverse-topological pass over ``float64``.  Within
  ~1e-12 of exact for the state-space sizes the engine accepts, and far
  cheaper for long horizons or wide sweeps.

Backends only change representations, never the traversal order: both
rely on states being topologically sorted by block count (refinement
strictly increases the block count except for self-loops).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import CompiledChain

#: Recognized backend names (the ``backend=`` kwarg / ``--backend`` flag).
BACKENDS = ("exact", "float")


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


# ----------------------------------------------------------------------
# Exact (Fraction) kernels
# ----------------------------------------------------------------------
def step_exact(
    chain: "CompiledChain", dist: dict[int, Fraction]
) -> dict[int, Fraction]:
    """One synchronous round applied to a sparse exact distribution."""
    nxt: dict[int, Fraction] = {}
    for sid, prob in dist.items():
        for dst, weight in chain.exact_out_edges(sid):
            step = prob * weight
            have = nxt.get(dst)
            nxt[dst] = step if have is None else have + step
    return nxt


def mass_exact(dist: dict[int, Fraction], mask: Sequence[bool]) -> Fraction:
    """Total probability of the masked states."""
    return sum(
        (prob for sid, prob in dist.items() if mask[sid]), Fraction(0)
    )


def distribution_exact(chain: "CompiledChain", t: int) -> dict[int, Fraction]:
    """Exact state distribution after ``t`` rounds (sparse, by state id).

    Distributions are task-independent, so they are cached on the chain:
    a sweep that queries one configuration for many tasks pays for the
    Fraction stepping exactly once.
    """
    return chain.cached_distribution_exact(t)


def series_exact(
    chain: "CompiledChain", mask: Sequence[bool], t_max: int
) -> list[Fraction]:
    """``[Pr[S(1)], ..., Pr[S(t_max)]]`` over the cached distributions."""
    return [
        mass_exact(chain.cached_distribution_exact(t), mask)
        for t in range(1, t_max + 1)
    ]


def absorption_exact(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[Fraction]:
    """Per-state probability of ever hitting the masked (solving) set.

    Solvability is monotone under refinement, so hitting the set equals
    absorption.  States arrive topologically sorted by block count, so a
    single reverse pass solves the first-step equations exactly.
    """
    probs: list[Fraction] = [Fraction(0)] * chain.num_states
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            probs[sid] = Fraction(1)
            continue
        self_weight = Fraction(0)
        total = Fraction(0)
        for dst, weight in chain.exact_out_edges(sid):
            if dst == sid:
                self_weight = weight
            else:
                total += weight * probs[dst]
        if self_weight == 1:
            probs[sid] = Fraction(0)
        else:
            probs[sid] = total / (1 - self_weight)
    return probs


def expected_exact(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[Fraction | None]:
    """Per-state exact expected rounds to first hit the masked set.

    ``None`` marks states from which the set is not reached almost
    surely (infinite expectation).
    """
    expected: list[Fraction | None] = [None] * chain.num_states
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            expected[sid] = Fraction(0)
            continue
        self_weight = Fraction(0)
        total = Fraction(1)
        feasible = True
        for dst, weight in chain.exact_out_edges(sid):
            if dst == sid:
                self_weight = weight
                continue
            sub = expected[dst]
            if sub is None:
                feasible = False
                break
            total += weight * sub
        if not feasible or self_weight == 1:
            expected[sid] = None
        else:
            expected[sid] = total / (1 - self_weight)
    return expected


# ----------------------------------------------------------------------
# Float (numpy) kernels
# ----------------------------------------------------------------------
def distribution_float(chain: "CompiledChain", t: int) -> np.ndarray:
    """Dense ``float64`` state distribution after ``t`` rounds."""
    src, dst, weight = chain.coo()
    dist = np.zeros(chain.num_states)
    dist[chain.start] = 1.0
    for _ in range(t):
        nxt = np.zeros(chain.num_states)
        np.add.at(nxt, dst, dist[src] * weight)
        dist = nxt
    return dist


def series_float(
    chain: "CompiledChain", mask: Sequence[bool], t_max: int
) -> list[float]:
    """Float solving-probability series via dense scatter-add rounds."""
    src, dst, weight = chain.coo()
    mask_array = np.asarray(mask, dtype=bool)
    dist = np.zeros(chain.num_states)
    dist[chain.start] = 1.0
    series: list[float] = []
    for _ in range(t_max):
        nxt = np.zeros(chain.num_states)
        np.add.at(nxt, dst, dist[src] * weight)
        dist = nxt
        series.append(float(dist[mask_array].sum()))
    return series


def absorption_float(
    chain: "CompiledChain", mask: Sequence[bool]
) -> np.ndarray:
    """Float analogue of :func:`absorption_exact` (same traversal)."""
    probs = np.zeros(chain.num_states)
    denom = chain.denom
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            probs[sid] = 1.0
            continue
        self_cnt = 0
        total = 0.0
        for dst, cnt in chain.out_edges(sid):
            if dst == sid:
                self_cnt = cnt
            else:
                total += (cnt / denom) * probs[dst]
        probs[sid] = (
            0.0 if self_cnt == denom else total / (1.0 - self_cnt / denom)
        )
    return probs


def expected_float(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[float | None]:
    """Float analogue of :func:`expected_exact`."""
    expected: list[float | None] = [None] * chain.num_states
    denom = chain.denom
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            expected[sid] = 0.0
            continue
        self_cnt = 0
        total = 1.0
        feasible = True
        for dst, cnt in chain.out_edges(sid):
            if dst == sid:
                self_cnt = cnt
                continue
            sub = expected[dst]
            if sub is None:
                feasible = False
                break
            total += (cnt / denom) * sub
        if not feasible or self_cnt == denom:
            expected[sid] = None
        else:
            expected[sid] = total / (1.0 - self_cnt / denom)
    return expected


__all__ = [
    "BACKENDS",
    "absorption_exact",
    "absorption_float",
    "distribution_exact",
    "distribution_float",
    "expected_exact",
    "expected_float",
    "mass_exact",
    "series_exact",
    "series_float",
    "step_exact",
    "validate_backend",
]
