"""Dual numerical backends for compiled-chain queries.

Every query on a :class:`~repro.chain.engine.CompiledChain` is a pass
over the same sparse integer transition structure; what varies is the
arithmetic:

* ``exact`` -- ``fractions.Fraction`` throughout.  Transition weights are
  ``count / 2^(k-1)`` with integer counts, so every probability is the
  exact rational the seed implementation produced (sums of Fractions are
  order-independent, hence byte-identical results).
* ``float`` -- numpy ``float64``.  Distributions are dense vectors and a
  round is one scatter-add over the COO arrays; absorption and hitting
  times are one reverse-topological pass over ``float64``.  Within
  ~1e-12 of exact for the state-space sizes the engine accepts, and far
  cheaper for long horizons or wide sweeps.

Backends only change representations, never the traversal order: both
rely on states being topologically sorted by block count (refinement
strictly increases the block count except for self-loops).
"""

from __future__ import annotations

from fractions import Fraction
from typing import TYPE_CHECKING, Sequence

import numpy as np

from ..obs.policy import POLICY

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from .engine import CompiledChain

#: Recognized backend names (the ``backend=`` kwarg / ``--backend`` flag).
BACKENDS = ("exact", "float")

#: Density floor for the dense evolution path: a dense matvec does
#: ``states^2`` fused multiply-adds where the scatter-add does ``nnz``
#: un-fused ones, and the per-element gap is roughly this factor's
#: inverse -- below it, the transition structure is too sparse for the
#: dense product to pay for itself.
DENSE_DENSITY_FLOOR = 1.0 / 32.0

#: Chains this small always take the dense path: at these sizes the
#: whole matrix lives in cache and the scatter-add's indexing overhead
#: dominates whatever sparsity would save.
DENSE_ALWAYS_STATES = 64


def transition_density(num_states: int, nnz: int) -> float:
    """``nnz / states^2`` -- the fraction of the dense matrix occupied."""
    if num_states <= 0:
        return 0.0
    return nnz / (num_states * num_states)


def evolution_strategy(num_states: int, nnz: int) -> str:
    """``"dense"`` or ``"scatter"`` for a distribution-evolution pass.

    Chosen from the *measured* transition density rather than the fixed
    state-count threshold alone: :data:`~repro.chain.engine.DENSE_STATE_LIMIT`
    stays as the hard memory cap (a cached dense matrix above it would
    outlive the query), but below the cap the decision follows
    ``nnz / states^2`` -- dense when the structure is dense enough for
    the matvec's fused arithmetic to beat the scatter-add's indexing,
    scatter otherwise.  :class:`~repro.chain.batch.QueryBatch` and
    :class:`~repro.chain.multi.ChainGroup` expose the verdict in their
    ``repr`` for debuggability.

    Under ``--policy measured`` a fitted
    :class:`~repro.obs.policy.CostModelPolicy` picks whichever strategy
    its cost models predict is faster; the hard memory cap is applied
    first and a policy without both timing models falls through to the
    static heuristics below.  Either way the two strategies evolve the
    same distribution, so the verdict only moves wall-clock, never
    results.
    """
    from .engine import DENSE_STATE_LIMIT

    if num_states > DENSE_STATE_LIMIT:
        return "scatter"
    verdict = POLICY.evolution_strategy(num_states, nnz)
    if verdict is not None:
        return verdict
    if num_states <= DENSE_ALWAYS_STATES:
        return "dense"
    if transition_density(num_states, nnz) >= DENSE_DENSITY_FLOOR:
        return "dense"
    return "scatter"


def validate_backend(backend: str) -> str:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {BACKENDS}"
        )
    return backend


# ----------------------------------------------------------------------
# Exact (Fraction) kernels
# ----------------------------------------------------------------------
def step_exact(
    chain: "CompiledChain", dist: dict[int, Fraction]
) -> dict[int, Fraction]:
    """One synchronous round applied to a sparse exact distribution."""
    nxt: dict[int, Fraction] = {}
    for sid, prob in dist.items():
        for dst, weight in chain.exact_out_edges(sid):
            step = prob * weight
            have = nxt.get(dst)
            nxt[dst] = step if have is None else have + step
    return nxt


def mass_exact(dist: dict[int, Fraction], mask: Sequence[bool]) -> Fraction:
    """Total probability of the masked states."""
    return sum(
        (prob for sid, prob in dist.items() if mask[sid]), Fraction(0)
    )


def distribution_exact(chain: "CompiledChain", t: int) -> dict[int, Fraction]:
    """Exact state distribution after ``t`` rounds (sparse, by state id).

    Distributions are task-independent, so they are cached on the chain:
    a sweep that queries one configuration for many tasks pays for the
    Fraction stepping exactly once.
    """
    return chain.cached_distribution_exact(t)


def series_exact(
    chain: "CompiledChain", mask: Sequence[bool], t_max: int
) -> list[Fraction]:
    """``[Pr[S(1)], ..., Pr[S(t_max)]]`` over the cached distributions.

    Horizons past the chain's distribution-cache cap stream one
    transient step at a time (still exact, still linear in ``t_max``)
    instead of re-stepping from the last cached entry per horizon.
    """
    cap = chain.distribution_cache_cap
    cached_until = min(t_max, cap - 1)
    series = [
        mass_exact(chain.cached_distribution_exact(t), mask)
        for t in range(1, cached_until + 1)
    ]
    if t_max > cached_until:
        dist = chain.cached_distribution_exact(cached_until)
        for _ in range(cached_until + 1, t_max + 1):
            dist = step_exact(chain, dist)
            series.append(mass_exact(dist, mask))
    return series


def absorption_exact(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[Fraction]:
    """Per-state probability of ever hitting the masked (solving) set.

    Solvability is monotone under refinement, so hitting the set equals
    absorption.  States arrive topologically sorted by block count, so a
    single reverse pass solves the first-step equations exactly.
    """
    probs: list[Fraction] = [Fraction(0)] * chain.num_states
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            probs[sid] = Fraction(1)
            continue
        self_weight = Fraction(0)
        total = Fraction(0)
        for dst, weight in chain.exact_out_edges(sid):
            if dst == sid:
                self_weight = weight
            else:
                total += weight * probs[dst]
        if self_weight == 1:
            probs[sid] = Fraction(0)
        else:
            probs[sid] = total / (1 - self_weight)
    return probs


def expected_exact(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[Fraction | None]:
    """Per-state exact expected rounds to first hit the masked set.

    ``None`` marks states from which the set is not reached almost
    surely (infinite expectation).
    """
    expected: list[Fraction | None] = [None] * chain.num_states
    for sid in range(chain.num_states - 1, -1, -1):
        if mask[sid]:
            expected[sid] = Fraction(0)
            continue
        self_weight = Fraction(0)
        total = Fraction(1)
        feasible = True
        for dst, weight in chain.exact_out_edges(sid):
            if dst == sid:
                self_weight = weight
                continue
            sub = expected[dst]
            if sub is None:
                feasible = False
                break
            total += weight * sub
        if not feasible or self_weight == 1:
            expected[sid] = None
        else:
            expected[sid] = total / (1 - self_weight)
    return expected


# ----------------------------------------------------------------------
# Float (numpy) kernels
# ----------------------------------------------------------------------
def distribution_float(chain: "CompiledChain", t: int) -> np.ndarray:
    """Dense ``float64`` state distribution after ``t`` rounds."""
    src, dst, weight = chain.coo()
    dist = np.zeros(chain.num_states)
    dist[chain.start] = 1.0
    for _ in range(t):
        nxt = np.zeros(chain.num_states)
        np.add.at(nxt, dst, dist[src] * weight)
        dist = nxt
    return dist


def series_float(
    chain: "CompiledChain", mask: Sequence[bool], t_max: int
) -> list[float]:
    """Float solving-probability series via dense scatter-add rounds."""
    src, dst, weight = chain.coo()
    mask_array = np.asarray(mask, dtype=bool)
    dist = np.zeros(chain.num_states)
    dist[chain.start] = 1.0
    series: list[float] = []
    for _ in range(t_max):
        nxt = np.zeros(chain.num_states)
        np.add.at(nxt, dst, dist[src] * weight)
        dist = nxt
        series.append(float(dist[mask_array].sum()))
    return series


def _self_loop_weights(chain: "CompiledChain") -> np.ndarray:
    """Per-state self-loop weight as float64 (exact: powers of two)."""
    src, dst, weight = chain.coo()
    self_w = np.zeros(chain.num_states)
    loops = src == dst
    self_w[src[loops]] = weight[loops]
    return self_w


def _reverse_level_sweep(
    chain: "CompiledChain",
    masks: np.ndarray,
    *,
    accumulator_init: float,
    masked_value: float,
    absorbing_value: float,
) -> np.ndarray:
    """The shared first-step-equation solver over block-count levels.

    States are topologically sorted by block count and refinement edges
    never stay inside a level except as self-loops, so one reverse pass
    over the ``O(n)`` levels solves ``x[s] = (init + sum_{s' != s}
    P(s->s') x[s']) / (1 - P(s->s))`` for every mask row at once --
    ``masks`` is ``(Q, S)`` boolean, the result ``(Q, S)`` float64.
    Masked states take ``masked_value``; pure non-masked self-loops
    (``P(s->s) = 1``) take ``absorbing_value``.  Absorption uses
    ``(init=0, masked=1, absorbing=0)``; expected hitting time uses
    ``(init=1, masked=0, absorbing=inf)``, where ``inf`` propagates
    through the recurrence exactly like the scalar kernel's ``None``
    (every stored edge weight is positive, so ``0 * inf`` never arises).
    """
    masks = np.atleast_2d(np.asarray(masks, dtype=bool))
    src, dst, weight = chain.coo()
    indptr = chain.csr()[0]
    self_w = _self_loop_weights(chain)
    values = np.zeros((masks.shape[0], chain.num_states))
    for start, stop in reversed(chain.levels()):
        lo, hi = int(indptr[start]), int(indptr[stop])
        s, d, w = src[lo:hi], dst[lo:hi], weight[lo:hi]
        cross = s != d
        total = np.full(
            (masks.shape[0], stop - start), accumulator_init
        )
        if cross.any():
            np.add.at(
                total,
                (slice(None), s[cross] - start),
                w[cross] * values[:, d[cross]],
            )
        hold = 1.0 - self_w[start:stop]
        vals = np.divide(
            total,
            hold[None, :],
            out=np.full_like(total, absorbing_value),
            where=hold > 0.0,
        )
        values[:, start:stop] = np.where(
            masks[:, start:stop], masked_value, vals
        )
    return values


def absorption_float_matrix(
    chain: "CompiledChain", masks: np.ndarray
) -> np.ndarray:
    """Per-state hitting probabilities for a *batch* of masks at once.

    One :func:`_reverse_level_sweep`: all ``Q`` mask rows share each
    pass over the transition arrays.
    """
    return _reverse_level_sweep(
        chain,
        masks,
        accumulator_init=0.0,
        masked_value=1.0,
        absorbing_value=0.0,
    )


def absorption_float(
    chain: "CompiledChain", mask: Sequence[bool]
) -> np.ndarray:
    """Float analogue of :func:`absorption_exact` (same traversal,
    vectorized level passes instead of a per-state python loop)."""
    return absorption_float_matrix(chain, np.asarray([mask], dtype=bool))[0]


def expected_float_matrix(
    chain: "CompiledChain", masks: np.ndarray
) -> np.ndarray:
    """Per-state expected hitting times for a batch of masks at once.

    Infinite expectations (the masked set is not reached almost surely)
    come back as ``np.inf``; see :func:`_reverse_level_sweep`.
    """
    return _reverse_level_sweep(
        chain,
        masks,
        accumulator_init=1.0,
        masked_value=0.0,
        absorbing_value=np.inf,
    )


def expected_float(
    chain: "CompiledChain", mask: Sequence[bool]
) -> list[float | None]:
    """Float analogue of :func:`expected_exact` (vectorized sweep)."""
    row = expected_float_matrix(chain, np.asarray([mask], dtype=bool))[0]
    return [None if np.isinf(value) else float(value) for value in row]


def masses_float_over_time(
    chain: "CompiledChain",
    masks: np.ndarray,
    times: "Sequence[int]",
) -> dict[int, np.ndarray]:
    """Masked masses of the distribution at each requested time.

    One evolution to ``max(times)`` shared by every ``(mask, t)`` pair:
    ``masks`` is ``(Q, S)`` boolean and the result maps each requested
    ``t`` to the ``(Q,)`` vector of per-mask masses.  Dense-enough
    chains step with a dense matrix-vector product; sparse ones with the
    same scatter-add :func:`distribution_float` uses (the verdict is
    :func:`evolution_strategy`).
    """
    wanted = sorted(set(int(t) for t in times))
    if wanted and wanted[0] < 0:
        raise ValueError("need t >= 0")
    mask_matrix = np.atleast_2d(np.asarray(masks, dtype=bool)).astype(
        np.float64
    )
    dist = np.zeros(chain.num_states)
    dist[chain.start] = 1.0
    out: dict[int, np.ndarray] = {}
    if wanted and wanted[0] == 0:
        out[0] = mask_matrix @ dist
    remaining = set(wanted)
    dense = None
    if evolution_strategy(chain.num_states, chain.num_transitions) == "dense":
        dense = chain.dense_transition_matrix()
    if dense is None:
        src, dst, weight = chain.coo()
    for t in range(1, (wanted[-1] if wanted else 0) + 1):
        if dense is not None:
            dist = dist @ dense
        else:
            nxt = np.zeros(chain.num_states)
            np.add.at(nxt, dst, dist[src] * weight)
            dist = nxt
        if t in remaining:
            out[t] = mask_matrix @ dist
    return out


__all__ = [
    "BACKENDS",
    "DENSE_ALWAYS_STATES",
    "DENSE_DENSITY_FLOOR",
    "absorption_exact",
    "absorption_float",
    "absorption_float_matrix",
    "distribution_exact",
    "distribution_float",
    "evolution_strategy",
    "expected_exact",
    "expected_float",
    "expected_float_matrix",
    "mass_exact",
    "masses_float_over_time",
    "series_exact",
    "series_float",
    "step_exact",
    "transition_density",
    "validate_backend",
]
