"""Batched query planning and execution over one compiled chain.

Every caller of the compiled engine used to ask one ``(task, horizon)``
question at a time through the scalar methods on
:class:`~repro.chain.engine.CompiledChain` -- a theorem sweep that wants
four tasks at ten horizons paid for forty separate distribution
evolutions under the float backend, and the exact backend re-ran its
absorption sweep per call.  This module turns those call sites into
*batches*: a set of :class:`Query` objects (``quantity``, ``task``,
optional ``horizon``) against one chain, answered together:

* **float** -- one distribution evolution to the batch's deepest horizon
  (dense matrix-vector recurrence on small chains, shared scatter-adds
  otherwise) answers every probability/series query; one vectorized
  reverse-topological level sweep answers every limit (and one more
  every expected-time) across all masks at once
  (:func:`~repro.chain.backends.absorption_float_matrix`).
* **exact** -- the chain's cached task-independent distributions are
  shared across all probability/series queries, and each distinct task
  mask pays for at most one absorption/expected sweep per batch.  The
  exact kernels are the very ones the scalar path uses, so batched
  exact results are byte-identical to scalar ones by construction.

:func:`run_queries` is the front door consumers use: it honours the
process-wide batching toggle (:func:`configure_batching`, the CLI's
``--batch/--no-batch``) and falls back to the scalar per-query methods
when batching is off -- with identical results either way.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

import numpy as np

from ..obs import OBS, trace
from .backends import (
    absorption_exact,
    absorption_float_matrix,
    expected_exact,
    expected_float_matrix,
    mass_exact,
    masses_float_over_time,
    series_exact,
    validate_backend,
)

#: What a query may ask for.  ``solvable`` (Definition 3.3) is always
#: decided on exact arithmetic -- the zero-one law is asserted on exact
#: 0/1 limits -- whatever backend the rest of the batch runs under.
QUANTITIES = ("probability", "series", "limit", "expected", "solvable")


@dataclass(frozen=True)
class Query:
    """One ``(quantity, task, horizon)`` question against a chain."""

    quantity: str
    task: object
    horizon: "int | None" = None

    def __post_init__(self):
        if self.quantity not in QUANTITIES:
            raise ValueError(
                f"unknown quantity {self.quantity!r}; "
                f"expected one of {QUANTITIES}"
            )
        if self.quantity in ("probability", "series"):
            if self.horizon is None or self.horizon < 0:
                raise ValueError(
                    f"{self.quantity} queries need a horizon >= 0"
                )
        elif self.horizon is not None:
            raise ValueError(
                f"{self.quantity} queries take no horizon"
            )

    # -- convenience constructors (the spellings call sites read best) --
    @classmethod
    def probability(cls, task, t: int) -> "Query":
        """``Pr[S(t) | alpha]`` at one horizon."""
        return cls("probability", task, t)

    @classmethod
    def series(cls, task, t_max: int) -> "Query":
        """``[Pr[S(1)], ..., Pr[S(t_max)]]``."""
        return cls("series", task, t_max)

    @classmethod
    def limit(cls, task) -> "Query":
        """``lim_t Pr[S(t) | alpha]`` (absorption from the start state)."""
        return cls("limit", task)

    @classmethod
    def expected_time(cls, task) -> "Query":
        """Expected rounds to first solve (``None`` when infinite)."""
        return cls("expected", task)

    @classmethod
    def solvable(cls, task) -> "Query":
        """Definition 3.3, decided exactly with the zero-one assertion."""
        return cls("solvable", task)


class QueryPlan:
    """A batch of queries against one chain, grouped for shared passes.

    Grouping happens per distinct *solvability mask* (two task objects
    with the same mask share every pass), and the plan records which
    kernels the batch needs: distribution masses at which times,
    absorption for which masks, expected times for which masks.
    """

    def __init__(self, chain, queries: Iterable[Query]):
        self.chain = chain
        self.queries = tuple(queries)
        self._masks: list[tuple[bool, ...]] = []
        slot_of: dict[tuple[bool, ...], int] = {}
        self._slots: list[int] = []
        for query in self.queries:
            mask = chain.solvable_mask(query.task)
            slot = slot_of.get(mask)
            if slot is None:
                slot = slot_of[mask] = len(self._masks)
                self._masks.append(mask)
            self._slots.append(slot)
        # Which (slot, t) masses the distribution pass must produce.
        self._mass_times: set[int] = set()
        self._mass_slots: set[int] = set()
        self._absorb_slots: set[int] = set()
        #: ``limit`` slots alone: under the float backend these join the
        #: float absorption batch while ``solvable`` stays exact.
        self._limit_slots: set[int] = set()
        self._expected_slots: set[int] = set()
        for query, slot in zip(self.queries, self._slots):
            if query.quantity == "probability":
                self._mass_times.add(query.horizon)
                self._mass_slots.add(slot)
            elif query.quantity == "series":
                self._mass_times.update(range(1, query.horizon + 1))
                self._mass_slots.add(slot)
            elif query.quantity in ("limit", "solvable"):
                self._absorb_slots.add(slot)
                if query.quantity == "limit":
                    self._limit_slots.add(slot)
            else:  # expected
                self._expected_slots.add(slot)

    def __len__(self) -> int:
        return len(self.queries)

    @property
    def evolution(self) -> str:
        """The adaptive dense-vs-scatter verdict for this chain's
        distribution passes (see :func:`~repro.chain.backends.evolution_strategy`)."""
        from .backends import evolution_strategy

        return evolution_strategy(
            self.chain.num_states, self.chain.num_transitions
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"QueryPlan(queries={len(self.queries)}, "
            f"masks={len(self._masks)}, evolution={self.evolution})"
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, *, backend: str = "exact") -> list:
        """Answer every query, in query order."""
        if validate_backend(backend) == "exact":
            return self._execute_exact()
        return self._execute_float()

    def _execute_exact(self) -> list:
        chain = self.chain
        absorption: dict[int, list[Fraction]] = {}
        expected: dict[int, list] = {}
        for slot in self._absorb_slots:
            absorption[slot] = absorption_exact(chain, self._masks[slot])
        for slot in self._expected_slots:
            expected[slot] = expected_exact(chain, self._masks[slot])
        results = []
        for query, slot in zip(self.queries, self._slots):
            mask = self._masks[slot]
            if query.quantity == "probability":
                results.append(
                    mass_exact(
                        chain.cached_distribution_exact(query.horizon), mask
                    )
                )
            elif query.quantity == "series":
                results.append(series_exact(chain, mask, query.horizon))
            elif query.quantity == "limit":
                results.append(absorption[slot][chain.start])
            elif query.quantity == "solvable":
                results.append(
                    _assert_zero_one(chain, absorption[slot][chain.start])
                )
            else:  # expected
                results.append(expected[slot][chain.start])
        return results

    def _execute_float(self) -> list:
        chain = self.chain
        masses: dict[int, np.ndarray] = {}
        mass_rows: dict[int, int] = {}
        if self._mass_times:
            # Only the mask rows probability/series queries actually
            # read join the per-time mass products.
            ordered = sorted(self._mass_slots)
            mass_rows = {slot: row for row, slot in enumerate(ordered)}
            masses = masses_float_over_time(
                chain,
                np.asarray(
                    [self._masks[slot] for slot in ordered], dtype=bool
                ),
                self._mass_times,
            )
        absorption: "np.ndarray | None" = None
        absorb_rows: dict[int, int] = {}
        # ``solvable`` stays exact under every backend (the zero-one law
        # is a statement about exact limits), so it does not join the
        # float absorption batch.
        float_absorb = sorted(self._limit_slots)
        if float_absorb:
            absorb_rows = {slot: row for row, slot in enumerate(float_absorb)}
            absorption = absorption_float_matrix(
                chain,
                np.asarray(
                    [self._masks[slot] for slot in float_absorb], dtype=bool
                ),
            )
        expected: "np.ndarray | None" = None
        expected_rows: dict[int, int] = {}
        if self._expected_slots:
            ordered = sorted(self._expected_slots)
            expected_rows = {slot: row for row, slot in enumerate(ordered)}
            expected = expected_float_matrix(
                chain,
                np.asarray(
                    [self._masks[slot] for slot in ordered], dtype=bool
                ),
            )
        exact_absorption: dict[int, list[Fraction]] = {}
        results = []
        for query, slot in zip(self.queries, self._slots):
            if query.quantity == "probability":
                results.append(
                    float(masses[query.horizon][mass_rows[slot]])
                )
            elif query.quantity == "series":
                row = mass_rows[slot]
                results.append(
                    [
                        float(masses[t][row])
                        for t in range(1, query.horizon + 1)
                    ]
                )
            elif query.quantity == "limit":
                results.append(
                    float(absorption[absorb_rows[slot], chain.start])
                )
            elif query.quantity == "solvable":
                if slot not in exact_absorption:
                    exact_absorption[slot] = absorption_exact(
                        chain, self._masks[slot]
                    )
                results.append(
                    _assert_zero_one(
                        chain, exact_absorption[slot][chain.start]
                    )
                )
            else:  # expected
                value = expected[expected_rows[slot], chain.start]
                results.append(None if np.isinf(value) else float(value))
        return results


def _assert_zero_one(chain, limit: Fraction) -> bool:
    """Definition 3.3 verdict with the machine-checked zero-one law."""
    if limit not in (Fraction(0), Fraction(1)):
        raise AssertionError(
            f"zero-one law violated: limit {limit} for chain {chain.key!r}"
        )
    return limit == 1


class QueryBatch:
    """Builder: accumulate queries, run once, read results by handle.

    ::

        batch = QueryBatch(chain)
        s = batch.series(task, t_max)
        l = batch.limit(task)
        results = batch.run()
        series, limit = results[s], results[l]
    """

    def __init__(self, chain):
        self.chain = chain
        self._queries: list[Query] = []

    def add(self, query: Query) -> int:
        """Append a query; the returned handle indexes ``run()``'s list."""
        self._queries.append(query)
        return len(self._queries) - 1

    def probability(self, task, t: int) -> int:
        return self.add(Query.probability(task, t))

    def series(self, task, t_max: int) -> int:
        return self.add(Query.series(task, t_max))

    def limit(self, task) -> int:
        return self.add(Query.limit(task))

    def expected_time(self, task) -> int:
        return self.add(Query.expected_time(task))

    def solvable(self, task) -> int:
        return self.add(Query.solvable(task))

    def __len__(self) -> int:
        return len(self._queries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        from .backends import evolution_strategy

        return (
            f"QueryBatch(queries={len(self._queries)}, "
            f"evolution={evolution_strategy(self.chain.num_states, self.chain.num_transitions)})"
        )

    def run(self, *, backend: str = "exact") -> list:
        """Execute (respecting the batching toggle), in handle order."""
        return run_queries(self.chain, self._queries, backend=backend)


# ----------------------------------------------------------------------
# The process-wide batching toggle (CLI --batch/--no-batch)
# ----------------------------------------------------------------------
_BATCHING = True


def configure_batching(enabled: bool) -> bool:
    """Turn the batched query path on or off; returns the previous value.

    Results are identical either way (the exact kernels are shared, the
    float ones agree to 1e-12); the toggle exists so regressions can be
    bisected to the planner and so benchmarks can time both paths.
    """
    global _BATCHING
    previous = _BATCHING
    _BATCHING = bool(enabled)
    return previous


def batching_enabled() -> bool:
    return _BATCHING


def memoized_answers(chain, queries: Sequence[Query], backend: str):
    """Split ``queries`` into memo hits and misses for one chain.

    Returns ``(results, tokens, miss_indices)``: ``results`` has the
    decoded answer at every hit position and ``None`` at every miss,
    ``tokens`` the per-query memo keys (``None`` where unmemoizable),
    and ``miss_indices`` the positions still to compute.  With no memo
    configured every query is a miss with a ``None`` token, so callers
    need no separate code path.  Exact hits decode to the very
    ``Fraction`` objects a fresh pass would produce -- byte-identical
    downstream records -- which is what lets warm sweeps skip evolution
    passes (and chain compilation) entirely.
    """
    from ..results.memo import MISS, query_memo, query_token

    memo = query_memo()
    if memo is None:
        return [None] * len(queries), [None] * len(queries), list(
            range(len(queries))
        )
    from .cache import key_digest

    digest = key_digest(chain.key)
    results: list = [None] * len(queries)
    tokens: list = []
    misses: list[int] = []
    for i, query in enumerate(queries):
        token = query_token(
            digest, query.quantity, query.task, query.horizon, backend
        )
        tokens.append(token)
        hit = memo.lookup(token)
        if hit is MISS:
            misses.append(i)
        else:
            results[i] = hit
    return results, tokens, misses


def record_answers(tokens: Sequence, indices: Sequence[int],
                   results: Sequence) -> None:
    """Record freshly computed answers under their memo tokens (no-op
    without a configured memo or for ``None`` tokens)."""
    from ..results.memo import query_memo

    memo = query_memo()
    if memo is None:
        return
    for i in indices:
        memo.record(tokens[i], results[i])


def _scalar_answer(chain, query: Query, backend: str):
    """The PR-2 scalar path for one query (the --no-batch fallback)."""
    if query.quantity == "probability":
        return chain.solving_probability(
            query.task, query.horizon, backend=backend
        )
    if query.quantity == "series":
        return chain.solving_probability_series(
            query.task, query.horizon, backend=backend
        )
    if query.quantity == "limit":
        return chain.limit_solving_probability(query.task, backend=backend)
    if query.quantity == "expected":
        return chain.expected_solving_time(query.task, backend=backend)
    return chain.eventually_solvable(query.task)


def run_queries(
    chain, queries: Sequence[Query], *, backend: str = "exact"
) -> list:
    """Answer ``queries`` against ``chain``, in order.

    With a query memo configured
    (:func:`repro.results.memo.configure_query_memo`) every memoizable
    query is first looked up by content key, and only the misses pay
    for a pass -- hits are byte-identical to recomputation under the
    exact backend.  Misses run batched (one shared pass per needed
    kernel) when batching is enabled, else through the scalar
    per-query methods.
    """
    queries = list(queries)
    if not queries:
        return []
    validate_backend(backend)
    results, tokens, misses = memoized_answers(chain, queries, backend)
    if misses:
        subset = [queries[i] for i in misses]
        if _BATCHING:
            plan = QueryPlan(chain, subset)
            if OBS.enabled:
                OBS.metrics.inc("chain.batch.plans")
                OBS.metrics.inc("chain.batch.queries", len(subset))
                OBS.metrics.observe("chain.batch.plan_size", len(subset))
                OBS.metrics.observe(
                    "chain.batch.states", chain.num_states
                )
                OBS.metrics.inc(f"chain.batch.evolution.{plan.evolution}")
                with trace(
                    "chain.batch.execute",
                    queries=len(subset),
                    states=chain.num_states,
                ):
                    answers = plan.execute(backend=backend)
            else:
                answers = plan.execute(backend=backend)
        else:
            answers = [
                _scalar_answer(chain, query, backend) for query in subset
            ]
        for i, value in zip(misses, answers):
            results[i] = value
        record_answers(tokens, misses, results)
    return results


def run_query_batch(
    chain, queries: Sequence[Query], *, backend: str = "exact"
) -> list:
    """Always-batched execution (ignores the toggle; benchmarks use it)."""
    return QueryPlan(chain, queries).execute(backend=backend)


__all__ = [
    "QUANTITIES",
    "Query",
    "QueryBatch",
    "QueryPlan",
    "batching_enabled",
    "configure_batching",
    "memoized_answers",
    "record_answers",
    "run_queries",
    "run_query_batch",
]
