"""Optional on-disk cache of compiled chains.

The process-wide memo in :mod:`repro.chain.engine` already guarantees
one compilation per chain per process; this module extends that across
*processes* (a pool of sweep workers) and across *runs* (a resumed run
directory).  Chains are pickled one file per structural key under a
cache directory; the file name is the SHA-256 of the key's canonical
repr, so the cache is safe to share between concurrent workers -- at
worst two workers compile the same chain once each and one write wins
(writes go through an atomic rename).

The cache is opt-in: :func:`configure_disk_cache` installs a directory
process-wide (the runner does this for sweeps given a ``--run-dir``),
and ``configure_disk_cache(None)`` turns it back off.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import pickle
import tempfile

from .engine import ChainKey, CompiledChain

#: Sidecar stats file next to the cached chains: ``{digest: load count}``.
#: Best-effort under concurrency (workers may lose an increment to a
#: race); the counts inform eviction tie-breaks and the ``repro chains``
#: listing, never correctness.
STATS_FILE = "_stats.json"


def key_digest(key: ChainKey) -> str:
    """Stable content hash of a structural chain key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One cached chain file, as the hygiene tooling sees it."""

    digest: str
    path: pathlib.Path
    size: int
    mtime: float
    #: How many times :meth:`ChainDiskCache.load` has hit this entry
    #: (from the sidecar stats file; 0 when untracked).
    loads: int = 0


class ChainDiskCache:
    """A directory of pickled :class:`CompiledChain` objects.

    ``max_bytes``/``max_entries`` cap the directory size: every store
    (and every explicit :meth:`evict`) drops least-recently-used entries
    until both caps hold.  Recency is file mtime -- loads touch their
    hit, so a chain a long-lived run directory keeps coming back to
    stays resident while one-off chains age out -- with the sidecar
    load count (:data:`STATS_FILE`) breaking mtime ties: between two
    equally-recent entries the rarely-hit one goes first.  ``None``
    (the default) leaves that dimension unbounded.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        max_bytes: "int | None" = None,
        max_entries: "int | None" = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: ChainKey) -> pathlib.Path:
        return self.root / f"{key_digest(key)}.chain.pkl"

    # ------------------------------------------------------------------
    # Sidecar load statistics
    # ------------------------------------------------------------------
    def _stats_path(self) -> pathlib.Path:
        return self.root / STATS_FILE

    def load_stats(self) -> dict[str, int]:
        """Per-digest load counts from the sidecar file (``{}`` on any
        read problem -- the stats are advisory)."""
        try:
            raw = json.loads(self._stats_path().read_text())
        except (OSError, ValueError):
            return {}
        if not isinstance(raw, dict):
            return {}
        return {
            str(digest): int(count)
            for digest, count in raw.items()
            if isinstance(count, int)
        }

    def _write_stats(self, stats: dict[str, int]) -> None:
        """Atomic best-effort rewrite of the sidecar (losers of a
        concurrent race drop an increment, nothing worse)."""
        try:
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=STATS_FILE, suffix=".tmp"
            )
            with os.fdopen(fd, "w") as handle:
                json.dump(stats, handle, sort_keys=True)
            os.replace(tmp, self._stats_path())
        except OSError:
            try:
                os.unlink(tmp)
            except (OSError, NameError, UnboundLocalError):
                pass

    def _record_load(self, digest: str) -> None:
        stats = self.load_stats()
        stats[digest] = stats.get(digest, 0) + 1
        self._write_stats(stats)

    # ------------------------------------------------------------------
    # Hygiene: listing and LRU eviction
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """Every cached chain file, first-to-evict first.

        Order is least-recently-used (file mtime), with the sidecar
        load count breaking ties -- an equally-stale entry that has
        served fewer loads evicts sooner.  Entries that vanish
        mid-listing (a concurrent prune) are simply skipped.
        """
        stats = self.load_stats()
        found = []
        for path in self.root.glob("*.chain.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            digest = path.name.removesuffix(".chain.pkl")
            found.append(
                CacheEntry(
                    digest=digest,
                    path=path,
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                    loads=stats.get(digest, 0),
                )
            )
        found.sort(key=lambda entry: (entry.mtime, entry.loads, entry.digest))
        return found

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def evict(
        self,
        max_bytes: "int | None" = None,
        max_entries: "int | None" = None,
    ) -> list[CacheEntry]:
        """Drop LRU entries until the caps hold; returns what was removed.

        Caps default to the cache's own; passing explicit values prunes
        to those instead (the ``repro chains prune`` path).  Removal is
        best-effort: files that vanish concurrently count as evicted.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_entries = self.max_entries if max_entries is None else max_entries
        if max_bytes is None and max_entries is None:
            return []
        entries = self.entries()
        total = sum(entry.size for entry in entries)
        removed: list[CacheEntry] = []
        while entries and (
            (max_entries is not None and len(entries) > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = entries.pop(0)
            try:
                victim.path.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                break
            total -= victim.size
            removed.append(victim)
        if removed:
            # Keep the sidecar aligned with the directory (best-effort).
            stats = self.load_stats()
            if any(entry.digest in stats for entry in removed):
                for entry in removed:
                    stats.pop(entry.digest, None)
                self._write_stats(stats)
        return removed

    def clear(self) -> int:
        """Remove every cached chain; returns how many were dropped."""
        return len(self.evict(max_bytes=0, max_entries=0))

    def load(self, key: ChainKey) -> CompiledChain | None:
        """The cached chain for ``key``, or ``None``.

        A hit is validated against the full key (hash collisions and
        stale formats both surface as a miss, never as wrong results);
        unreadable files are treated as misses.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                chain = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(chain, CompiledChain) or chain.key != key:
            return None
        try:
            os.utime(path)  # refresh LRU recency; best-effort
        except OSError:
            pass
        self._record_load(path.name.removesuffix(".chain.pkl"))
        return chain

    def store(self, chain: CompiledChain) -> "pathlib.Path | None":
        """Persist a chain (atomic rename; concurrent writers are safe).

        Best-effort: a vanished cache directory, a full disk, or a
        permission change degrade to ``None`` (the chain is simply not
        persisted) rather than failing the computation that produced it.
        """
        path = self.path_for(chain.key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            return None
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(chain, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                return None
            raise
        self.evict()
        return path

    def __len__(self) -> int:
        return len(list(self.root.glob("*.chain.pkl")))


#: The process-wide cache used by ``compile_chain`` (None = disabled).
_DISK_CACHE: ChainDiskCache | None = None


def configure_disk_cache(
    root: "str | os.PathLike[str] | None",
    *,
    max_bytes: "int | None" = None,
    max_entries: "int | None" = None,
) -> ChainDiskCache | None:
    """Install (or, with ``None``, remove) the process-wide disk cache.

    ``max_bytes``/``max_entries`` turn on LRU eviction for the installed
    cache (see :class:`ChainDiskCache`).
    """
    global _DISK_CACHE
    _DISK_CACHE = (
        None
        if root is None
        else ChainDiskCache(root, max_bytes=max_bytes, max_entries=max_entries)
    )
    return _DISK_CACHE


def disk_cache() -> ChainDiskCache | None:
    """The currently configured cache, if any."""
    return _DISK_CACHE


__all__ = [
    "CacheEntry",
    "ChainDiskCache",
    "STATS_FILE",
    "configure_disk_cache",
    "disk_cache",
    "key_digest",
]
