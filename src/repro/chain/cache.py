"""Optional on-disk cache of compiled chains.

The process-wide memo in :mod:`repro.chain.engine` already guarantees
one compilation per chain per process; this module extends that across
*processes* (a pool of sweep workers) and across *runs* (a resumed run
directory).  Chains are pickled one file per structural key under a
cache directory; the file name is the SHA-256 of the key's canonical
repr, so the cache is safe to share between concurrent workers -- at
worst two workers compile the same chain once each and one write wins
(writes go through an atomic rename).

The cache is opt-in: :func:`configure_disk_cache` installs a directory
process-wide (the runner does this for sweeps given a ``--run-dir``),
and ``configure_disk_cache(None)`` turns it back off.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile

from .engine import ChainKey, CompiledChain


def key_digest(key: ChainKey) -> str:
    """Stable content hash of a structural chain key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


class ChainDiskCache:
    """A directory of pickled :class:`CompiledChain` objects."""

    def __init__(self, root: "str | os.PathLike[str]"):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: ChainKey) -> pathlib.Path:
        return self.root / f"{key_digest(key)}.chain.pkl"

    def load(self, key: ChainKey) -> CompiledChain | None:
        """The cached chain for ``key``, or ``None``.

        A hit is validated against the full key (hash collisions and
        stale formats both surface as a miss, never as wrong results);
        unreadable files are treated as misses.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                chain = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            return None
        if not isinstance(chain, CompiledChain) or chain.key != key:
            return None
        return chain

    def store(self, chain: CompiledChain) -> "pathlib.Path | None":
        """Persist a chain (atomic rename; concurrent writers are safe).

        Best-effort: a vanished cache directory, a full disk, or a
        permission change degrade to ``None`` (the chain is simply not
        persisted) rather than failing the computation that produced it.
        """
        path = self.path_for(chain.key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            return None
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(chain, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                return None
            raise
        return path

    def __len__(self) -> int:
        return len(list(self.root.glob("*.chain.pkl")))


#: The process-wide cache used by ``compile_chain`` (None = disabled).
_DISK_CACHE: ChainDiskCache | None = None


def configure_disk_cache(
    root: "str | os.PathLike[str] | None",
) -> ChainDiskCache | None:
    """Install (or, with ``None``, remove) the process-wide disk cache."""
    global _DISK_CACHE
    _DISK_CACHE = None if root is None else ChainDiskCache(root)
    return _DISK_CACHE


def disk_cache() -> ChainDiskCache | None:
    """The currently configured cache, if any."""
    return _DISK_CACHE


__all__ = [
    "ChainDiskCache",
    "configure_disk_cache",
    "disk_cache",
    "key_digest",
]
