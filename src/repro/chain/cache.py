"""Optional on-disk cache of compiled chains.

The process-wide memo in :mod:`repro.chain.engine` already guarantees
one compilation per chain per process; this module extends that across
*processes* (a pool of sweep workers) and across *runs* (a resumed run
directory).  Chains are pickled one file per structural key under a
cache directory; the file name is the SHA-256 of the key's canonical
repr, so the cache is safe to share between concurrent workers -- at
worst two workers compile the same chain once each and one write wins
(writes go through an atomic rename).

The cache is opt-in: :func:`configure_disk_cache` installs a directory
process-wide (the runner does this for sweeps given a ``--run-dir``),
and ``configure_disk_cache(None)`` turns it back off.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pathlib
import pickle
import tempfile

from ..obs import OBS
from ..results.log import AppendLog
from .engine import ChainKey, CompiledChain

#: Compacted stats snapshot next to the cached chains (an
#: :class:`~repro.results.log.AppendLog` snapshot whose state is
#: ``{digest: load count}``; a legacy flat ``{digest: count}`` document
#: is read transparently and migrated on the next compaction).
STATS_FILE = "_stats.json"

#: The live append-only load-event log (one JSON line per cache hit,
#: written atomically via ``O_APPEND``): counts are exact under any
#: number of concurrent writers, unlike the old read-modify-write
#: sidecar which silently dropped racing increments.
STATS_LOG = "_stats.log"

#: Compact the stats log once it grows past this many bytes.
STATS_COMPACT_BYTES = 1 << 16


def _fold_load_counts(state, events) -> dict[str, int]:
    """AppendLog fold: sum load events into ``{digest: count}``."""
    counts = {
        str(digest): int(count)
        for digest, count in (state or {}).items()
        if isinstance(count, int)
    }
    for event in events:
        digest = event.get("d")
        if isinstance(digest, str):
            counts[digest] = counts.get(digest, 0) + 1
    return counts


def key_digest(key: ChainKey) -> str:
    """Stable content hash of a structural chain key."""
    return hashlib.sha256(repr(key).encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One cached chain file, as the hygiene tooling sees it."""

    digest: str
    path: pathlib.Path
    size: int
    mtime: float
    #: How many times :meth:`ChainDiskCache.load` has hit this entry
    #: (from the sidecar stats file; 0 when untracked).
    loads: int = 0


class ChainDiskCache:
    """A directory of pickled :class:`CompiledChain` objects.

    ``max_bytes``/``max_entries`` cap the directory size: every store
    (and every explicit :meth:`evict`) drops least-recently-used entries
    until both caps hold.  Recency is file mtime -- loads touch their
    hit, so a chain a long-lived run directory keeps coming back to
    stays resident while one-off chains age out -- with the sidecar
    load count (:data:`STATS_FILE`) breaking mtime ties: between two
    equally-recent entries the rarely-hit one goes first.  ``None``
    (the default) leaves that dimension unbounded.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str]",
        *,
        max_bytes: "int | None" = None,
        max_entries: "int | None" = None,
    ):
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.root.mkdir(parents=True, exist_ok=True)

    def path_for(self, key: ChainKey) -> pathlib.Path:
        return self.root / f"{key_digest(key)}.chain.pkl"

    # ------------------------------------------------------------------
    # Load statistics (append-only log + compacted snapshot)
    # ------------------------------------------------------------------
    def _stats_log(self) -> "AppendLog":
        return AppendLog(self.root, "_stats")

    def load_stats(self) -> dict[str, int]:
        """Exact per-digest load counts (snapshot plus unfolded events).

        Exact because every load *appends* one event atomically instead
        of rewriting a shared file: concurrent writers interleave, they
        never overwrite each other.  A corrupt snapshot or log degrades
        to whatever remains readable -- the stats stay advisory for
        eviction tie-breaks and the ``repro chains`` listing.
        """
        counts = self._stats_log().load(_fold_load_counts)
        return counts if isinstance(counts, dict) else {}

    def _record_load(self, digest: str) -> None:
        log = self._stats_log()
        log.append({"d": digest})
        if log.tail_bytes() > STATS_COMPACT_BYTES:
            self.compact_stats()

    def compact_stats(self) -> dict[str, int]:
        """Fold pending load events into the snapshot; returns counts.

        Counts for chains no longer in the cache directory are dropped
        during the fold, so eviction hygiene rides along for free.
        Safe to call concurrently (the fold is idempotent and the
        snapshot replace atomic); an event appended in the instant a
        rotation lands gets a full compaction cycle of grace before its
        segment is deleted.
        """

        def fold_and_prune(state, events):
            counts = _fold_load_counts(state, events)
            return {
                digest: count
                for digest, count in counts.items()
                if (self.root / f"{digest}.chain.pkl").exists()
            }

        counts = self._stats_log().compact(fold_and_prune)
        return counts if isinstance(counts, dict) else {}

    # ------------------------------------------------------------------
    # Hygiene: listing and LRU eviction
    # ------------------------------------------------------------------
    def entries(self) -> list[CacheEntry]:
        """Every cached chain file, first-to-evict first.

        Order is least-recently-used (file mtime), with the sidecar
        load count breaking ties -- an equally-stale entry that has
        served fewer loads evicts sooner.  Entries that vanish
        mid-listing (a concurrent prune) are simply skipped.
        """
        stats = self.load_stats()
        found = []
        for path in self.root.glob("*.chain.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            digest = path.name.removesuffix(".chain.pkl")
            found.append(
                CacheEntry(
                    digest=digest,
                    path=path,
                    size=stat.st_size,
                    mtime=stat.st_mtime,
                    loads=stats.get(digest, 0),
                )
            )
        found.sort(key=lambda entry: (entry.mtime, entry.loads, entry.digest))
        return found

    def total_bytes(self) -> int:
        return sum(entry.size for entry in self.entries())

    def evict(
        self,
        max_bytes: "int | None" = None,
        max_entries: "int | None" = None,
    ) -> list[CacheEntry]:
        """Drop LRU entries until the caps hold; returns what was removed.

        Caps default to the cache's own; passing explicit values prunes
        to those instead (the ``repro chains prune`` path).  Removal is
        best-effort: files that vanish concurrently count as evicted.
        """
        if max_bytes is not None and max_bytes < 0:
            raise ValueError("max_bytes must be >= 0")
        if max_entries is not None and max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        max_bytes = self.max_bytes if max_bytes is None else max_bytes
        max_entries = self.max_entries if max_entries is None else max_entries
        if max_bytes is None and max_entries is None:
            return []
        entries = self.entries()
        total = sum(entry.size for entry in entries)
        removed: list[CacheEntry] = []
        while entries and (
            (max_entries is not None and len(entries) > max_entries)
            or (max_bytes is not None and total > max_bytes)
        ):
            victim = entries.pop(0)
            try:
                victim.path.unlink()
            except FileNotFoundError:
                pass
            except OSError:
                break
            total -= victim.size
            removed.append(victim)
        if removed:
            if OBS.enabled:
                OBS.metrics.inc("chain.cache.evictions", len(removed))
            # Fold-and-prune drops the removed entries' counts (the
            # fold skips digests whose chain files are gone).
            self.compact_stats()
        return removed

    def clear(self) -> int:
        """Remove every cached chain; returns how many were dropped."""
        return len(self.evict(max_bytes=0, max_entries=0))

    def load(self, key: ChainKey) -> CompiledChain | None:
        """The cached chain for ``key``, or ``None``.

        A hit is validated against the full key (hash collisions and
        stale formats both surface as a miss, never as wrong results);
        unreadable files are treated as misses.
        """
        path = self.path_for(key)
        try:
            with path.open("rb") as handle:
                chain = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
            if OBS.enabled:
                OBS.metrics.inc("chain.cache.load.miss")
            return None
        if not isinstance(chain, CompiledChain) or chain.key != key:
            if OBS.enabled:
                OBS.metrics.inc("chain.cache.load.miss")
            return None
        try:
            os.utime(path)  # refresh LRU recency; best-effort
        except OSError:
            pass
        self._record_load(path.name.removesuffix(".chain.pkl"))
        if OBS.enabled:
            OBS.metrics.inc("chain.cache.load.hit")
        return chain

    def store(self, chain: CompiledChain) -> "pathlib.Path | None":
        """Persist a chain (atomic rename; concurrent writers are safe).

        Best-effort: a vanished cache directory, a full disk, or a
        permission change degrade to ``None`` (the chain is simply not
        persisted) rather than failing the computation that produced it.
        """
        path = self.path_for(chain.key)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=self.root, prefix=path.name, suffix=".tmp"
            )
        except OSError:
            return None
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(chain, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException as exc:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            if isinstance(exc, OSError):
                return None
            raise
        if OBS.enabled:
            OBS.metrics.inc("chain.cache.stores")
        self.evict()
        return path

    def publish_gauges(self, registry=None) -> dict[str, int]:
        """Publish the sidecar load counts as metric gauges.

        Gauges are ``chain.cache.loads.<digest prefix>`` (first 12 hex
        chars, matching the ``repro chains list`` display) plus a
        ``chain.cache.entries`` entry count.  One gauge per *cached
        entry* -- never-loaded chains publish 0 -- backed by the same
        exact append-log counts :meth:`load_stats` serves, so ``repro
        metrics show --chains`` and ``repro chains list`` agree
        row-for-row.  Called
        explicitly (not guarded by ``OBS.enabled``) -- publishing is the
        caller's opt-in.  Returns the published ``{digest: count}`` map.
        """
        if registry is None:
            registry = OBS.metrics
        stats = self.load_stats()
        published = {}
        for entry in self.entries():
            published[entry.digest] = stats.get(entry.digest, 0)
        for digest, count in sorted(published.items()):
            registry.gauge(f"chain.cache.loads.{digest[:12]}", count)
        registry.gauge("chain.cache.entries", len(published))
        return published

    def __len__(self) -> int:
        return len(list(self.root.glob("*.chain.pkl")))


#: The process-wide cache used by ``compile_chain`` (None = disabled).
_DISK_CACHE: ChainDiskCache | None = None


def configure_disk_cache(
    root: "str | os.PathLike[str] | None",
    *,
    max_bytes: "int | None" = None,
    max_entries: "int | None" = None,
) -> ChainDiskCache | None:
    """Install (or, with ``None``, remove) the process-wide disk cache.

    ``max_bytes``/``max_entries`` turn on LRU eviction for the installed
    cache (see :class:`ChainDiskCache`).
    """
    global _DISK_CACHE
    _DISK_CACHE = (
        None
        if root is None
        else ChainDiskCache(root, max_bytes=max_bytes, max_entries=max_entries)
    )
    return _DISK_CACHE


def disk_cache() -> ChainDiskCache | None:
    """The currently configured cache, if any."""
    return _DISK_CACHE


__all__ = [
    "CacheEntry",
    "ChainDiskCache",
    "STATS_FILE",
    "STATS_LOG",
    "configure_disk_cache",
    "disk_cache",
    "key_digest",
]
