"""Shared-memory distribution of compiled chains to pool workers.

The disk cache (:mod:`repro.chain.cache`) removes *recompilation* across
processes, but every pool worker still pays a pickle load -- and a full
reconstruction of the per-state tuple tables -- per chain per process.
:class:`SharedChainStore` removes that too: the parent process places
each compiled chain's integer arrays into one
``multiprocessing.shared_memory`` segment and ships only a manifest of
``{key digest: segment name}`` in the worker payload.  Workers attach
zero-copy numpy views: the float backend reads the CSR transition
arrays straight out of the shared segment; exact-backend structures
(``Fraction`` weights, per-state tuples) are materialized lazily per
worker on first use.

Worker-side lookup is installed with :func:`configure_shared_chains`
(the runner does this from the job payload, next to the disk cache) and
consulted by :func:`repro.chain.engine.compile_chain` after the process
memo but *before* the disk cache, so cache-warm chains are never
re-read from disk by workers.

Segment layout (version 1) -- everything int64 so views need no casts:

====================  =====================================================
``header[0:6]``       ``version, n, k, num_states, nnz, key_bytes``
``labels``            ``num_states * n`` label-vector entries, row-major
``indptr``            ``num_states + 1`` CSR row offsets
``dst``               ``nnz`` destination state ids
``cnt``               ``nnz`` integer counts out of ``2^(k-1)``
``key``               ``key_bytes`` of pickled structural chain key
====================  =====================================================

:meth:`SharedChainStore.publish_group` packs a whole *group* of chains
into **one** segment -- the per-chain blocks above laid back to back at
8-byte-aligned offsets -- so a sweep's entire chain family costs one
``shm_open`` per worker instead of one per chain.  Manifest entries for
grouped chains read ``"<segment name>@<byte offset>"``; plain entries
stay bare segment names, so old-style manifests keep working.  Worker
attachment caches the segment mapping by name (:func:`attach_chain`),
making every chain of a group after the first a pure pointer offset.

:meth:`SharedChainStore.publish_group_arrays` additionally publishes a
prebuilt :class:`~repro.chain.multi.ChainGroup`'s *index arrays* (the
block-diagonal COO stack and the merged end-aligned level schedule) so
pool workers attach finished groups instead of each rebuilding them --
the remaining per-worker redundancy once the chains themselves are
shared.  Group segments are keyed by the member chains' key digests (in
stacking order) and validated against them on attach, so any mismatch
-- different chunking, different chain set, stale manifest -- degrades
to a worker-side rebuild, never to a wrong stack.
"""

from __future__ import annotations

import contextlib
import pickle

import numpy as np

from .cache import key_digest
from .engine import ChainKey, CompiledChain

#: Bump when the segment layout changes; mismatches degrade to a miss.
LAYOUT_VERSION = 1

#: Separate version for ChainGroup index-array segments.
GROUP_LAYOUT_VERSION = 1

_HEADER_WORDS = 6
_GROUP_HEADER_WORDS = 8
_WORD = 8  # bytes per int64/float64


@contextlib.contextmanager
def _untracked_attach():
    """Suppress resource_tracker registration while attaching (gh-82300).

    Before 3.13's ``track=False``, merely *attaching* a segment
    registers it with the (process-tree-wide) resource tracker as if
    this process owned it; the tracker would then double-account the
    publisher's own registration and complain -- or worse, unlink early.
    Only the publishing :class:`SharedChainStore` owns segments here.
    """
    try:
        from multiprocessing import resource_tracker
    except ImportError:  # pragma: no cover - multiprocessing always ships
        yield
        return
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        yield
    finally:
        resource_tracker.register = original


def _segment_size(chain: CompiledChain, key_bytes: bytes) -> int:
    states, nnz = chain.num_states, chain.num_transitions
    words = (
        _HEADER_WORDS
        + states * chain.n
        + (states + 1)
        + 2 * nnz
    )
    return words * _WORD + len(key_bytes)


def _write_chain(buf, offset: int, chain: CompiledChain, key_bytes: bytes) -> None:
    """Write one chain block (the version-1 layout) at ``offset``."""
    states, nnz = chain.num_states, chain.num_transitions
    header = np.ndarray(
        (_HEADER_WORDS,), dtype=np.int64, buffer=buf, offset=offset
    )
    header[:] = (LAYOUT_VERSION, chain.n, chain.k, states, nnz,
                 len(key_bytes))
    offset += _HEADER_WORDS * _WORD
    labels = np.ndarray(
        (states, chain.n), dtype=np.int64, buffer=buf, offset=offset
    )
    labels[:] = chain.labels
    offset += states * chain.n * _WORD
    indptr_src, dst_src, cnt_src = chain.csr()
    indptr = np.ndarray(
        (states + 1,), dtype=np.int64, buffer=buf, offset=offset
    )
    indptr[:] = indptr_src
    offset += (states + 1) * _WORD
    dst = np.ndarray((nnz,), dtype=np.int64, buffer=buf, offset=offset)
    dst[:] = dst_src
    offset += nnz * _WORD
    cnt = np.ndarray((nnz,), dtype=np.int64, buffer=buf, offset=offset)
    cnt[:] = cnt_src
    offset += nnz * _WORD
    buf[offset:offset + len(key_bytes)] = key_bytes
    # Writable views into the buffer must be dropped before close() can
    # ever succeed (exporting views pin the mmap).
    del header, labels, indptr, dst, cnt


class SharedChainStore:
    """Publisher side: one shared-memory segment per compiled chain.

    The store owns its segments: :meth:`close` (or exiting the context
    manager) closes and unlinks every one.  Unlinking while workers
    still hold mappings is safe on POSIX -- their views stay valid until
    the worker process exits; only the *name* disappears.
    """

    def __init__(self):
        self._segments: list = []
        self._manifest: dict[str, str] = {}
        self._group_manifest: dict[str, str] = {}

    def __len__(self) -> int:
        """How many chains this store has published (not segments)."""
        return len(self._manifest)

    @property
    def manifest(self) -> dict[str, str]:
        """``{key digest: segment locator}`` -- what worker payloads carry.

        A locator is a bare segment name, or ``"name@offset"`` for a
        chain packed into a group segment.
        """
        return dict(self._manifest)

    @property
    def group_manifest(self) -> dict[str, str]:
        """``{group token: segment name}`` for published ChainGroup arrays.

        A group token is :func:`group_token` of the member chains' key
        digests in stacking order.
        """
        return dict(self._group_manifest)

    def publish(self, chain: CompiledChain) -> str:
        """Place ``chain``'s arrays in their own segment.

        Returns the chain's segment locator: the bare segment name for a
        fresh (or previously stand-alone) publish, or ``"name@offset"``
        when the chain already lives inside a group segment -- never a
        bare group-segment name, which would attach a *different*
        chain's block.  Idempotent per structural key within one store.
        """
        from multiprocessing.shared_memory import SharedMemory

        digest = key_digest(chain.key)
        existing = self._manifest.get(digest)
        if existing is not None:
            return existing
        key_bytes = pickle.dumps(chain.key, protocol=pickle.HIGHEST_PROTOCOL)
        shm = SharedMemory(create=True, size=_segment_size(chain, key_bytes))
        _write_chain(shm.buf, 0, chain, key_bytes)
        self._segments.append(shm)
        self._manifest[digest] = shm.name
        return shm.name

    def publish_group(self, chains) -> "str | None":
        """Pack every not-yet-published chain into **one** segment.

        One ``shm_open`` then covers the whole group on the worker side
        (chains within the segment differ only by byte offset).  Returns
        the segment name, or ``None`` when every chain was already
        published (nothing new to place).
        """
        from multiprocessing.shared_memory import SharedMemory

        fresh: list[tuple[CompiledChain, str, bytes, int]] = []
        seen: set[str] = set()
        total = 0
        for chain in chains:
            digest = key_digest(chain.key)
            if digest in self._manifest or digest in seen:
                continue
            seen.add(digest)
            key_bytes = pickle.dumps(
                chain.key, protocol=pickle.HIGHEST_PROTOCOL
            )
            fresh.append((chain, digest, key_bytes, total))
            size = _segment_size(chain, key_bytes)
            # Keep every block's int64 views 8-byte aligned.
            total += size + (-size) % _WORD
        if not fresh:
            return None
        shm = SharedMemory(create=True, size=total)
        for chain, digest, key_bytes, offset in fresh:
            _write_chain(shm.buf, offset, chain, key_bytes)
        self._segments.append(shm)
        for chain, digest, key_bytes, offset in fresh:
            self._manifest[digest] = f"{shm.name}@{offset}"
        return shm.name

    def publish_group_arrays(self, group) -> "str | None":
        """Publish a prebuilt :class:`~repro.chain.multi.ChainGroup`'s
        index arrays (block-diagonal COO stack + merged level schedule).

        Workers that would stack the same member chains (same key
        digests, same order) attach the finished arrays instead of
        rebuilding them.  Idempotent per member-digest token; returns
        the segment name (``None`` only if the group was already
        published).
        """
        from multiprocessing.shared_memory import SharedMemory

        digests = tuple(key_digest(chain.key) for chain in group.chains)
        token = group_token(digests)
        if token in self._group_manifest:
            return None
        meta = pickle.dumps(digests, protocol=pickle.HIGHEST_PROTOCOL)
        steps = group._steps
        state_total = sum(len(step[0]) for step in steps)
        edge_total = sum(len(step[1]) for step in steps)
        chains = len(group.chains)
        states, nnz = group.num_states, group.num_transitions
        words = (
            _GROUP_HEADER_WORDS
            + 2 * chains              # offsets, starts
            + 3 * nnz                 # src, dst, weight
            + states                  # self_w
            + 2 * (len(steps) + 1)    # state/edge indptrs
            + state_total             # step state ids
            + 3 * edge_total          # step edge pos/dst/weight
        )
        shm = SharedMemory(create=True, size=words * _WORD + len(meta))
        buf, offset = shm.buf, 0

        def put(values, dtype) -> None:
            nonlocal offset
            array = np.ndarray(
                (len(values),), dtype=dtype, buffer=buf, offset=offset
            )
            array[:] = values
            offset += len(values) * _WORD
            del array

        put(
            (GROUP_LAYOUT_VERSION, chains, states, nnz, len(steps),
             state_total, edge_total, len(meta)),
            np.int64,
        )
        put(group.offsets, np.int64)
        put(group.starts, np.int64)
        put(group._src, np.int64)
        put(group._dst, np.int64)
        put(group._weight, np.float64)
        put(group._self_w, np.float64)
        state_indptr, edge_indptr = [0], [0]
        for state_idx, edge_pos, _, _ in steps:
            state_indptr.append(state_indptr[-1] + len(state_idx))
            edge_indptr.append(edge_indptr[-1] + len(edge_pos))
        put(state_indptr, np.int64)
        put(edge_indptr, np.int64)
        for column, dtype in (
            (0, np.int64),  # state ids
        ):
            for step in steps:
                put(step[column], dtype)
        for column, dtype in (
            (1, np.int64),    # edge positions
            (2, np.int64),    # edge destinations
            (3, np.float64),  # edge weights
        ):
            for step in steps:
                put(step[column], dtype)
        buf[offset:offset + len(meta)] = meta
        self._segments.append(shm)
        self._group_manifest[token] = shm.name
        return shm.name

    def close(self) -> None:
        """Close and unlink every published segment (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
            except OSError:
                pass
            try:
                shm.unlink()
            except (OSError, FileNotFoundError):
                pass
        self._segments.clear()
        self._manifest.clear()
        self._group_manifest.clear()

    def __enter__(self) -> "SharedChainStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: Worker-side segment cache: attaching a group segment once serves
#: every chain packed inside it.  Entries are dropped (not closed --
#: attached chains pin their mapping via ``chain._shm``) whenever the
#: manifest changes.
_ATTACHED: dict[str, "object"] = {}


def _segment(name: str):
    shm = _ATTACHED.get(name)
    if shm is None:
        from multiprocessing.shared_memory import SharedMemory

        with _untracked_attach():
            shm = SharedMemory(name=name)
        _ATTACHED[name] = shm
    return shm


def attach_chain(name: str, offset: int = 0) -> CompiledChain:
    """Attach the segment ``name`` and build a chain over its arrays.

    ``offset`` selects one chain block inside a group segment (0, the
    default, reads a single-chain segment).  The CSR transition arrays
    are zero-copy views into the segment (the mapping is pinned on the
    returned chain for its lifetime); the label tuples are rebuilt
    eagerly (they back the id table), and exact-backend structures stay
    lazy as usual.  Segment mappings are cached per name, so a group's
    second chain costs no ``shm_open``.
    """
    shm = _segment(name)
    header = np.ndarray(
        (_HEADER_WORDS,), dtype=np.int64, buffer=shm.buf, offset=offset
    )
    version, n, k, states, nnz, key_bytes = (int(x) for x in header)
    if version != LAYOUT_VERSION:
        raise ValueError(f"unknown shared-chain layout version {version}")
    offset += _HEADER_WORDS * _WORD
    labels_array = np.ndarray(
        (states, n), dtype=np.int64, buffer=shm.buf, offset=offset
    )
    offset += states * n * _WORD
    indptr = np.ndarray(
        (states + 1,), dtype=np.int64, buffer=shm.buf, offset=offset
    )
    offset += (states + 1) * _WORD
    dst = np.ndarray((nnz,), dtype=np.int64, buffer=shm.buf, offset=offset)
    offset += nnz * _WORD
    cnt = np.ndarray((nnz,), dtype=np.int64, buffer=shm.buf, offset=offset)
    offset += nnz * _WORD
    key = pickle.loads(bytes(shm.buf[offset:offset + key_bytes]))
    labels = tuple(
        tuple(int(value) for value in row) for row in labels_array
    )
    chain = CompiledChain(key, n, k, labels, csr=(indptr, dst, cnt))
    # Pin the mapping: the CSR views stay valid exactly as long as the
    # chain (and with it this SharedMemory object) is alive.
    chain._shm = shm
    return chain


# ----------------------------------------------------------------------
# Worker-side lookup (installed per job payload by the runner)
# ----------------------------------------------------------------------
_MANIFEST: dict[str, str] = {}


def configure_shared_chains(manifest: "dict[str, str] | None") -> None:
    """Install (or, with ``None``/empty, remove) the attach manifest.

    A manifest change also drops the per-name segment cache: already-
    attached chains keep their own mapping pinned (``chain._shm``), so
    dropping the cache references never invalidates live views.
    """
    global _MANIFEST
    fresh = dict(manifest) if manifest else {}
    if fresh != _MANIFEST:
        _ATTACHED.clear()
    _MANIFEST = fresh


def shared_manifest() -> dict[str, str]:
    """The currently installed manifest (a copy)."""
    return dict(_MANIFEST)


def shared_chain(key: ChainKey) -> "CompiledChain | None":
    """The published chain for ``key``, or ``None``.

    Every failure mode -- segment gone, layout mismatch, digest
    collision -- degrades to a miss (the caller falls back to the disk
    cache or a recompile), never to wrong results: a hit is validated
    against the full structural key.
    """
    locator = _MANIFEST.get(key_digest(key))
    if locator is None:
        return None
    name, _, offset = locator.partition("@")
    try:
        chain = attach_chain(name, int(offset) if offset else 0)
    except Exception:
        # Anything: segment gone (OSError), truncated/foreign buffer
        # (TypeError from the array views), bad layout (ValueError),
        # garbage key bytes (arbitrary unpickling errors).  All of it
        # must degrade to the disk-cache path, never kill the job.
        return None
    if chain.key != key:
        return None
    return chain


# ----------------------------------------------------------------------
# ChainGroup index-array segments
# ----------------------------------------------------------------------
def group_token(digests) -> str:
    """The manifest token of a chain-group stack: a digest over the
    member chains' key digests *in stacking order*."""
    import hashlib

    return hashlib.sha256("|".join(digests).encode()).hexdigest()


_GROUP_MANIFEST: dict[str, str] = {}


def configure_shared_groups(manifest: "dict[str, str] | None") -> None:
    """Install (or, with ``None``/empty, remove) the group-array manifest."""
    global _GROUP_MANIFEST
    fresh = dict(manifest) if manifest else {}
    if fresh != _GROUP_MANIFEST:
        # Group segment names never collide with chain segment names,
        # but a manifest change means the publishing sweep changed --
        # drop stale mappings along with it (attached groups pin their
        # own mapping, so live views stay valid).
        for segment_name in _GROUP_MANIFEST.values():
            _ATTACHED.pop(segment_name, None)
    _GROUP_MANIFEST = fresh


def shared_group_manifest() -> dict[str, str]:
    """The currently installed group manifest (a copy)."""
    return dict(_GROUP_MANIFEST)


def attach_group_arrays(name: str) -> dict:
    """Attach a group segment and return its arrays as a payload dict.

    Keys: ``digests`` (member chain key digests, stacking order),
    ``offsets``, ``starts``, ``src``, ``dst``, ``weight``, ``self_w``,
    ``num_states``, ``steps`` (the merged level schedule as ``(state,
    pos, dst, w)`` array tuples), and ``shm`` (the mapping to pin).
    All arrays are zero-copy views into the segment.
    """
    shm = _segment(name)
    buf, offset = shm.buf, 0

    def take(count: int, dtype) -> np.ndarray:
        nonlocal offset
        array = np.ndarray((count,), dtype=dtype, buffer=buf, offset=offset)
        offset += count * _WORD
        return array

    header = take(_GROUP_HEADER_WORDS, np.int64)
    (version, chains, states, nnz, n_steps, state_total, edge_total,
     meta_bytes) = (int(x) for x in header)
    if version != GROUP_LAYOUT_VERSION:
        raise ValueError(f"unknown shared-group layout version {version}")
    payload = {
        "num_states": states,
        "offsets": take(chains, np.int64),
        "starts": take(chains, np.int64),
        "src": take(nnz, np.int64),
        "dst": take(nnz, np.int64),
        "weight": take(nnz, np.float64),
        "self_w": take(states, np.float64),
        "shm": shm,
    }
    state_indptr = take(n_steps + 1, np.int64)
    edge_indptr = take(n_steps + 1, np.int64)
    state_concat = take(state_total, np.int64)
    pos_concat = take(edge_total, np.int64)
    dst_concat = take(edge_total, np.int64)
    w_concat = take(edge_total, np.float64)
    payload["steps"] = [
        (
            state_concat[state_indptr[j]:state_indptr[j + 1]],
            pos_concat[edge_indptr[j]:edge_indptr[j + 1]],
            dst_concat[edge_indptr[j]:edge_indptr[j + 1]],
            w_concat[edge_indptr[j]:edge_indptr[j + 1]],
        )
        for j in range(n_steps)
    ]
    payload["digests"] = pickle.loads(
        bytes(buf[offset:offset + meta_bytes])
    )
    return payload


def shared_group(digests) -> "dict | None":
    """The published group arrays for these member digests, or ``None``.

    Like :func:`shared_chain`, every failure mode -- no manifest entry,
    segment gone, layout mismatch, or a member-digest mismatch (the
    worker is stacking a different chunk than the publisher predicted)
    -- degrades to a miss and the caller rebuilds the group locally.
    """
    digests = tuple(digests)
    name = _GROUP_MANIFEST.get(group_token(digests))
    if name is None:
        return None
    try:
        payload = attach_group_arrays(name)
    except Exception:
        return None
    if tuple(payload["digests"]) != digests:
        return None
    return payload


__all__ = [
    "GROUP_LAYOUT_VERSION",
    "LAYOUT_VERSION",
    "SharedChainStore",
    "attach_chain",
    "attach_group_arrays",
    "configure_shared_chains",
    "configure_shared_groups",
    "group_token",
    "shared_chain",
    "shared_group",
    "shared_group_manifest",
    "shared_manifest",
]
