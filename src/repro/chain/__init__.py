"""Compiled consistency-chain engine (interning, compilation, backends).

The package-level API:

* :func:`compile_chain` -- compile (or fetch memoized/cached) the chain
  of one ``(alpha, ports)`` configuration;
* :class:`CompiledChain` -- interned states, sparse integer transitions,
  and every query of the seed :class:`~repro.core.markov.ConsistencyChain`
  under both an exact ``Fraction`` backend and a numpy ``float64``
  backend (``backend="exact" | "float"``);
* :func:`configure_disk_cache` -- persist compilations across worker
  processes and runs.

``repro.core.markov`` keeps its historical API as a thin facade over
this engine; see ``CHAIN.md`` for the design.
"""

from .backends import BACKENDS, validate_backend
from .cache import ChainDiskCache, configure_disk_cache, disk_cache
from .engine import (
    MAX_NODES,
    ChainKey,
    CompiledChain,
    back_port_tables,
    chain_key,
    clear_memo,
    compile_chain,
    memo_size,
    neighbour_tables,
    refine_labels,
)
from .interning import (
    LabelVector,
    StateTable,
    block_count,
    block_sizes,
    blocks_from_labels,
    canonical_labels,
    labels_from_blocks,
)

__all__ = [
    "BACKENDS",
    "ChainDiskCache",
    "ChainKey",
    "CompiledChain",
    "LabelVector",
    "MAX_NODES",
    "StateTable",
    "back_port_tables",
    "block_count",
    "block_sizes",
    "blocks_from_labels",
    "canonical_labels",
    "chain_key",
    "clear_memo",
    "compile_chain",
    "configure_disk_cache",
    "disk_cache",
    "labels_from_blocks",
    "memo_size",
    "neighbour_tables",
    "refine_labels",
    "validate_backend",
]
